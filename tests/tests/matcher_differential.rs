//! Differential tests: the planned, trail-based matcher
//! ([`eqsql_cq::matcher`]) against the naive backtracking oracle
//! ([`eqsql_cq::matcher::reference`]).
//!
//! Three contracts, each over randomized conjunctions:
//!
//! 1. **Hom sets agree modulo order** — plan-ordered trail search
//!    (reference-order and selectivity-optimized plans alike) enumerates
//!    exactly the homomorphism set the naive backtracker does, seeds
//!    included.
//! 2. **First match agrees exactly** — wherever the engine requires the
//!    reference emission order (reference-order plans), the first
//!    homomorphism is bit-identical to the oracle's, with and without
//!    filter predicates.
//! 3. **Delta search ≡ post-filter** — delta-constrained search emits
//!    precisely the homomorphisms of the unconstrained set that can map
//!    some source atom onto a delta target atom.
//!
//! Plus the bijection search behind `find_isomorphism`: constructed
//! renamings must be found (and verified to carry q1 onto q2), mutations
//! must be rejected.

use eqsql_cq::matcher::{bucket_atoms, reference, DeltaSlots, MatchPlan, Seed, Target};
use eqsql_cq::{find_isomorphism, Atom, CqQuery, Subst, Term, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const PREDS: &[(&str, usize)] = &[("p", 2), ("r", 1), ("s", 2), ("t", 3)];
const VARS: &[&str] = &["X", "Y", "Z", "U", "V", "W"];

fn random_term(rng: &mut StdRng, const_prob: f64) -> Term {
    if rng.gen_bool(const_prob) {
        Term::int(rng.gen_range(0..3i64))
    } else {
        Term::var(VARS[rng.gen_range(0..VARS.len())])
    }
}

fn random_conjunction(rng: &mut StdRng, atoms: usize, const_prob: f64) -> Vec<Atom> {
    (0..atoms)
        .map(|_| {
            let (name, arity) = PREDS[rng.gen_range(0..PREDS.len())];
            Atom::new(name, (0..arity).map(|_| random_term(rng, const_prob)).collect())
        })
        .collect()
}

/// Ground-ish target: constants only, small domain, so hom sets are
/// non-trivial but bounded.
fn random_target(rng: &mut StdRng, atoms: usize) -> Vec<Atom> {
    (0..atoms)
        .map(|_| {
            let (name, arity) = PREDS[rng.gen_range(0..PREDS.len())];
            Atom::new(name, (0..arity).map(|_| Term::int(rng.gen_range(0..4i64))).collect())
        })
        .collect()
}

fn random_seed(rng: &mut StdRng) -> Subst {
    let mut s = Subst::new();
    if rng.gen_bool(0.4) {
        s.set(Var::new(VARS[rng.gen_range(0..VARS.len())]), Term::int(rng.gen_range(0..4i64)));
    }
    if rng.gen_bool(0.2) {
        // An out-of-plan binding that must ride through to the output.
        s.set(Var::new("Q_out_of_plan"), Term::int(77));
    }
    s
}

fn hom_set(homs: &[Subst]) -> HashSet<Vec<(Var, Term)>> {
    homs.iter().map(Subst::sorted_pairs).collect()
}

fn search_all(plan: &MatchPlan, dst: &[Atom], seed: &Subst) -> Vec<Subst> {
    let buckets = bucket_atoms(dst);
    let mut out = Vec::new();
    let mut seen: HashSet<Vec<(Var, Term)>> = HashSet::new();
    plan.search(Target::new(dst, &buckets), &Seed::Subst(seed), &mut |m| {
        let h = m.to_subst();
        if seen.insert(h.sorted_pairs()) {
            out.push(h);
        }
        true
    });
    out
}

#[test]
fn hom_sets_agree_modulo_order() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for round in 0..300 {
        let n_src = rng.gen_range(1..=4);
        let src = random_conjunction(&mut rng, n_src, 0.15);
        let n_dst = rng.gen_range(1..=8);
        let dst = random_target(&mut rng, n_dst);
        let seed = random_seed(&mut rng);
        let (oracle, truncated) = reference::enumerate_homomorphisms(&src, &dst, &seed, 1_000_000);
        assert!(!truncated, "round {round}: oracle truncated");
        let oracle_set = hom_set(&oracle);
        let by_ref_order = search_all(&MatchPlan::new(&src), &dst, &seed);
        assert_eq!(
            hom_set(&by_ref_order),
            oracle_set,
            "round {round}: reference-order plan diverged"
        );
        let seeded: Vec<Var> = seed.iter().map(|(v, _)| v).collect();
        let by_optimized = search_all(&MatchPlan::optimized(&src, &seeded), &dst, &seed);
        assert_eq!(hom_set(&by_optimized), oracle_set, "round {round}: optimized plan diverged");
    }
}

#[test]
fn first_match_is_identical_in_reference_order() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for round in 0..300 {
        let n_src = rng.gen_range(1..=4);
        let src = random_conjunction(&mut rng, n_src, 0.15);
        let n_dst = rng.gen_range(1..=8);
        let dst = random_target(&mut rng, n_dst);
        let seed = random_seed(&mut rng);
        let planned = MatchPlan::new(&src)
            .first_match(Target::new(&dst, &bucket_atoms(&dst)), &Seed::Subst(&seed));
        let oracle = reference::extend_homomorphism(&src, &dst, &seed);
        assert_eq!(planned, oracle, "round {round}: first match diverged");

        // With a filter predicate (the engine's applicability pruning):
        // accept only homs whose X-image is even.
        let pred = |h: &Subst| match h.get(Var::new("X")) {
            Some(Term::Const(eqsql_cq::Value::Int(i))) => i % 2 == 0,
            _ => true,
        };
        let mut planned_where: Option<Subst> = None;
        MatchPlan::new(&src).search(
            Target::new(&dst, &bucket_atoms(&dst)),
            &Seed::Subst(&seed),
            &mut |m| {
                let h = m.to_subst();
                if pred(&h) {
                    planned_where = Some(h);
                    false
                } else {
                    true
                }
            },
        );
        let oracle_where = reference::find_homomorphism_where(&src, &dst, &seed, &mut |h| pred(h));
        assert_eq!(planned_where, oracle_where, "round {round}: filtered first match diverged");
    }
}

/// Can `h` map some source atom onto a delta target atom? The post-filter
/// formulation of the delta constraint.
fn touches_delta(h: &Subst, src: &[Atom], dst: &[Atom], delta_slots: &[usize]) -> bool {
    src.iter().any(|a| {
        let image = h.apply_atom(a);
        delta_slots.iter().any(|&j| dst[j] == image)
    })
}

#[test]
fn delta_search_equals_post_filtering() {
    let mut rng = StdRng::seed_from_u64(0xDE17A);
    for round in 0..300 {
        let n_src = rng.gen_range(1..=3);
        let src = random_conjunction(&mut rng, n_src, 0.1);
        let n_dst = rng.gen_range(2..=8);
        let dst = random_target(&mut rng, n_dst);
        // A random subset of target slots is the delta.
        let delta_slots: Vec<usize> = (0..dst.len()).filter(|_| rng.gen_bool(0.35)).collect();
        let mut delta = DeltaSlots::new();
        for &j in &delta_slots {
            delta.push(&dst[j], j);
        }
        let buckets = bucket_atoms(&dst);
        let plan = MatchPlan::new(&src);
        let mut constrained: HashSet<Vec<(Var, Term)>> = HashSet::new();
        plan.search_delta(Target::new(&dst, &buckets), &delta, &Seed::Empty, &mut |m| {
            constrained.insert(m.to_subst().sorted_pairs());
            true
        });
        let (all, _) = reference::enumerate_homomorphisms(&src, &dst, &Subst::new(), 1_000_000);
        let filtered: HashSet<Vec<(Var, Term)>> = all
            .iter()
            .filter(|h| touches_delta(h, &src, &dst, &delta_slots))
            .map(Subst::sorted_pairs)
            .collect();
        assert_eq!(
            constrained, filtered,
            "round {round}: delta-constrained search ≠ post-filtered set (delta {delta_slots:?})"
        );
    }
}

#[test]
fn bijection_search_finds_constructed_isomorphisms() {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(0x150);
    for round in 0..200 {
        let n_body = rng.gen_range(1..=5);
        let body = random_conjunction(&mut rng, n_body, 0.1);
        let mut head_vars: Vec<Var> = {
            let mut vs: Vec<Var> = Vec::new();
            for a in &body {
                for v in a.vars() {
                    if !vs.contains(&v) {
                        vs.push(v);
                    }
                }
            }
            vs
        };
        head_vars.truncate(2);
        let q1 = CqQuery::new("q", head_vars.iter().map(|v| Term::Var(*v)).collect(), body.clone());
        // Rename bijectively and shuffle the body: must be found.
        let renaming = Subst::from_pairs(
            VARS.iter().enumerate().map(|(i, v)| (Var::new(v), Term::var(&format!("N{i}")))),
        );
        let mut shuffled = renaming.apply_atoms(&q1.body);
        shuffled.shuffle(&mut rng);
        let q2 =
            CqQuery::new("q", q1.head.iter().map(|t| renaming.apply_term(t)).collect(), shuffled);
        let m = find_isomorphism(&q1, &q2)
            .unwrap_or_else(|| panic!("round {round}: renamed copy not isomorphic"));
        // The witness really carries q1 onto q2.
        let as_subst = Subst::from_pairs(m.iter().map(|(v, w)| (*v, Term::Var(*w))));
        let image = q1.apply(&as_subst);
        assert!(
            eqsql_cq::are_isomorphic(&image, &q2),
            "round {round}: witness map does not carry q1 onto q2"
        );
        // A mutated copy (one atom's predicate swapped) must be rejected.
        if !q2.body.is_empty() {
            let mut broken = q2.clone();
            let j = rng.gen_range(0..broken.body.len());
            let old = broken.body[j].clone();
            broken.body[j] = Atom::new("zz", old.args.clone());
            assert!(
                find_isomorphism(&q1, &broken).is_none(),
                "round {round}: predicate-mutated copy accepted"
            );
        }
    }
}
