//! Differential suite for the `eqsql_service` chase-result cache: cached
//! and fresh `sigma_equivalent` verdicts must agree on every input —
//! terminating chases, egd failures and budget exhaustion alike — and the
//! canonical key must neither split an α-equivalence class (wasted work)
//! nor merge two non-isomorphic queries (cache poisoning).

// The deprecated convenience entry points remain the differential oracle
// for the Solver suite; this legacy-surface test keeps exercising them.
#![allow(deprecated)]

use eqsql_chase::ChaseConfig;
use eqsql_core::{sigma_equivalent, sigma_equivalent_via, EquivOutcome, SoundChaser};
use eqsql_cq::{parse_query, CqQuery};
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::random_weakly_acyclic_sigma;
use eqsql_gen::rename_isomorphic;
use eqsql_gen::sigma::SigmaParams;
use eqsql_relalg::{Schema, Semantics};
use eqsql_service::{BatchSession, ChaseCache, EquivRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn schema() -> Schema {
    let mut s = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 3), ("d", 1)]);
    s.mark_set_valued(eqsql_cq::Predicate::new("b"));
    s.mark_set_valued(eqsql_cq::Predicate::new("c"));
    s
}

/// 120 random weakly acyclic draws (Σ terminates by construction,
/// Theorem H.1): the cached verdict must equal the fresh verdict for every
/// pair and semantics — twice through the same cache, so both the
/// miss-then-store and the hit-then-replay paths are exercised.
#[test]
fn cached_verdicts_agree_with_fresh_on_random_draws() {
    let schema = schema();
    let cache = ChaseCache::default();
    let config = ChaseConfig::default();
    let mut rng = StdRng::seed_from_u64(0xEC5);
    let mut decided = 0usize;
    for round in 0..120 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 },
        );
        let params = QueryParams {
            atoms: 2 + (round % 3),
            vars: 4,
            const_prob: 0.1,
            const_domain: 3,
            max_head: 2,
        };
        let q1 = random_query(&mut rng, &schema, &params);
        // Half the rounds compare against a perturbed q1 (equivalence
        // plausible), half against an independent draw.
        let q2 = if rng.gen_bool(0.5) {
            let mut q = rename_isomorphic(&mut rng, &q1);
            if rng.gen_bool(0.5) && q.body.len() > 1 {
                q.body.pop();
            }
            if !q.is_safe() {
                q = q1.clone();
            }
            q
        } else {
            random_query(&mut rng, &schema, &params)
        };
        let sem = match round % 3 {
            0 => Semantics::Set,
            1 => Semantics::BagSet,
            _ => Semantics::Bag,
        };
        let fresh = sigma_equivalent(sem, &q1, &q2, &sigma, &schema, &config);
        for pass in 0..2 {
            let cached = sigma_equivalent_via(&cache, sem, &q1, &q2, &sigma, &schema, &config);
            assert_eq!(
                cached, fresh,
                "round {round} pass {pass} ({sem}): {q1} vs {q2} under\n{sigma}"
            );
        }
        decided += 1;
    }
    assert_eq!(decided, 120);
    let stats = cache.stats();
    assert!(stats.hits > 0, "the second passes must hit: {stats:?}");
}

/// Egd-failure outcomes (query unsatisfiable under Σ) replay correctly.
#[test]
fn cached_failure_outcomes_agree() {
    let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
    let schema = Schema::all_bags(&[("s", 2), ("p", 1)]);
    let cache = ChaseCache::default();
    let config = ChaseConfig::default();
    let dead1 = parse_query("q(X) :- s(X,3), s(X,4)").unwrap();
    let dead2 = parse_query("q(A) :- s(A,3), s(A,4)").unwrap(); // α-copy of dead1
    let dead3 = parse_query("q(X) :- s(X,1), s(X,2)").unwrap();
    let alive = parse_query("q(X) :- s(X,3)").unwrap();
    for (a, b) in
        [(&dead1, &dead2), (&dead1, &dead3), (&dead2, &dead3), (&dead1, &alive), (&alive, &dead3)]
    {
        let fresh = sigma_equivalent(Semantics::Set, a, b, &sigma, &schema, &config);
        let cached = sigma_equivalent_via(&cache, Semantics::Set, a, b, &sigma, &schema, &config);
        assert_eq!(cached, fresh, "{a} vs {b}");
    }
    // dead2 is α-equivalent to dead1: its chase must have been a hit.
    assert!(cache.stats().hits >= 1, "{:?}", cache.stats());
}

/// Budget-exhaustion outcomes are cached and replayed as the same error.
#[test]
fn cached_budget_outcomes_agree() {
    let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
    let schema = Schema::all_bags(&[("e", 2)]);
    let cache = ChaseCache::default();
    let config = ChaseConfig::with_max_steps(20);
    let q1 = parse_query("q(X) :- e(X,Y)").unwrap();
    let q2 = parse_query("q(X) :- e(X,Y), e(Y,Z)").unwrap();
    let fresh = sigma_equivalent(Semantics::Set, &q1, &q2, &sigma, &schema, &config);
    assert!(matches!(fresh, EquivOutcome::Unknown(_)));
    for _ in 0..2 {
        let cached =
            sigma_equivalent_via(&cache, Semantics::Set, &q1, &q2, &sigma, &schema, &config);
        assert_eq!(cached, fresh);
    }
    let stats = cache.stats();
    assert!(stats.hits >= 1 && stats.misses >= 1, "{stats:?}");
    // A *larger* budget is a different context: must not hit the cached
    // exhaustion entry.
    let big = ChaseConfig::with_max_steps(21);
    let _ = sigma_equivalent_via(&cache, Semantics::Set, &q1, &q2, &sigma, &schema, &big);
    assert!(cache.stats().misses > stats.misses);
}

/// Cache-poisoning guard, positive half: two α-equivalent queries must
/// collapse onto one entry (second one hits, no new entry).
#[test]
fn alpha_equivalent_queries_share_one_entry() {
    let sigma = parse_dependencies("a(X,Y) -> b(Y,Z). b(X,Y1) & b(X,Y2) -> Y1 = Y2.").unwrap();
    let schema = Schema::all_bags(&[("a", 2), ("b", 2)]);
    let cache = ChaseCache::default();
    let config = ChaseConfig::default();
    let q = parse_query("q(X) :- a(X,Y), b(Y,W)").unwrap();
    cache.sound_chase(Semantics::Set, &q, &sigma, &schema, &config).unwrap();
    assert_eq!(cache.stats().entries, 1);
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..10 {
        let renamed = rename_isomorphic(&mut rng, &q);
        cache.sound_chase(Semantics::Set, &renamed, &sigma, &schema, &config).unwrap();
        assert_eq!(cache.stats().entries, 1, "renaming {i} opened a second entry");
        assert_eq!(cache.stats().hits, i + 1);
    }
}

/// Cache-poisoning guard, negative half: non-isomorphic queries must land
/// in distinct entries — including pairs that are *set-equivalent* but not
/// isomorphic, and pairs differing only in duplicate-subgoal multiplicity
/// or head order (precisely the distinctions bag semantics depends on).
#[test]
fn non_isomorphic_queries_get_distinct_entries() {
    let sigma = DependencySet::new();
    let schema = Schema::all_bags(&[("a", 2), ("b", 2)]);
    let cache = ChaseCache::default();
    let config = ChaseConfig::default();
    let queries = [
        "q(X) :- a(X,Y)",
        "q(X) :- a(X,Y), a(X,Y)", // duplicate subgoal
        "q(X) :- a(X,Y), a(Y,X)", // different join
        "q(X) :- a(X,X)",         // collapsed variables
        "q(Y) :- a(X,Y)",         // head at other position
        "q(X, Y) :- a(X,Y)",      // wider head
        "q(Y, X) :- a(X,Y)",      // swapped head
        "q(X) :- a(X,Y), b(X,Z)",
        "q(X) :- a(X,Y), b(Y,Z)",
        "q(X) :- a(X,1)",
        "q(X) :- a(X,2)",
    ];
    for (i, text) in queries.iter().enumerate() {
        let q = parse_query(text).unwrap();
        cache.sound_chase(Semantics::Bag, &q, &sigma, &schema, &config).unwrap();
        assert_eq!(cache.stats().entries, i + 1, "{text} was conflated with an earlier entry");
    }
    assert_eq!(cache.stats().hits, 0);
}

/// End-to-end: a batch over a shared cache returns the same verdicts as
/// unbatched, uncached decisions, for every thread count.
#[test]
fn batched_verdicts_match_unbatched_across_threads() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(99);
    let sigma = random_weakly_acyclic_sigma(
        &mut rng,
        &schema,
        &SigmaParams { tgds: 4, egds: 2, reuse_prob: 0.5 },
    );
    let config = ChaseConfig::default();
    let params = QueryParams { atoms: 3, vars: 4, const_prob: 0.1, const_domain: 3, max_head: 2 };
    let mut pairs: Vec<EquivRequest> = Vec::new();
    for i in 0..24 {
        let q1: CqQuery = random_query(&mut rng, &schema, &params);
        let q2 = if i % 2 == 0 {
            rename_isomorphic(&mut rng, &q1)
        } else {
            random_query(&mut rng, &schema, &params)
        };
        let sem = [Semantics::Set, Semantics::Bag, Semantics::BagSet][i % 3];
        pairs.push(EquivRequest { sem, q1, q2 });
    }
    let expected: Vec<EquivOutcome> = pairs
        .iter()
        .map(|p| sigma_equivalent(p.sem, &p.q1, &p.q2, &sigma, &schema, &config))
        .collect();
    let cache = Arc::new(ChaseCache::default());
    for threads in [1, 4, 8] {
        let session = BatchSession::new(sigma.clone(), schema.clone(), config)
            .with_cache(Arc::clone(&cache))
            .with_threads(threads);
        let outcome = session.run(&pairs);
        assert_eq!(outcome.verdicts, expected, "threads={threads}");
    }
    // The second and third sessions ran fully warm.
    let stats = cache.stats();
    assert!(stats.hits >= stats.misses, "{stats:?}");
}

/// Eviction accounting through the `Solver::stats` snapshot, with and
/// without the disk tier. FIFO eviction is a memory-tier concern, so its
/// accounting must be byte-identical in both modes: a capacity-1
/// single-shard cache evicts exactly once per new distinct entry past the
/// first and residency never exceeds capacity. Disk residency is asserted
/// independently: re-probing an evicted entry re-chases (a fifth miss)
/// without persistence, but comes back as a disk hit (misses stay at four)
/// with it.
fn solver_eviction_accounting(persist: Option<eqsql_service::PersistConfig>) {
    use eqsql_service::{CacheConfig, Request, RequestOpts, Solver};
    let persistent = persist.is_some();
    let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1)]);
    let solver = Solver::builder(sigma, schema)
        .cache_config(CacheConfig { shards: 1, capacity: 1, persist, ..CacheConfig::default() })
        .build();
    // Four structurally distinct queries → four entries demanded of a
    // capacity-1 shard: 3 evictions, 1 resident.
    let bodies = ["a(X)", "a(X), c(X)", "a(X), c(X), c(X)", "a(X), b(X), c(X)"];
    let requests: Vec<Request> = bodies
        .iter()
        .map(|b| {
            let q = parse_query(&format!("q(X) :- {b}")).unwrap();
            Request::Equivalent { q1: q.clone(), q2: q, opts: RequestOpts::default() }
        })
        .collect();
    let report = solver.decide_all(&requests);
    assert!(report.verdicts.iter().all(|v| v.is_ok()));
    let stats = solver.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.cache.entries, 1, "{stats:?}");
    assert_eq!(stats.cache.misses, 4, "{stats:?}");
    assert_eq!(
        stats.cache.evictions,
        stats.cache.misses - stats.cache.entries as u64,
        "every miss past capacity must be matched by exactly one eviction: {stats:?}"
    );
    if persistent {
        // Every miss was journaled; eviction only touched the memory tier.
        assert_eq!(stats.cache.persist.appended, 4, "{stats:?}");
    }
    // Re-probe an entry long since evicted from the memory tier.
    solver
        .decide(&Request::Equivalent {
            q1: parse_query("q(X) :- a(X)").unwrap(),
            q2: parse_query("q(X) :- a(X)").unwrap(),
            opts: RequestOpts::default(),
        })
        .unwrap();
    let after = solver.stats();
    assert_eq!(after.requests, 5);
    if persistent {
        // Disk residency outlives eviction: the re-probe is a disk hit
        // promoted back into memory, not a re-chase — and promotion does
        // not re-append.
        assert_eq!(after.cache.misses, 4, "{after:?}");
        assert_eq!(after.cache.persist.disk_hits, 1, "{after:?}");
        assert_eq!(after.cache.persist.appended, 4, "{after:?}");
    } else {
        assert_eq!(after.cache.misses, 5, "{after:?}");
    }
    // FIFO accounting is identical either way: the promoted (or
    // re-chased) entry evicts the survivor.
    assert_eq!(after.cache.evictions, 4, "{after:?}");
    assert_eq!(after.cache.entries, 1, "{after:?}");
}

#[test]
fn solver_stats_account_for_evictions() {
    solver_eviction_accounting(None);
}

#[test]
fn solver_stats_account_for_evictions_with_persistence() {
    let dir =
        std::env::temp_dir().join(format!("eqsql-service-cache-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    solver_eviction_accounting(Some(eqsql_service::PersistConfig::at(&dir)));
    let _ = std::fs::remove_dir_all(&dir);
}
