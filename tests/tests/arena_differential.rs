//! 150-draw differential: arena-backed chase engine vs boxed reference.
//!
//! The arena refactor (columnar [`eqsql_cq::arena`] storage threaded
//! through `BodyIndex` and the indexed engine) must be **step-identical**
//! to the naive boxed oracle — not merely verdict-equivalent. Each draw
//! compares, between [`set_chase`] and [`set_chase_reference`]:
//!
//! * error variants (budget exhaustion / size blowup must agree),
//! * the `failed` flag and the step count,
//! * the full step trace (dependency index, action string, body size
//!   after each step),
//! * the terminal query rendering, and
//! * the renaming-invariant [`query_fingerprint`] of the terminal — the
//!   value the service layer caches under, so cache attribution stays
//!   bit-identical across the arena/boxed boundary.

use eqsql_chase::{set_chase, set_chase_reference, ChaseConfig};
use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::sigma::{random_weakly_acyclic_sigma, SigmaParams};
use eqsql_relalg::Schema;
use eqsql_service::query_fingerprint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schemas() -> Vec<Schema> {
    vec![
        Schema::all_bags(&[("a", 2), ("b", 2), ("c", 1)]),
        Schema::all_bags(&[("p", 2), ("s", 2), ("t", 3), ("r", 1)]),
        Schema::all_bags(&[("e", 2), ("f", 3), ("g", 2), ("h", 1), ("k", 2)]),
    ]
}

/// 150 random draws (3 schemas × 50 seeds): the arena engine and the
/// boxed reference agree on everything observable about the chase.
#[test]
fn arena_engine_matches_boxed_reference_on_150_draws() {
    let cfg = ChaseConfig { max_steps: 2_000, max_atoms: 2_000 };
    let sp = SigmaParams { tgds: 4, egds: 2, reuse_prob: 0.5 };
    let qp = QueryParams { atoms: 3, vars: 4, const_prob: 0.15, const_domain: 3, max_head: 2 };
    let mut draws = 0usize;
    let mut terminated = 0usize;
    for (si, schema) in schemas().iter().enumerate() {
        for seed in 0..50u64 {
            draws += 1;
            let mut rng = StdRng::seed_from_u64(0xA9E7_0000 + (si as u64) * 1_000 + seed);
            let sigma = random_weakly_acyclic_sigma(&mut rng, schema, &sp);
            let q = random_query(&mut rng, schema, &qp);
            let ctx = format!("schema {si} seed {seed}\nq: {q}\nsigma: {sigma}");

            let arena = set_chase(&q, &sigma, &cfg);
            let boxed = set_chase_reference(&q, &sigma, &cfg);
            match (arena, boxed) {
                (Ok(a), Ok(b)) => {
                    terminated += 1;
                    assert_eq!(a.failed, b.failed, "failed flag diverged\n{ctx}");
                    assert_eq!(a.steps, b.steps, "step count diverged\n{ctx}");
                    assert_eq!(a.trace.len(), b.trace.len(), "trace length diverged\n{ctx}");
                    for (i, (ta, tb)) in a.trace.iter().zip(b.trace.iter()).enumerate() {
                        assert_eq!(
                            (ta.dep_index, &ta.action, ta.body_size),
                            (tb.dep_index, &tb.action, tb.body_size),
                            "trace step {i} diverged\n{ctx}"
                        );
                    }
                    if !a.failed {
                        assert_eq!(
                            a.query.to_string(),
                            b.query.to_string(),
                            "terminal query diverged\n{ctx}"
                        );
                        assert_eq!(
                            query_fingerprint(&a.query),
                            query_fingerprint(&b.query),
                            "terminal cache fingerprint diverged\n{ctx}"
                        );
                    }
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(
                        std::mem::discriminant(&ea),
                        std::mem::discriminant(&eb),
                        "error variant diverged: arena={ea:?} boxed={eb:?}\n{ctx}"
                    );
                }
                (a, b) => panic!(
                    "termination diverged: arena={:?} boxed={:?}\n{ctx}",
                    a.map(|c| c.steps),
                    b.map(|c| c.steps)
                ),
            }
        }
    }
    assert_eq!(draws, 150);
    // Weakly acyclic Σ with these budgets should terminate on most draws;
    // if nearly everything errors the test is vacuous.
    assert!(terminated >= 100, "only {terminated}/150 draws terminated");
}
