//! Differential suite for the `eqsql_service::Solver` façade: on randomized
//! weakly acyclic inputs, Solver verdicts must agree with the legacy free
//! functions of `eqsql_core` for every request type and semantics, the
//! error taxonomy must map chase-level failures faithfully, and — the part
//! the legacy surface never had — every certificate a verdict carries must
//! replay against the original inputs.
// The deprecated convenience entry points are exactly the oracle this
// suite differentiates against.
#![allow(deprecated)]

use eqsql_chase::{ChaseConfig, ChaseError};
use eqsql_core::{cnb, is_sigma_minimal, sigma_equivalent, sigma_set_contained, EquivOutcome};
use eqsql_cq::{are_isomorphic, parse_query};
use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::random_weakly_acyclic_sigma;
use eqsql_gen::rename_isomorphic;
use eqsql_gen::sigma::SigmaParams;
use eqsql_relalg::{Schema, Semantics};
use eqsql_service::{Answer, Error, Request, RequestOpts, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    let mut s = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 3), ("d", 1)]);
    s.mark_set_valued(eqsql_cq::Predicate::new("b"));
    s.mark_set_valued(eqsql_cq::Predicate::new("c"));
    s
}

fn equiv_outcome(v: &Result<eqsql_service::Verdict, Error>) -> EquivOutcome {
    match v {
        Ok(verdict) => match &verdict.answer {
            Answer::Equivalent { .. } => EquivOutcome::Equivalent,
            Answer::NotEquivalent { .. } => EquivOutcome::NotEquivalent,
            other => panic!("equivalence request answered with {other:?}"),
        },
        Err(e) => {
            EquivOutcome::Unknown(e.as_chase_error().expect("equivalence errors are chase-level"))
        }
    }
}

/// 150 random weakly acyclic draws (the Σ generator guarantees chase
/// termination, Theorem H.1), three semantics each: the Solver's verdict
/// must equal the legacy `sigma_equivalent`, and every certificate must
/// replay. Every fifth round additionally differentiates set containment,
/// Σ-minimality and the C&B family against their legacy oracles.
#[test]
fn solver_agrees_with_legacy_functions_on_random_draws() {
    let schema = schema();
    let config = ChaseConfig::default();
    let mut rng = StdRng::seed_from_u64(0x501E);
    let mut decided = 0usize;
    let mut evidence_replayed = 0usize;
    for round in 0..150 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 },
        );
        let params = QueryParams {
            atoms: 2 + (round % 3),
            vars: 4,
            const_prob: 0.1,
            const_domain: 3,
            max_head: 2,
        };
        let q1 = random_query(&mut rng, &schema, &params);
        // Half the rounds compare against a perturbed α-copy of q1
        // (equivalence plausible), half against an independent draw.
        let q2 = if rng.gen_bool(0.5) {
            let mut q = rename_isomorphic(&mut rng, &q1);
            if rng.gen_bool(0.5) && q.body.len() > 1 {
                q.body.pop();
            }
            if !q.is_safe() {
                q = q1.clone();
            }
            q
        } else {
            random_query(&mut rng, &schema, &params)
        };
        let solver = Solver::builder(sigma.clone(), schema.clone()).build();
        for sem in [Semantics::Set, Semantics::Bag, Semantics::BagSet] {
            let req = Request::Equivalent {
                q1: q1.clone(),
                q2: q2.clone(),
                opts: RequestOpts::with_sem(sem),
            };
            let got = solver.decide(&req);
            let want = sigma_equivalent(sem, &q1, &q2, &sigma, &schema, &config);
            assert_eq!(
                equiv_outcome(&got),
                want,
                "round {round} ({sem}): {q1} vs {q2} under\n{sigma}"
            );
            if let Ok(v) = &got {
                v.verify(&req, solver.sigma(), solver.schema())
                    .unwrap_or_else(|e| panic!("round {round} ({sem}): {e}"));
                evidence_replayed += 1;
            }
            decided += 1;
        }
        // Set containment against its oracle (same chases, so cheap).
        let req =
            Request::Contained { q1: q1.clone(), q2: q2.clone(), opts: RequestOpts::default() };
        let got = solver.decide(&req);
        match sigma_set_contained(&q1, &q2, &sigma, &schema, &config) {
            Ok(want) => {
                let v = got.unwrap_or_else(|e| panic!("round {round}: containment errored {e}"));
                assert_eq!(
                    matches!(v.answer, Answer::Contained { .. }),
                    want,
                    "round {round}: containment disagrees on {q1} vs {q2}"
                );
                v.verify(&req, solver.sigma(), solver.schema())
                    .unwrap_or_else(|e| panic!("round {round} (containment): {e}"));
                evidence_replayed += 1;
            }
            Err(e) => {
                assert_eq!(got.unwrap_err().as_chase_error(), Some(e), "round {round}");
            }
        }
        decided += 1;
        // Minimality + C&B every fifth round, on a deliberately small
        // query (the Definition 3.1 search enumerates substitutions
        // exhaustively).
        if round % 5 == 0 {
            let small =
                QueryParams { atoms: 2, vars: 3, const_prob: 0.1, const_domain: 3, max_head: 1 };
            let q = random_query(&mut rng, &schema, &small);
            let sem = [Semantics::Set, Semantics::Bag, Semantics::BagSet][round % 3];
            let got =
                solver.decide(&Request::Minimal { q: q.clone(), opts: RequestOpts::with_sem(sem) });
            match is_sigma_minimal(&q, &sigma, &schema, sem, &config) {
                Ok(want) => {
                    let v = got.unwrap_or_else(|e| panic!("round {round}: minimality errored {e}"));
                    assert_eq!(
                        matches!(v.answer, Answer::Minimal),
                        want,
                        "round {round}: minimality disagrees on {q}"
                    );
                    // A non-minimality witness is itself replayable: the
                    // reduced query must be Σ-equivalent to q.
                    if let Answer::NotMinimal { witness } = &v.answer {
                        assert!(
                            sigma_equivalent(sem, &witness.reduced, &q, &sigma, &schema, &config)
                                .is_equivalent(),
                            "round {round}: witness.reduced is not Σ-equivalent to {q}"
                        );
                        assert!(witness.reduced.body.len() < witness.identified.body.len());
                        evidence_replayed += 1;
                    }
                }
                Err(e) => {
                    assert_eq!(got.unwrap_err().as_chase_error(), Some(e), "round {round}");
                }
            }
            decided += 1;
            let got = solver
                .decide(&Request::Reformulate { q: q.clone(), opts: RequestOpts::with_sem(sem) });
            match cnb(sem, &q, &sigma, &schema, &config, &Default::default()) {
                Ok(want) => {
                    let v = got.unwrap_or_else(|e| panic!("round {round}: cnb errored {e}"));
                    let Answer::Reformulated { reformulations, candidates_tested, .. } = &v.answer
                    else {
                        panic!("round {round}: Reformulate answered {:?}", v.answer)
                    };
                    assert_eq!(*candidates_tested, want.candidates_tested, "round {round}");
                    assert_eq!(reformulations.len(), want.reformulations.len(), "round {round}");
                    for w in &want.reformulations {
                        assert!(
                            reformulations.iter().any(|r| are_isomorphic(r, w)),
                            "round {round}: legacy reformulation {w} missing from solver's"
                        );
                    }
                }
                Err(e) => {
                    let got = got.unwrap_err();
                    assert_eq!(got, Error::from(e), "round {round}");
                }
            }
            decided += 1;
        }
    }
    assert!(decided >= 150 * 4, "decided only {decided}");
    assert!(evidence_replayed >= 150 * 3 / 2, "replayed only {evidence_replayed}");
}

/// The error taxonomy maps each failure class faithfully: budget
/// exhaustion, atom-budget overflow, parse errors (through the request
/// file), egd failure on an unrepairable instance, and unsupported
/// semantics — and `as_chase_error` round-trips the chase-level ones for
/// the legacy `EquivOutcome::Unknown` surface.
#[test]
fn error_taxonomy_maps_every_failure_class() {
    // Budget exhaustion: Σ not weakly acyclic.
    let sigma = eqsql_deps::parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
    let schema = Schema::all_bags(&[("e", 2)]);
    let solver = Solver::builder(sigma.clone(), schema.clone())
        .chase_config(ChaseConfig::with_max_steps(15))
        .build();
    let q1 = parse_query("q(X) :- e(X,Y)").unwrap();
    let q2 = parse_query("q(X) :- e(X,Y), e(Y,Z)").unwrap();
    let req = Request::Equivalent { q1: q1.clone(), q2: q2.clone(), opts: RequestOpts::default() };
    let err = solver.decide(&req).unwrap_err();
    let Error::BudgetExhausted { steps } = err else {
        panic!("expected BudgetExhausted, got {err:?}")
    };
    // The legacy surface reports the identical chase error.
    let legacy = sigma_equivalent(
        Semantics::Set,
        &q1,
        &q2,
        &sigma,
        &schema,
        &ChaseConfig::with_max_steps(15),
    );
    assert_eq!(legacy, EquivOutcome::Unknown(ChaseError::BudgetExhausted { steps }));

    // Atom-budget overflow, reached through a per-request override.
    let sigma = eqsql_deps::parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
    let solver = Solver::builder(sigma, schema).build();
    let req = Request::Equivalent {
        q1: parse_query("q(X) :- a(X)").unwrap(),
        q2: parse_query("q(X) :- a(X), b(X)").unwrap(),
        opts: RequestOpts { max_atoms: Some(1), ..RequestOpts::default() },
    };
    assert!(matches!(solver.decide(&req), Err(Error::QueryTooLarge { .. })));

    // Parse failures, through the request-file boundary.
    let err: Error = eqsql_service::parse_request_file("pair: set | junk(((").unwrap_err().into();
    let Error::Parse { line, .. } = err else { panic!("expected Parse, got {err:?}") };
    assert_eq!(line, 1);

    // Egd failure: an unrepairable instance.
    let sigma = eqsql_deps::parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
    let schema = Schema::all_bags(&[("s", 2)]);
    let solver = Solver::builder(sigma, schema).build();
    let mut db = eqsql_relalg::Database::new();
    db.insert("s", eqsql_relalg::Tuple::ints([1, 2]), 1);
    db.insert("s", eqsql_relalg::Tuple::ints([1, 3]), 1);
    let err =
        solver.decide(&Request::ChaseInstance { db, opts: RequestOpts::default() }).unwrap_err();
    assert_eq!(err, Error::EgdFailure { operation: "chase-instance" });
    assert_eq!(err.as_chase_error(), None);

    // Unsupported semantics: Chandra–Merlin containment under bag
    // semantics is open; the façade says so instead of guessing.
    let solver =
        Solver::builder(eqsql_deps::DependencySet::new(), Schema::all_bags(&[("p", 2)])).build();
    let q = parse_query("q(X) :- p(X,Y)").unwrap();
    let err = solver
        .decide(&Request::Contained {
            q1: q.clone(),
            q2: q.clone(),
            opts: RequestOpts::with_sem(Semantics::BagSet),
        })
        .unwrap_err();
    assert!(matches!(err, Error::UnsupportedSemantics { operation: "set-containment", .. }));
    // And the bag route refuses set semantics symmetrically.
    let err = solver
        .decide(&Request::BagContained {
            q1: q.clone(),
            q2: q,
            opts: RequestOpts::with_sem(Semantics::Set),
        })
        .unwrap_err();
    assert!(matches!(err, Error::UnsupportedSemantics { operation: "bag-containment", .. }));
}

/// Tampered certificates must fail replay: the verification helpers are a
/// real check, not a rubber stamp.
#[test]
fn tampered_certificates_fail_replay() {
    let sigma = eqsql_deps::parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
    let solver = Solver::builder(sigma, schema).build();
    // Disjoint variable names, so the empty substitution below really is
    // an invalid mapping (shared names could make it accidentally valid).
    let req = Request::Equivalent {
        q1: parse_query("q(X) :- a(X)").unwrap(),
        q2: parse_query("q(Y) :- a(Y), b(Y)").unwrap(),
        opts: RequestOpts::default(),
    };
    let v = solver.decide(&req).unwrap();
    let Answer::Equivalent { certificate } = &v.answer else {
        panic!("expected Equivalent, got {:?}", v.answer)
    };
    certificate.verify().unwrap();
    // Corrupt the forward mapping: replay must reject it.
    let eqsql_service::EquivalenceCertificate::Set { chased1, chased2, backward, .. } =
        certificate.clone()
    else {
        panic!("set-semantics certificates carry containment mappings")
    };
    let tampered = eqsql_service::EquivalenceCertificate::Set {
        chased1,
        chased2,
        forward: eqsql_cq::Subst::new(),
        backward,
    };
    assert!(tampered.verify().is_err());
}

/// The Solver's per-request budget overrides partition the cache exactly
/// like the legacy per-call configs did: an entry cached under one budget
/// is never replayed under another.
#[test]
fn per_request_budget_overrides_partition_the_cache() {
    let sigma = eqsql_deps::parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
    let solver = Solver::builder(sigma, schema).build();
    let q = parse_query("q(X) :- a(X)").unwrap();
    let mk = |max_steps: Option<usize>| Request::Equivalent {
        q1: q.clone(),
        q2: q.clone(),
        opts: RequestOpts { max_steps, ..RequestOpts::default() },
    };
    solver.decide(&mk(None)).unwrap();
    let misses_default = solver.stats().cache.misses;
    // Same budgets again: pure hits.
    solver.decide(&mk(None)).unwrap();
    assert_eq!(solver.stats().cache.misses, misses_default);
    // Overridden budget: a different context, so a fresh miss.
    solver.decide(&mk(Some(777))).unwrap();
    assert!(solver.stats().cache.misses > misses_default);
}

/// A guard that never fires is invisible: on the randomized suite, a
/// Solver run under an effectively infinite deadline (and a live, never-
/// cancelled handle) is *step-identical* to an unguarded Solver — same
/// verdicts, same total chase steps, same per-decision hit/miss
/// attribution, same resident cache entries. The guard only ever decides
/// whether a run finishes, never what it computes.
#[test]
fn an_idle_guard_is_step_identical_to_no_guard() {
    use eqsql_service::{BatchOptions, Cancel};
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(0x501E);
    let guarded_opts = BatchOptions {
        cancel: Some(Cancel::new()),
        deadline_ms: Some(1000 * 60 * 60 * 24),
        ..BatchOptions::default()
    };
    for round in 0..150 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 },
        );
        let params = QueryParams {
            atoms: 2 + (round % 3),
            vars: 4,
            const_prob: 0.1,
            const_domain: 3,
            max_head: 2,
        };
        let q1 = random_query(&mut rng, &schema, &params);
        let q2 = if rng.gen_bool(0.5) {
            rename_isomorphic(&mut rng, &q1)
        } else {
            random_query(&mut rng, &schema, &params)
        };
        let batch: Vec<Request> = [Semantics::Set, Semantics::Bag, Semantics::BagSet]
            .into_iter()
            .map(|sem| Request::Equivalent {
                q1: q1.clone(),
                q2: q2.clone(),
                opts: RequestOpts::with_sem(sem),
            })
            .collect();
        let plain = Solver::builder(sigma.clone(), schema.clone()).build();
        let guarded = Solver::builder(sigma, schema.clone()).build();
        let a = plain.decide_all(&batch);
        let b = guarded.decide_all_with(&batch, &guarded_opts);
        for (va, vb) in a.verdicts.iter().zip(b.verdicts.iter()) {
            // Compare by answer kind (substitution maps Debug-print in
            // nondeterministic order; the step/hit/miss equalities below
            // pin the computations themselves).
            let kind = |v: &Result<eqsql_service::Verdict, Error>| match v {
                Ok(v) => v.answer.label().to_string(),
                Err(e) => format!("{e:?}"),
            };
            assert_eq!(kind(va), kind(vb), "round {round}: verdicts diverge under an idle guard");
        }
        assert_eq!(a.stats.chase_steps, b.stats.chase_steps, "round {round}: step counts diverge");
        assert_eq!(a.stats.cache_hits, b.stats.cache_hits, "round {round}");
        assert_eq!(a.stats.cache_misses, b.stats.cache_misses, "round {round}");
        assert_eq!(
            plain.stats().cache.entries,
            guarded.stats().cache.entries,
            "round {round}: resident cache entries diverge"
        );
    }
}

/// Engine knobs thread through the façade: delta-seeded and probed
/// Solvers must return the same verdicts as the reference engine (delta
/// terminals are only Σ-equivalent, so the two populations get distinct
/// cache contexts — sharing one cache must stay sound).
#[test]
fn engine_opts_thread_through_without_changing_verdicts() {
    use eqsql_chase::EngineOpts;
    let schema = schema();
    let config = ChaseConfig::default();
    let mut rng = StdRng::seed_from_u64(0xDE17A);
    for round in 0..30 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 },
        );
        let params =
            QueryParams { atoms: 3, vars: 4, const_prob: 0.1, const_domain: 3, max_head: 2 };
        let q1 = random_query(&mut rng, &schema, &params);
        let q2 = if rng.gen_bool(0.5) {
            rename_isomorphic(&mut rng, &q1)
        } else {
            random_query(&mut rng, &schema, &params)
        };
        let reference = Solver::builder(sigma.clone(), schema.clone()).build();
        let cache = std::sync::Arc::clone(reference.cache());
        for opts in [EngineOpts::delta_seeded(), EngineOpts::with_probes(4)] {
            let tuned = Solver::builder(sigma.clone(), schema.clone())
                .engine_opts(opts)
                .cache(std::sync::Arc::clone(&cache))
                .build();
            for sem in [Semantics::Set, Semantics::Bag, Semantics::BagSet] {
                let req = Request::Equivalent {
                    q1: q1.clone(),
                    q2: q2.clone(),
                    opts: RequestOpts::with_sem(sem),
                };
                let want = sigma_equivalent(sem, &q1, &q2, &sigma, &schema, &config);
                assert_eq!(
                    equiv_outcome(&tuned.decide(&req)),
                    want,
                    "round {round} ({sem}): tuned engine disagrees on {q1} vs {q2}"
                );
            }
        }
    }
}
