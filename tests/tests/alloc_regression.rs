//! Allocation-regression guard for the flat-arena chase path.
//!
//! The point of the arena refactor (`eqsql_cq::arena`) is that the warm
//! chase step touches the allocator **zero** times: terms are `u32` ids,
//! candidate scans sweep columnar `Vec<u32>`s, search state lives in
//! reusable frames, and the conclusion-extension check seeds through a
//! precompiled map instead of a closure over a `Subst`. This binary
//! installs a counting global allocator and asserts exactly that on the
//! Appendix-H `m = 4` fixture: after one warming pass, a full
//! scan-every-dependency pass over the terminal body (the work of a chase
//! step that finds nothing left to do) performs **no** heap allocation.
//!
//! The test lives alone in its own integration-test binary: libtest runs
//! tests in one process, and any concurrent test thread would pollute the
//! global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// [`System`] plus a global allocation counter (deallocations are free —
/// the assertion is about acquiring memory on the hot path).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use eqsql_chase::{set_chase, BodyIndex, ChaseConfig};
use eqsql_cq::{ArenaFrame, ArenaPlan, EqOp, SeedMap, Var};
use eqsql_deps::Dependency;
use eqsql_gen::appendix_h_instance;

/// One dependency's compiled search machinery, mirroring what the engine
/// keeps per dependency (`DepPlans` + `DepFrames` are private to
/// `eqsql_chase::engine`, so the test rebuilds them from the public arena
/// API — which is also what pins that API as sufficient).
struct Compiled {
    premise: ArenaPlan,
    extension: Option<ArenaPlan>,
    ext_seed: SeedMap,
    egd_eq: Option<(EqOp, EqOp)>,
    pf: ArenaFrame,
    ef: ArenaFrame,
}

/// Scans every dependency against the index exactly like an engine round
/// that finds nothing applicable: premise search with the tgd extension
/// check (or egd equality check) threaded in. Returns the number of
/// premise matches examined, to prove the pass did real work.
fn scan_pass(index: &BodyIndex, compiled: &mut [Compiled]) -> u64 {
    let mut examined = 0u64;
    for c in compiled.iter_mut() {
        let Compiled { premise, extension, ext_seed, egd_eq, pf, ef } = c;
        pf.reset(premise.slot_count());
        match extension {
            Some(ext) => {
                premise.search(index.arena(), pf, &mut |slots| {
                    examined += 1;
                    ef.reset(ext.slot_count());
                    ef.seed_from(ext_seed, slots);
                    assert!(
                        ext.has_match(index.arena(), ef),
                        "terminal body has an unwitnessed tgd premise match"
                    );
                    true
                });
            }
            None => {
                let (lhs, rhs) = egd_eq.expect("egd equality sides");
                premise.search(index.arena(), pf, &mut |slots| {
                    examined += 1;
                    assert!(
                        lhs.resolve(index.arena(), slots) == rhs.resolve(index.arena(), slots),
                        "terminal body has an egd violation"
                    );
                    true
                });
            }
        }
    }
    examined
}

/// A warm no-fire chase step on the Appendix-H m=4 terminal performs zero
/// heap allocations in the arena path.
#[test]
fn warm_chase_step_is_allocation_free() {
    let inst = appendix_h_instance(4);
    let cfg = ChaseConfig { max_steps: 20_000, max_atoms: 20_000 };
    let terminal = set_chase(&inst.query, &inst.sigma, &cfg).unwrap();
    assert!(!terminal.failed);

    // Build the persistent index and compile every dependency against its
    // arena, exactly as the engine does at run start.
    let mut index = BodyIndex::new(&terminal.query.body);
    let mut compiled: Vec<Compiled> = inst
        .sigma
        .iter()
        .map(|dep| {
            let premise = ArenaPlan::new(dep.lhs(), index.arena_mut());
            match dep {
                Dependency::Tgd(t) => {
                    let universal: Vec<Var> = t.universal_vars().into_iter().collect();
                    let ext =
                        ArenaPlan::optimized_with_stats(&t.rhs, &universal, index.arena_mut());
                    let ext_seed = ext.seed_map_from(&premise);
                    Compiled {
                        premise,
                        extension: Some(ext),
                        ext_seed,
                        egd_eq: None,
                        pf: ArenaFrame::new(),
                        ef: ArenaFrame::new(),
                    }
                }
                Dependency::Egd(e) => {
                    let lhs = premise.eq_op(&e.eq.0, index.arena_mut());
                    let rhs = premise.eq_op(&e.eq.1, index.arena_mut());
                    Compiled {
                        premise,
                        extension: None,
                        ext_seed: SeedMap::new(),
                        egd_eq: Some((lhs, rhs)),
                        pf: ArenaFrame::new(),
                        ef: ArenaFrame::new(),
                    }
                }
            }
        })
        .collect();

    // Warming pass: frames size themselves, after which nothing grows.
    let warm = scan_pass(&index, &mut compiled);
    assert!(warm > 0, "the Appendix-H terminal must exercise the scan");

    // The measured pass: a full nothing-to-do engine round, zero allocs.
    let before = ALLOCS.load(Ordering::SeqCst);
    let measured = scan_pass(&index, &mut compiled);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(measured, warm, "warm and measured passes diverged");
    assert_eq!(
        after - before,
        0,
        "warm arena chase step allocated {} times (examined {measured} premise matches)",
        after - before
    );
}
