//! E13 — soundness and completeness of the C&B family (Theorems A.1, 6.4,
//! K.1, K.2) on instances whose full reformulation sets are known, plus
//! engine validation of every returned reformulation.

// The deprecated convenience entry points remain the differential oracle
// for the Solver suite; this legacy-surface test keeps exercising them.
#![allow(deprecated)]

use eqsql_chase::ChaseConfig;
use eqsql_core::cnb::{cnb, contains_isomorph, CnbOptions};
use eqsql_core::minimality::is_sigma_minimal;
use eqsql_core::problem::{ReformulationProblem, Solutions};
use eqsql_core::{sigma_equivalent, Semantics};
use eqsql_cq::{parse_query, Predicate};
use eqsql_deps::parse_dependencies;
use eqsql_gen::db::{repaired_database, DbParams};
use eqsql_integration_tests::{schema_4_1, sigma_4_1};
use eqsql_relalg::eval::eval;
use eqsql_relalg::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> ChaseConfig {
    ChaseConfig::default()
}
fn opts() -> CnbOptions {
    CnbOptions::default()
}

#[test]
fn example_4_1_reformulation_sets_per_semantics() {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let q_pru = parse_query("q(X) :- p(X,Y), r(X), u(X,U)").unwrap();

    // Set semantics: the unique Σ-minimal reformulation of Q1 is Q4.
    let set = cnb(Semantics::Set, &q1, &sigma, &schema, &cfg(), &opts()).unwrap();
    assert_eq!(set.reformulations.len(), 1);
    assert!(contains_isomorph(&set, &q4));

    // Bag semantics: the bag-valued r/u subgoals must stay.
    let bag = cnb(Semantics::Bag, &q1, &sigma, &schema, &cfg(), &opts()).unwrap();
    assert_eq!(bag.reformulations.len(), 1);
    assert!(contains_isomorph(&bag, &q_pru));

    // Bag-set semantics: u stays (it multiplies assignment counts — the
    // paper's D with two u-tuples), but r IS droppable: σ3 is a full tgd,
    // sound under bag-set chase, and BS counts assignments rather than
    // stored copies.
    let q_pu = parse_query("q(X) :- p(X,Y), u(X,U)").unwrap();
    let bs = cnb(Semantics::BagSet, &q1, &sigma, &schema, &cfg(), &opts()).unwrap();
    assert_eq!(bs.reformulations.len(), 1);
    assert!(
        contains_isomorph(&bs, &q_pu),
        "got {:?}",
        bs.reformulations.iter().map(|q| q.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn every_output_is_equivalent_and_minimal() {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let result = cnb(sem, &q2, &sigma, &schema, &cfg(), &opts()).unwrap();
        assert!(!result.reformulations.is_empty(), "{sem}: no reformulations");
        for r in &result.reformulations {
            assert!(
                sigma_equivalent(sem, r, &q2, &sigma, &schema, &cfg()).is_equivalent(),
                "{sem}: output {r} not equivalent"
            );
            assert!(
                is_sigma_minimal(r, &sigma, &schema, sem, &cfg()).unwrap(),
                "{sem}: output {r} not Σ-minimal"
            );
        }
    }
}

#[test]
fn outputs_validated_by_engine_on_random_models() {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
    let mut rng = StdRng::seed_from_u64(0xCB);
    for sem in [Semantics::Bag, Semantics::BagSet] {
        let result = cnb(sem, &q2, &sigma, &schema, &cfg(), &opts()).unwrap();
        let mut models = 0;
        while models < 4 {
            let Some(db) = repaired_database(
                &mut rng,
                &schema,
                &sigma,
                &DbParams { tuples_per_relation: 3, domain: 4, ..DbParams::default() },
                &cfg(),
            ) else {
                continue;
            };
            let ok = match sem {
                Semantics::Bag => db.are_set_valued(&schema.set_valued_relations()),
                _ => db.is_set_valued(),
            };
            if !ok {
                continue;
            }
            models += 1;
            let expected = eval(&q2, &db, sem).unwrap();
            for r in &result.reformulations {
                let got = eval(r, &db, sem).unwrap();
                assert_eq!(expected.sorted(), got.sorted(), "{sem}: {r} differs on\n{db}");
            }
        }
    }
}

#[test]
fn completeness_on_symmetric_inclusions() {
    // a <-> b <-> c: under set semantics the minimal reformulations of
    // q(X) :- a(X) are exactly {a}, {b}, {c}.
    let sigma = parse_dependencies("a(X) -> b(X). b(X) -> c(X). c(X) -> a(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1)]);
    let q = parse_query("q(X) :- a(X)").unwrap();
    let r = cnb(Semantics::Set, &q, &sigma, &schema, &cfg(), &opts()).unwrap();
    let rendered: Vec<String> = r.reformulations.iter().map(|q| q.to_string()).collect();
    assert_eq!(r.reformulations.len(), 3, "got {rendered:?}");
    for rel in ["a", "b", "c"] {
        assert!(
            r.reformulations.iter().any(|f| f.count_pred(Predicate::new(rel)) == 1),
            "missing single-{rel} reformulation: {rendered:?}"
        );
    }
}

#[test]
fn aggregate_problem_class_end_to_end() {
    // Theorem K.2 shape: max admits the dept-drop; count over a bag join
    // does not admit dropping the bag atom.
    let sigma = parse_dependencies(
        "emp(I,D,S) -> dept(D).\n\
         emp(I1,D1,S1) & emp(I1,D2,S2) -> D1 = D2.",
    )
    .unwrap();
    let mut schema = Schema::all_bags(&[("emp", 3), ("dept", 1), ("audit", 1)]);
    schema.mark_set_valued(Predicate::new("emp"));
    schema.mark_set_valued(Predicate::new("dept"));

    let maxq =
        eqsql_cq::parser::parse_aggregate_query("m(D, max(S)) :- emp(I,D,S), dept(D)").unwrap();
    let p = ReformulationProblem::aggregate(schema.clone(), maxq, sigma.clone());
    let Solutions::Agg(sol) = p.solve().unwrap() else { panic!() };
    assert!(sol.reformulations.iter().any(|q| q.body.len() == 1));

    let countq =
        eqsql_cq::parser::parse_aggregate_query("c(D, count(*)) :- emp(I,D,S), audit(I)").unwrap();
    let p2 = ReformulationProblem::aggregate(schema, countq, sigma);
    let Solutions::Agg(sol2) = p2.solve().unwrap() else { panic!() };
    // audit must survive in every reformulation.
    assert!(sol2
        .reformulations
        .iter()
        .all(|q| q.body.iter().any(|a| a.pred == Predicate::new("audit"))));
}
