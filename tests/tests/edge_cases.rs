//! Edge cases and failure injection across the stack: zero-ary
//! predicates, constants in heads, budget exhaustion, unsatisfiable
//! queries, hom-explosion guards, and the Theorem 5.1 uniqueness property
//! under random Σ permutations.

// The deprecated convenience entry points remain the differential oracle
// for the Solver suite; this legacy-surface test keeps exercising them.
#![allow(deprecated)]

use eqsql_chase::{set_chase, sound_chase, ChaseConfig, ChaseError};
use eqsql_core::cnb::{cnb, CnbOptions};
use eqsql_core::{sigma_equivalent, EquivOutcome, Semantics};
use eqsql_cq::{are_isomorphic, parse_query};
use eqsql_deps::parse_dependencies;
use eqsql_integration_tests::{schema_4_1, sigma_4_1};
use eqsql_relalg::eval::{eval_bag, eval_set};
use eqsql_relalg::{Database, Schema, Tuple};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[test]
fn zero_ary_predicates_work_end_to_end() {
    // Parsing, evaluation, chase.
    let q = parse_query("q(X) :- p(X), flag()").unwrap();
    let mut db = Database::new().with_ints("p", &[[1], [2]]);
    db.insert("flag", Tuple::new(vec![]), 1);
    let ans = eval_bag(&q, &db);
    assert_eq!(ans.len(), 2);
    // Without the flag fact, empty.
    let db2 = Database::new().with_ints("p", &[[1]]);
    assert!(eval_bag(&q, &db2).is_empty());
    // Chase with a 0-ary conclusion.
    let sigma = parse_dependencies("p(X) -> flag().").unwrap();
    let chased =
        set_chase(&parse_query("q(X) :- p(X)").unwrap(), &sigma, &ChaseConfig::default()).unwrap();
    assert_eq!(chased.query.body.len(), 2);
}

#[test]
fn constants_in_heads_and_bodies() {
    let q1 = parse_query("q(X, 7) :- p(X, 7)").unwrap();
    let q2 = parse_query("q(X, 7) :- p(X, Y)").unwrap();
    let schema = Schema::all_bags(&[("p", 2)]);
    // Not set-equivalent: q1 filters on 7.
    let v = sigma_equivalent(
        Semantics::Set,
        &q1,
        &q2,
        &eqsql_deps::DependencySet::new(),
        &schema,
        &ChaseConfig::default(),
    );
    assert_eq!(v, EquivOutcome::NotEquivalent);
    // Engine agrees on a database where only q2 fires: q1 needs p(_, 7).
    let db = Database::new().with_ints("p", &[[1, 8]]);
    let a1 = eval_set(&q1, &db).unwrap();
    let a2 = eval_set(&q2, &db).unwrap();
    assert!(a1.is_empty());
    assert_eq!(a2.len(), 1); // q2 still emits (1, 7)
    assert_ne!(a1, a2);
}

#[test]
fn chase_budget_exhaustion_surfaces_cleanly_everywhere() {
    let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
    let schema = Schema::all_bags(&[("e", 2)]);
    let q = parse_query("q(X) :- e(X,Y)").unwrap();
    let tiny = ChaseConfig::with_max_steps(5);
    // set chase
    assert!(matches!(set_chase(&q, &sigma, &tiny), Err(ChaseError::BudgetExhausted { .. })));
    // Sound chase: Set and BagSet must hit the budget (the latter inside
    // the assignment-fixing test-query chase). Under Bag semantics the
    // step is refused *earlier* — `e` is bag-valued, so Theorem 4.1's
    // set-valuedness condition rejects it before any chasing — and the
    // sound chase terminates with the query unchanged. (Sound chase can
    // terminate even where set chase does not; Proposition 5.1 only needs
    // the converse.)
    for sem in [Semantics::Set, Semantics::BagSet] {
        assert!(sound_chase(sem, &q, &sigma, &schema, &tiny).is_err(), "{sem}");
    }
    let bag = sound_chase(Semantics::Bag, &q, &sigma, &schema, &tiny).unwrap();
    assert!(are_isomorphic(&bag.query, &q));
    // equivalence tests degrade to Unknown
    let v = sigma_equivalent(Semantics::Set, &q, &q, &sigma, &schema, &tiny);
    assert!(matches!(v, EquivOutcome::Unknown(_)));
    // C&B propagates the error
    assert!(cnb(Semantics::Set, &q, &sigma, &schema, &tiny, &CnbOptions::default()).is_err());
}

#[test]
fn atom_budget_guards_exploding_queries() {
    // Weakly acyclic but wide: p spawns many conclusions; tiny atom cap.
    let sigma = parse_dependencies("p(X) -> a(X,Z). a(X,Z) -> b(X,W). b(X,W) -> c(X,V).").unwrap();
    let q = parse_query("q(X) :- p(X)").unwrap();
    let cfg = ChaseConfig { max_steps: 100, max_atoms: 2 };
    assert!(matches!(set_chase(&q, &sigma, &cfg), Err(ChaseError::QueryTooLarge { .. })));
}

#[test]
fn unsatisfiable_queries_flow_through_every_api() {
    let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
    let schema = Schema::all_bags(&[("s", 2)]);
    let dead = parse_query("q(X) :- s(X,1), s(X,2)").unwrap();
    let cfg = ChaseConfig::default();
    // chase reports failure, equivalence treats two dead queries as equal
    let c = set_chase(&dead, &sigma, &cfg).unwrap();
    assert!(c.failed);
    let dead2 = parse_query("q(X) :- s(X,8), s(X,9)").unwrap();
    assert!(sigma_equivalent(Semantics::Bag, &dead, &dead2, &sigma, &schema, &cfg).is_equivalent());
    // engine: a Σ-model can contain neither pattern, answers both empty
    let db = Database::new().with_ints("s", &[[1, 1]]);
    assert!(eval_bag(&dead, &db).is_empty());
    assert!(eval_bag(&dead2, &db).is_empty());
}

#[test]
fn self_join_heavy_queries_do_not_blow_up_iso() {
    // 8 atoms over one predicate with interlocking variables: the
    // isomorphism test's backtracking must finish fast.
    let a = parse_query(
        "q(X0) :- p(X0,X1), p(X1,X2), p(X2,X3), p(X3,X4), p(X4,X5), p(X5,X6), p(X6,X7), p(X7,X0)",
    )
    .unwrap();
    let b = parse_query(
        "q(Y0) :- p(Y7,Y0), p(Y0,Y1), p(Y1,Y2), p(Y2,Y3), p(Y3,Y4), p(Y4,Y5), p(Y5,Y6), p(Y6,Y7)",
    )
    .unwrap();
    assert!(are_isomorphic(&a, &b));
    // Breaking one edge breaks isomorphism.
    let c = parse_query(
        "q(Y0) :- p(Y7,Y0), p(Y0,Y1), p(Y1,Y2), p(Y2,Y3), p(Y3,Y4), p(Y4,Y5), p(Y5,Y6), p(Y6,Y6)",
    )
    .unwrap();
    assert!(!are_isomorphic(&a, &c));
}

/// Theorem 5.1 / G.1 as a property: the sound chase result is invariant
/// (up to isomorphism) under permutations of Σ.
#[test]
fn sound_chase_unique_under_sigma_permutations() {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let cfg = ChaseConfig::default();
    let queries = [
        parse_query("q4(X) :- p(X,Y)").unwrap(),
        parse_query("q(X) :- p(X,Y), u(X,Z)").unwrap(),
        parse_query("q(X,Y) :- p(X,Y), s(X,W)").unwrap(),
    ];
    for q in &queries {
        for sem in [Semantics::Bag, Semantics::BagSet] {
            let baseline = sound_chase(sem, q, &sigma, &schema, &cfg).unwrap().query;
            let mut rng = rand::rngs::StdRng::seed_from_u64(17);
            for _ in 0..6 {
                let mut deps: Vec<_> = sigma.iter().cloned().collect();
                deps.shuffle(&mut rng);
                let permuted = eqsql_deps::DependencySet::from_vec(deps);
                let alt = sound_chase(sem, q, &permuted, &schema, &cfg).unwrap().query;
                assert!(are_isomorphic(&baseline, &alt), "{sem} {q}: {baseline} vs {alt}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parser round-trip: display then re-parse yields the same query.
    #[test]
    fn query_display_round_trips(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let schema = Schema::all_bags(&[("p", 2), ("s", 3), ("r", 1)]);
        let q = eqsql_gen::random_query(
            &mut rng,
            &schema,
            &eqsql_gen::queries::QueryParams::default(),
        );
        let reparsed = parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// Dependency display round-trips through the dependency parser.
    #[test]
    fn sigma_display_round_trips(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let schema = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 3)]);
        let sigma = eqsql_gen::random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &eqsql_gen::sigma::SigmaParams::default(),
        );
        let reparsed = parse_dependencies(&sigma.to_string()).unwrap();
        prop_assert_eq!(sigma, reparsed);
    }
}
