//! Differential tests: the incremental indexed chase engine against the
//! naive reference driver ([`eqsql_chase::reference`]).
//!
//! The engine is required to reproduce the reference's observable behavior
//! exactly: isomorphic terminal queries (the sound-chase uniqueness
//! theorems 5.1/G.1 make isomorphism the right equivalence; for raw set
//! chase the two drivers fire identical step sequences, so isomorphism
//! holds there too), identical step counts, identical `failed` flags, and
//! identical `ChaseError` variants on budget exhaustion. Families covered:
//! the Appendix H exponential lower-bound instances, chain queries,
//! egd-failure inputs, budget-exhaustion inputs, and randomized weakly
//! acyclic Σ / random queries from `eqsql_gen`.

use eqsql_chase::reference::{chase_with_policy_reference, set_chase_reference};
use eqsql_chase::step::DedupPolicy;
use eqsql_chase::{is_assignment_fixing, set_chase, sound_chase, ChaseConfig, ChaseError, Chased};
use eqsql_cq::{are_isomorphic, parse_query, Atom, CqQuery, Predicate, Term};
use eqsql_deps::regularize::regularize_set;
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_gen::appendix_h::{appendix_h_instance, expected_chase_size};
use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::sigma::{random_weakly_acyclic_sigma, SigmaParams};
use eqsql_relalg::{Schema, Semantics};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts that two chase outcomes agree observably.
fn assert_agree(
    label: &str,
    indexed: &Result<Chased, ChaseError>,
    reference: &Result<Chased, ChaseError>,
) {
    match (indexed, reference) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.failed, b.failed, "{label}: failed flags diverge");
            assert_eq!(a.steps, b.steps, "{label}: step counts diverge");
            assert_eq!(
                a.query.body.len(),
                b.query.body.len(),
                "{label}: body sizes diverge\nindexed:   {}\nreference: {}",
                a.query,
                b.query
            );
            if !a.failed {
                assert!(
                    are_isomorphic(&a.query, &b.query),
                    "{label}: terminal queries not isomorphic\nindexed:   {}\nreference: {}",
                    a.query,
                    b.query
                );
            }
        }
        (Err(ea), Err(eb)) => {
            assert_eq!(ea, eb, "{label}: error variants diverge");
        }
        (a, b) => {
            panic!("{label}: one engine erred, the other did not\nindexed: {a:?}\nreference: {b:?}")
        }
    }
}

fn run_set_both(q: &CqQuery, sigma: &DependencySet, cfg: &ChaseConfig, label: &str) {
    let indexed = set_chase(q, sigma, cfg);
    let reference = set_chase_reference(q, sigma, cfg);
    assert_agree(label, &indexed, &reference);
}

/// The sound chase re-run on the reference driver (mirrors
/// `eqsql_chase::sound::sound_chase`'s admission and dedup wiring).
fn sound_chase_reference(
    sem: Semantics,
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    cfg: &ChaseConfig,
) -> Result<Chased, ChaseError> {
    let sigma_reg = regularize_set(sigma);
    match sem {
        Semantics::Set => set_chase_reference(q, &sigma_reg, cfg),
        Semantics::BagSet => chase_with_policy_reference(
            q,
            &sigma_reg,
            cfg,
            &DedupPolicy::All,
            &mut |tgd, cur, h| is_assignment_fixing(cur, &sigma_reg, tgd, h, cfg).unwrap_or(false),
        ),
        Semantics::Bag => {
            let set_preds: std::collections::HashSet<Predicate> =
                schema.set_valued_relations().into_iter().collect();
            chase_with_policy_reference(
                q,
                &sigma_reg,
                cfg,
                &DedupPolicy::SetValuedOnly(set_preds.clone()),
                &mut |tgd, cur, h| {
                    tgd.rhs.iter().all(|a| set_preds.contains(&a.pred))
                        && is_assignment_fixing(cur, &sigma_reg, tgd, h, cfg).unwrap_or(false)
                },
            )
        }
    }
}

fn chain_query(n: usize) -> CqQuery {
    let body: Vec<Atom> = (0..n)
        .map(|i| {
            Atom::new("e", vec![Term::var(&format!("X{i}")), Term::var(&format!("X{}", i + 1))])
        })
        .collect();
    CqQuery::new("q", vec![Term::var("X0")], body)
}

#[test]
fn appendix_h_set_chase_agrees() {
    let cfg = ChaseConfig { max_steps: 20_000, max_atoms: 20_000 };
    for m in 2..=4 {
        let inst = appendix_h_instance(m);
        let indexed = set_chase(&inst.query, &inst.sigma, &cfg);
        let reference = set_chase_reference(&inst.query, &inst.sigma, &cfg);
        // Both match the closed form, not just each other.
        assert_eq!(indexed.as_ref().unwrap().query.body.len(), expected_chase_size(m));
        assert_agree(&format!("appendix_h m={m}"), &indexed, &reference);
    }
}

#[test]
fn appendix_h_sound_chase_agrees() {
    let cfg = ChaseConfig { max_steps: 20_000, max_atoms: 20_000 };
    for m in 2..=3 {
        let inst = appendix_h_instance(m);
        for sem in [Semantics::Bag, Semantics::BagSet] {
            let indexed =
                sound_chase(sem, &inst.query, &inst.sigma, &inst.schema, &cfg).map(|s| s.chased);
            let reference =
                sound_chase_reference(sem, &inst.query, &inst.sigma, &inst.schema, &cfg);
            assert_agree(&format!("appendix_h sound {sem} m={m}"), &indexed, &reference);
        }
    }
}

#[test]
fn chain_queries_agree() {
    let sigma = parse_dependencies(
        "e(X,Y) -> n(X).\n\
         e(X,Y) -> n(Y).\n\
         n(X) -> m(X,Z).\n\
         m(X,Z1) & m(X,Z2) -> Z1 = Z2.",
    )
    .unwrap();
    let cfg = ChaseConfig { max_steps: 50_000, max_atoms: 50_000 };
    for n in [2usize, 4, 8, 16] {
        run_set_both(&chain_query(n), &sigma, &cfg, &format!("chain n={n}"));
    }
}

#[test]
fn egd_failure_cases_agree() {
    let cfg = ChaseConfig::default();
    let cases = [
        // Direct constant clash.
        ("q(X) :- s(X,3), s(X,4)", "s(X,Y) & s(X,Z) -> Y = Z."),
        // Clash reached only after a tgd step introduces the witness.
        (
            "q(X) :- p(X,3), p(X,4)",
            "p(X,Y) -> t(X,Y).\n\
             t(X,Y) & t(X,Z) -> Y = Z.",
        ),
        // Clash via transitive variable merging.
        (
            "q(X) :- s(X,A), s(X,B), r(A,3), r(B,4), r(C,D)",
            "s(X,Y) & s(X,Z) -> Y = Z.\n\
             r(X,Y) & r(X,Z) -> Y = Z.",
        ),
    ];
    for (q, sigma) in cases {
        let q = parse_query(q).unwrap();
        let sigma = parse_dependencies(sigma).unwrap();
        let indexed = set_chase(&q, &sigma, &cfg);
        assert!(indexed.as_ref().unwrap().failed, "expected failure on {q}");
        run_set_both(&q, &sigma, &cfg, &format!("egd failure {q}"));
    }
}

#[test]
fn budget_exhaustion_agrees() {
    // Non-weakly-acyclic Σ: both drivers must report the same
    // BudgetExhausted { steps }.
    let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
    let q = parse_query("q(X) :- e(X,Y)").unwrap();
    for budget in [1usize, 5, 23, 50] {
        run_set_both(&q, &sigma, &ChaseConfig::with_max_steps(budget), "budget");
    }
    // Atom-budget exhaustion: same QueryTooLarge { atoms }.
    let wide = parse_dependencies("p(X) -> a(X,Z). a(X,Z) -> b(X,W). b(X,W) -> c(X,V).").unwrap();
    let qp = parse_query("q(X) :- p(X)").unwrap();
    run_set_both(&qp, &wide, &ChaseConfig { max_steps: 100, max_atoms: 2 }, "atom budget");
}

#[test]
fn example_4_1_all_semantics_agree() {
    let sigma = eqsql_integration_tests::sigma_4_1();
    let schema = eqsql_integration_tests::schema_4_1();
    let cfg = ChaseConfig::default();
    let queries = [
        "q4(X) :- p(X,Y)",
        "q(X) :- p(X,Y), u(X,Z)",
        "q(X,Y) :- p(X,Y), s(X,W)",
        "q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)",
    ];
    for q in queries {
        let q = parse_query(q).unwrap();
        for sem in [Semantics::Set, Semantics::Bag, Semantics::BagSet] {
            let indexed = sound_chase(sem, &q, &sigma, &schema, &cfg).map(|s| s.chased);
            let reference = sound_chase_reference(sem, &q, &sigma, &schema, &cfg);
            assert_agree(&format!("example 4.1 {sem} {q}"), &indexed, &reference);
        }
    }
}

#[test]
fn random_weakly_acyclic_families_agree() {
    // eqsql_gen's layered generator guarantees termination; sweep seeds
    // over schema shapes and compare engines on every draw.
    let schemas = [
        Schema::all_bags(&[("a", 2), ("b", 2), ("c", 2)]),
        Schema::all_bags(&[("a", 1), ("b", 2), ("c", 3), ("d", 2)]),
        Schema::all_bags(&[("a", 2), ("b", 1), ("c", 2), ("d", 1), ("e", 2)]),
    ];
    let cfg = ChaseConfig::default();
    let mut checked = 0usize;
    for (si, schema) in schemas.iter().enumerate() {
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed * 31 + si as u64);
            let sigma = random_weakly_acyclic_sigma(
                &mut rng,
                schema,
                &SigmaParams { tgds: 4, egds: 2, reuse_prob: 0.5 },
            );
            let q = random_query(
                &mut rng,
                schema,
                &QueryParams { atoms: 3, vars: 4, const_prob: 0.15, const_domain: 3, max_head: 2 },
            );
            run_set_both(&q, &sigma, &cfg, &format!("random schema{si} seed{seed}"));
            checked += 1;
        }
    }
    assert_eq!(checked, 75);
}

#[test]
fn random_dedup_policies_agree() {
    // The bag-semantics dedup policy (set-valued relations only) must
    // behave identically in the incremental fingerprint dedup and the
    // reference's whole-body re-canonicalization.
    let mut schema = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 2)]);
    schema.mark_set_valued(Predicate::new("b"));
    let set_preds: std::collections::HashSet<Predicate> =
        schema.set_valued_relations().into_iter().collect();
    let cfg = ChaseConfig::default();
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let sigma = random_weakly_acyclic_sigma(&mut rng, &schema, &SigmaParams::default());
        let q = random_query(&mut rng, &schema, &QueryParams::default());
        for dedup in
            [DedupPolicy::All, DedupPolicy::None, DedupPolicy::SetValuedOnly(set_preds.clone())]
        {
            let indexed =
                eqsql_chase::chase_indexed(&q, &sigma, &cfg, &dedup, eqsql_chase::Admission::All);
            let reference =
                chase_with_policy_reference(&q, &sigma, &cfg, &dedup, &mut |_, _, _| true);
            assert_agree(&format!("dedup seed {seed}"), &indexed, &reference);
        }
    }
}
