//! Fault-injection suite for the Solver's robustness layer: deterministic
//! cancellation/deadline/panic faults forced at the Nth guard poll
//! (`FaultPlan`), pinning the ISSUE's acceptance properties —
//!
//! (a) a cancellation or deadline signal aborts the decision within one
//!     engine step of the poll that observed it;
//! (b) a panicking request is isolated to an `Error::Internal` verdict
//!     while the rest of the batch completes;
//! (c) a timed-out/cancelled chase is never memoized: the cache, and the
//!     verdicts and per-decision accounting of every subsequent request,
//!     are identical to a fresh solver's;
//! (d) the bounded admission queue sheds per policy, deterministically,
//!     with accurate counters in `Solver::stats()`.

use eqsql_chase::ChaseConfig;
use eqsql_cq::parse_query;
use eqsql_deps::parse_dependencies;
use eqsql_relalg::{Schema, Semantics};
use eqsql_service::{
    AdmissionConfig, BatchOptions, Cancel, Error, Fault, FaultPlan, Request, RequestOpts,
    RetryPolicy, Solver,
};

/// A weakly acyclic Σ whose chases take a healthy number of steps, so a
/// fault at poll N lands strictly mid-chase.
fn chain_fixture() -> (eqsql_deps::DependencySet, Schema) {
    let sigma = parse_dependencies(
        "a(X) -> b(X).\n\
         b(X) -> c(X).\n\
         c(X) -> d(X).\n\
         d(X) -> e(X).\n\
         e(X) -> f(X).",
    )
    .unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1), ("d", 1), ("e", 1), ("f", 1)]);
    (sigma, schema)
}

fn equiv(q1: &str, q2: &str, opts: RequestOpts) -> Request {
    Request::Equivalent { q1: parse_query(q1).unwrap(), q2: parse_query(q2).unwrap(), opts }
}

/// (a) A forced cancellation at the Nth guard poll surfaces as
/// `Error::Cancelled` carrying a step count no greater than N: the
/// engine polls once per step, so the abort happens within one step of
/// the signal. Same for a forced deadline expiry.
#[test]
fn injected_faults_abort_within_one_step_of_the_signal() {
    let (sigma, schema) = chain_fixture();
    let solver = Solver::builder(sigma.clone(), schema.clone()).build();
    // Unguarded baseline: the full chase takes several steps.
    let baseline = solver
        .decide(&equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", RequestOpts::default()))
        .unwrap();
    assert!(baseline.is_positive());

    for (fault, n) in [(Fault::Cancel, 3), (Fault::Deadline, 2)] {
        // A fresh solver per fault: no warm cache, so the chase really runs.
        let solver = Solver::builder(sigma.clone(), schema.clone()).build();
        let opts = RequestOpts { fault: Some(FaultPlan::new(n, fault)), ..RequestOpts::default() };
        let err = solver.decide(&equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", opts)).unwrap_err();
        let steps = match (fault, &err) {
            (Fault::Cancel, Error::Cancelled { steps }) => *steps,
            (Fault::Deadline, Error::DeadlineExceeded { steps }) => *steps,
            _ => panic!("fault {fault:?} surfaced as {err:?}"),
        };
        assert!(steps as u64 <= n, "{fault:?} at poll {n} aborted only after {steps} steps");
        assert!(err.is_transient());
    }
}

/// (b) One request of a batch panics (forced via `Fault::Panic`); it
/// becomes an `Error::Internal` verdict carrying the panic message, every
/// other request completes normally, and the panic is counted.
#[test]
fn a_panicking_request_is_isolated_from_its_batch() {
    let (sigma, schema) = chain_fixture();
    let solver = Solver::builder(sigma, schema).threads(2).build();
    let poisoned =
        RequestOpts { fault: Some(FaultPlan::new(1, Fault::Panic)), ..RequestOpts::default() };
    let batch = vec![
        equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", RequestOpts::default()),
        equiv("q(X) :- a(X)", "q(X) :- a(X), c(X)", poisoned),
        equiv("q(X) :- b(X)", "q(X) :- b(X), c(X)", RequestOpts::default()),
    ];
    let report = solver.decide_all(&batch);
    assert!(report.verdicts[0].as_ref().unwrap().is_positive());
    assert!(report.verdicts[2].as_ref().unwrap().is_positive());
    match &report.verdicts[1] {
        Err(Error::Internal { message }) => {
            assert!(message.contains("fault injection"), "unexpected message {message:?}")
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(solver.stats().panics, 1);
    // The solver is still fully serviceable: the identical request,
    // without the fault plan, now succeeds.
    let retried = solver
        .decide(&equiv("q(X) :- a(X)", "q(X) :- a(X), c(X)", RequestOpts::default()))
        .unwrap();
    assert!(retried.is_positive());
}

/// (c) A cancelled (or timed-out) chase is never memoized. After the
/// faulted run, the solver's cache and every subsequent verdict — down to
/// the per-decision hit/miss/step accounting — are identical to a fresh
/// solver that never saw the fault.
#[test]
fn faulted_runs_leave_no_trace_in_the_cache() {
    let (sigma, schema) = chain_fixture();
    let requests = vec![
        equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", RequestOpts::default()),
        equiv("q(X) :- a(X), b(X)", "q(X) :- a(X), f(X)", RequestOpts::default()),
    ];

    let faulted = Solver::builder(sigma.clone(), schema.clone()).build();
    for fault in [Fault::Cancel, Fault::Deadline] {
        let opts = RequestOpts { fault: Some(FaultPlan::new(1, fault)), ..RequestOpts::default() };
        let err = faulted.decide(&equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", opts)).unwrap_err();
        assert!(err.is_transient(), "fault {fault:?} surfaced as {err:?}");
    }
    // Nothing was cached by the two dead runs.
    assert_eq!(faulted.stats().cache.entries, 0);

    let fresh = Solver::builder(sigma, schema).build();
    let from_faulted = faulted.decide_all(&requests);
    let from_fresh = fresh.decide_all(&requests);
    for (a, b) in from_faulted.verdicts.iter().zip(from_fresh.verdicts.iter()) {
        // Compare by answer kind (substitution maps inside certificates
        // Debug-print in nondeterministic order; the accounting equalities
        // below pin the computations themselves).
        let kind = |v: &Result<eqsql_service::Verdict, Error>| match v {
            Ok(v) => v.answer.label().to_string(),
            Err(e) => format!("{e:?}"),
        };
        assert_eq!(kind(a), kind(b));
    }
    assert_eq!(from_faulted.stats.chase_steps, from_fresh.stats.chase_steps);
    assert_eq!(from_faulted.stats.cache_hits, from_fresh.stats.cache_hits);
    assert_eq!(from_faulted.stats.cache_misses, from_fresh.stats.cache_misses);
    assert_eq!(faulted.stats().cache.entries, fresh.stats().cache.entries);
}

/// (c, continued) A `deadline_ms = 0` request — "already expired" — fails
/// before doing any work, for every verb; the identical request without
/// the deadline then succeeds against an untouched cache.
#[test]
fn an_expired_deadline_fails_everything_and_caches_nothing() {
    let (sigma, schema) = chain_fixture();
    let solver = Solver::builder(sigma, schema).build();
    let expired = RequestOpts::with_deadline_ms(0);
    let requests = vec![
        equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", expired),
        Request::Minimal { q: parse_query("q(X) :- a(X), b(X)").unwrap(), opts: expired },
        Request::Implies {
            dep: parse_dependencies("a(X) -> f(X).").unwrap().iter().next().unwrap().clone(),
            opts: expired,
        },
    ];
    for req in &requests {
        match solver.decide(req) {
            Err(Error::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    assert_eq!(solver.stats().cache.entries, 0);
    let ok = solver
        .decide(&equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", RequestOpts::default()))
        .unwrap();
    assert!(ok.is_positive());
}

/// A batch whose `Cancel` handle is set before submission: every admitted
/// request is answered `Error::Cancelled` without chasing.
#[test]
fn a_pre_cancelled_batch_is_answered_without_work() {
    let (sigma, schema) = chain_fixture();
    let solver = Solver::builder(sigma, schema).threads(2).build();
    let cancel = Cancel::new();
    cancel.cancel();
    let batch = vec![
        equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", RequestOpts::default()),
        equiv("q(X) :- b(X)", "q(X) :- b(X), c(X)", RequestOpts::default()),
    ];
    let opts = BatchOptions { cancel: Some(cancel), ..BatchOptions::default() };
    let report = solver.decide_all_with(&batch, &opts);
    for v in &report.verdicts {
        assert!(matches!(v, Err(Error::Cancelled { .. })), "got {v:?}");
    }
    assert_eq!(report.stats.chase_steps, 0, "cancelled batch must not chase");
    assert_eq!(solver.stats().cache.entries, 0);
}

/// (d) Bounded admission sheds deterministically per policy — RejectNew
/// keeps the earliest arrivals, CancelOldest the latest — and the shed
/// counters in the report and in `Solver::stats()` are exact.
#[test]
fn admission_queue_sheds_per_policy_with_accurate_counters() {
    let (sigma, schema) = chain_fixture();
    let mk = |i: usize| {
        equiv(
            &format!("q{i}(X) :- a(X)"),
            &format!("q{i}(X) :- a(X), b(X)"),
            RequestOpts::default(),
        )
    };
    let batch: Vec<Request> = (0..5).map(mk).collect();

    let solver = Solver::builder(sigma.clone(), schema.clone()).build();
    let opts =
        BatchOptions { admission: Some(AdmissionConfig::reject_new(2)), ..BatchOptions::default() };
    let report = solver.decide_all_with(&batch, &opts);
    assert_eq!(report.shed, 3);
    assert_eq!(solver.stats().shed, 3);
    for v in &report.verdicts[..2] {
        assert!(v.as_ref().unwrap().is_positive());
    }
    for v in &report.verdicts[2..] {
        assert!(matches!(v, Err(Error::Shed { capacity: 2 })), "got {v:?}");
    }

    let solver = Solver::builder(sigma, schema).build();
    let opts = BatchOptions {
        admission: Some(AdmissionConfig::cancel_oldest(2)),
        ..BatchOptions::default()
    };
    let report = solver.decide_all_with(&batch, &opts);
    assert_eq!(report.shed, 3);
    assert_eq!(solver.stats().shed, 3);
    for v in &report.verdicts[..3] {
        assert!(matches!(v, Err(Error::Shed { capacity: 2 })), "got {v:?}");
    }
    for v in &report.verdicts[3..] {
        assert!(v.as_ref().unwrap().is_positive());
    }
}

/// Retry-with-escalated-budget: a request that exhausts a tiny step
/// budget is re-decided at `budget_multiplier`× and succeeds; the retry is
/// counted, and the memoized exhaustion at the smaller budget stays
/// intact (budgets are part of the cache context).
#[test]
fn budget_exhaustion_retries_with_an_escalated_budget() {
    let (sigma, schema) = chain_fixture();
    // Budget 2 exhausts (the chain needs 5 tgd steps per side); 2 × 4 = 8
    // completes it.
    let solver =
        Solver::builder(sigma, schema).chase_config(ChaseConfig::with_max_steps(2)).build();
    let batch = vec![equiv("q(X) :- a(X)", "q(X) :- a(X), f(X)", RequestOpts::default())];

    // Without retry: exhausted.
    let report = solver.decide_all(&batch);
    assert!(matches!(report.verdicts[0], Err(Error::BudgetExhausted { .. })));

    // With retry: the escalated attempt decides it.
    let opts = BatchOptions {
        retry: Some(RetryPolicy { max_attempts: 2, budget_multiplier: 4 }),
        ..BatchOptions::default()
    };
    let report = solver.decide_all_with(&batch, &opts);
    assert!(report.verdicts[0].as_ref().unwrap().is_positive(), "got {:?}", report.verdicts[0]);
    assert_eq!(solver.stats().retries, 1);

    // The small-budget exhaustion is still memoized (a stable fact): the
    // retry-free path keeps answering from cache.
    let hits_before = solver.stats().cache.hits;
    let report = solver.decide_all(&batch);
    assert!(matches!(report.verdicts[0], Err(Error::BudgetExhausted { .. })));
    assert!(solver.stats().cache.hits > hits_before);
}

/// `Error::BudgetExhausted` stays cacheable — the one stable error class —
/// while the guard errors are not; the request-level `is_transient`
/// mirrors the chase-level `is_cacheable` split.
#[test]
fn the_transient_stable_split_is_consistent_across_layers() {
    use eqsql_chase::ChaseError;
    assert!(ChaseError::BudgetExhausted { steps: 1 }.is_cacheable());
    assert!(ChaseError::QueryTooLarge { atoms: 1 }.is_cacheable());
    assert!(!ChaseError::DeadlineExceeded { steps: 1 }.is_cacheable());
    assert!(!ChaseError::Cancelled { steps: 1 }.is_cacheable());

    assert!(!Error::BudgetExhausted { steps: 1 }.is_transient());
    assert!(!Error::QueryTooLarge { atoms: 1 }.is_transient());
    assert!(Error::DeadlineExceeded { steps: 1 }.is_transient());
    assert!(Error::Cancelled { steps: 1 }.is_transient());
    assert!(Error::Shed { capacity: 1 }.is_transient());
    assert!(Error::internal("x").is_transient());

    // Round trips for the guard errors (the legacy EquivOutcome surface).
    assert_eq!(
        Error::DeadlineExceeded { steps: 4 }.as_chase_error(),
        Some(ChaseError::DeadlineExceeded { steps: 4 })
    );
    assert_eq!(
        Error::Cancelled { steps: 4 }.as_chase_error(),
        Some(ChaseError::Cancelled { steps: 4 })
    );
    assert_eq!(Error::Shed { capacity: 1 }.as_chase_error(), None);
}

/// The expired-deadline path reaches the instance chase and the request
/// file's `deadline_ms=` override too.
#[test]
fn deadlines_cover_instance_chases_and_the_request_format() {
    let sigma = parse_dependencies("p(X,Y) -> s(X,Z).").unwrap();
    let schema = Schema::all_bags(&[("p", 2), ("s", 2)]);
    let solver = Solver::builder(sigma, schema).build();
    let mut db = eqsql_relalg::Database::new();
    db.insert("p", eqsql_relalg::Tuple::ints([1, 2]), 1);
    let req = Request::ChaseInstance { db, opts: RequestOpts::with_deadline_ms(0) };
    assert!(matches!(solver.decide(&req), Err(Error::DeadlineExceeded { .. })));

    let file = eqsql_service::parse_request_file(
        "sigma: p(X,Y) -> s(X,Z).\n\
         pair: set deadline_ms=0 | q(X) :- p(X,Y) | q(X) :- p(X,Y), s(X,Z)",
    )
    .unwrap();
    let Request::Equivalent { opts, .. } = &file.requests[0] else { panic!("expected pair") };
    assert_eq!(opts.deadline_ms, Some(0));
    assert_eq!(opts.sem, Some(Semantics::Set));
}

/// A request killed before doing any useful work — expired at its deadline
/// or shed at admission — still emits a complete trace event with its
/// terminal phase marked: dead requests must be visible in the request
/// log, never silently absent from it.
#[test]
fn dead_requests_still_emit_complete_trace_events() {
    use eqsql_service::{TraceSink, VecSink};
    use std::sync::Arc;
    const PHASE_KEYS: [&str; 8] = [
        "wall_us=",
        "queue_us=",
        "regularize_us=",
        "chase_us=",
        "cache_us=",
        "evidence_us=",
        "attempts=",
        "mem_hits=",
    ];
    let (sigma, schema) = chain_fixture();

    // Deadline-killed: every request of the batch is already expired.
    let sink = Arc::new(VecSink::new());
    let solver = Solver::builder(sigma.clone(), schema.clone())
        .trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .build();
    let batch = vec![
        equiv("q(X) :- a(X)", "q(X) :- a(X), b(X)", RequestOpts::with_deadline_ms(0)),
        equiv("q(X) :- b(X)", "q(X) :- b(X), c(X)", RequestOpts::with_deadline_ms(0)),
    ];
    let report = solver.decide_all(&batch);
    assert!(report.verdicts.iter().all(|v| matches!(v, Err(Error::DeadlineExceeded { .. }))));
    let lines = sink.lines();
    assert_eq!(lines.len(), batch.len(), "every expired request is logged");
    for line in &lines {
        assert!(line.starts_with("event=request "), "{line}");
        assert!(line.contains(" outcome=deadline-exceeded "), "{line}");
        assert!(line.contains(" terminal=deadline "), "{line}");
        for key in PHASE_KEYS {
            assert!(line.contains(&format!(" {key}")), "{line} missing {key}");
        }
    }

    // Shed at admission: RejectNew(1) on a three-request batch sheds two.
    // A shed event's whole (short) life is admission-queue wait.
    let sink = Arc::new(VecSink::new());
    let solver =
        Solver::builder(sigma, schema).trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>).build();
    let batch: Vec<Request> = (0..3)
        .map(|i| {
            equiv(
                &format!("q{i}(X) :- a(X)"),
                &format!("q{i}(X) :- a(X), b(X)"),
                RequestOpts::default(),
            )
        })
        .collect();
    let opts =
        BatchOptions { admission: Some(AdmissionConfig::reject_new(1)), ..BatchOptions::default() };
    let report = solver.decide_all_with(&batch, &opts);
    assert_eq!(report.shed, 2);
    let lines = sink.lines();
    assert_eq!(lines.len(), batch.len(), "every request, shed or decided, is logged");
    let shed: Vec<_> = lines.iter().filter(|l| l.contains(" terminal=shed ")).collect();
    assert_eq!(shed.len(), 2);
    for line in &shed {
        assert!(line.starts_with("event=request "), "{line}");
        assert!(line.contains(" outcome=shed "), "{line}");
        for key in PHASE_KEYS {
            assert!(line.contains(&format!(" {key}")), "{line} missing {key}");
        }
    }
    assert_eq!(lines.iter().filter(|l| l.contains(" terminal=ok ")).count(), 1);
}
