//! E11 — cross-validation of the Σ-equivalence decision procedures
//! against the evaluation engine on seeded random inputs.
//!
//! Soundness direction: whenever the procedure says *equivalent*, the two
//! queries must return identical answers on every sampled database
//! satisfying Σ. Refutation direction: whenever it says *not equivalent*,
//! the counterexample search should usually produce a witness — and any
//! witness found must be genuine.

// The deprecated convenience entry points remain the differential oracle
// for the Solver suite; this legacy-surface test keeps exercising them.
#![allow(deprecated)]

use eqsql_chase::ChaseConfig;
use eqsql_core::counterexample::separating_database;
use eqsql_core::{sigma_equivalent, EquivOutcome, Semantics};
use eqsql_cq::CqQuery;
use eqsql_deps::satisfaction::db_satisfies_all;
use eqsql_gen::db::{repaired_database, DbParams};
use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::sigma::{random_weakly_acyclic_sigma, SigmaParams};
use eqsql_relalg::eval::eval;
use eqsql_relalg::{RelSchema, Schema};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::from_relations([
        RelSchema::bag("a", 2),
        RelSchema::set("b", 2),
        RelSchema::set("c", 2),
        RelSchema::bag("d", 1),
    ])
}

fn admissible(db: &eqsql_relalg::Database, sem: Semantics, schema: &Schema) -> bool {
    match sem {
        Semantics::Bag => db.are_set_valued(&schema.set_valued_relations()),
        _ => db.is_set_valued(),
    }
}

#[test]
fn equivalence_verdicts_hold_on_random_models() {
    let schema = schema();
    let cfg = ChaseConfig::default();
    let mut rng = StdRng::seed_from_u64(0xE05);
    let mut equivalent_pairs = 0usize;
    let mut checked_dbs = 0usize;

    for round in 0..60 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 2, egds: 1, reuse_prob: 0.7 },
        );
        let q1 = random_query(
            &mut rng,
            &schema,
            &QueryParams { atoms: 3, vars: 4, const_prob: 0.05, const_domain: 3, max_head: 2 },
        );
        // Half the rounds compare against a mutated copy, half against an
        // independently drawn query.
        let q2: CqQuery = if round % 2 == 0 {
            let mut m = q1.clone();
            if m.body.len() > 1 {
                m.body.pop();
            }
            if !m.is_safe() {
                continue;
            }
            m
        } else {
            let q = random_query(
                &mut rng,
                &schema,
                &QueryParams { atoms: 3, vars: 4, const_prob: 0.05, const_domain: 3, max_head: 2 },
            );
            if q.head.len() != q1.head.len() {
                continue;
            }
            q
        };

        for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
            match sigma_equivalent(sem, &q1, &q2, &sigma, &schema, &cfg) {
                EquivOutcome::Equivalent => {
                    equivalent_pairs += 1;
                    // Sample Σ-models and compare answers.
                    for _ in 0..5 {
                        let Some(db) = repaired_database(
                            &mut rng,
                            &schema,
                            &sigma,
                            &DbParams { tuples_per_relation: 3, domain: 4, ..DbParams::default() },
                            &cfg,
                        ) else {
                            continue;
                        };
                        if !admissible(&db, sem, &schema) {
                            continue;
                        }
                        checked_dbs += 1;
                        let a = eval(&q1, &db, sem).unwrap();
                        let b = eval(&q2, &db, sem).unwrap();
                        assert_eq!(
                            a.sorted(),
                            b.sorted(),
                            "procedure said ≡_{{Σ,{sem}}} but answers differ\n\
                             q1 = {q1}\nq2 = {q2}\nΣ = {sigma}\nD =\n{db}"
                        );
                    }
                }
                EquivOutcome::NotEquivalent => {
                    // Any witness the search produces must be genuine.
                    if let Some(db) = separating_database(sem, &q1, &q2, &sigma, &schema, &cfg) {
                        assert!(db_satisfies_all(&db, &sigma));
                        let a = eval(&q1, &db, sem).unwrap();
                        let b = eval(&q2, &db, sem).unwrap();
                        assert_ne!(a.sorted(), b.sorted(), "bogus witness");
                    }
                }
                EquivOutcome::Unknown(_) => {}
            }
        }
    }
    // The harness must actually have exercised both paths.
    assert!(equivalent_pairs > 0, "no equivalent pairs generated — fixture too weak");
    assert!(checked_dbs > 0, "no Σ-models sampled — fixture too weak");
}

#[test]
fn proposition_2_1_hierarchy_holds_under_sigma() {
    // ≡_{Σ,B} ⇒ ≡_{Σ,BS} ⇒ ≡_{Σ,S} (Propositions 2.1 / 6.1) on random
    // pairs.
    let schema = schema();
    let cfg = ChaseConfig::default();
    let mut rng = StdRng::seed_from_u64(0x517);
    let mut bag_equiv_seen = 0usize;
    for _ in 0..80 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 2, egds: 1, reuse_prob: 0.7 },
        );
        let q1 = random_query(&mut rng, &schema, &QueryParams::default());
        let mut q2 = eqsql_gen::rename_isomorphic(&mut rng, &q1);
        // Occasionally append a redundant duplicate atom.
        if q2.body.len() < 6 {
            let a = q2.body[0].clone();
            q2.body.push(a);
        }
        let b = sigma_equivalent(Semantics::Bag, &q1, &q2, &sigma, &schema, &cfg);
        let bs = sigma_equivalent(Semantics::BagSet, &q1, &q2, &sigma, &schema, &cfg);
        let s = sigma_equivalent(Semantics::Set, &q1, &q2, &sigma, &schema, &cfg);
        if b.is_equivalent() {
            bag_equiv_seen += 1;
            assert!(bs.is_equivalent(), "≡B without ≡BS: {q1} vs {q2}\nΣ = {sigma}");
        }
        if bs.is_equivalent() {
            assert!(s.is_equivalent(), "≡BS without ≡S: {q1} vs {q2}\nΣ = {sigma}");
        }
    }
    assert!(bag_equiv_seen > 0);
}
