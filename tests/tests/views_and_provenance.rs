//! Integration tests for the two extension modules: view-based rewriting
//! (the paper's motivating application, §1/§7) and semiring/provenance
//! evaluation (whose counting instance *is* bag semantics).

use eqsql_chase::ChaseConfig;
use eqsql_core::views::{is_equivalent_rewriting, rewrite_with_views, View, ViewSet};
use eqsql_core::{EquivOutcome, Semantics};
use eqsql_cq::{are_isomorphic, parse_query};
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_gen::db::{random_database, DbParams};
use eqsql_relalg::eval::{eval, eval_bag};
use eqsql_relalg::provenance::{eval_counting, eval_provenance};
use eqsql_relalg::{Database, Schema};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> ChaseConfig {
    ChaseConfig::default()
}

#[test]
fn rewriting_verdicts_validated_by_engine_on_materialized_views() {
    // Materialize the views by evaluating their definitions (bag
    // semantics — the paper's point about materialized views), then check
    // that the rewriting evaluated over the materialized instance equals
    // the query over the base instance, exactly when the test says so.
    let views = ViewSet::new(vec![
        View::new(parse_query("v_j(X,Z) :- p(X,Y), s(Y,Z)").unwrap()),
        View::new(parse_query("v_p(X) :- p(X,Y)").unwrap()),
    ]);
    let q = parse_query("q(X,Z) :- p(X,Y), s(Y,Z)").unwrap();
    let good = parse_query("q(X,Z) :- v_j(X,Z)").unwrap();
    let bad = parse_query("q(X,Z) :- v_j(X,Z), v_p(X)").unwrap();
    let schema = Schema::all_bags(&[("p", 2), ("s", 2), ("v_j", 2), ("v_p", 1)]);
    let sigma = DependencySet::new();

    // Verdicts.
    let v_good =
        is_equivalent_rewriting(Semantics::Bag, &q, &good, &views, &sigma, &schema, &cfg())
            .unwrap();
    assert!(v_good.is_equivalent());
    let v_bad =
        is_equivalent_rewriting(Semantics::Bag, &q, &bad, &views, &sigma, &schema, &cfg()).unwrap();
    assert_eq!(v_bad, EquivOutcome::NotEquivalent);

    // Engine validation on random instances.
    let mut rng = StdRng::seed_from_u64(0x71E);
    let base_schema = Schema::all_bags(&[("p", 2), ("s", 2)]);
    let mut saw_difference = false;
    for _ in 0..20 {
        let base = random_database(
            &mut rng,
            &base_schema,
            &DbParams { tuples_per_relation: 4, domain: 4, dup_prob: 0.4, max_mult: 3 },
        );
        // Materialize both views under bag semantics.
        let mut mat = base.clone();
        for view in views.iter() {
            let content = eval_bag(&view.def, &base);
            for (t, m) in content.iter() {
                mat.insert(view.predicate().name(), t.clone(), m);
            }
        }
        let expected = eval_bag(&q, &base);
        let got_good = eval_bag(&good, &mat);
        assert_eq!(expected.sorted(), got_good.sorted(), "good rewriting must agree");
        let got_bad = eval_bag(&bad, &mat);
        if expected.sorted() != got_bad.sorted() {
            saw_difference = true;
        }
    }
    assert!(saw_difference, "the bad rewriting should differ on some instance");
}

#[test]
fn view_rewriting_respects_semantics_split() {
    // A projection view loses the join witness: under set semantics a
    // single view atom rewrites the self-join, under bag-set it does not.
    let views = ViewSet::new(vec![View::new(parse_query("v(X) :- p(X,Y)").unwrap())]);
    let q = parse_query("q(X) :- p(X,Y), p(X,Z)").unwrap();
    let schema = Schema::all_bags(&[("p", 2), ("v", 1)]);
    let sigma = DependencySet::new();
    let set = rewrite_with_views(Semantics::Set, &q, &views, &sigma, &schema, &cfg(), 10).unwrap();
    assert!(set
        .rewritings
        .iter()
        .any(|r| are_isomorphic(r, &parse_query("q(X) :- v(X)").unwrap())));
    let bs =
        rewrite_with_views(Semantics::BagSet, &q, &views, &sigma, &schema, &cfg(), 10).unwrap();
    // v(X) once is not enough; v(X), v(X) dedups to one atom under the
    // BS canonical test of the expansion — two *distinct* view atoms
    // cannot exist, so NO total rewriting exists under bag-set.
    assert!(
        bs.rewritings.is_empty(),
        "got {:?}",
        bs.rewritings.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn expansion_composes_with_dependencies() {
    // Views over a schema with an FK: the rewriting test must chase the
    // expansion under Σ.
    let sigma = parse_dependencies(
        "emp(I,D) -> dept(D).\n\
         dept(D1) & dept(D2) -> D1 = D1.", // trivial egd, exercises parsing
    )
    .unwrap();
    let views = ViewSet::new(vec![View::new(parse_query("v(I,D) :- emp(I,D), dept(D)").unwrap())]);
    let q = parse_query("q(I) :- emp(I,D)").unwrap();
    let r = parse_query("q(I) :- v(I,D)").unwrap();
    let mut schema = Schema::all_bags(&[("emp", 2), ("dept", 1), ("v", 2)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("dept"));
    // Under set semantics the dept-atom in the expansion is redundant
    // given the FK: equivalent.
    let v =
        is_equivalent_rewriting(Semantics::Set, &q, &r, &views, &sigma, &schema, &cfg()).unwrap();
    assert!(v.is_equivalent());
    // Without Σ it is not (dept filters).
    let v2 = is_equivalent_rewriting(
        Semantics::Set,
        &q,
        &r,
        &views,
        &DependencySet::new(),
        &schema,
        &cfg(),
    )
    .unwrap();
    assert_eq!(v2, EquivOutcome::NotEquivalent);
}

#[test]
fn counting_provenance_matches_bag_eval_on_random_inputs() {
    let schema = Schema::all_bags(&[("p", 2), ("s", 2), ("r", 1)]);
    let mut rng = StdRng::seed_from_u64(0xB46);
    for i in 0..30 {
        let db = random_database(
            &mut rng,
            &schema,
            &DbParams { tuples_per_relation: 4, domain: 4, dup_prob: 0.5, max_mult: 4 },
        );
        let q = eqsql_gen::random_query(
            &mut rng,
            &schema,
            &eqsql_gen::queries::QueryParams {
                atoms: 3,
                vars: 4,
                const_prob: 0.1,
                const_domain: 4,
                max_head: 2,
            },
        );
        assert_eq!(
            eval_counting(&q, &db).sorted(),
            eval_bag(&q, &db).sorted(),
            "iteration {i}: {q}"
        );
        // Specialization: substituting multiplicities into provenance
        // polynomials recovers the bag answer.
        let bag = eval_bag(&q, &db);
        for (t, poly) in eval_provenance(&q, &db) {
            let specialized =
                poly.evaluate(|(pred, tuple)| db.get(*pred).map_or(0, |r| r.multiplicity(tuple)));
            assert_eq!(specialized, bag.multiplicity(&t), "iteration {i}");
        }
    }
}

#[test]
fn provenance_explains_example_4_1() {
    // The provenance of Q1's doubled answer on the paper's D names the
    // two U-tuples explicitly — the "why" behind Example 4.1.
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let db = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("r", &[[1]])
        .with_ints("s", &[[1, 3]])
        .with_ints("t", &[[1, 2, 4]])
        .with_ints("u", &[[1, 5], [1, 6]]);
    let rows = eval_provenance(&q1, &db);
    assert_eq!(rows.len(), 1);
    let poly = &rows[0].1;
    assert_eq!(poly.monomials(), 2, "two derivations: one per u-tuple");
    let rendered = poly.to_string();
    assert!(rendered.contains("u(1, 5)") && rendered.contains("u(1, 6)"), "{rendered}");
    // Under any semantics: eval agrees with the verdicts (sanity).
    assert_eq!(eval(&q1, &db, Semantics::Bag).unwrap().len(), 2);
}
