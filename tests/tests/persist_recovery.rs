//! Crash/corruption-injection harness for the persistent chase-cache tier
//! (`eqsql_service::cache::persist`).
//!
//! The tier's value proposition is surviving hostile disk states, so the
//! suite is adversarial and deterministic: a committed byte-exact log
//! fixture is truncated at *every* byte offset and bit-flipped at every
//! byte; a writer "dies" mid-append through the deterministic
//! [`PersistFault`] hook (the persistence mirror of the engine's
//! `FaultPlan`); and every recovery is pinned to (a) keep exactly the
//! valid prefix with exact discarded accounting in `Solver::stats()`, and
//! (b) never admit an entry a fresh solver would decide differently.
//! Alongside: a 200-draw round-trip property test over every persisted
//! value shape, and a 150-draw cold-vs-warm-start differential.
//!
//! Regenerate committed fixtures with:
//! `EQSQL_REGEN_FIXTURES=1 cargo test -p eqsql-integration-tests --test persist_recovery`

use eqsql_bench::workloads::{equiv_batch_request_file, repeated_subquery_pairs};
use eqsql_chase::{sound_chase, ChaseConfig, ChaseError};
use eqsql_cq::{find_isomorphism, parse_query};
use eqsql_deps::{parse_dependencies, regularize_set, DependencySet};
use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::sigma::SigmaParams;
use eqsql_gen::{random_weakly_acyclic_sigma, rename_isomorphic};
use eqsql_relalg::{Schema, Semantics};
use eqsql_service::cache::persist::{
    decode_record, encode_record, file_header, frame_record, PersistRecord, PersistedChase,
    FILE_HEADER_LEN, FRAME_HEADER_LEN, LOG_MAGIC,
};
use eqsql_service::{
    Answer, CacheConfig, ChaseCache, ChaseContext, Error, PersistConfig, PersistFault, Request,
    RequestOpts, Solver, Verdict,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------- helpers

static SCRATCH_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "eqsql-persist-{tag}-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn regen_fixtures() -> bool {
    std::env::var_os("EQSQL_REGEN_FIXTURES").is_some()
}

fn persist_at(dir: &Path) -> PersistConfig {
    PersistConfig::at(dir)
}

fn cache_config(persist: PersistConfig) -> CacheConfig {
    CacheConfig { persist: Some(persist), ..CacheConfig::default() }
}

fn solver_with(sigma: &DependencySet, schema: &Schema, persist: Option<PersistConfig>) -> Solver {
    let mut config = CacheConfig::default();
    config.persist = persist;
    Solver::builder(sigma.clone(), schema.clone()).cache_config(config).build()
}

/// The randomized-draw schema shared with the solver differential suite.
fn diff_schema() -> Schema {
    let mut s = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 3), ("d", 1)]);
    s.mark_set_valued(eqsql_cq::Predicate::new("b"));
    s.mark_set_valued(eqsql_cq::Predicate::new("c"));
    s
}

/// Collapses a verdict to its decision class, the unit of cold/warm
/// comparison (replayed evidence is α-equivalent, not byte-equal, so raw
/// verdicts are compared by class plus a `Verdict::verify` replay).
fn verdict_class(v: &Result<Verdict, Error>) -> String {
    match v {
        Ok(verdict) => match &verdict.answer {
            Answer::Equivalent { .. } => "equivalent".into(),
            Answer::NotEquivalent { counterexample } => {
                format!("not-equivalent/witness={}", counterexample.is_some())
            }
            other => format!("{other:?}"),
        },
        Err(e) => format!("error: {e}"),
    }
}

// ---------------------------------------------- satellite 1: round trips

/// Round-trip encode/decode over 200 randomized weakly acyclic draws,
/// covering every persisted value shape: terminal query + renaming,
/// regularized Σ, and memoized budget errors (tiny budgets force both
/// `BudgetExhausted` and `QueryTooLarge` draws). Decoded entries must be
/// exactly what the hit path confirms: same context, same fingerprint,
/// `find_isomorphism`-confirmable from an α-renamed probe.
#[test]
fn round_trip_every_persisted_shape_over_randomized_draws() {
    let schema = diff_schema();
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let (mut ok_records, mut err_records) = (0usize, 0usize);
    for round in 0..200 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 },
        );
        let params = QueryParams {
            atoms: 2 + (round % 3),
            vars: 4,
            const_prob: 0.1,
            const_domain: 3,
            max_head: 2,
        };
        let q = random_query(&mut rng, &schema, &params);
        let sem = [Semantics::Set, Semantics::Bag, Semantics::BagSet][round % 3];
        // Budget rotation: default (terminal results), step-starved and
        // atom-starved (the two cacheable error shapes).
        let config = match round % 5 {
            3 => ChaseConfig::with_max_steps(1),
            4 => ChaseConfig { max_steps: 5_000, max_atoms: 1 },
            _ => ChaseConfig::default(),
        };
        let (sigma_reg, outcome) = match sound_chase(sem, &q, &sigma, &schema, &config) {
            Ok(r) => {
                ok_records += 1;
                let stored = PersistedChase {
                    query: r.query.clone(),
                    failed: r.failed,
                    steps: r.steps,
                    renaming: r.chased.renaming.clone(),
                };
                (Arc::clone(&r.sigma_regularized), Ok(stored))
            }
            Err(e) => {
                assert!(e.is_cacheable(), "round {round}: unguarded chase errored {e:?}");
                err_records += 1;
                (Arc::new(regularize_set(&sigma)), Err(e))
            }
        };
        let ctx = ChaseContext::new(sem, &sigma_reg, &schema, &config);
        let record = PersistRecord { ctx, sigma: sigma_reg, representative: q.clone(), outcome };
        let body = encode_record(&record);
        let decoded =
            decode_record(&body).unwrap_or_else(|e| panic!("round {round}: decode failed: {e}"));
        assert!(decoded.ctx.same(&record.ctx), "round {round}: context drifted");
        assert_eq!(decoded.ctx.fingerprint(), record.ctx.fingerprint(), "round {round}");
        assert_eq!(decoded.representative, record.representative, "round {round}");
        // The hit path's confirmation: an α-renamed probe of the original
        // draw must find an isomorphism onto the decoded representative.
        let probe = rename_isomorphic(&mut rng, &q);
        assert!(
            find_isomorphism(&probe, &decoded.representative).is_some(),
            "round {round}: decoded representative not isomorphism-confirmable"
        );
        match (&decoded.outcome, &record.outcome) {
            (Ok(d), Ok(o)) => {
                assert_eq!(d.query, o.query, "round {round}");
                assert_eq!((d.failed, d.steps), (o.failed, o.steps), "round {round}");
                assert_eq!(d.renaming.sorted_pairs(), o.renaming.sorted_pairs(), "round {round}");
            }
            (Err(d), Err(o)) => assert_eq!(d, o, "round {round}"),
            _ => panic!("round {round}: outcome shape changed"),
        }
        // Byte-determinism: re-encoding the decoded record is identity.
        assert_eq!(body, encode_record(&decoded), "round {round}: encoding not deterministic");
    }
    // The seed is fixed, so shape coverage is pinned, not probabilistic.
    assert!(
        ok_records >= 120 && err_records >= 20,
        "shape coverage regressed: {ok_records} terminal, {err_records} error records"
    );
}

// ------------------------------------- satellite 2: corruption injection

/// The committed fixture's three records: two Set-semantics terminal
/// results over Example-4.1-style Σ (so one equivalence probe exercises
/// both) and one memoized budget error under bag semantics.
fn fixture_records() -> (DependencySet, Schema, Vec<PersistRecord>) {
    let sigma = parse_dependencies("p(X,Y) -> s(X,Z).\ns(X,Y) & s(X,Z) -> Y = Z.").unwrap();
    let mut schema = Schema::all_bags(&[("p", 2), ("s", 2)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
    let config = ChaseConfig::default();
    let mut records = Vec::new();
    for text in ["q(X) :- p(X,Y)", "q(X) :- p(X,Y), s(X,Z)"] {
        let q = parse_query(text).unwrap();
        let r = sound_chase(Semantics::Set, &q, &sigma, &schema, &config).unwrap();
        let ctx = ChaseContext::new(Semantics::Set, &r.sigma_regularized, &schema, &config);
        records.push(PersistRecord {
            ctx,
            sigma: Arc::clone(&r.sigma_regularized),
            representative: q,
            outcome: Ok(PersistedChase {
                query: r.query.clone(),
                failed: r.failed,
                steps: r.steps,
                renaming: r.chased.renaming.clone(),
            }),
        });
    }
    // A divergent Σ under a small budget: the error-shaped record. Set
    // semantics, where the non-terminating tgd actually fires (under bag
    // semantics unkeyed tgds are inapplicable and the chase is trivial).
    let div = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
    let div_schema = Schema::all_bags(&[("e", 2)]);
    let small = ChaseConfig::with_max_steps(13);
    let q = parse_query("q(X) :- e(X,Y)").unwrap();
    let err = sound_chase(Semantics::Set, &q, &div, &div_schema, &small).unwrap_err();
    assert!(matches!(err, ChaseError::BudgetExhausted { .. }));
    let div_reg = Arc::new(regularize_set(&div));
    let ctx = ChaseContext::new(Semantics::Set, &div_reg, &div_schema, &small);
    records.push(PersistRecord { ctx, sigma: div_reg, representative: q, outcome: Err(err) });
    (sigma, schema, records)
}

/// The fixture log bytes plus each record's frame-start offset (the last
/// element is the file length).
fn fixture_bytes() -> (Vec<u8>, Vec<usize>) {
    let (_, _, records) = fixture_records();
    let mut bytes = file_header(&LOG_MAGIC);
    let mut boundaries = vec![bytes.len()];
    for record in &records {
        bytes.extend_from_slice(&frame_record(&encode_record(record)));
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/persist/log.eqc")
}

/// The committed log fixture must equal the bytes this source tree
/// produces — encoding is byte-deterministic (sorted renamings, name-based
/// interning), so any drift is a format change that needs a version bump.
#[test]
fn committed_log_fixture_is_byte_reproducible() {
    let (bytes, _) = fixture_bytes();
    let path = fixture_path();
    if regen_fixtures() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        return;
    }
    let committed =
        std::fs::read(&path).expect("fixture missing — regenerate with EQSQL_REGEN_FIXTURES=1");
    assert_eq!(
        committed, bytes,
        "fixture drifted from the encoder — if the format changed intentionally, bump \
         FORMAT_VERSION and regenerate with EQSQL_REGEN_FIXTURES=1"
    );
}

/// Expected recovery outcome for a log prefix of length `cut`:
/// `(records admitted, corruption events)`.
fn expected_at(cut: usize, boundaries: &[usize]) -> (u64, u64) {
    if cut == 0 {
        return (0, 0); // empty file: fresh log, nothing discarded
    }
    if cut < FILE_HEADER_LEN {
        return (0, 1); // unreadable header: whole file discarded
    }
    let complete = boundaries.iter().filter(|b| **b <= cut).count() as u64 - 1;
    let clean = boundaries.contains(&cut);
    (complete, if clean { 0 } else { 1 })
}

/// Truncate the fixture at every byte offset: recovery admits exactly the
/// complete valid prefix, counts exactly one corruption event for a torn
/// tail, truncates the log so a *second* open is clean, and never panics.
/// At record boundaries (and sampled interior offsets) a solver over the
/// recovered directory must decide identically to a fresh solver, with
/// disk hits exactly matching the admitted records.
#[test]
fn truncation_at_every_offset_keeps_exactly_the_valid_prefix() {
    let (bytes, boundaries) = fixture_bytes();
    let (sigma, schema, records) = fixture_records();
    let scratch = Scratch::new("truncate");
    let dir = scratch.path();
    let log = dir.join("log.eqc");
    for cut in 0..=bytes.len() {
        let (want_records, want_discarded) = expected_at(cut, &boundaries);
        std::fs::write(&log, &bytes[..cut]).unwrap();
        let cache = ChaseCache::open(cache_config(persist_at(dir))).unwrap();
        let p = cache.stats().persist;
        assert_eq!(
            (p.loaded, p.recovered, p.discarded),
            (0, want_records, want_discarded),
            "cut at {cut}"
        );
        drop(cache);
        // Recovery truncated the torn tail: reopening is clean.
        let p = ChaseCache::open(cache_config(persist_at(dir))).unwrap().stats().persist;
        assert_eq!((p.recovered, p.discarded), (want_records, 0), "second open, cut at {cut}");

        if boundaries.contains(&cut) || cut % 37 == 0 {
            // Verdict differential: the recovered cache must answer like a
            // fresh solver, with the two Set-records served from disk iff
            // admitted (record 3 is under bag semantics/another Σ and is
            // never probed here).
            std::fs::write(&log, &bytes[..cut]).unwrap();
            let recovered = solver_with(&sigma, &schema, Some(persist_at(dir)));
            let fresh = solver_with(&sigma, &schema, None);
            let req = Request::Equivalent {
                q1: records[0].representative.clone(),
                q2: records[1].representative.clone(),
                opts: RequestOpts::default(),
            };
            let got = recovered.decide(&req);
            assert_eq!(verdict_class(&got), verdict_class(&fresh.decide(&req)), "cut at {cut}");
            if let Ok(v) = &got {
                v.verify(&req, recovered.sigma(), recovered.schema()).unwrap();
            }
            let admitted = want_records.min(2);
            let s = recovered.stats().cache;
            assert_eq!(
                (s.hits, s.misses, s.persist.disk_hits),
                (admitted, 2 - admitted, admitted),
                "cut at {cut}: hit/miss attribution must equal the admitted prefix"
            );
        }
    }
}

/// Flip one bit at every byte of the fixture — length fields, checksums,
/// bodies, the file header: recovery admits exactly the records *before*
/// the corrupted one, counts one corruption event, never panics, and a
/// subsequent solver still decides identically to a fresh one.
#[test]
fn bitflip_at_every_byte_is_survived_with_exact_accounting() {
    let (bytes, boundaries) = fixture_bytes();
    let (sigma, schema, records) = fixture_records();
    let scratch = Scratch::new("bitflip");
    let dir = scratch.path();
    let log = dir.join("log.eqc");
    for pos in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= mask;
            // First record whose frame contains the flipped byte; header
            // flips discard the whole file.
            let want_records = if pos < FILE_HEADER_LEN {
                0
            } else {
                boundaries.iter().filter(|b| **b <= pos).count() as u64 - 1
            };
            std::fs::write(&log, &corrupted).unwrap();
            let cache = ChaseCache::open(cache_config(persist_at(dir))).unwrap();
            let p = cache.stats().persist;
            assert_eq!((p.recovered, p.discarded), (want_records, 1), "flip {mask:#04x} at {pos}");
        }
    }
    // Spot-check the verdict differential on a body flip in each record.
    for (i, window) in boundaries.windows(2).enumerate() {
        let mut corrupted = bytes.clone();
        corrupted[window[0] + FRAME_HEADER_LEN + 3] ^= 0xFF;
        std::fs::write(&log, &corrupted).unwrap();
        let recovered = solver_with(&sigma, &schema, Some(persist_at(dir)));
        let fresh = solver_with(&sigma, &schema, None);
        let req = Request::Equivalent {
            q1: records[0].representative.clone(),
            q2: records[1].representative.clone(),
            opts: RequestOpts::default(),
        };
        assert_eq!(
            verdict_class(&recovered.decide(&req)),
            verdict_class(&fresh.decide(&req)),
            "body flip in record {i}"
        );
    }
}

// --------------------------------------- writer death & read-only modes

/// Deterministic writer death: the second append writes only 5 bytes of
/// its frame and the writer goes silent — exactly a process killed inside
/// `write(2)`. The surviving run keeps serving from memory; the next
/// process recovers the one durable record, truncates the torn frame, and
/// decides everything identically to a fresh solver.
#[test]
fn writer_death_mid_append_recovers_the_durable_prefix() {
    let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1)]);
    let scratch = Scratch::new("writer-death");
    let dir = scratch.path();
    let reqs: Vec<Request> = ["a(X)", "a(X), c(X)", "a(X), b(X), c(X)"]
        .iter()
        .map(|b| {
            let q = parse_query(&format!("q(X) :- {b}")).unwrap();
            Request::Equivalent { q1: q.clone(), q2: q, opts: RequestOpts::default() }
        })
        .collect();

    let mut persist = persist_at(dir);
    persist.fault = Some(PersistFault { at_append: 2, keep_bytes: 5 });
    let dying = solver_with(&sigma, &schema, Some(persist));
    let dying_verdicts: Vec<String> =
        reqs.iter().map(|r| verdict_class(&dying.decide(r))).collect();
    let p = dying.stats().cache.persist;
    // Append 1 landed; append 2 tore the frame and killed the writer;
    // append 3 was dropped. No I/O error: the disk didn't fail, the
    // writer died.
    assert_eq!((p.appended, p.io_errors), (1, 0), "{p:?}");
    drop(dying);

    let recovered = solver_with(&sigma, &schema, Some(persist_at(dir)));
    let p = recovered.stats().cache.persist;
    assert_eq!((p.loaded, p.recovered, p.discarded), (0, 1, 1), "{p:?}");
    let fresh = solver_with(&sigma, &schema, None);
    for (i, req) in reqs.iter().enumerate() {
        let got = verdict_class(&recovered.decide(req));
        assert_eq!(got, verdict_class(&fresh.decide(req)), "request {i}");
        assert_eq!(got, dying_verdicts[i], "request {i} vs pre-death run");
    }
    let s = recovered.stats().cache;
    assert_eq!(s.persist.disk_hits, 1, "only the durable record serves from disk: {s:?}");
    // The two lost entries were re-chased and re-persisted.
    assert_eq!(s.persist.appended, 2, "{s:?}");
}

/// Read-only mode serves disk hits but never writes: no appends, no
/// truncation, the log bytes stay untouched even while new queries are
/// decided (memory-only) on top.
#[test]
fn read_only_mode_serves_hits_without_writing() {
    let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1)]);
    let scratch = Scratch::new("read-only");
    let dir = scratch.path();
    let req = {
        let q = parse_query("q(X) :- a(X)").unwrap();
        Request::Equivalent { q1: q.clone(), q2: q, opts: RequestOpts::default() }
    };
    let writer = solver_with(&sigma, &schema, Some(persist_at(dir)));
    writer.decide(&req).unwrap();
    assert_eq!(writer.stats().cache.persist.appended, 1);
    drop(writer);
    let log_before = std::fs::read(dir.join("log.eqc")).unwrap();

    let mut persist = persist_at(dir);
    persist.read_only = true;
    let replica = solver_with(&sigma, &schema, Some(persist));
    assert_eq!(replica.stats().cache.persist.recovered, 1);
    replica.decide(&req).unwrap();
    let fresh_q = parse_query("q(X) :- a(X), c(X)").unwrap();
    replica
        .decide(&Request::Equivalent {
            q1: fresh_q.clone(),
            q2: fresh_q,
            opts: RequestOpts::default(),
        })
        .unwrap();
    let s = replica.stats().cache;
    assert!(s.persist.disk_hits >= 1, "{s:?}");
    assert_eq!(s.persist.appended, 0, "read-only replica must not write: {s:?}");
    assert_eq!(std::fs::read(dir.join("log.eqc")).unwrap(), log_before, "log bytes changed");
}

/// Snapshot compaction: with a cadence of 2, five distinct entries force
/// at least two compactions; a restart loads the snapshot, replays the log
/// remainder, admits all five entries exactly once, and serves them warm.
#[test]
fn snapshot_compaction_round_trips_through_restart() {
    let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1), ("d", 1)]);
    let scratch = Scratch::new("snapshot");
    let dir = scratch.path();
    let bodies = ["a(X)", "a(X), c(X)", "a(X), d(X)", "a(X), c(X), d(X)", "a(X), b(X), c(X), d(X)"];
    let reqs: Vec<Request> = bodies
        .iter()
        .map(|b| {
            let q = parse_query(&format!("q(X) :- {b}")).unwrap();
            Request::Equivalent { q1: q.clone(), q2: q, opts: RequestOpts::default() }
        })
        .collect();

    let mut persist = persist_at(dir);
    persist.snapshot_every = 2;
    let cold = solver_with(&sigma, &schema, Some(persist));
    let cold_verdicts: Vec<String> = reqs.iter().map(|r| verdict_class(&cold.decide(r))).collect();
    let p = cold.stats().cache.persist;
    assert_eq!(p.appended, 5, "{p:?}");
    assert!(p.snapshots >= 2, "cadence 2 over 5 appends must compact twice: {p:?}");
    drop(cold);
    assert!(dir.join("snapshot.eqc").exists());

    let warm = solver_with(&sigma, &schema, Some(persist_at(dir)));
    let p = warm.stats().cache.persist;
    assert!(p.loaded >= 4, "most records live in the snapshot: {p:?}");
    assert_eq!(p.loaded + p.recovered, 5, "every entry admitted exactly once: {p:?}");
    assert_eq!(p.discarded, 0, "{p:?}");
    for (req, want) in reqs.iter().zip(&cold_verdicts) {
        assert_eq!(&verdict_class(&warm.decide(req)), want);
    }
    let s = warm.stats().cache;
    assert_eq!(s.misses, 0, "fully warm restart must not re-chase: {s:?}");
    assert_eq!(s.persist.disk_hits, 5, "{s:?}");
}

// ------------------------------------------------- single-writer locking

/// Two writable opens of one cache dir must not coexist: the second
/// fails fast (`AddrInUse`, naming the live holder's pid), and the
/// degrading constructor ([`ChaseCache::new`] via `Solver::builder`)
/// falls back to memory-only with the failure visible in `io_errors`.
#[test]
fn second_writable_open_of_a_locked_dir_fails_fast() {
    let scratch = Scratch::new("lock-conflict");
    let dir = scratch.path();
    let holder = ChaseCache::open(cache_config(persist_at(dir))).unwrap();
    assert!(dir.join("writer.lock").exists(), "writable open must take the lock");

    let err = match ChaseCache::open(cache_config(persist_at(dir))) {
        Err(e) => e,
        Ok(_) => panic!("second writable open must fail while the lock is held"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
    assert!(
        err.to_string().contains(&std::process::id().to_string()),
        "error must name the holding pid: {err}"
    );

    // The non-surfacing constructor degrades instead of failing.
    let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
    let degraded = solver_with(&sigma, &schema, Some(persist_at(dir)));
    let p = degraded.stats().cache.persist;
    assert_eq!(p.io_errors, 1, "degradation must be observable: {p:?}");
    drop(holder);
}

/// Read-only replicas bypass the lock entirely: they open alongside a
/// live writer, and leave no lock of their own behind.
#[test]
fn read_only_open_bypasses_the_writer_lock() {
    let scratch = Scratch::new("lock-read-only");
    let dir = scratch.path();
    let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
    let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
    let writer = solver_with(&sigma, &schema, Some(persist_at(dir)));
    let q = parse_query("q(X) :- a(X)").unwrap();
    let req = Request::Equivalent { q1: q.clone(), q2: q, opts: RequestOpts::default() };
    writer.decide(&req).unwrap();

    let mut ro = persist_at(dir);
    ro.read_only = true;
    let replica = ChaseCache::open(cache_config(ro)).unwrap();
    assert_eq!(replica.stats().persist.io_errors, 0);
    drop(replica);
    assert!(dir.join("writer.lock").exists(), "replica must not release the writer's lock");
    drop(writer);
    assert!(!dir.join("writer.lock").exists(), "writer drop must release the lock");
}

/// A lock left by a dead process (its pid no longer runs) or holding
/// unreadable garbage is stale: the next writable open reclaims it
/// silently. Dropping that open releases the reclaimed lock.
#[test]
fn stale_and_garbage_locks_are_reclaimed() {
    let scratch = Scratch::new("lock-stale");
    let dir = scratch.path();
    // A pid far above the kernel's pid_max: certainly not running.
    std::fs::write(dir.join("writer.lock"), "999999999").unwrap();
    let cache = ChaseCache::open(cache_config(persist_at(dir))).unwrap();
    assert_eq!(cache.stats().persist.io_errors, 0);
    drop(cache);
    assert!(!dir.join("writer.lock").exists(), "reclaimed lock must release on drop");

    std::fs::write(dir.join("writer.lock"), b"\xFFnot a pid\xFF").unwrap();
    let cache = ChaseCache::open(cache_config(persist_at(dir))).unwrap();
    assert_eq!(cache.stats().persist.io_errors, 0);
    drop(cache);
    assert!(!dir.join("writer.lock").exists());

    // Our own pid is *live* by definition — even hand-planted, it must
    // conflict (another tier in this process could be the holder).
    std::fs::write(dir.join("writer.lock"), std::process::id().to_string()).unwrap();
    assert!(
        ChaseCache::open(cache_config(persist_at(dir))).is_err(),
        "a lock naming a live pid must conflict"
    );
    std::fs::remove_file(dir.join("writer.lock")).unwrap();
}

// ------------------------------------ satellite 3: warm-start differential

/// 150 randomized weakly acyclic draws (the parameters of the solver
/// differential suite), three semantics each: a warm-started solver
/// (snapshot + log replay, compaction forced mid-run by a cadence of 3)
/// must produce the same verdict classes as its cold predecessor, every
/// certificate must replay, and the hit/miss attribution must be exact —
/// zero warm misses, one warm hit per cold probe, zero re-appends.
#[test]
fn warm_start_matches_cold_solver_on_randomized_draws() {
    let schema = diff_schema();
    let mut rng = StdRng::seed_from_u64(0x501E);
    let scratch = Scratch::new("warm-differential");
    for round in 0..150 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 },
        );
        let params = QueryParams {
            atoms: 2 + (round % 3),
            vars: 4,
            const_prob: 0.1,
            const_domain: 3,
            max_head: 2,
        };
        let q1 = random_query(&mut rng, &schema, &params);
        let q2 = if rng.gen_bool(0.5) {
            let mut q = rename_isomorphic(&mut rng, &q1);
            if rng.gen_bool(0.5) && q.body.len() > 1 {
                q.body.pop();
            }
            if !q.is_safe() {
                q = q1.clone();
            }
            q
        } else {
            random_query(&mut rng, &schema, &params)
        };
        let reqs: Vec<Request> = [Semantics::Set, Semantics::Bag, Semantics::BagSet]
            .into_iter()
            .map(|sem| Request::Equivalent {
                q1: q1.clone(),
                q2: q2.clone(),
                opts: RequestOpts::with_sem(sem),
            })
            .collect();

        let dir = scratch.path().join(format!("r{round}"));
        let mut persist = persist_at(&dir);
        persist.snapshot_every = 3;
        let cold = solver_with(&sigma, &schema, Some(persist));
        let cold_verdicts: Vec<String> =
            reqs.iter().map(|r| verdict_class(&cold.decide(r))).collect();
        let cold_stats = cold.stats().cache;
        drop(cold);

        let warm = solver_with(&sigma, &schema, Some(persist_at(&dir)));
        let wp = warm.stats().cache.persist;
        assert_eq!(
            wp.loaded + wp.recovered,
            cold_stats.persist.appended,
            "round {round}: every cold append must be admitted exactly once: {wp:?}"
        );
        assert_eq!(wp.discarded, 0, "round {round}: {wp:?}");
        for (req, want) in reqs.iter().zip(&cold_verdicts) {
            let got = warm.decide(req);
            assert_eq!(&verdict_class(&got), want, "round {round}: {q1} vs {q2}");
            if let Ok(v) = &got {
                v.verify(req, warm.sigma(), warm.schema())
                    .unwrap_or_else(|e| panic!("round {round}: warm evidence failed: {e}"));
            }
        }
        let ws = warm.stats().cache;
        assert_eq!(ws.misses, 0, "round {round}: warm run re-chased: {ws:?}");
        assert_eq!(
            ws.hits,
            cold_stats.hits + cold_stats.misses,
            "round {round}: warm attribution must mirror the cold probe stream: {ws:?}"
        );
        assert_eq!(ws.persist.appended, 0, "round {round}: warm run re-appended: {ws:?}");
    }
}

// -------------------------------------------- equiv_batch request fixture

/// The committed `equiv_batch.req` served by `scripts/bench_snapshot.sh`
/// and `scripts/verify.sh` must equal the benched workload, line for line,
/// and parse into one request per benched pair.
#[test]
fn equiv_batch_request_fixture_matches_the_benched_workload() {
    let text = equiv_batch_request_file();
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../crates/service/fixtures/equiv_batch.req");
    if regen_fixtures() {
        std::fs::write(&path, &text).unwrap();
    }
    let committed = std::fs::read_to_string(&path)
        .expect("fixture missing — regenerate with EQSQL_REGEN_FIXTURES=1");
    assert_eq!(committed, text, "fixture drifted — regenerate with EQSQL_REGEN_FIXTURES=1");
    let parsed = eqsql_service::parse_request_file(&text).expect("fixture parses");
    assert_eq!(parsed.requests.len(), repeated_subquery_pairs().len());
}
