//! SQL end to end: DDL → catalog → lowering → Σ-equivalence →
//! reformulation → rendering, all through the public API.

// The deprecated convenience entry points remain the differential oracle
// for the Solver suite; this legacy-surface test keeps exercising them.
#![allow(deprecated)]

use eqsql_chase::ChaseConfig;
use eqsql_core::aggregate::sigma_agg_equivalent;
use eqsql_core::problem::{ReformulationProblem, Solutions};
use eqsql_core::{sigma_equivalent, EquivOutcome, Semantics};
use eqsql_cq::CqQuery;
use eqsql_sql::{lower_select, parse_sql, render_cq, Catalog, LoweredQuery, SqlStatement};

fn catalog() -> Catalog {
    Catalog::from_ddl(
        "CREATE TABLE region  (id INT, name VARCHAR, PRIMARY KEY (id));
         CREATE TABLE dept    (id INT, region INT, PRIMARY KEY (id),
                               FOREIGN KEY (region) REFERENCES region (id));
         CREATE TABLE emp     (id INT, dept INT, salary INT, PRIMARY KEY (id),
                               FOREIGN KEY (dept) REFERENCES dept (id));
         CREATE TABLE praise  (emp INT, note VARCHAR);",
    )
    .unwrap()
}

fn cq(cat: &Catalog, sql: &str, name: &str) -> CqQuery {
    let stmts = parse_sql(sql).unwrap();
    let SqlStatement::Select(s) = &stmts[0] else { panic!("expected SELECT") };
    match lower_select(s, cat, name).unwrap() {
        LoweredQuery::Cq { query, .. } => query,
        LoweredQuery::Agg { .. } => panic!("expected plain CQ"),
    }
}

#[test]
fn fk_chain_joins_are_redundant_under_all_semantics() {
    let cat = catalog();
    let cfg = ChaseConfig::default();
    let q_short = cq(&cat, "SELECT e.salary FROM emp e", "qs");
    let q_long = cq(
        &cat,
        "SELECT e.salary FROM emp e, dept d, region r \
         WHERE e.dept = d.id AND d.region = r.id",
        "ql",
    );
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        assert!(
            sigma_equivalent(sem, &q_short, &q_long, &cat.sigma, &cat.schema, &cfg).is_equivalent(),
            "{sem}"
        );
    }
}

#[test]
fn bag_table_join_is_never_redundant() {
    let cat = catalog();
    let cfg = ChaseConfig::default();
    let q_short = cq(&cat, "SELECT e.salary FROM emp e", "qs");
    let q_praise = cq(&cat, "SELECT e.salary FROM emp e, praise p WHERE p.emp = e.id", "qp");
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        assert_eq!(
            sigma_equivalent(sem, &q_short, &q_praise, &cat.sigma, &cat.schema, &cfg),
            EquivOutcome::NotEquivalent,
            "{sem}"
        );
    }
}

#[test]
fn reformulation_round_trips_to_sql() {
    let cat = catalog();
    let q = cq(&cat, "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id", "q");
    for sem in [Semantics::Set, Semantics::Bag] {
        let p = ReformulationProblem::cq(cat.schema.clone(), sem, q.clone(), cat.sigma.clone());
        let Solutions::Cq(result) = p.solve().unwrap() else { panic!() };
        assert_eq!(result.reformulations.len(), 1, "{sem}");
        let best = &result.reformulations[0];
        // The dept join disappears under every semantics (FK + key + set).
        assert_eq!(best.body.len(), 1, "{sem}: {best}");
        // And it renders back to clean SQL that re-lowers to the same CQ.
        let sql = render_cq(best, Some(&cat), sem == Semantics::Set);
        let again = cq(&cat, &sql, "again");
        assert!(eqsql_cq::are_isomorphic(best, &again), "{sql}");
    }
}

#[test]
fn distinct_selects_set_semantics() {
    let cat = catalog();
    let stmts =
        parse_sql("SELECT DISTINCT e.salary FROM emp e, praise p WHERE p.emp = e.id").unwrap();
    let SqlStatement::Select(s) = &stmts[0] else { panic!() };
    let LoweredQuery::Cq { query, distinct } = lower_select(s, &cat, "q").unwrap() else {
        panic!()
    };
    assert!(distinct);
    // Under the DISTINCT (set) reading, the praise join still isn't
    // redundant (it filters employees), but duplicating it is harmless:
    let mut doubled = query.clone();
    doubled.body.push(doubled.body[1].clone());
    let cfg = ChaseConfig::default();
    assert!(sigma_equivalent(Semantics::Set, &query, &doubled, &cat.sigma, &cat.schema, &cfg)
        .is_equivalent());
    // ... while under the bag reading it is not.
    assert_eq!(
        sigma_equivalent(Semantics::Bag, &query, &doubled, &cat.sigma, &cat.schema, &cfg),
        EquivOutcome::NotEquivalent
    );
}

#[test]
fn sql_aggregates_follow_theorem_6_3() {
    let cat = catalog();
    let cfg = ChaseConfig::default();
    let parse_agg = |sql: &str, name: &str| {
        let stmts = parse_sql(sql).unwrap();
        let SqlStatement::Select(s) = &stmts[0] else { panic!() };
        match lower_select(s, &cat, name).unwrap() {
            LoweredQuery::Agg { query } => query,
            LoweredQuery::Cq { .. } => panic!("expected aggregate"),
        }
    };
    // MAX over the FK-joined formulation ≡ MAX over the short one.
    let m1 = parse_agg("SELECT e.dept, MAX(e.salary) FROM emp e GROUP BY e.dept", "m1");
    let m2 = parse_agg(
        "SELECT e.dept, MAX(e.salary) FROM emp e, dept d WHERE e.dept = d.id GROUP BY e.dept",
        "m2",
    );
    assert!(sigma_agg_equivalent(&m1, &m2, &cat.sigma, &cat.schema, &cfg).is_equivalent());
    // SUM too (the join is assignment-fixing: key + FK + set-valued).
    let s1 = parse_agg("SELECT e.dept, SUM(e.salary) FROM emp e GROUP BY e.dept", "s1");
    let s2 = parse_agg(
        "SELECT e.dept, SUM(e.salary) FROM emp e, dept d WHERE e.dept = d.id GROUP BY e.dept",
        "s2",
    );
    assert!(sigma_agg_equivalent(&s1, &s2, &cat.sigma, &cat.schema, &cfg).is_equivalent());
    // But SUM through the praise bag-join is NOT equivalent to SUM plain,
    // while MAX ... is also not (praise filters rows). Compare the praise
    // variants against each other instead: MAX tolerates a duplicated
    // praise subgoal, SUM does too under bag-set ONLY because assignments
    // (not stored copies) are counted — both reduce to core tests:
    let mp = parse_agg(
        "SELECT e.dept, MAX(e.salary) FROM emp e, praise p WHERE p.emp = e.id GROUP BY e.dept",
        "mp",
    );
    let sp = parse_agg(
        "SELECT e.dept, SUM(e.salary) FROM emp e, praise p WHERE p.emp = e.id GROUP BY e.dept",
        "sp",
    );
    let mut mp2 = mp.clone();
    mp2.body.push(mp2.body[1].clone());
    let mut sp2 = sp.clone();
    sp2.body.push(sp2.body[1].clone());
    // MAX: set-equivalence of cores — duplicate subgoal harmless.
    assert!(sigma_agg_equivalent(&mp, &mp2, &cat.sigma, &cat.schema, &cfg).is_equivalent());
    // SUM: bag-set equivalence of cores — duplicate subgoal changes
    // nothing either (assignments!), so equivalent as well.
    assert!(sigma_agg_equivalent(&sp, &sp2, &cat.sigma, &cat.schema, &cfg).is_equivalent());
}
