//! End-to-end tests of the `eqsql_net` TCP server: the socket path must
//! be *verdict-identical* to file mode (same solver, same requests, same
//! outcome labels), concurrent clients must interleave without
//! cross-talk or shedding, a mid-batch `drain` must cancel in-flight
//! work into clean `terminal=cancelled` verdicts and a clean close, and
//! hostile input (malformed lines, over-limit connections) must degrade
//! per-line / per-connection, never per-server.

use eqsql_bench::workloads::request_lines;
use eqsql_net::{Client, Response, Server, ServerConfig};
use eqsql_service::{parse_request_file, Solver};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// The committed smoke fixture: Example 4.1 over the full verb family,
/// 13 requests splitting 7 positive / 6 other / 0 errors.
fn smoke_text() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../crates/service/fixtures/smoke.req");
    std::fs::read_to_string(path).expect("smoke fixture readable")
}

fn start_server(text: &str, config: ServerConfig) -> (Server, Arc<Solver>) {
    let parsed = parse_request_file(text).expect("fixture parses");
    let solver =
        Arc::new(Solver::builder(parsed.sigma, parsed.schema).chase_config(parsed.config).build());
    let server = Server::start(Arc::clone(&solver), "127.0.0.1:0", config)
        .expect("bind an ephemeral loopback port");
    (server, solver)
}

/// N concurrent clients splitting the smoke fixture round-robin must
/// reproduce, line for line, the outcome labels of file mode over the
/// same solver configuration — and the shared admission accounting must
/// show exactly zero sheds and retries (default envelope admits all).
#[test]
fn concurrent_clients_match_file_mode_verdict_for_verdict() {
    let text = smoke_text();
    let lines = request_lines(&text);
    assert_eq!(lines.len(), 13, "smoke fixture drifted");

    // File mode: one solver, sequential decides, per-line outcome labels.
    let parsed = parse_request_file(&text).unwrap();
    let file_solver = Solver::builder(parsed.sigma.clone(), parsed.schema.clone())
        .chase_config(parsed.config)
        .build();
    assert_eq!(parsed.requests.len(), lines.len(), "one request per verb line");
    let expected: Vec<(String, bool)> = parsed
        .requests
        .iter()
        .map(|req| match file_solver.decide(req) {
            Ok(v) => (v.answer.label().to_string(), v.is_positive()),
            Err(e) => (e.labels().0.to_string(), false),
        })
        .collect();
    assert_eq!(expected.iter().filter(|(_, pos)| *pos).count(), 7, "{expected:?}");
    assert!(expected.iter().all(|(label, _)| !label.ends_with("error")), "{expected:?}");

    let (server, solver) = start_server(&text, ServerConfig::default());
    let addr = server.local_addr().to_string();
    const CLIENTS: usize = 3;
    // client k takes lines k, k+N, k+2N, … — interleaved, pipelined.
    let got: Vec<(usize, String, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                let addr = &addr;
                let lines = &lines;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut line_of_id: HashMap<u64, usize> = HashMap::new();
                    for (global, line) in lines.iter().enumerate().skip(k).step_by(CLIENTS) {
                        let id = client.send(line).expect("send");
                        line_of_id.insert(id, global);
                    }
                    client.finish_sending().expect("half-close");
                    let mut out = Vec::new();
                    for _ in 0..line_of_id.len() {
                        let v = client
                            .recv_verdict()
                            .expect("recv")
                            .expect("a verdict per request before close");
                        let global = *line_of_id.get(&v.id).expect("verdict for a sent id");
                        out.push((global, v.outcome, v.positive));
                    }
                    assert!(client.recv().expect("clean close").is_none());
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });

    assert_eq!(got.len(), lines.len(), "one verdict per line across all clients");
    for (global, outcome, positive) in got {
        assert_eq!(
            (outcome.as_str(), positive),
            (expected[global].0.as_str(), expected[global].1),
            "line {global} diverged from file mode: {}",
            lines[global]
        );
    }
    let stats = solver.stats();
    assert_eq!(
        (stats.shed, stats.retries, stats.panics),
        (0, 0, 0),
        "default envelope must admit everything exactly once: {stats:?}"
    );
    assert_eq!(stats.requests, lines.len() as u64, "{stats:?}");
    server.drain();
    let report = server.join();
    assert_eq!(report.connections, CLIENTS as u64, "{report:?}");
    assert_eq!(report.served, lines.len() as u64, "{report:?}");
}

/// `drain` with a decision in flight: the in-flight chase is cancelled
/// through the batch token, its verdict still arrives (one response per
/// request, `terminal=cancelled`), and the connection then closes
/// cleanly. The server's `join` returns.
#[test]
fn drain_mid_batch_cancels_in_flight_into_verdicts() {
    // A diverging Σ under an enormous step budget: without cancellation
    // this request runs for minutes.
    let text = "sigma: e(X,Y) -> e(Y,Z).\n\
                pair: set | q(X) :- e(X,Y) | q(X) :- e(X,Y), e(Y,Z)\n";
    let (server, _solver) = start_server(text, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .send("equivalent: set max_steps=100000000 | q(X) :- e(X,Y) | q(X) :- e(X,Y), e(Y,Z)")
        .expect("send");
    // Let the dispatcher pick the request up so the cancel lands mid-chase.
    std::thread::sleep(Duration::from_millis(300));
    client.drain().expect("draining acknowledged");
    let v = client
        .recv_verdict()
        .expect("recv")
        .expect("cancelled requests still produce a verdict line");
    assert_eq!(v.terminal, "cancelled", "{v:?}");
    assert_eq!(v.outcome, "cancelled", "{v:?}");
    assert!(!v.positive, "{v:?}");
    assert!(client.recv().expect("clean close after flush").is_none());
    let report = server.join();
    assert_eq!(report.served, 1, "{report:?}");
}

/// Malformed lines are answered per line — unknown verbs, header
/// keywords, unknown relations, oversized lines — and the connection
/// keeps serving valid requests afterwards.
#[test]
fn malformed_lines_degrade_per_line_not_per_connection() {
    let text = smoke_text();
    let (server, _solver) = start_server(&text, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for bad in [
        "frobnicate: q(X) :- p(X,Y)".to_string(),
        "sigma: p(X,Y) -> s(X,Z).".to_string(),
        "pair: set | q(X) :- zzz(X) | q(X) :- zzz(X)".to_string(),
        format!("pair: set | q(X) :- {} | q(X) :- p(X,Y)", "a".repeat(70_000)),
    ] {
        let id = client.send(&bad).expect("send");
        let v = client.recv_verdict().expect("recv").expect("a verdict per bad line");
        assert_eq!(v.id, id, "parse errors answer under the request's id");
        assert_eq!((v.outcome.as_str(), v.terminal.as_str()), ("parse-error", "error"), "{v:?}");
        assert!(v.msg.is_some(), "parse errors carry the parser message: {v:?}");
    }

    assert!(client.ping().expect("ping"), "connection must survive hostile lines");
    client.send("minimal: set | q4(X) :- p(X,Y)").expect("send");
    let v = client.recv_verdict().expect("recv").expect("verdict");
    assert_eq!((v.outcome.as_str(), v.terminal.as_str()), ("minimal", "ok"), "{v:?}");
    drop(client);
    server.drain();
    server.join();
}

/// The `max_connections`-th+1 connection gets one `busy max=N` line and
/// a close; the connection it would have displaced is unaffected.
#[test]
fn over_limit_connections_are_rejected_with_busy() {
    let text = smoke_text();
    let (server, _solver) =
        start_server(&text, ServerConfig { max_connections: 1, ..ServerConfig::default() });
    let mut first = Client::connect(server.local_addr()).expect("connect");
    assert!(first.ping().expect("first connection is live"));

    let mut second = Client::connect(server.local_addr()).expect("TCP connect still succeeds");
    match second.recv().expect("read the rejection") {
        Some(Response::Busy { max }) => assert_eq!(max, 1),
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(second.recv().expect("rejected connection closes").is_none());

    assert!(first.ping().expect("surviving connection unaffected"));
    drop(first);
    drop(second);
    server.drain();
    let report = server.join();
    assert_eq!((report.connections, report.rejected), (1, 1), "{report:?}");
}
