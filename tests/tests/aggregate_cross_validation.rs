//! E12 — aggregate equivalence (Theorem 6.3) cross-validated against the
//! aggregate evaluator on Σ-models.

use eqsql_chase::ChaseConfig;
use eqsql_core::aggregate::sigma_agg_equivalent;
use eqsql_core::EquivOutcome;
use eqsql_cq::parser::parse_aggregate_query;
use eqsql_cq::AggregateQuery;
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_gen::db::{repaired_database, DbParams};
use eqsql_relalg::aggregate::{agg_answers_equal, eval_aggregate};
use eqsql_relalg::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (DependencySet, Schema) {
    let sigma = parse_dependencies(
        "emp(I,D,S) -> dept(D).\n\
         emp(I1,D1,S1) & emp(I1,D2,S2) -> D1 = D2.\n\
         emp(I1,D1,S1) & emp(I1,D2,S2) -> S1 = S2.",
    )
    .unwrap();
    let mut schema = Schema::all_bags(&[("emp", 3), ("dept", 1), ("audit", 1)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("emp"));
    schema.mark_set_valued(eqsql_cq::Predicate::new("dept"));
    (sigma, schema)
}

fn pairs() -> Vec<(AggregateQuery, AggregateQuery)> {
    let p =
        |a: &str, b: &str| (parse_aggregate_query(a).unwrap(), parse_aggregate_query(b).unwrap());
    vec![
        p("q(D, sum(S)) :- emp(I,D,S)", "q(D, sum(S)) :- emp(I,D,S), dept(D)"),
        p("q(D, max(S)) :- emp(I,D,S)", "q(D, max(S)) :- emp(I,D,S), dept(D)"),
        p("q(D, count(*)) :- emp(I,D,S)", "q(D, count(*)) :- emp(I,D,S), dept(D)"),
        p("q(D, sum(S)) :- emp(I,D,S)", "q(D, sum(S)) :- emp(I,D,S), audit(I)"),
        p("q(D, max(S)) :- emp(I,D,S), emp(I,D,S2)", "q(D, max(S)) :- emp(I,D,S)"),
        p(
            "q(D, count(*)) :- emp(I,D,S), audit(I)",
            "q(D, count(*)) :- emp(I,D,S), audit(I), audit(I)",
        ),
        p("q(D, min(S)) :- emp(I,D,S), dept(D), dept(D)", "q(D, min(S)) :- emp(I,D,S)"),
    ]
}

#[test]
fn aggregate_verdicts_hold_on_random_models() {
    let (sigma, schema) = fixture();
    let cfg = ChaseConfig::default();
    let mut rng = StdRng::seed_from_u64(0xA66);
    let mut positives = 0usize;
    let mut negatives_with_witness = 0usize;

    for (q1, q2) in pairs() {
        let verdict = sigma_agg_equivalent(&q1, &q2, &sigma, &schema, &cfg);
        let mut models = 0;
        let mut attempts = 0;
        while models < 6 && attempts < 60 {
            attempts += 1;
            let Some(db) = repaired_database(
                &mut rng,
                &schema,
                &sigma,
                &DbParams { tuples_per_relation: 3, domain: 5, dup_prob: 0.0, max_mult: 1 },
                &cfg,
            ) else {
                continue;
            };
            let db = db.to_set(); // aggregate semantics: set-valued D
            if !eqsql_deps::satisfaction::db_satisfies_all(&db, &sigma) {
                continue;
            }
            models += 1;
            let a = eval_aggregate(&q1, &db).unwrap();
            let b = eval_aggregate(&q2, &db).unwrap();
            match &verdict {
                EquivOutcome::Equivalent => {
                    assert!(
                        agg_answers_equal(&a, &b),
                        "said equivalent but answers differ:\n{q1}\n{q2}\nD =\n{db}"
                    );
                    positives += 1;
                }
                EquivOutcome::NotEquivalent => {
                    if !agg_answers_equal(&a, &b) {
                        negatives_with_witness += 1;
                    }
                }
                EquivOutcome::Unknown(e) => panic!("unexpected Unknown: {e}"),
            }
        }
        assert!(models > 0, "no models sampled for pair {q1} / {q2}");
    }
    assert!(positives > 0, "fixture produced no equivalent pairs");
    assert!(negatives_with_witness > 0, "fixture produced no witnessed non-equivalences");
}

#[test]
fn sum_vs_count_vs_max_on_one_model() {
    // One concrete model, all five aggregate functions, hand-checked.
    let db = eqsql_relalg::Database::new()
        .with_ints("emp", &[[1, 10, 100], [2, 10, 50], [3, 20, 70]])
        .with_ints("dept", &[[10], [20]]);
    let sum = parse_aggregate_query("q(D, sum(S)) :- emp(I,D,S), dept(D)").unwrap();
    let cnt = parse_aggregate_query("q(D, count(*)) :- emp(I,D,S), dept(D)").unwrap();
    let mx = parse_aggregate_query("q(D, max(S)) :- emp(I,D,S), dept(D)").unwrap();
    let mn = parse_aggregate_query("q(D, min(S)) :- emp(I,D,S), dept(D)").unwrap();
    let rows = |q: &AggregateQuery| eval_aggregate(q, &db).unwrap();
    use eqsql_cq::Value::Int;
    assert_eq!(rows(&sum).iter().map(|r| r.value).collect::<Vec<_>>(), [Int(150), Int(70)]);
    assert_eq!(rows(&cnt).iter().map(|r| r.value).collect::<Vec<_>>(), [Int(2), Int(1)]);
    assert_eq!(rows(&mx).iter().map(|r| r.value).collect::<Vec<_>>(), [Int(100), Int(70)]);
    assert_eq!(rows(&mn).iter().map(|r| r.value).collect::<Vec<_>>(), [Int(50), Int(70)]);
}
