//! Property-based invariants (proptest) tying the decision procedures to
//! the evaluation engine — experiment ids E8, E11, E15.

use eqsql_chase::{set_chase, sound_chase, ChaseConfig};
use eqsql_core::equiv::{bag_set_equivalent, set_equivalent};
use eqsql_core::minimality::core_of;
use eqsql_core::Semantics;
use eqsql_cq::{are_isomorphic, canonical_representation, Atom, CqQuery, Subst, Term, Var};
use eqsql_deps::regularize::regularize_set;
use eqsql_deps::satisfaction::db_satisfies_all;
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_relalg::eval::{eval, eval_bag, eval_bag_set, eval_set};
use eqsql_relalg::ops::execute_query;
use eqsql_relalg::{Database, Schema, Tuple};
use proptest::prelude::*;

/// Fixed test schema: p/2, s/2, r/1.
fn arity_of(rel: usize) -> usize {
    match rel {
        0 => 2,
        1 => 2,
        _ => 1,
    }
}
fn name_of(rel: usize) -> &'static str {
    match rel {
        0 => "p",
        1 => "s",
        _ => "r",
    }
}

/// Strategy: a small bag database over the fixed schema.
fn db_strategy() -> impl Strategy<Value = Database> {
    proptest::collection::vec((0usize..3, proptest::collection::vec(0i64..4, 2), 1u64..3), 0..10)
        .prop_map(|rows| {
            let mut db = Database::new();
            for (rel, vals, mult) in rows {
                let arity = arity_of(rel);
                let tuple = Tuple::ints(vals.into_iter().take(arity));
                db.insert(name_of(rel), tuple, mult);
            }
            db
        })
}

/// Strategy: a small safe CQ query over the fixed schema.
fn query_strategy() -> impl Strategy<Value = CqQuery> {
    proptest::collection::vec((0usize..3, proptest::collection::vec(0usize..4, 2)), 1..4).prop_map(
        |atoms| {
            let body: Vec<Atom> = atoms
                .into_iter()
                .map(|(rel, vars)| {
                    let args: Vec<Term> = vars
                        .into_iter()
                        .take(arity_of(rel))
                        .map(|i| Term::Var(Var::new(&format!("V{i}"))))
                        .collect();
                    Atom::new(name_of(rel), args)
                })
                .collect();
            let head = vec![Term::Var(body[0].args[0].as_var().unwrap())];
            CqQuery { name: eqsql_cq::Symbol::new("q"), head, body }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// E15 — the operator-algebra evaluator agrees with the naive one
    /// under all three semantics.
    #[test]
    fn plans_agree_with_naive_eval(q in query_strategy(), db in db_strategy()) {
        let naive = eval_bag(&q, &db);
        let plan = execute_query(&q, &db, Semantics::Bag).unwrap();
        prop_assert_eq!(naive.sorted(), plan.sorted());
        let set_db = db.to_set();
        let naive_bs = eval_bag_set(&q, &set_db).unwrap();
        let plan_bs = execute_query(&q, &set_db, Semantics::BagSet).unwrap();
        prop_assert_eq!(naive_bs.sorted(), plan_bs.sorted());
        let naive_s = eval_set(&q, &set_db).unwrap();
        let plan_s = execute_query(&q, &set_db, Semantics::Set).unwrap();
        prop_assert_eq!(naive_s.sorted(), plan_s.sorted());
    }

    /// Theorem 2.1(1) soundness: isomorphic queries have identical bag
    /// answers on every database.
    #[test]
    fn isomorphism_implies_equal_bag_answers(
        q in query_strategy(),
        db in db_strategy(),
        seed in any::<u64>()
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let renamed = eqsql_gen::rename_isomorphic(&mut rng, &q);
        prop_assert!(are_isomorphic(&q, &renamed));
        prop_assert_eq!(eval_bag(&q, &db).sorted(), eval_bag(&renamed, &db).sorted());
    }

    /// Theorem 2.1(2) soundness: queries with isomorphic canonical
    /// representations have identical bag-set answers on set-valued
    /// databases.
    #[test]
    fn canonical_iso_implies_equal_bag_set_answers(
        q in query_strategy(),
        db in db_strategy()
    ) {
        // Duplicate a body atom: the canonical representations stay
        // isomorphic.
        let mut dup = q.clone();
        dup.body.push(dup.body[0].clone());
        prop_assert!(bag_set_equivalent(&q, &dup));
        let set_db = db.to_set();
        prop_assert_eq!(
            eval_bag_set(&q, &set_db).unwrap().sorted(),
            eval_bag_set(&dup, &set_db).unwrap().sorted()
        );
        // And the set answers agree as well (Proposition 2.1).
        prop_assert_eq!(
            eval_set(&q, &set_db).unwrap().sorted(),
            eval_set(&dup, &set_db).unwrap().sorted()
        );
    }

    /// Cores are set-equivalent to their queries and never larger.
    #[test]
    fn core_is_set_equivalent_and_minimal(q in query_strategy(), db in db_strategy()) {
        let c = core_of(&q);
        prop_assert!(set_equivalent(&q, &c));
        prop_assert!(c.body.len() <= canonical_representation(&q).body.len());
        let set_db = db.to_set();
        prop_assert_eq!(
            eval_set(&q, &set_db).unwrap().sorted(),
            eval_set(&c, &set_db).unwrap().sorted()
        );
    }

    /// Proposition 4.1: regularization preserves instance satisfaction.
    #[test]
    fn regularization_preserves_satisfaction(db in db_strategy()) {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & r(X).\n\
             p(X,Y) -> s(X,Z) & s(Z,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        ).unwrap();
        let reg = regularize_set(&sigma);
        prop_assert_eq!(db_satisfies_all(&db, &sigma), db_satisfies_all(&db, &reg));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// E8 / Theorem 2.2 soundness on data: chasing under Σ preserves
    /// set-semantics answers on every Σ-model we can build.
    #[test]
    fn set_chase_preserves_answers_on_models(q in query_strategy(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let sigma = parse_dependencies(
            "p(X,Y) -> s(Y,Z).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        ).unwrap();
        let cfg = ChaseConfig::default();
        let chased = set_chase(&q, &sigma, &cfg).unwrap();
        prop_assume!(!chased.failed);
        let schema = Schema::all_bags(&[("p", 2), ("s", 2), ("r", 1)]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let Some(db) = eqsql_gen::repaired_database(
            &mut rng,
            &schema,
            &sigma,
            &eqsql_gen::db::DbParams { tuples_per_relation: 3, domain: 4,
                dup_prob: 0.0, max_mult: 1 },
            &cfg,
        ) else {
            return Ok(());
        };
        let db = db.to_set();
        prop_assert!(db_satisfies_all(&db, &sigma));
        prop_assert_eq!(
            eval_set(&q, &db).unwrap().sorted(),
            eval_set(&chased.query, &db).unwrap().sorted()
        );
    }

    /// Theorems 4.1/4.3 soundness on data: the sound chase result has
    /// identical answers at its own semantics on every Σ-model.
    #[test]
    fn sound_chase_preserves_answers_on_models(q in query_strategy(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        ).unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("r", 1)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        let cfg = ChaseConfig::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for sem in [Semantics::Bag, Semantics::BagSet] {
            let chased = sound_chase(sem, &q, &sigma, &schema, &cfg).unwrap();
            prop_assume!(!chased.failed);
            let Some(db) = eqsql_gen::repaired_database(
                &mut rng,
                &schema,
                &sigma,
                &eqsql_gen::db::DbParams { tuples_per_relation: 3, domain: 4,
                    dup_prob: 0.2, max_mult: 2 },
                &cfg,
            ) else {
                continue;
            };
            let db = if sem == Semantics::BagSet { db.to_set() } else { db };
            if sem == Semantics::Bag
                && !db.are_set_valued(&schema.set_valued_relations()) {
                continue;
            }
            prop_assert!(db_satisfies_all(&db, &sigma));
            let a = eval(&q, &db, sem).unwrap();
            let b = eval(&chased.query, &db, sem).unwrap();
            prop_assert_eq!(a.sorted(), b.sorted(),
                "sem={} q={} chased={}\n{}", sem, &q, &chased.query, &db);
        }
    }
}

/// The accumulated-renaming bookkeeping of the chase agrees with the
/// result: applying `renaming` to the original query's variables yields
/// terms of the chased query. (Deterministic, but placed here because it
/// guards the assignment-fixing machinery end to end.)
#[test]
fn chase_renaming_is_consistent() {
    let sigma = parse_dependencies(
        "s(X,Y) & s(X,Z) -> Y = Z.\n\
         p(X,Y) -> s(X,W).",
    )
    .unwrap();
    let q = eqsql_cq::parse_query("q(X) :- p(X,Y), s(X,A), s(X,B)").unwrap();
    let chased = set_chase(&q, &sigma, &ChaseConfig::default()).unwrap();
    let vars: std::collections::HashSet<Var> = chased.query.all_vars().into_iter().collect();
    for v in q.all_vars() {
        let img = chased.renaming.apply_term(&Term::Var(v));
        if let Term::Var(w) = img {
            assert!(vars.contains(&w), "image {w} of {v} missing from {}", chased.query);
        }
    }
    let _ = Subst::new(); // keep the import exercised in non-test builds
    let _: DependencySet = regularize_set(&sigma);
}
