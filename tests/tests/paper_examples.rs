//! Every worked example of the paper, end to end (experiment ids E1–E7,
//! E14, E16 of DESIGN.md). Each test exercises the public API across
//! crates and cross-validates decision-procedure verdicts against the
//! evaluation engine on concrete databases.

// The deprecated convenience entry points remain the differential oracle
// for the Solver suite; this legacy-surface test keeps exercising them.
#![allow(deprecated)]

use eqsql_chase::assignment_fixing::is_assignment_fixing_wrt_query;
use eqsql_chase::{max_bag_set_sigma_subset, max_bag_sigma_subset, sound_chase, ChaseConfig};
use eqsql_core::counterexample::{amplify, lemma_d1_database, lemma_d1_m_star};
use eqsql_core::equiv::bag_equivalent_with_set_relations;
use eqsql_core::{bag_equivalent, sigma_equivalent, EquivOutcome, Semantics};
use eqsql_cq::{are_isomorphic, parse_query, Predicate};
use eqsql_deps::regularize::{is_regularized, regularize_tgd};
use eqsql_deps::satisfaction::db_satisfies_all;
use eqsql_deps::{parse_dependencies, set_enforcing};
use eqsql_integration_tests::{schema_4_1, sigma_4_1};
use eqsql_relalg::eval::{eval_bag, eval_bag_set, eval_set};
use eqsql_relalg::{Database, Schema, Tuple};

fn cfg() -> ChaseConfig {
    ChaseConfig::default()
}

/// E1 — Example 4.1 in full.
#[test]
fn example_4_1_complete() {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
    let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();

    // The sound chase chain: (Q4)Σ,B = Q3, (Q4)Σ,BS = Q2.
    let b = sound_chase(Semantics::Bag, &q4, &sigma, &schema, &cfg()).unwrap();
    assert!(are_isomorphic(&b.query, &q3), "(Q4)Σ,B = {}", b.query);
    let bs = sound_chase(Semantics::BagSet, &q4, &sigma, &schema, &cfg()).unwrap();
    assert!(are_isomorphic(&bs.query, &q2), "(Q4)Σ,BS = {}", bs.query);

    // Q1 ≡_{Σ,S} Q4 but not under B/BS.
    assert!(sigma_equivalent(Semantics::Set, &q1, &q4, &sigma, &schema, &cfg()).is_equivalent());
    assert_eq!(
        sigma_equivalent(Semantics::Bag, &q1, &q4, &sigma, &schema, &cfg()),
        EquivOutcome::NotEquivalent
    );
    assert_eq!(
        sigma_equivalent(Semantics::BagSet, &q1, &q4, &sigma, &schema, &cfg()),
        EquivOutcome::NotEquivalent
    );

    // The paper's counterexample database, evaluated by the engine.
    let db = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("r", &[[1]])
        .with_ints("s", &[[1, 3]])
        .with_ints("t", &[[1, 2, 4]])
        .with_ints("u", &[[1, 5], [1, 6]]);
    assert!(db_satisfies_all(&db, &sigma));
    assert_eq!(eval_bag(&q4, &db).multiplicity(&Tuple::ints([1])), 1);
    assert_eq!(eval_bag(&q1, &db).multiplicity(&Tuple::ints([1])), 2);
    assert_eq!(eval_bag_set(&q1, &db).unwrap().multiplicity(&Tuple::ints([1])), 2);
    // Under set semantics the two agree on this database.
    assert_eq!(eval_set(&q1, &db).unwrap(), eval_set(&q4, &db).unwrap());

    // And the *sound* results ARE equivalent at their own semantics.
    assert!(sigma_equivalent(Semantics::Bag, &q3, &q4, &sigma, &schema, &cfg()).is_equivalent());
    assert!(sigma_equivalent(Semantics::BagSet, &q2, &q4, &sigma, &schema, &cfg()).is_equivalent());
    // Verified by the engine on the counterexample database:
    assert_eq!(eval_bag(&q3, &db), eval_bag(&q4, &db));
    assert_eq!(eval_bag_set(&q2, &db).unwrap(), eval_bag_set(&q4, &db).unwrap());
}

/// E2 — Examples 4.2/4.3: assignment-fixing verdicts.
#[test]
fn example_4_2_and_4_3() {
    // Example 4.2: σ1 IS assignment-fixing w.r.t. Q.
    let sigma_42 = parse_dependencies(
        "p(X,Y) -> r(X,Z) & s(Z,W).\n\
         r(X,Y) & r(X,Z) -> Y = Z.\n\
         r(X,Y) & s(Y,T) & r(X,Z) & s(Z,W) -> T = W.",
    )
    .unwrap();
    let q = parse_query("q(X) :- p(X,Y)").unwrap();
    let sigma1 = sigma_42.tgds().next().unwrap().clone();
    assert_eq!(is_assignment_fixing_wrt_query(&q, &sigma_42, &sigma1, &cfg()).unwrap(), Some(true));

    // Example 4.3 (reduced per the erratum note in EXPERIMENTS.md): σ4 is
    // NOT assignment-fixing w.r.t. Q with only the key of R available.
    let sigma_43 = parse_dependencies(
        "p(X,Y) -> r(X,Z) & s(Z,W) & s(X,T).\n\
         r(X,Y) & r(X,Z) -> Y = Z.",
    )
    .unwrap();
    let sigma4 = sigma_43.tgds().next().unwrap().clone();
    assert_eq!(
        is_assignment_fixing_wrt_query(&q, &sigma_43, &sigma4, &cfg()).unwrap(),
        Some(false)
    );
}

/// E3 — Examples 4.4/4.5: regularization is load-bearing.
#[test]
fn example_4_4_and_4_5() {
    // σ4 of Example 4.1 is not regularized; its regularized set is
    // {p -> u(X,Z), p -> t(X,Y,W)}.
    let sigma = sigma_4_1();
    let sigma4 = sigma.tgds().nth(3).unwrap().clone();
    assert!(!is_regularized(&sigma4));
    let reg = regularize_tgd(&sigma4);
    assert_eq!(reg.len(), 2);

    // Example 4.5's unsound whole-σ4 application: Q4' = Q4 + u + t is NOT
    // equivalent to Q4 under Σ' = Σ - {σ2} at bag-set semantics; witness
    // D = {P(1,2), T(1,2,3), U(1,4), U(1,5)}.
    let sigma_prime = parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
         p(X,Y) -> r(X).\n\
         p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
         s(X,Y) & s(X,Z) -> Y = Z.\n\
         t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
    )
    .unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let q4p = parse_query("q4p(X) :- p(X,Y), t(X,Y,W), u(X,Z)").unwrap();
    // The paper lists D = {P(1,2), T(1,2,3), U(1,4), U(1,5)}; σ'1 and σ3
    // additionally force S- and R-facts, which the paper leaves implicit —
    // we add single tuples (they do not affect the counted answers).
    let db = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("t", &[[1, 2, 3]])
        .with_ints("u", &[[1, 4], [1, 5]])
        .with_ints("s", &[[1, 9]])
        .with_ints("r", &[[1]]);
    assert!(db_satisfies_all(&db, &sigma_prime));
    assert_eq!(eval_bag_set(&q4, &db).unwrap().multiplicity(&Tuple::ints([1])), 1);
    assert_eq!(eval_bag_set(&q4p, &db).unwrap().multiplicity(&Tuple::ints([1])), 2);
    // While with the regularized t-half only, sound bag chase reaches Q3
    // and the equivalence holds (Example 4.4 / Note 1).
    let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
    assert!(sigma_equivalent(Semantics::Bag, &q3, &q4, &sigma_prime, &schema_4_1(), &cfg())
        .is_equivalent());
    assert!(sigma_equivalent(Semantics::BagSet, &q3, &q4, &sigma_prime, &schema_4_1(), &cfg())
        .is_equivalent());
}

/// E4 — Example 4.6: the PODS-version "modified chase" result Q' is not
/// equivalent to Q; the engine confirms on the paper's witness D.
#[test]
fn example_4_6() {
    let sigma = parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
         t(X,Y) & t(Z,Y) -> X = Z.",
    )
    .unwrap();
    let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
    let qp = parse_query("qp(X) :- p(X,Y), s(X,Z), t(Z,Y)").unwrap();
    // D = {P(1,2), S(1,1), S(1,3), T(3,2)}.
    let db = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("s", &[[1, 1], [1, 3]])
        .with_ints("t", &[[3, 2]]);
    assert!(db_satisfies_all(&db, &sigma));
    assert_eq!(eval_bag_set(&q, &db).unwrap().multiplicity(&Tuple::ints([1])), 2);
    assert_eq!(eval_bag_set(&qp, &db).unwrap().multiplicity(&Tuple::ints([1])), 1);
    let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
    schema.mark_set_valued(Predicate::new("s"));
    schema.mark_set_valued(Predicate::new("t"));
    assert_eq!(
        sigma_equivalent(Semantics::BagSet, &q, &qp, &sigma, &schema, &cfg()),
        EquivOutcome::NotEquivalent
    );
}

/// E5 — Examples 4.7/4.8: unsound vs sound chase steps, verified on data.
#[test]
fn example_4_7_and_4_8() {
    // 4.7 (reduced Σ, see EXPERIMENTS.md): the chase step with the
    // non-assignment-fixing σ4 is unsound; witness = canonical database of
    // the chased test query, here hand-rolled following the paper:
    // D = {P(1,2), R(1,3), S(1,4), S(1,5), S(3,4), S(3,5)}.
    let sigma = parse_dependencies(
        "p(X,Y) -> r(X,Z) & s(Z,W) & s(X,T).\n\
         r(X,Y) & r(X,Z) -> Y = Z.",
    )
    .unwrap();
    let q = parse_query("q(X) :- p(X,Y)").unwrap();
    let qpp = parse_query("qq(X) :- p(X,Y), r(X,Z), s(Z,W), s(X,T)").unwrap();
    let db = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("r", &[[1, 3]])
        .with_ints("s", &[[1, 4], [1, 5], [3, 4], [3, 5]]);
    assert!(db_satisfies_all(&db, &sigma));
    assert_eq!(eval_bag_set(&q, &db).unwrap().multiplicity(&Tuple::ints([1])), 1);
    assert_eq!(eval_bag_set(&qpp, &db).unwrap().multiplicity(&Tuple::ints([1])), 4);

    // 4.8: the sound chase step with ν1 adds a FRESH s-subgoal; the result
    // Q'' is equivalent to Q under both semantics — engine-checked on a
    // family of Σ-models.
    let sigma2 = parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
         t(X,Y) & t(Z,Y) -> X = Z.",
    )
    .unwrap();
    let q2 = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
    let q2pp = parse_query("qq(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y)").unwrap();
    let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
    schema.mark_set_valued(Predicate::new("s"));
    schema.mark_set_valued(Predicate::new("t"));
    assert!(sigma_equivalent(Semantics::Bag, &q2, &q2pp, &sigma2, &schema, &cfg()).is_equivalent());
    // Engine check on the model D2 = Example 4.6's D extended to satisfy
    // ν1 for every p-assignment.
    let db2 = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("s", &[[1, 1], [1, 3]])
        .with_ints("t", &[[3, 2]]);
    assert!(db_satisfies_all(&db2, &sigma2));
    assert_eq!(eval_bag(&q2, &db2), eval_bag(&q2pp, &db2));
}

/// E6 — Example 4.9 / Theorem 4.2 / Examples D.1–D.2.
#[test]
fn example_4_9_and_d1_d2() {
    let schema = schema_4_1();
    let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
    let q5 = parse_query("q5(X) :- p(X,Y), t(X,Y,W), s(X,Z), s(X,Z)").unwrap();
    // Not bag-equivalent outright, but bag-equivalent once S is a set.
    assert!(!bag_equivalent(&q3, &q5));
    assert!(bag_equivalent_with_set_relations(&q3, &q5, &schema));

    // Example D.1's witness: S a bag with a duplicated tuple.
    let mut db = Database::new().with_ints("p", &[[1, 2]]).with_ints("t", &[[1, 2, 5]]);
    db.insert("s", Tuple::ints([1, 3]), 2);
    assert_eq!(eval_bag(&q3, &db).multiplicity(&Tuple::ints([1])), 2);
    assert_eq!(eval_bag(&q5, &db).multiplicity(&Tuple::ints([1])), 4);

    // Example D.2: Q7/Q8 over the bag relation R; m = 5 > m* = 4 separates
    // quadratically vs linearly.
    let q7 = parse_query("q7(X) :- p(X,Y), r(X), r(X)").unwrap();
    let q8 = parse_query("q8(X) :- p(X,Y), r(X)").unwrap();
    assert!(lemma_d1_m_star(&q7, &q8, Predicate::new("r")) > 4);
    let base = lemma_d1_database(&q8, Predicate::new("r"), 1);
    for m in [2u64, 5, 9] {
        let amp = amplify(&base, Predicate::new("r"), m);
        let t = eval_bag(&q8, &amp);
        let t7 = eval_bag(&q7, &amp);
        let tuple = t.core_set().next().unwrap().clone();
        assert_eq!(t.multiplicity(&tuple), m);
        assert_eq!(t7.multiplicity(&tuple), m * m);
    }
}

/// E7 — Example 5.1: assignment-fixing is query-dependent.
#[test]
fn example_5_1() {
    let sigma = parse_dependencies(
        "r(X,Y) & r(X,Z) -> Y = Z.\n\
         p(X,Y) -> r(X,Z) & s(Z,W) & s(X,T).\n\
         r(X,Z) & s(Z,W) & s(X,T) -> W = T.\n\
         p(X,Y) & r(A,X) & s(X,T) -> X = T.",
    )
    .unwrap();
    let sigma4 = sigma.tgds().next().unwrap().clone();
    let q_prime = parse_query("q(X) :- p(X,Y), r(A,X)").unwrap();
    assert_eq!(
        is_assignment_fixing_wrt_query(&q_prime, &sigma, &sigma4, &cfg()).unwrap(),
        Some(true)
    );
}

/// E10 — Theorem 5.3 / Proposition 5.2: the Max-Σ-Subset chain.
#[test]
fn max_subset_chain() {
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let b = max_bag_sigma_subset(&q4, &sigma, &schema, &cfg()).unwrap();
    let bs = max_bag_set_sigma_subset(&q4, &sigma, &schema, &cfg()).unwrap();
    assert_eq!(b.subset.len(), 4); // σ1, σ2, σ7, σ8
    assert_eq!(bs.subset.len(), 5); // + σ3
    for d in b.subset.iter() {
        assert!(bs.subset.contains(d));
    }
}

/// E14 — Examples E.1/E.2: key-based steps can still be unsound.
#[test]
fn example_e1_e2() {
    // E.1 (bag): σ2: r(X,Y) -> p(X,Y) with key egd on P, but P is a bag.
    // D with duplicated P-tuple separates Q and Q'.
    let q = parse_query("q(A) :- r(A,B)").unwrap();
    let qp = parse_query("qp(A) :- r(A,B), p(A,B)").unwrap();
    let mut db = Database::new().with_ints("r", &[[7, 8]]);
    db.insert("p", Tuple::ints([7, 8]), 2);
    let sigma = parse_dependencies(
        "p(X,Y) & p(X,Z) -> Y = Z.\n\
         r(X,Y) -> p(X,Y).",
    )
    .unwrap();
    assert!(db_satisfies_all(&db, &sigma));
    assert_eq!(eval_bag(&q, &db).multiplicity(&Tuple::ints([7])), 1);
    assert_eq!(eval_bag(&qp, &db).multiplicity(&Tuple::ints([7])), 2);
    // The sound bag chase must therefore refuse the step when P is a bag:
    let schema = Schema::all_bags(&[("r", 2), ("p", 2)]);
    let chased = sound_chase(Semantics::Bag, &q, &sigma, &schema, &cfg()).unwrap();
    assert!(are_isomorphic(&chased.query, &q), "got {}", chased.query);

    // E.2 (bag-set): non-key-based σ: r(X,Y) -> p(X,Z). Witness
    // D = {R(a,b), P(a,c), P(a,d)}.
    let sigma2 = parse_dependencies("r(X,Y) -> p(X,Z).").unwrap();
    let q2 = parse_query("q(A) :- r(A,B)").unwrap();
    let q2p = parse_query("qp(A) :- r(A,B), p(A,C)").unwrap();
    let db2 = Database::new().with_ints("r", &[[1, 2]]).with_ints("p", &[[1, 3], [1, 4]]);
    assert!(db_satisfies_all(&db2, &sigma2));
    assert_eq!(eval_bag_set(&q2, &db2).unwrap().multiplicity(&Tuple::ints([1])), 1);
    assert_eq!(eval_bag_set(&q2p, &db2).unwrap().multiplicity(&Tuple::ints([1])), 2);
    // And the sound bag-set chase refuses it (not assignment-fixing):
    let schema2 = Schema::all_bags(&[("r", 2), ("p", 2)]);
    let chased2 = sound_chase(Semantics::BagSet, &q2, &sigma2, &schema2, &cfg()).unwrap();
    assert!(are_isomorphic(&chased2.query, &q2));
}

/// E16 — Appendix C: the tuple-ID set-enforcement framework.
#[test]
fn tuple_id_framework() {
    use eqsql_deps::satisfaction::db_satisfies_egd;
    let schema = Schema::all_bags(&[("s", 2)]);
    let (wide_schema, sigma_tid) = set_enforcing::with_tuple_ids(&schema, &[Predicate::new("s")]);
    assert_eq!(wide_schema.arity(Predicate::new("s")), Some(3));
    assert!(wide_schema.is_set_valued(Predicate::new("s")));
    let egd = sigma_tid.egds().next().unwrap();

    // A bag instance widened with unique tids violates σ_tid; a set
    // instance satisfies it, and Q_vals is then set-valued.
    let mut bag_db = Database::new();
    bag_db.insert("s", Tuple::ints([1, 3]), 2);
    let wide = set_enforcing::assign_tids(&bag_db, Predicate::new("s"), 100);
    assert!(!db_satisfies_egd(&wide, egd));

    let set_db = Database::new().with_ints("s", &[[1, 3], [2, 4]]);
    let wide2 = set_enforcing::assign_tids(&set_db, Predicate::new("s"), 0);
    assert!(db_satisfies_egd(&wide2, egd));
    assert!(set_enforcing::q_vals(&wide2, Predicate::new("s")).is_set_valued());
}
