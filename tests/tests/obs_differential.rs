//! Differential: observability must be inert. The instrumentation layer —
//! the global gate, the engine step probes, the per-request trace spans —
//! may never change what the solver computes: verdicts, chase step counts
//! and cache hit/miss attribution must be bit-identical whether
//! instrumentation is disabled, enabled with a sink, or disabled again.
//! While enabled, the solver must emit exactly one structured event per
//! batch request.

use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::sigma::SigmaParams;
use eqsql_gen::{random_weakly_acyclic_sigma, rename_isomorphic};
use eqsql_relalg::{Schema, Semantics};
use eqsql_service::{Error, Request, RequestOpts, Solver, TraceSink, VecSink, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn schema() -> Schema {
    let mut s = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 3), ("d", 1)]);
    s.mark_set_valued(eqsql_cq::Predicate::new("b"));
    s.mark_set_valued(eqsql_cq::Predicate::new("c"));
    s
}

/// What one suite pass observed per round: verdict labels plus the
/// counters that pin the computation itself (steps and attribution).
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    labels: Vec<String>,
    chase_steps: u64,
    cache_hits: u64,
    cache_misses: u64,
    entries: usize,
}

/// 150 random weakly acyclic draws, three semantics each, batched through
/// `decide_all` (the observing path) on a fresh solver per round. The RNG
/// is re-seeded per pass, so two passes see byte-identical inputs.
fn run_suite(observe: bool) -> Vec<Observation> {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(0x0B5);
    let mut out = Vec::new();
    for round in 0..150 {
        let sigma = random_weakly_acyclic_sigma(
            &mut rng,
            &schema,
            &SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 },
        );
        let params = QueryParams {
            atoms: 2 + (round % 3),
            vars: 4,
            const_prob: 0.1,
            const_domain: 3,
            max_head: 2,
        };
        let q1 = random_query(&mut rng, &schema, &params);
        let q2 = if rng.gen_bool(0.5) {
            rename_isomorphic(&mut rng, &q1)
        } else {
            random_query(&mut rng, &schema, &params)
        };
        let batch: Vec<Request> = [Semantics::Set, Semantics::Bag, Semantics::BagSet]
            .into_iter()
            .map(|sem| Request::Equivalent {
                q1: q1.clone(),
                q2: q2.clone(),
                opts: RequestOpts::with_sem(sem),
            })
            .collect();
        let sink = Arc::new(VecSink::new());
        let mut builder = Solver::builder(sigma, schema.clone());
        if observe {
            builder = builder.trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        }
        let solver = builder.build();
        let report = solver.decide_all(&batch);
        if observe {
            let lines = sink.lines();
            assert_eq!(lines.len(), batch.len(), "round {round}: one event per request");
            for line in &lines {
                assert!(line.starts_with("event=request "), "round {round}: {line}");
                assert!(line.contains(" wall_us="), "round {round}: {line}");
                assert!(line.contains(" verb=equivalent "), "round {round}: {line}");
            }
        }
        let label = |v: &Result<Verdict, Error>| match v {
            Ok(v) => v.answer.label().to_string(),
            Err(e) => format!("{e:?}"),
        };
        out.push(Observation {
            labels: report.verdicts.iter().map(label).collect(),
            chase_steps: report.stats.chase_steps,
            cache_hits: report.stats.cache_hits,
            cache_misses: report.stats.cache_misses,
            entries: solver.stats().cache.entries,
        });
    }
    out
}

/// One test, three sequential passes over identical inputs: the phases
/// flip the process-global gate between passes, never concurrently with
/// one (this is the binary's only test, so nothing else races the gate).
#[test]
fn instrumentation_on_or_off_is_computation_identical() {
    let baseline = run_suite(false);
    eqsql_obs::set_enabled(true);
    let observed = run_suite(true);
    eqsql_obs::set_enabled(false);
    let again = run_suite(false);
    assert_eq!(baseline, observed, "enabling instrumentation changed a computation");
    assert_eq!(baseline, again, "disabling instrumentation did not restore the baseline");
}
