//! Batched decisions through the `eqsql_service::Solver`: one shared Σ, a
//! stream of heterogeneous requests (equivalence pairs, minimality, a C&B
//! reformulation), one shared chase-result cache across all of them.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin batched_equivalence
//! ```

use eqsql_cq::parse_query;
use eqsql_deps::parse_dependencies;
use eqsql_relalg::Schema;
use eqsql_service::{Answer, Request, RequestOpts, Semantics, Solver};

fn main() {
    // Example 4.1 of the paper.
    let sigma = parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
         p(X,Y) -> t(X,Y,W).\n\
         p(X,Y) -> r(X).\n\
         p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
         s(X,Y) & s(X,Z) -> Y = Z.\n\
         t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
    )
    .expect("Σ parses");
    let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
    schema.mark_set_valued(eqsql_cq::Predicate::new("t"));

    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
    let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();

    // The batch: the paper's equivalence matrix against Q4, per semantics.
    let mut requests = Vec::new();
    for q in [&q1, &q2, &q3] {
        for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
            requests.push(Request::Equivalent {
                q1: (*q).clone(),
                q2: q4.clone(),
                opts: RequestOpts::with_sem(sem),
            });
        }
    }

    let solver = Solver::builder(sigma, schema).threads(4).build();
    let report = solver.decide_all(&requests);
    println!("batched verdicts over Σ of Example 4.1:");
    for (req, verdict) in requests.iter().zip(report.verdicts.iter()) {
        let Request::Equivalent { q1, q2, opts } = req else { unreachable!() };
        let mark = match verdict {
            Ok(v) if matches!(v.answer, Answer::Equivalent { .. }) => "≡",
            Ok(_) => "≢",
            Err(_) => "?",
        };
        println!("  {}  {}_{{Σ,{}}}  {}", q1.name, mark, opts.sem.unwrap(), q2.name);
    }
    println!(
        "\n{} requests on {} threads: {} chases computed, {} served from cache",
        requests.len(),
        report.threads,
        report.stats.cache_misses,
        report.stats.cache_hits
    );

    // The same solver answers the C&B family: the backchase re-chases
    // candidate subqueries the batch above already chased, so the shared
    // cache turns the quadratic re-chasing into hash lookups.
    let verdict = solver
        .decide(&Request::Reformulate {
            q: q3.clone(),
            opts: RequestOpts::with_sem(Semantics::Bag),
        })
        .expect("terminating chase");
    let Answer::Reformulated { reformulations, .. } = &verdict.answer else {
        unreachable!("Reformulate answers Reformulated")
    };
    println!("\nBag-C&B over the shared cache: Σ-minimal reformulations of {}:", q3.name);
    for q in reformulations {
        println!("  {q}");
    }
    let s = solver.stats();
    println!(
        "solver after both workloads: {} requests, {} batches, cache {} hits / {} misses, {} entries",
        s.requests, s.batches, s.cache.hits, s.cache.misses, s.cache.entries
    );
}
