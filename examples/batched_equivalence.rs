//! Batched Σ-equivalence through `eqsql_service`: one shared Σ, a stream
//! of query pairs, a shared chase-result cache — and the same cache handle
//! accelerating a C&B reformulation run.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin batched_equivalence
//! ```

use eqsql_chase::ChaseConfig;
use eqsql_core::{cnb_via, CnbOptions, EquivOutcome, Semantics};
use eqsql_cq::parse_query;
use eqsql_deps::parse_dependencies;
use eqsql_relalg::Schema;
use eqsql_service::{BatchSession, ChaseCache, EquivRequest};
use std::sync::Arc;

fn main() {
    // Example 4.1 of the paper.
    let sigma = parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
         p(X,Y) -> t(X,Y,W).\n\
         p(X,Y) -> r(X).\n\
         p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
         s(X,Y) & s(X,Z) -> Y = Z.\n\
         t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
    )
    .expect("Σ parses");
    let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
    schema.mark_set_valued(eqsql_cq::Predicate::new("t"));

    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
    let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();

    // The batch: the paper's equivalence matrix against Q4, per semantics.
    let mut pairs = Vec::new();
    for q in [&q1, &q2, &q3] {
        for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
            pairs.push(EquivRequest { sem, q1: (*q).clone(), q2: q4.clone() });
        }
    }

    let cache = Arc::new(ChaseCache::default());
    let session = BatchSession::new(sigma.clone(), schema.clone(), ChaseConfig::default())
        .with_cache(Arc::clone(&cache))
        .with_threads(4);
    let outcome = session.run(&pairs);
    println!("batched verdicts over Σ of Example 4.1:");
    for (req, verdict) in pairs.iter().zip(outcome.verdicts.iter()) {
        let mark = match verdict {
            EquivOutcome::Equivalent => "≡",
            EquivOutcome::NotEquivalent => "≢",
            EquivOutcome::Unknown(_) => "?",
        };
        println!("  {}  {}_{{Σ,{}}}  {}", req.q1.name, mark, req.sem, req.q2.name);
    }
    let s = outcome.stats;
    println!(
        "\n{} pairs on {} threads: {} chases computed, {} served from cache",
        s.pairs, s.threads, s.cache_misses, s.cache_hits
    );

    // The same cache handle plugs into the C&B family: the backchase
    // re-chases candidate subqueries the batch above already chased.
    let r = cnb_via(
        cache.as_ref(),
        Semantics::Bag,
        &q3,
        &sigma,
        &schema,
        &ChaseConfig::default(),
        &CnbOptions::default(),
    )
    .expect("terminating chase");
    println!("\nBag-C&B over the shared cache: Σ-minimal reformulations of {}:", q3.name);
    for q in &r.reformulations {
        println!("  {q}");
    }
    let c = cache.stats();
    println!(
        "cache after both workloads: {} hits / {} misses, {} entries",
        c.hits, c.misses, c.entries
    );
}
