//! Chase explorer: step-by-step traces of the set chase and the sound
//! bag/bag-set chase, with regularization and per-tgd assignment-fixing
//! verdicts. Run without arguments for a built-in tour of Example 4.1, or
//! pass a file containing a query (first line) and dependencies (rest).
//! With `db=facts.txt` (one `p(1, 2).` fact per statement; repetition =
//! multiplicity) the original and chased queries are also evaluated.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin chase_explorer
//! cargo run -p eqsql-examples --bin chase_explorer -- my_input.txt set_valued=s,t db=facts.txt
//! ```

use eqsql_chase::assignment_fixing::is_assignment_fixing_wrt_query;
use eqsql_chase::{is_key_based, sound_chase, ChaseConfig};
use eqsql_core::Semantics;
use eqsql_cq::{parse_query, CqQuery};
use eqsql_deps::regularize::{is_regularized, regularize_set};
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_relalg::Schema;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let db = args.iter().find_map(|a| a.strip_prefix("db=")).map(|path| {
        let text = std::fs::read_to_string(path).expect("readable database file");
        eqsql_relalg::text::parse_database(&text).expect("valid facts")
    });
    let (query, sigma, set_valued) = match args.iter().find(|a| !a.contains('=')) {
        Some(path) => {
            let text = std::fs::read_to_string(path).expect("readable input file");
            let mut lines = text.lines();
            let q = lines.next().expect("first line: query");
            let rest: String = lines.collect::<Vec<_>>().join("\n");
            let set_valued = args
                .iter()
                .find_map(|a| a.strip_prefix("set_valued="))
                .map(|s| s.split(',').map(str::to_string).collect::<Vec<_>>())
                .unwrap_or_default();
            (
                parse_query(q).expect("valid query"),
                parse_dependencies(&rest).expect("valid dependencies"),
                set_valued,
            )
        }
        None => {
            let q = parse_query("q4(X) :- p(X,Y)").unwrap();
            let sigma = parse_dependencies(
                "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
                 p(X,Y) -> t(X,Y,W).\n\
                 p(X,Y) -> r(X).\n\
                 p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
                 s(X,Y) & s(X,Z) -> Y = Z.\n\
                 t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
            )
            .unwrap();
            (q, sigma, vec!["s".to_string(), "t".to_string()])
        }
    };
    explore(&query, &sigma, &set_valued, db.as_ref());
}

fn infer_schema(q: &CqQuery, sigma: &DependencySet, set_valued: &[String]) -> Schema {
    // Collect relation arities from the query and Σ.
    let mut schema = Schema::new();
    let mut record = |atom: &eqsql_cq::Atom| {
        if schema.get(atom.pred).is_none() {
            schema.add(eqsql_relalg::RelSchema::bag(atom.pred.name(), atom.arity()));
        }
    };
    q.body.iter().for_each(&mut record);
    for d in sigma.iter() {
        d.lhs().iter().for_each(&mut record);
        if let Some(t) = d.as_tgd() {
            t.rhs.iter().for_each(&mut record);
        }
    }
    for name in set_valued {
        schema.mark_set_valued(eqsql_cq::Predicate::new(name));
    }
    schema
}

fn explore(
    q: &CqQuery,
    sigma: &DependencySet,
    set_valued: &[String],
    db: Option<&eqsql_relalg::Database>,
) {
    let schema = infer_schema(q, sigma, set_valued);
    println!("query: {q}\n");
    println!("schema:\n{schema}");

    println!("Σ as given:");
    for d in sigma.iter() {
        let note = match d.as_tgd() {
            Some(t) if !is_regularized(t) => "  [NOT regularized]",
            _ => "",
        };
        println!("  {d}{note}");
    }
    let reg = regularize_set(sigma);
    println!("\nΣ regularized ({} dependencies):", reg.len());
    for d in reg.iter() {
        println!("  {d}");
    }

    let config = ChaseConfig::default();
    println!("\nper-tgd analysis w.r.t. the query:");
    for tgd in reg.tgds() {
        let fixing = is_assignment_fixing_wrt_query(q, &reg, tgd, &config);
        let fixing_txt = match fixing {
            Ok(Some(true)) => "assignment-fixing",
            Ok(Some(false)) => "NOT assignment-fixing",
            Ok(None) => "not applicable",
            Err(_) => "unknown (budget)",
        };
        let kb = if is_key_based(tgd, &reg, &schema) { ", key-based" } else { "" };
        let sv = if tgd.rhs.iter().all(|a| schema.is_set_valued(a.pred)) {
            ", set-valued conclusions"
        } else {
            ", bag conclusions"
        };
        println!("  {tgd}\n      -> {fixing_txt}{kb}{sv}");
    }

    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        println!("\n=== sound chase under {sem}-semantics ===");
        match sound_chase(sem, q, sigma, &schema, &config) {
            Ok(r) => {
                for entry in &r.chased.trace {
                    println!("  {entry}");
                }
                if r.failed {
                    println!("  CHASE FAILED: query unsatisfiable under Σ");
                } else {
                    println!("  result ({} steps): {}", r.steps, r.query);
                    if let Some(db) = db {
                        use eqsql_deps::satisfaction::db_satisfies_all;
                        if !db_satisfies_all(db, sigma) {
                            println!("  [db does not satisfy Σ — answers may differ]");
                        }
                        let a = eqsql_relalg::eval::eval(q, db, sem);
                        let b = eqsql_relalg::eval::eval(&r.query, db, sem);
                        match (a, b) {
                            (Ok(a), Ok(b)) => {
                                println!("  Q(D,{sem})      = {a}");
                                println!("  chased(D,{sem}) = {b}");
                            }
                            _ => println!("  [database not admissible for {sem}-semantics]"),
                        }
                    }
                }
            }
            Err(e) => println!("  error: {e}"),
        }
    }
}
