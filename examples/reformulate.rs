//! Reformulation: run the C&B family on a warehouse-style SQL schema and
//! show how the space of Σ-minimal reformulations depends on the
//! evaluation semantics (the Query-Reformulation Problem of §3).
//!
//! ```sh
//! cargo run -p eqsql-examples --bin reformulate
//! ```

use eqsql_core::problem::{ReformulationProblem, Solutions};
use eqsql_core::Semantics;
use eqsql_sql::{lower_select, parse_sql, render_cq, Catalog, SqlStatement};

fn main() {
    let ddl = "
        CREATE TABLE customer (id INT, region INT, PRIMARY KEY (id));
        CREATE TABLE orders   (id INT, customer INT, item INT,
                               PRIMARY KEY (id),
                               FOREIGN KEY (customer) REFERENCES customer (id));
        CREATE TABLE item     (id INT, weight INT, PRIMARY KEY (id));
        CREATE TABLE shipment (order_id INT, carrier INT);
    ";
    let catalog = Catalog::from_ddl(ddl).expect("valid DDL");
    println!("Derived dependencies:\n{}", catalog.sigma);

    // "Orders together with their customer's region" formulated with an
    // extra customer join that the foreign key + key make redundant.
    let sql = "SELECT o.id, c.region FROM orders o, customer c WHERE o.customer = c.id";
    let stmts = parse_sql(sql).unwrap();
    let SqlStatement::Select(s) = &stmts[0] else { panic!() };
    let Ok(eqsql_sql::LoweredQuery::Cq { query, .. }) = lower_select(s, &catalog, "q") else {
        panic!()
    };
    println!("input SQL: {sql}");
    println!("as CQ:     {query}\n");

    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let problem = ReformulationProblem::cq(
            catalog.schema.clone(),
            sem,
            query.clone(),
            catalog.sigma.clone(),
        );
        match problem.solve() {
            Ok(Solutions::Cq(result)) => {
                println!(
                    "{sem}-semantics: {} Σ-minimal reformulation(s), {} candidates tested",
                    result.reformulations.len(),
                    result.candidates_tested
                );
                for r in &result.reformulations {
                    println!("  CQ : {r}");
                    println!("  SQL: {}", render_cq(r, Some(&catalog), sem == Semantics::Set));
                }
            }
            Ok(Solutions::Agg(_)) => unreachable!(),
            Err(e) => println!("{sem}: failed: {e}"),
        }
        println!();
    }
    println!(
        "Note: the customer join cannot be dropped here even under set\n\
         semantics (c.region is projected), but the reformulation engine\n\
         confirms the query is already Σ-minimal in every semantics —\n\
         and the candidate counts show how much the backchase explored."
    );

    // Second query: an existence join that IS redundant.
    let sql2 = "SELECT o.item FROM orders o, customer c WHERE o.customer = c.id";
    let stmts2 = parse_sql(sql2).unwrap();
    let SqlStatement::Select(s2) = &stmts2[0] else { panic!() };
    let Ok(eqsql_sql::LoweredQuery::Cq { query: q2, .. }) = lower_select(s2, &catalog, "q2") else {
        panic!()
    };
    println!("\ninput SQL: {sql2}\nas CQ:     {q2}\n");
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let problem = ReformulationProblem::cq(
            catalog.schema.clone(),
            sem,
            q2.clone(),
            catalog.sigma.clone(),
        );
        if let Ok(sol) = problem.solve() {
            println!("{sem}-semantics minimal reformulations:");
            for r in sol.rendered() {
                println!("  {r}");
            }
        }
    }
    println!(
        "\nThe customer join disappears under every semantics: the FK makes\n\
         it answer-preserving and the PRIMARY KEY + set-valuedness make it\n\
         multiplicity-preserving (an assignment-fixing, set-valued chase\n\
         step in reverse)."
    );
}
