//! Quickstart: decide equivalence of two SQL queries under the constraints
//! of a SQL schema, under all three evaluation semantics, through the
//! `eqsql_service::Solver` façade.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin quickstart
//! ```

use eqsql_service::{Answer, Request, RequestOpts, Semantics, Solver};
use eqsql_sql::{lower_select, parse_sql, Catalog, SqlStatement};

fn main() {
    // A keyed schema: emp/dept are sets (PRIMARY KEY), log is a bag, and
    // emp.dept is a foreign key into dept.
    let ddl = "
        CREATE TABLE dept (id INT, city VARCHAR, PRIMARY KEY (id));
        CREATE TABLE emp  (id INT, dept INT, salary INT,
                           PRIMARY KEY (id),
                           FOREIGN KEY (dept) REFERENCES dept (id));
        CREATE TABLE log  (emp INT, note VARCHAR);
    ";
    let catalog = Catalog::from_ddl(ddl).expect("valid DDL");
    println!("Schema:\n{}", catalog.schema);
    println!("Dependencies derived from the DDL:\n{}", catalog.sigma);

    // One Solver per (Σ, schema): every decision below shares its chase
    // cache, and each request picks its semantics via RequestOpts.
    let solver = Solver::builder(catalog.sigma.clone(), catalog.schema.clone()).build();

    // Two formulations of "salaries of employees": the second joins dept
    // through the foreign key — redundant or not, depending on semantics.
    let sql1 = "SELECT e.salary FROM emp e";
    let sql2 = "SELECT e.salary FROM emp e, dept d WHERE e.dept = d.id";

    let q1 = lower(&catalog, sql1, "q1");
    let q2 = lower(&catalog, sql2, "q2");
    println!("Q1: {sql1}\n    as CQ: {q1}");
    println!("Q2: {sql2}\n    as CQ: {q2}\n");

    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let verdict = solver
            .decide(&Request::Equivalent {
                q1: q1.clone(),
                q2: q2.clone(),
                opts: RequestOpts::with_sem(sem),
            })
            .expect("terminating chase");
        let text = match verdict.answer {
            Answer::Equivalent { .. } => "EQUIVALENT",
            _ => "not equivalent",
        };
        println!("under {sem:>2}-semantics: {text}");
    }
    println!();
    println!(
        "The dept join is redundant under every semantics here: the foreign\n\
         key guarantees a matching dept row, the PRIMARY KEY makes it unique,\n\
         and dept is set-valued — exactly the paper's conditions for a sound\n\
         (assignment-fixing, set-valued) chase step.\n"
    );

    // Contrast: join through the bag-valued log table. Verdicts carry
    // evidence — on inequivalence the Solver searches for a separating
    // database D ⊨ Σ and replays it before handing it out.
    let sql3 = "SELECT e.salary FROM emp e, log l WHERE l.emp = e.id";
    let q3 = lower(&catalog, sql3, "q3");
    println!("Q3: {sql3}\n    as CQ: {q3}\n");
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let req = Request::Equivalent {
            q1: q1.clone(),
            q2: q3.clone(),
            opts: RequestOpts::with_sem(sem),
        };
        let verdict = solver.decide(&req).expect("terminating chase");
        let text = match &verdict.answer {
            Answer::Equivalent { .. } => "EQUIVALENT".to_string(),
            Answer::NotEquivalent { counterexample: Some(cex) } => {
                // The certificate is machine-checkable, not decorative.
                verdict.verify(&req, solver.sigma(), solver.schema()).expect("evidence replays");
                format!("not equivalent (separating database over {} tuples)", cex.db.len())
            }
            _ => "not equivalent".to_string(),
        };
        println!("Q1 vs Q3 under {sem:>2}-semantics: {text}");
    }
    println!(
        "\nQ3 multiplies each salary by its number of log entries (and drops\n\
         unlogged employees): never equivalent, under any semantics."
    );
    let stats = solver.stats();
    println!(
        "\nsolver: {} requests, {} chase-cache hits / {} misses",
        stats.requests, stats.cache.hits, stats.cache.misses
    );
}

fn lower(catalog: &Catalog, sql: &str, name: &str) -> eqsql_cq::CqQuery {
    let stmts = parse_sql(sql).expect("valid SQL");
    let SqlStatement::Select(s) = &stmts[0] else { panic!("expected SELECT") };
    match lower_select(s, catalog, name).expect("lowerable") {
        eqsql_sql::LoweredQuery::Cq { query, .. } => query,
        eqsql_sql::LoweredQuery::Agg { .. } => panic!("expected plain CQ"),
    }
}
