//! Quickstart: decide equivalence of two SQL queries under the constraints
//! of a SQL schema, under all three evaluation semantics.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin quickstart
//! ```

use eqsql_chase::ChaseConfig;
use eqsql_core::{sigma_equivalent, EquivOutcome, Semantics};
use eqsql_sql::{lower_select, parse_sql, Catalog, SqlStatement};

fn main() {
    // A keyed schema: emp/dept are sets (PRIMARY KEY), log is a bag, and
    // emp.dept is a foreign key into dept.
    let ddl = "
        CREATE TABLE dept (id INT, city VARCHAR, PRIMARY KEY (id));
        CREATE TABLE emp  (id INT, dept INT, salary INT,
                           PRIMARY KEY (id),
                           FOREIGN KEY (dept) REFERENCES dept (id));
        CREATE TABLE log  (emp INT, note VARCHAR);
    ";
    let catalog = Catalog::from_ddl(ddl).expect("valid DDL");
    println!("Schema:\n{}", catalog.schema);
    println!("Dependencies derived from the DDL:\n{}", catalog.sigma);

    // Two formulations of "salaries of employees": the second joins dept
    // through the foreign key — redundant or not, depending on semantics.
    let sql1 = "SELECT e.salary FROM emp e";
    let sql2 = "SELECT e.salary FROM emp e, dept d WHERE e.dept = d.id";

    let q1 = lower(&catalog, sql1, "q1");
    let q2 = lower(&catalog, sql2, "q2");
    println!("Q1: {sql1}\n    as CQ: {q1}");
    println!("Q2: {sql2}\n    as CQ: {q2}\n");

    let config = ChaseConfig::default();
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let verdict = sigma_equivalent(sem, &q1, &q2, &catalog.sigma, &catalog.schema, &config);
        let text = match verdict {
            EquivOutcome::Equivalent => "EQUIVALENT",
            EquivOutcome::NotEquivalent => "not equivalent",
            EquivOutcome::Unknown(_) => "unknown (chase budget)",
        };
        println!("under {sem:>2}-semantics: {text}");
    }
    println!();
    println!(
        "The dept join is redundant under every semantics here: the foreign\n\
         key guarantees a matching dept row, the PRIMARY KEY makes it unique,\n\
         and dept is set-valued — exactly the paper's conditions for a sound\n\
         (assignment-fixing, set-valued) chase step.\n"
    );

    // Contrast: join through the bag-valued log table.
    let sql3 = "SELECT e.salary FROM emp e, log l WHERE l.emp = e.id";
    let q3 = lower(&catalog, sql3, "q3");
    println!("Q3: {sql3}\n    as CQ: {q3}\n");
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let verdict = sigma_equivalent(sem, &q1, &q3, &catalog.sigma, &catalog.schema, &config);
        println!(
            "Q1 vs Q3 under {sem:>2}-semantics: {}",
            if verdict.is_equivalent() { "EQUIVALENT" } else { "not equivalent" }
        );
    }
    println!(
        "\nQ3 multiplies each salary by its number of log entries (and drops\n\
         unlogged employees): never equivalent, under any semantics."
    );
}

fn lower(catalog: &Catalog, sql: &str, name: &str) -> eqsql_cq::CqQuery {
    let stmts = parse_sql(sql).expect("valid SQL");
    let SqlStatement::Select(s) = &stmts[0] else { panic!("expected SELECT") };
    match lower_select(s, catalog, name).expect("lowerable") {
        eqsql_sql::LoweredQuery::Cq { query, .. } => query,
        eqsql_sql::LoweredQuery::Agg { .. } => panic!("expected plain CQ"),
    }
}
