//! Example 4.1 of the paper, end to end: the queries Q1–Q4, the sound
//! chase results under the three semantics, and the counterexample
//! database evaluated by the engine.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin paper_walkthrough
//! ```

use eqsql_chase::{max_bag_set_sigma_subset, max_bag_sigma_subset, sound_chase, ChaseConfig};
use eqsql_core::Semantics;
use eqsql_cq::parse_query;
use eqsql_deps::{parse_dependencies, satisfaction::db_satisfies_all};
use eqsql_relalg::eval::{eval_bag, eval_bag_set};
use eqsql_relalg::{Database, Schema};
use eqsql_service::{Answer, Request, RequestOpts, Solver};

fn main() {
    // Σ of Example 4.1: four tgds; keys of S (first attribute) and T
    // (first two attributes); S and T set-enforced (schema flags, per the
    // tuple-ID framework of Appendix C).
    let sigma = parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
         p(X,Y) -> t(X,Y,W).\n\
         p(X,Y) -> r(X).\n\
         p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
         s(X,Y) & s(X,Z) -> Y = Z.\n\
         t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
    )
    .unwrap();
    let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
    schema.mark_set_valued(eqsql_cq::Predicate::new("t"));

    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let config = ChaseConfig::default();

    println!("Σ:\n{sigma}");
    println!("Q1: {q1}");
    println!("Q4: {q4}\n");

    // Sound chase of Q4 under the three semantics — the paper's chain
    // (Q4)Σ,S ≅ Q1, (Q4)Σ,BS = Q2, (Q4)Σ,B = Q3.
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let r = sound_chase(sem, &q4, &sigma, &schema, &config).unwrap();
        println!("(Q4)_Σ,{sem} = {}", r.query);
    }
    println!();

    // Equivalence verdicts, through the Solver façade (all three share
    // the chase cache with the sound-chase chain above's inputs).
    let solver = Solver::builder(sigma.clone(), schema.clone()).build();
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let v = solver
            .decide(&Request::Equivalent {
                q1: q1.clone(),
                q2: q4.clone(),
                opts: RequestOpts::with_sem(sem),
            })
            .expect("terminating chase");
        let yes = matches!(v.answer, Answer::Equivalent { .. });
        println!("Q1 ≡_Σ,{sem} Q4?  {}", if yes { "yes" } else { "NO" });
    }
    println!();

    // The paper's counterexample database:
    // P = {{(1,2)}}, R = {{(1)}}, S = {{(1,3)}}, T = {{(1,2,4)}},
    // U = {{(1,5),(1,6)}}.
    let db = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("r", &[[1]])
        .with_ints("s", &[[1, 3]])
        .with_ints("t", &[[1, 2, 4]])
        .with_ints("u", &[[1, 5], [1, 6]]);
    assert!(db_satisfies_all(&db, &sigma));
    println!("Counterexample D (D ⊨ Σ, set-valued):\n{db}");
    println!("Q4(D,B)  = {}", eval_bag(&q4, &db));
    println!("Q1(D,B)  = {}", eval_bag(&q1, &db));
    println!("Q4(D,BS) = {}", eval_bag_set(&q4, &db).unwrap());
    println!("Q1(D,BS) = {}", eval_bag_set(&q1, &db).unwrap());
    println!(
        "\nQ1 returns (1) twice — the two U-tuples — although Q1 ≡_Σ,S Q4:\n\
         set-semantics reasoning is unsound for SQL's bag semantics.\n"
    );

    // Theorem 5.3 / Proposition 5.2: the maximal satisfied subsets.
    let b = max_bag_sigma_subset(&q4, &sigma, &schema, &config).unwrap();
    let bs = max_bag_set_sigma_subset(&q4, &sigma, &schema, &config).unwrap();
    println!(
        "Σ^max_B(Q4, Σ)  has {} of {} dependencies:\n{}",
        b.subset.len(),
        sigma.len(),
        b.subset
    );
    println!(
        "Σ^max_BS(Q4, Σ) has {} of {} dependencies:\n{}",
        bs.subset.len(),
        sigma.len(),
        bs.subset
    );
    println!("Σ^max_B ⊂ Σ^max_BS ⊂ Σ — both inclusions proper (Prop. 5.2).");
}
