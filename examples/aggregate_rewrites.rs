//! Aggregate-query reformulation: Max-Min-C&B vs Sum-Count-C&B on the
//! same core (§6.3 / Theorem 6.3), plus engine-level validation.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin aggregate_rewrites
//! ```

use eqsql_chase::ChaseConfig;
use eqsql_core::aggregate::{max_min_cnb, sigma_agg_equivalent, sum_count_cnb};
use eqsql_core::cnb::CnbOptions;
use eqsql_cq::parser::parse_aggregate_query;
use eqsql_deps::parse_dependencies;
use eqsql_relalg::aggregate::eval_aggregate;
use eqsql_relalg::{Database, Schema};

fn main() {
    // emp(id, dept, salary); audit(emp) is a *bag* (multiple audit rows
    // per employee); every employee's dept exists (FK) and depts are keyed.
    let sigma = parse_dependencies(
        "emp(I,D,S) -> dept(D,C).\n\
         dept(D,C1) & dept(D,C2) -> C1 = C2.\n\
         emp(I1,D1,S1) & emp(I1,D2,S2) -> D1 = D2.\n\
         emp(I1,D1,S1) & emp(I1,D2,S2) -> S1 = S2.",
    )
    .unwrap();
    let mut schema = Schema::all_bags(&[("emp", 3), ("dept", 2), ("audit", 1)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("emp"));
    schema.mark_set_valued(eqsql_cq::Predicate::new("dept"));

    println!("Σ:\n{sigma}");

    // The same core, four aggregate heads.
    let max_q = parse_aggregate_query("top(D, max(S)) :- emp(I,D,S), dept(D,C)").unwrap();
    let sum_q = parse_aggregate_query("total(D, sum(S)) :- emp(I,D,S), dept(D,C)").unwrap();

    let config = ChaseConfig::default();
    let opts = CnbOptions::default();

    println!("\nmax-query:  {max_q}");
    let r = max_min_cnb(&max_q, &sigma, &schema, &config, &opts).unwrap();
    for q in &r.reformulations {
        println!("  Σ-minimal: {q}");
    }

    println!("\nsum-query:  {sum_q}");
    let r = sum_count_cnb(&sum_q, &sigma, &schema, &config, &opts).unwrap();
    for q in &r.reformulations {
        println!("  Σ-minimal: {q}");
    }
    println!(
        "\nBoth drop the dept join: it is redundant under set semantics\n\
         (max/min reduce to ≡_S of cores) AND multiplicity-preserving\n\
         (sum/count reduce to ≡_BS of cores; the join is an assignment-\n\
         fixing chase step in reverse).\n"
    );

    // Now a join that is NOT multiplicity-preserving: audit is a bag with
    // no constraints.
    let max_audit = parse_aggregate_query("m(D, max(S)) :- emp(I,D,S), audit(I)").unwrap();
    let sum_audit = parse_aggregate_query("t(D, sum(S)) :- emp(I,D,S), audit(I)").unwrap();
    let max_plain =
        parse_aggregate_query("m(D, max(S)) :- emp(I,D,S), audit(I), audit(I)").unwrap();
    let sum_plain =
        parse_aggregate_query("t(D, sum(S)) :- emp(I,D,S), audit(I), audit(I)").unwrap();

    println!("duplicate audit subgoal (bag-set semantics of the core):");
    let vmax = sigma_agg_equivalent(&max_audit, &max_plain, &sigma, &schema, &config);
    let vsum = sigma_agg_equivalent(&sum_audit, &sum_plain, &sigma, &schema, &config);
    println!("  max-query ≡_Σ with duplicated audit?  {}", verdict(vmax.is_equivalent()));
    println!("  sum-query ≡_Σ with duplicated audit?  {}", verdict(vsum.is_equivalent()));

    // Demonstrate on data: the duplicate subgoal does not change SUM
    // because both audit atoms bind the same tuple... until audit has two
    // rows for one employee.
    let mut db = Database::new()
        .with_ints("emp", &[[1, 10, 100], [2, 10, 50]])
        .with_ints("dept", &[[10, 7]]);
    db.insert_ints("audit", [1]);
    db.insert_ints("audit", [2]);
    let base = eval_aggregate(&sum_audit, &db).unwrap();
    println!("\nSUM per dept with one audit row each:   {base:?}");
    let mut db2 = db.clone();
    db2.insert_ints("audit", [-1]); // noise
                                    // duplicate audit row for employee 1 — a *distinct* tuple is not
                                    // expressible; bag-set sees assignments, so add a second audit row
                                    // via a different value is not a duplicate. Instead evaluate the
                                    // two-subgoal query, which squares the per-employee audit count.
    let doubled = eval_aggregate(&sum_plain, &db2).unwrap();
    println!("SUM per dept via duplicated subgoal:    {doubled:?}");
    println!(
        "\nWith one audit row per employee the answers agree; the equivalence\n\
         test above says 'equivalent' precisely because audit rows are\n\
         matched by *assignments* (bag-set semantics), not stored copies."
    );

    let v = verdict(
        sigma_agg_equivalent(&max_audit, &sum_audit, &sigma, &schema, &config).is_equivalent(),
    );
    println!("\nmax-query ≡ sum-query? {v}  (incompatible heads — never comparable)");
}

fn verdict(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}
