//! Rewriting queries using materialized views under dependencies — the
//! application §1 of the paper motivates: with materialized views, bag
//! semantics "becomes imperative", and set-semantics rewritings can be
//! wrong by multiplicities.
//!
//! ```sh
//! cargo run -p eqsql-examples --bin view_rewriting
//! ```

use eqsql_chase::ChaseConfig;
use eqsql_core::views::{expand, is_equivalent_rewriting, rewrite_with_views, View, ViewSet};
use eqsql_core::Semantics;
use eqsql_cq::parse_query;
use eqsql_deps::parse_dependencies;
use eqsql_relalg::eval::eval_bag_set;
use eqsql_relalg::{Database, Schema};

fn main() {
    // Base schema: orders(id, cust), lines(order, item); every order has
    // at least one line? No — no such constraint. Views:
    //   v_oc(O, C)  :- orders(O, C)                  (a copy view)
    //   v_ol(O, I)  :- orders(O, C), lines(O, I)     (a join view)
    let sigma = parse_dependencies(
        "lines(O, I) -> orders(O, C).\n\
         orders(O, C1) & orders(O, C2) -> C1 = C2.",
    )
    .unwrap();
    let mut schema = Schema::all_bags(&[("orders", 2), ("lines", 2), ("v_oc", 2), ("v_ol", 2)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("orders"));

    let views = ViewSet::new(vec![
        View::new(parse_query("v_oc(O, C) :- orders(O, C)").unwrap()),
        View::new(parse_query("v_ol(O, I) :- orders(O, C), lines(O, I)").unwrap()),
    ]);

    let q = parse_query("q(C, I) :- orders(O, C), lines(O, I)").unwrap();
    println!("Σ:\n{sigma}");
    println!("query: {q}\n");

    let config = ChaseConfig::default();
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let result = rewrite_with_views(sem, &q, &views, &sigma, &schema, &config, 12).unwrap();
        println!(
            "{sem}-semantics: {} total rewriting(s) over views ({} candidates):",
            result.rewritings.len(),
            result.candidates_tested
        );
        for r in &result.rewritings {
            println!("  {r}");
            println!("    expansion: {}", expand(r, &views).unwrap());
        }
    }

    // The classic multiplicity trap: rewriting q with an extra v_oc join.
    // Under set semantics harmless; under bag-set it double-counts
    // nothing... make it concrete: join v_ol with v_oc.
    let r_join = parse_query("q(C, I) :- v_ol(O, I), v_oc(O, C)").unwrap();
    println!("\ncandidate rewriting: {r_join}");
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let v =
            is_equivalent_rewriting(sem, &q, &r_join, &views, &sigma, &schema, &config).unwrap();
        println!(
            "  under {sem:>2}: {}",
            if v.is_equivalent() { "EQUIVALENT" } else { "not equivalent" }
        );
    }
    println!(
        "\nThe v_oc join is redundant in every semantics because orders is\n\
         keyed on O and set-valued — the expansion's extra orders-atom is\n\
         an assignment-fixing chase step in reverse.\n"
    );

    // Engine demonstration of WHY expansions are the right test: evaluate
    // the naive (wrong) rewriting that uses v_oc twice.
    let r_double = parse_query("q(C) :- v_oc(O, C), v_oc(O, C)").unwrap();
    let q_single = parse_query("q(C) :- orders(O, C)").unwrap();
    let db = Database::new().with_ints("orders", &[[1, 7], [2, 7]]);
    let expansion = expand(&r_double, &views).unwrap();
    println!("double-view rewriting: {r_double}");
    println!("its expansion:         {expansion}");
    println!("q_single(D,BS)  = {}", eval_bag_set(&q_single, &db).unwrap());
    println!(
        "expansion(D,BS) = {}   <- identical here (the doubled atom dedups\n\
         under bag-set), which is exactly what Theorem 2.1(2) predicts",
        eval_bag_set(&expansion, &db).unwrap()
    );
}
