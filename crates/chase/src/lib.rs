//! # eqsql-chase — the chase, sound under bag and bag-set semantics
//!
//! This crate implements the central technical machinery of Chirkova &
//! Genesereth (PODS 2009):
//!
//! * the classical **set-semantics chase** of CQ queries with embedded
//!   dependencies (§2.4), with tgd and egd steps, failure detection and a
//!   step budget (chase termination is undecidable in general; weak
//!   acyclicity guarantees it, Theorem H.1);
//! * **associated test queries** `Q^{σ,h,θ}` (Definition 4.2) and the
//!   **assignment-fixing** test for tgds (Definition 4.3) — the paper's
//!   query-dependent criterion for when a tgd chase step preserves answer
//!   multiplicities;
//! * **key-based tgds** (Definition 5.1, the UWDs of Deutsch \[9\]) — the
//!   strictly weaker, query-independent criterion, kept for comparison and
//!   for the ablation benchmarks;
//! * **sound chase** under bag and bag-set semantics (Theorems 4.1 and
//!   4.3), with result normalization per the uniqueness theorems (5.1 /
//!   G.1);
//! * the **Max-Bag-Σ-Subset** and **Max-Bag-Set-Σ-Subset** algorithms
//!   (Algorithms 1–2, Theorem 5.3/I.1);
//! * an **instance-level chase** with labelled nulls, used to repair
//!   randomly generated databases into models of Σ.
//!
//! ## Execution architecture
//!
//! All query-level chases run on the **incremental indexed engine**
//! ([`engine`]): a persistent [`index::BodyIndex`] (predicate/arity
//! buckets, variable-occurrence lists, atom-value fingerprints, per-slot
//! generation stamps) mutated in place, per-dependency compiled
//! [`eqsql_cq::matcher::MatchPlan`]s searched first-match over a
//! trail-based frame with the conclusion-extension check threaded in as a
//! pruning predicate, and delta-driven (semi-naive) dependency
//! scheduling. [`mod@set_chase`], [`sound_chase`] and [`key_based_chase`] are
//! thin entry points over it; [`EngineOpts`] opts into delta-*seeded*
//! premise search (budget-exhaustion asymptotics) and speculative
//! parallel dependency probes. The original naive restart-scan driver
//! survives as [`mod@reference`] — the differential-testing oracle
//! (`tests/tests/engine_differential.rs`) that pins the engine to the
//! paper's step semantics, with the underlying naive homomorphism search
//! preserved as `eqsql_cq::matcher::reference`
//! (`tests/tests/matcher_differential.rs`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assignment_fixing;
pub mod engine;
pub mod error;
pub mod guard;
pub mod implication;
pub mod index;
pub mod instance;
pub mod key_based;
pub mod max_subset;
pub mod reference;
pub mod set_chase;
pub mod sound;
pub mod step;
pub mod test_query;

pub use assignment_fixing::{
    is_assignment_fixing, is_assignment_fixing_guarded, is_assignment_fixing_wrt_query,
};
pub use engine::{chase_indexed, chase_indexed_opts, Admission, EngineOpts};
pub use error::{ChaseConfig, ChaseError};
pub use guard::{Cancel, Fault, FaultPlan, RunGuard};
pub use implication::{implies, minimal_cover};
pub use index::BodyIndex;
pub use instance::{
    chase_database, chase_database_guarded, chase_database_reference, InstanceChased,
};
pub use key_based::{is_key_based, key_based_chase};
pub use max_subset::{max_bag_set_sigma_subset, max_bag_sigma_subset};
pub use reference::{chase_with_policy_reference, set_chase_reference};
pub use set_chase::{chase_with_policy_opts, set_chase, set_chase_opts, Chased};
pub use sound::{sound_chase, sound_chase_prepared, sound_chase_prepared_opts, SoundChased};
