//! Individual chase steps (§2.4 of the paper).
//!
//! * A **tgd step** `Q ⇒_σ Q'` applies when some homomorphism `h` from the
//!   premise into the body cannot be extended to the conclusion; it rewrites
//!   `Q` into `Q'(X̄) :- ξ(X̄, Ȳ) ∧ ψ(h(Ū), V̄)` with the existential
//!   variables `V̄` fresh.
//! * An **egd step** applies when some `h` from the premise into the body
//!   has `h(U1) ≠ h(U2)` with at least one side a variable; it replaces that
//!   variable by the other term *everywhere* in the query. Equating two
//!   distinct constants makes the query unsatisfiable under Σ (chase
//!   failure).

use eqsql_cq::matcher::reference;
use eqsql_cq::{Atom, CqQuery, Predicate, Subst, Term, Var, VarSupply};
use eqsql_deps::{Dependency, Egd, Tgd};
use std::collections::HashSet;

/// How duplicate body atoms are treated after an egd step.
///
/// * Set semantics: a query body is a set — drop all duplicates.
/// * Bag-set semantics: all stored relations are sets by definition, so
///   duplicates may always be dropped (Theorem 4.3(2)).
/// * Bag semantics: duplicates of a subgoal may be dropped **only** when
///   its relation is set-valued on every instance (Theorem 4.1(2)).
#[derive(Clone)]
pub enum DedupPolicy {
    /// Drop all duplicate atoms.
    All,
    /// Drop duplicates only over the given set-valued relations.
    SetValuedOnly(HashSet<Predicate>),
    /// Never drop duplicates.
    None,
}

impl DedupPolicy {
    /// Applies the policy to a query body.
    pub fn apply(&self, q: &CqQuery) -> CqQuery {
        match self {
            DedupPolicy::All => eqsql_cq::iso::canonical_representation(q),
            DedupPolicy::None => q.clone(),
            DedupPolicy::SetValuedOnly(set) => {
                eqsql_cq::iso::dedup_set_valued(q, |p| set.contains(&p))
            }
        }
    }

    /// Does the policy drop duplicate atoms of this predicate?
    pub fn dedups(&self, p: Predicate) -> bool {
        match self {
            DedupPolicy::All => true,
            DedupPolicy::None => false,
            DedupPolicy::SetValuedOnly(set) => set.contains(&p),
        }
    }
}

/// Renames a dependency's variables apart from `avoid`, drawing fresh names
/// from `supply` (the paper's "assume w.l.o.g. that Q has none of the
/// variables of σ").
pub fn rename_dep_apart(
    dep: &Dependency,
    avoid: &HashSet<Var>,
    supply: &mut VarSupply,
) -> Dependency {
    rename_dep_apart_with(dep, |v| avoid.contains(&v), supply)
}

/// [`rename_dep_apart`] against a membership predicate instead of a
/// materialized set — the incremental engine answers "is this variable
/// current?" straight from its index, never building the set.
pub fn rename_dep_apart_with(
    dep: &Dependency,
    avoid: impl Fn(Var) -> bool,
    supply: &mut VarSupply,
) -> Dependency {
    rename_dep_apart_mapped(dep, avoid, supply).0
}

/// [`rename_dep_apart_with`], also returning the renaming applied — the
/// engine's matcher plans search with the dependency's *original*
/// variables (plans are renaming-invariant) and use the map to translate
/// a found homomorphism into the renamed namespace the assignment-fixing
/// admission test expects.
pub fn rename_dep_apart_mapped(
    dep: &Dependency,
    avoid: impl Fn(Var) -> bool,
    supply: &mut VarSupply,
) -> (Dependency, Subst) {
    let mut s = Subst::new();
    for v in dep.all_vars() {
        if avoid(v) {
            s.set(v, Term::Var(supply.fresh(v.name())));
        }
    }
    let renamed = match dep {
        Dependency::Tgd(t) => {
            Dependency::Tgd(Tgd { lhs: s.apply_atoms(&t.lhs), rhs: s.apply_atoms(&t.rhs) })
        }
        Dependency::Egd(e) => Dependency::Egd(Egd {
            lhs: s.apply_atoms(&e.lhs),
            eq: (s.apply_term(&e.eq.0), s.apply_term(&e.eq.1)),
        }),
    };
    (renamed, s)
}

/// All homomorphisms from the tgd's premise into the query body that do
/// **not** extend to the conclusion — i.e. the `h`s making the chase of `Q`
/// with `σ` applicable. The tgd must already be renamed apart from `q`.
///
/// Deliberately runs on the naive [`mod@reference`] backtracker: this is the
/// oracle layer consumed by [`crate::reference`], kept independent of the
/// planned matcher it differentially tests. The enumeration cap is
/// surfaced as a panic rather than a silent truncation — the reference
/// driver's verdicts must never rest on a partial homomorphism set.
pub fn applicable_tgd_homs(q: &CqQuery, tgd: &Tgd) -> Vec<Subst> {
    let (homs, truncated) = reference::enumerate_homomorphisms(
        &tgd.lhs,
        &q.body,
        &Subst::new(),
        eqsql_cq::hom::MAX_HOMOMORPHISMS,
    );
    assert!(!truncated, "reference premise enumeration truncated at MAX_HOMOMORPHISMS");
    homs.into_iter()
        .filter(|h| reference::extend_homomorphism(&tgd.rhs, &q.body, h).is_none())
        .collect()
}

/// Applies a tgd chase step with homomorphism `h` (which must come from
/// [`applicable_tgd_homs`]). Returns the new query and the atoms added.
pub fn apply_tgd_step(
    q: &CqQuery,
    tgd: &Tgd,
    h: &Subst,
    supply: &mut VarSupply,
) -> (CqQuery, Vec<Atom>) {
    let mut s = h.clone();
    for z in tgd.existential_vars() {
        s.set(z, Term::Var(supply.fresh(z.name())));
    }
    let added = s.apply_atoms(&tgd.rhs);
    let mut out = q.clone();
    out.body.extend(added.iter().cloned());
    (out, added)
}

/// Outcome of attempting an egd step.
#[derive(Clone, Debug, PartialEq)]
pub enum EgdOutcome {
    /// No homomorphism violates the equality: the egd is satisfied.
    NotApplicable,
    /// The step replaced variable `from` by `to` throughout the query.
    Applied {
        /// The rewritten query.
        query: CqQuery,
        /// The replaced variable.
        from: Var,
        /// Its replacement.
        to: Term,
    },
    /// The egd equated two distinct constants: `Q` is unsatisfiable under Σ.
    Failed,
}

/// Classifies the first violating homomorphism of an egd: the replacement
/// to perform, or `None` (satisfied), or `Err(())` on a constant-constant
/// violation (chase failure). Variable-variable collisions are resolved
/// deterministically (the lexicographically larger name is replaced), so
/// chase runs are reproducible.
pub(crate) fn classify_egd_violation(egd: &Egd, h: &Subst) -> Option<Result<(Var, Term), ()>> {
    classify_egd_images(h.apply_term(&egd.eq.0), h.apply_term(&egd.eq.1))
}

/// [`classify_egd_violation`] on the already-computed images of the
/// equated terms (the engine reads them straight off a matcher frame).
pub(crate) fn classify_egd_images(a: Term, b: Term) -> Option<Result<(Var, Term), ()>> {
    if a == b {
        return None;
    }
    Some(match (a, b) {
        (Term::Const(_), Term::Const(_)) => Err(()),
        (Term::Var(v), t @ Term::Const(_)) => Ok((v, t)),
        (t @ Term::Const(_), Term::Var(v)) => Ok((v, t)),
        (Term::Var(v), Term::Var(w)) => {
            if v.name() > w.name() {
                Ok((v, Term::Var(w)))
            } else {
                Ok((w, Term::Var(v)))
            }
        }
    })
}

/// Finds one violating homomorphism for the egd and applies the step.
///
/// The search short-circuits at the **first** violating homomorphism — the
/// backtracking enumeration is pruned by the violation test itself, so a
/// satisfied egd costs one full (fruitless) search but an applicable one
/// stops as soon as a violation is reachable, instead of materializing
/// every homomorphism of the premise first.
pub fn apply_egd_step(q: &CqQuery, egd: &Egd) -> EgdOutcome {
    let mut verdict: Option<Result<(Var, Term), ()>> = None;
    reference::find_homomorphism_where(&egd.lhs, &q.body, &Subst::new(), &mut |h| {
        verdict = classify_egd_violation(egd, h);
        verdict.is_some()
    });
    match verdict {
        None => EgdOutcome::NotApplicable,
        Some(Err(())) => EgdOutcome::Failed,
        Some(Ok((from, to))) => {
            let s = Subst::from_pairs([(from, to)]);
            EgdOutcome::Applied { query: q.apply(&s), from, to }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependency;

    fn tgd(s: &str) -> Tgd {
        parse_dependency(s).unwrap().as_tgd().unwrap().clone()
    }
    fn egd(s: &str) -> Egd {
        parse_dependency(s).unwrap().as_egd().unwrap().clone()
    }

    #[test]
    fn tgd_applicability() {
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = tgd("p(A,B) -> t(A,B,W)");
        let homs = applicable_tgd_homs(&q, &t);
        assert_eq!(homs.len(), 1);
        // Once the conclusion is present, no applicable hom remains.
        let q2 = parse_query("q(X) :- p(X,Y), t(X,Y,V)").unwrap();
        assert!(applicable_tgd_homs(&q2, &t).is_empty());
    }

    #[test]
    fn tgd_step_adds_fresh_existentials() {
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = tgd("p(A,B) -> t(A,B,W)");
        let mut supply = VarSupply::avoiding([&q]);
        let homs = applicable_tgd_homs(&q, &t);
        let (q2, added) = apply_tgd_step(&q, &t, &homs[0], &mut supply);
        assert_eq!(q2.body.len(), 2);
        assert_eq!(added.len(), 1);
        let w = added[0].args[2].as_var().unwrap();
        assert_ne!(w, Var::new("W")); // fresh, not the tgd's own name
        assert_ne!(w, Var::new("Y"));
    }

    #[test]
    fn two_applications_use_distinct_existentials() {
        let q = parse_query("q(X) :- p(X,Y), p(Y,X)").unwrap();
        let t = tgd("p(A,B) -> s(A,Z)");
        let mut supply = VarSupply::avoiding([&q]);
        let homs = applicable_tgd_homs(&q, &t);
        assert_eq!(homs.len(), 2);
        let (q2, a1) = apply_tgd_step(&q, &t, &homs[0], &mut supply);
        let (q3, a2) = apply_tgd_step(&q2, &t, &homs[1], &mut supply);
        assert_eq!(q3.body.len(), 4);
        assert_ne!(a1[0].args[1], a2[0].args[1]);
    }

    #[test]
    fn egd_step_replaces_variable() {
        let q = parse_query("q(X) :- s(X,A), s(X,B), r(A)").unwrap();
        let e = egd("s(U,V) & s(U,W) -> V = W");
        match apply_egd_step(&q, &e) {
            EgdOutcome::Applied { query, .. } => {
                // A and B collapse; r's argument follows.
                assert_eq!(query.body.len(), 3);
                let vars: HashSet<Var> = query.body_vars().into_iter().collect();
                assert_eq!(vars.len(), 2);
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn egd_prefers_constants() {
        let q = parse_query("q(X) :- s(X,A), s(X,3)").unwrap();
        let e = egd("s(U,V) & s(U,W) -> V = W");
        match apply_egd_step(&q, &e) {
            EgdOutcome::Applied { from, to, query } => {
                assert_eq!(from, Var::new("A"));
                assert_eq!(to, Term::int(3));
                assert_eq!(query.to_string(), "q(X) :- s(X, 3), s(X, 3)");
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn egd_failure_on_distinct_constants() {
        let q = parse_query("q(X) :- s(X,3), s(X,4)").unwrap();
        let e = egd("s(U,V) & s(U,W) -> V = W");
        assert_eq!(apply_egd_step(&q, &e), EgdOutcome::Failed);
    }

    #[test]
    fn egd_not_applicable_when_satisfied() {
        let q = parse_query("q(X) :- s(X,A)").unwrap();
        let e = egd("s(U,V) & s(U,W) -> V = W");
        assert_eq!(apply_egd_step(&q, &e), EgdOutcome::NotApplicable);
    }

    #[test]
    fn rename_apart_leaves_disjoint_vars() {
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let d = parse_dependency("p(X,Y) -> t(X,Y,W)").unwrap();
        let avoid: HashSet<Var> = q.all_vars().into_iter().collect();
        let mut supply = VarSupply::avoiding([&q]);
        let r = rename_dep_apart(&d, &avoid, &mut supply);
        let rvars = r.all_vars();
        assert!(rvars.is_disjoint(&avoid));
        // W was not in q, so it may stay.
        assert!(rvars.contains(&Var::new("W")));
    }

    #[test]
    fn dedup_policy_variants() {
        let q = parse_query("q(X) :- s(X,Z), s(X,Z), u(X), u(X)").unwrap();
        assert_eq!(DedupPolicy::All.apply(&q).body.len(), 2);
        assert_eq!(DedupPolicy::None.apply(&q).body.len(), 4);
        let set: HashSet<Predicate> = [Predicate::new("s")].into_iter().collect();
        let d = DedupPolicy::SetValuedOnly(set).apply(&q);
        assert_eq!(d.body.len(), 3);
    }
}
