//! The set-semantics chase to termination (§2.4 of the paper).
//!
//! Repeatedly applies tgd and egd steps until the canonical database of the
//! current query satisfies Σ (no step applicable), the query becomes
//! unsatisfiable (an egd equates distinct constants), or the budget runs
//! out. For weakly acyclic Σ termination is guaranteed (Theorem H.1) and
//! the result is unique up to set-equivalence in the absence of
//! dependencies \[10\].
//!
//! The entry points here are thin wrappers over the incremental indexed
//! engine ([`crate::engine`]); the original naive driver survives as
//! [`crate::reference`], the differential-testing oracle.

use crate::engine::{chase_indexed, chase_indexed_opts, Admission, EngineOpts};
use crate::error::{ChaseConfig, ChaseError};
use crate::step::DedupPolicy;
use eqsql_cq::{CqQuery, Subst};
use eqsql_deps::DependencySet;
use std::fmt;

/// One recorded chase step, for tracing/debugging.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Index of the dependency in Σ (in iteration order).
    pub dep_index: usize,
    /// Rendering of the dependency applied.
    pub dep: String,
    /// What the step did.
    pub action: String,
    /// Body size after the step.
    pub body_size: usize,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[σ{}] {} — {} (body now {})",
            self.dep_index, self.dep, self.action, self.body_size
        )
    }
}

/// The outcome of a terminating chase.
#[derive(Clone, Debug)]
pub struct Chased {
    /// The terminal query `(Q)_{Σ,S}` (meaningless when `failed`).
    pub query: CqQuery,
    /// Did an egd equate two distinct constants? (`Q` is unsatisfiable
    /// under Σ; it returns the empty answer on every `D ⊨ Σ`.)
    pub failed: bool,
    /// Number of steps taken.
    pub steps: usize,
    /// Accumulated egd renaming: maps each original variable to its final
    /// image in the terminal query. Needed by the assignment-fixing test
    /// (see `crate::assignment_fixing`).
    pub renaming: Subst,
    /// The step trace.
    pub trace: Vec<TraceEntry>,
}

/// Runs the chase of `q` with Σ under set semantics, deduplicating the body
/// after every step (set semantics treats bodies as sets).
pub fn set_chase(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
) -> Result<Chased, ChaseError> {
    chase_indexed(q, sigma, config, &DedupPolicy::All, Admission::All)
}

/// [`set_chase`] with explicit engine options — delta-seeded premise
/// search for budget-exhaustion shapes, speculative parallel dependency
/// probes. With [`EngineOpts::default`] this is exactly [`set_chase`];
/// delta seeding trades the reference-identical step order for asymptotic
/// wins (results stay Σ-equivalent — see the engine docs).
pub fn set_chase_opts(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
    opts: &EngineOpts,
) -> Result<Chased, ChaseError> {
    chase_indexed_opts(q, sigma, config, &DedupPolicy::All, Admission::All, opts)
}

/// The general chase driver, parameterized by dedup policy and a per-step
/// admission predicate (used by the sound chase to filter tgd steps).
///
/// `admit(tgd, query, hom)` decides whether an *applicable* tgd step may
/// fire; the tgd passed in is already renamed apart from the query, and
/// `hom` maps its premise into the query body. Egd steps always fire (they
/// are sound under every semantics — Theorems 4.1(2)/4.3(2)).
pub fn chase_with_policy(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
    dedup: &DedupPolicy,
    admit: &mut dyn FnMut(&eqsql_deps::Tgd, &CqQuery, &Subst) -> bool,
) -> Result<Chased, ChaseError> {
    chase_indexed(q, sigma, config, dedup, Admission::Custom(admit))
}

/// [`chase_with_policy`] with explicit [`EngineOpts`]. Probes stay
/// sequential under custom admission (the engine enforces this); delta
/// seeding applies with the conservative custom-admission watermarks.
pub fn chase_with_policy_opts(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
    dedup: &DedupPolicy,
    admit: &mut dyn FnMut(&eqsql_deps::Tgd, &CqQuery, &Subst) -> bool,
    opts: &EngineOpts,
) -> Result<Chased, ChaseError> {
    chase_indexed_opts(q, sigma, config, dedup, Admission::Custom(admit), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::{are_isomorphic, parse_query, Term};
    use eqsql_deps::{parse_dependencies, satisfaction::query_satisfies_all};

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    /// Σ of Example 4.1 (tgds σ1–σ4 and key egds σ7, σ8).
    fn sigma_4_1() -> DependencySet {
        parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap()
    }

    #[test]
    fn chase_terminates_when_satisfied() {
        // The terminal result's canonical database satisfies Σ.
        let q = parse_query("q4(X) :- p(X,Y)").unwrap();
        let sigma = sigma_4_1();
        let r = set_chase(&q, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        assert!(query_satisfies_all(&r.query, &sigma));
        assert!(r.steps > 0);
    }

    #[test]
    fn example_4_1_set_chase_of_q4_is_q1() {
        // (Q4)_{Σ,S} ≡_S Q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U).
        //
        // Raw set-chase results are unique only up to set-equivalence in
        // the absence of dependencies [10] — depending on the order in
        // which σ1/σ2 fire, a redundant t-subgoal may appear — so we assert
        // mutual containment (Chandra–Merlin), which is the paper's actual
        // claim Q1 ≡_{Σ,S} Q4.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let r = set_chase(&q4, &sigma_4_1(), &cfg()).unwrap();
        let c = eqsql_cq::canonical_representation(&r.query);
        assert!(
            eqsql_cq::containment_mapping(&c, &q1).is_some()
                && eqsql_cq::containment_mapping(&q1, &c).is_some(),
            "got {}",
            r.query
        );
        // Every Q1 subgoal predicate shows up in the chase result.
        for pred in ["p", "t", "s", "r", "u"] {
            assert!(r.query.count_pred(eqsql_cq::Predicate::new(pred)) >= 1);
        }
    }

    #[test]
    fn example_4_1_chasing_q1_is_fixpoint() {
        // (Q1)_{Σ,S} ≅ Q1: Q1 is already closed under Σ.
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let r = set_chase(&q1, &sigma_4_1(), &cfg()).unwrap();
        assert!(are_isomorphic(&r.query, &q1), "got {}", r.query);
    }

    #[test]
    fn egd_only_chase_collapses_variables() {
        let q = parse_query("q(X) :- s(X,A), s(X,B), r(A,B)").unwrap();
        let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
        let r = set_chase(&q, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        // A and B collapse; dedup leaves s once, r's arguments equal.
        assert_eq!(r.query.body.len(), 2);
        let renamed_a = r.renaming.apply_term(&Term::var("A"));
        let renamed_b = r.renaming.apply_term(&Term::var("B"));
        assert_eq!(renamed_a, renamed_b);
    }

    #[test]
    fn chase_failure_detected() {
        let q = parse_query("q(X) :- s(X,3), s(X,4)").unwrap();
        let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
        let r = set_chase(&q, &sigma, &cfg()).unwrap();
        assert!(r.failed);
    }

    #[test]
    fn non_terminating_chase_hits_budget() {
        // e(X,Y) -> e(Y,Z) is not weakly acyclic: infinite chase.
        let q = parse_query("q(X) :- e(X,Y)").unwrap();
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let err = set_chase(&q, &sigma, &ChaseConfig::with_max_steps(50)).unwrap_err();
        assert!(matches!(err, ChaseError::BudgetExhausted { .. }));
    }

    #[test]
    fn inclusion_dependency_chase() {
        let q = parse_query("q(X) :- a(X)").unwrap();
        let sigma = parse_dependencies("a(X) -> b(X). b(X) -> c(X,W).").unwrap();
        let r = set_chase(&q, &sigma, &cfg()).unwrap();
        assert_eq!(r.query.body.len(), 3);
        assert_eq!(r.steps, 2);
    }

    #[test]
    fn chase_is_idempotent() {
        let q = parse_query("q4(X) :- p(X,Y)").unwrap();
        let sigma = sigma_4_1();
        let r1 = set_chase(&q, &sigma, &cfg()).unwrap();
        let r2 = set_chase(&r1.query, &sigma, &cfg()).unwrap();
        assert_eq!(r2.steps, 0);
        assert!(are_isomorphic(&r1.query, &r2.query));
    }

    #[test]
    fn trace_records_steps() {
        let q = parse_query("q(X) :- a(X)").unwrap();
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let r = set_chase(&q, &sigma, &cfg()).unwrap();
        assert_eq!(r.trace.len(), 1);
        assert!(r.trace[0].action.contains("added"));
    }

    #[test]
    fn example_4_6_chase_with_modified_egd() {
        // Q(X) :- p(X,Y), s(X,Z) with ν1: p(X,Y) -> ∃Z s(X,Z) ∧ t(Z,Y),
        // ν2: t(X,Y) & t(Z,Y) -> X = Z. The traditional chase adds BOTH a
        // fresh s-subgoal and a t-subgoal (Example 4.8's Q''), then ν2 has
        // nothing to merge.
        let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
             t(X,Y) & t(Z,Y) -> X = Z.",
        )
        .unwrap();
        let r = set_chase(&q, &sigma, &cfg()).unwrap();
        // Q''(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y) — four subgoals.
        let expected = parse_query("qq(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y)").unwrap();
        assert!(are_isomorphic(&r.query, &expected), "got {}", r.query);
    }
}
