//! The incremental indexed chase engine — arena-backed.
//!
//! The naive driver (kept as [`crate::reference`], the differential-testing
//! oracle) restarts the Σ scan from σ₀ after every step and re-derives all
//! of its working state — variable set, homomorphism buckets, deduplicated
//! body — from scratch each time. With chase results exponential in the
//! schema size (Appendix H of the paper), those per-step constants multiply
//! an already-exponential object. This engine eliminates them:
//!
//! 1. **Persistent [`BodyIndex`]** — the body lives in a flat
//!    [`eqsql_cq::TermArena`]: terms interned to `u32` ids once, atoms as
//!    rows of per-predicate columnar tables, occurrence fingerprints and
//!    variable lists keyed on ids. Tgd appends and egd substitutions
//!    mutate columns in place; nothing is rebuilt, re-sorted, re-cloned —
//!    or even *allocated* — per step (the warm no-fire step is
//!    allocation-free; see `tests/tests/alloc_regression.rs`).
//! 2. **Compiled per-dependency arena plans** — each dependency's premise
//!    (and, for tgds, conclusion) is compiled once into an
//!    [`eqsql_cq::ArenaPlan`] whose candidate scans are linear integer
//!    sweeps over contiguous columns; searches bind `u32`s into reusable
//!    [`eqsql_cq::ArenaFrame`]s. Plans are renaming-invariant (variables
//!    are dense slots), so the per-step rename-apart of the naive path
//!    happens only where an admission predicate demands the renamed
//!    dependency (the sound chase). The premise plan keeps the written
//!    atom order and table rows are appended in body-slot order, so the
//!    first homomorphism found is the one the reference driver would fire;
//!    the conclusion-extension check is seeded through a precompiled
//!    [`eqsql_cq::SeedMap`] (no closures, no `Subst`), and the search
//!    stops at the first admissible match. Egd search stops at the first
//!    violating match the same way, its equality sides precompiled to
//!    [`eqsql_cq::EqOp`]s. Conclusion plans are ordered by the **live**
//!    initial-body cardinalities ([`eqsql_cq::ArenaPlan::optimized_with_stats`],
//!    Selinger-lite) — safe because existence checks are order-insensitive.
//! 3. **Delta-driven scheduling** — a worklist of dependency indices,
//!    re-armed only for dependencies whose premise predicates intersect
//!    the atoms just added or rewritten (semi-naive evaluation). A
//!    dependency checked satisfied stays retired until a relevant delta:
//!    a homomorphism that avoids every changed atom existed before the
//!    step, with its conclusion extension intact, so its verdict carries
//!    over (see `docs` on `fire_order_matches_reference` in the tests).
//!
//! Boxed values appear only at observable boundaries: trace strings, the
//! materialized terminal query, and the `Subst`s handed to custom
//! admission predicates — the boxed↔arena contract documented in
//! [`eqsql_cq::arena`].
//!
//! With the default [`EngineOpts`] the engine fires, at every step, the
//! same dependency the reference driver would (the lowest-indexed
//! applicable one, with the first admissible homomorphism in the shared
//! deterministic search order), so the two produce isomorphic terminal
//! queries, identical step counts, identical failure flags and identical
//! error variants — which the differential suite in
//! `tests/tests/engine_differential.rs` checks.
//!
//! ## Delta-seeded premise search (`EngineOpts::delta_seeding`)
//!
//! Beyond delta *scheduling*, the opt-in delta-seeded mode constrains the
//! premise *search* itself: each dependency remembers the body generation
//! `w` of its last exhaustive check, and subsequent searches require at
//! least one matched atom from the delta (generation ≥ `w`, i.e. added or
//! rewritten since). Soundness invariant: `w` only advances to `G` when
//! every homomorphism over pre-`G` atoms is known non-applicable —
//!
//! * an exhaustive check that saw no applicable homomorphism covers the
//!   delta directly and inherits the rest from the previous `w` (tgd
//!   extensions survive atom additions, and any atom an egd substitution
//!   rewrites re-enters the delta with a fresh generation);
//! * a check that finds applicable tgd homomorphisms **batch-fires** every
//!   one of them (re-validating each extension just before firing, since
//!   an earlier fire in the batch may have witnessed it) and then advances
//!   `w` — nothing in the delta is left unexamined;
//! * an egd fire leaves `w` alone (a substitution can reveal no new
//!   violations among old atoms, but unexamined delta candidates behind
//!   the first violation must be revisited), as does any check whose
//!   applicable homomorphisms were all rejected by a custom admission
//!   predicate (admission is a whole-query property; such dependencies
//!   are re-armed with a full search, exactly like the admission-blocked
//!   re-arm below).
//!
//! Batch-firing may deviate from the reference firing order (a lower-
//! indexed dependency woken mid-batch fires later than the reference
//! would schedule it), which is why the delta-seeded differential suite
//! asserts isomorphic/equivalent terminals rather than identical step
//! sequences. On budget-exhaustion shapes like the non-weakly-acyclic
//! `e(X,Y) -> e(Y,Z)` chain, the applicable homomorphism always lives at
//! the *newest* atom; the delta search finds it without rescanning the
//! old ones, turning the O(n³) total premise-scan work into O(n²).
//!
//! ## Speculative parallel probes (`EngineOpts::probes`)
//!
//! The worklist makes queued dependencies independent until one fires:
//! with `probes = k > 1`, the engine snapshots the k lowest queued
//! dependencies and searches their first admissible homomorphisms on a
//! **run-long worker pool** ([`eqsql_cq::matcher::ProbePool`]: `k-1`
//! parked workers plus the caller's thread, jobs handed off per step —
//! no thread is spawned inside the chase loop, so probing pays off on
//! small steps too) against the same immutable body. The lowest-indexed
//! actionable probe commits — exactly the dependency the sequential scan
//! would have fired, so the step sequence is bit-identical — and
//! "nothing to do" verdicts retire wholesale (they were all computed at
//! the committed step's pre-state; subscription wake-ups re-arm them as
//! usual). Probed verdicts *behind* an actionable one are discarded,
//! never reused across a fire.
//!
//! One deliberate divergence from semi-naive purity: a *custom* admission
//! predicate (the sound chase's assignment-fixing test) depends on the
//! whole current query, not just the premise image — Example 5.1 of the
//! paper is exactly a query whose growth flips a verdict. Dependencies
//! rejected only by admission are therefore re-armed after **every**
//! step, preserving the reference semantics; dependencies with no
//! applicable homomorphism at all still enjoy delta scheduling. For the
//! same reason custom admission keeps the sequential probe path: the
//! predicate closes over mutable state and its verdict is only meaningful
//! against the exact query it was asked about.

use crate::error::{ChaseConfig, ChaseError};
use crate::guard::RunGuard;
use crate::index::BodyIndex;
use crate::set_chase::{Chased, TraceEntry};
use crate::step::{classify_egd_images, rename_dep_apart_mapped, DedupPolicy};
use eqsql_cq::matcher::ProbePool;
use eqsql_cq::{
    ArenaDelta, ArenaFrame, ArenaPlan, Atom, CqQuery, EqOp, Predicate, SeedMap, Subst, Term,
    TermArena, TermId, Var, VarSupply,
};
use eqsql_deps::{Dependency, DependencySet, Tgd};
use eqsql_obs::StepProbe;
use std::collections::HashMap;

/// How tgd steps are admitted.
pub enum Admission<'a> {
    /// Every applicable step fires (the classical set chase).
    All,
    /// `admit(tgd, cur, hom)` decides (the sound chase's assignment-fixing
    /// filter). The tgd is renamed apart, `hom` maps its premise into
    /// `cur`'s body. Because the verdict may depend on the whole current
    /// query, rejected dependencies are re-armed after every step.
    Custom(&'a mut dyn FnMut(&Tgd, &CqQuery, &Subst) -> bool),
    /// `admit(tgd)` decides from the dependency alone (the key-based /
    /// UWD filter): evaluated once per dependency, cached, and a rejected
    /// dependency retires permanently — no per-homomorphism or per-step
    /// re-checking.
    QueryIndependent(&'a mut dyn FnMut(&Tgd) -> bool),
}

/// Tuning knobs for [`chase_indexed_opts`]. The default is the
/// reference-identical configuration ([`EngineOpts::default`]).
#[derive(Clone, Debug)]
pub struct EngineOpts {
    /// Constrain each dependency's premise search to homomorphisms
    /// touching the atoms added/rewritten since its last exhaustive check
    /// (see the module docs). Changes the firing *order* (terminals stay
    /// equivalent); off by default.
    pub delta_seeding: bool,
    /// Number of queued dependencies probed speculatively in parallel per
    /// step; `0`/`1` = sequential. Step sequences are identical to the
    /// sequential engine at any setting. Ignored (sequential) under
    /// [`Admission::Custom`].
    pub probes: usize,
    /// Cooperative deadline/cancellation guard, polled once per engine
    /// step alongside the budget checks. The default (unguarded) guard
    /// costs one `Option` test per step and never aborts, so the step
    /// sequence is identical to the pre-guard engine. Like `probes` — and
    /// unlike `delta_seeding` — the guard never changes firing order or
    /// results, only whether the run finishes, so it is not part of any
    /// cache key.
    pub guard: RunGuard,
    /// Work-attribution probe ([`eqsql_obs::StepProbe`]): counts committed
    /// steps and dependency scans. Pure accounting — the default disarmed
    /// probe costs one `Option` test per callback, and an armed probe
    /// never changes firing order or results, so like `guard` it is not
    /// part of any cache key.
    pub probe: StepProbe,
}

impl Default for EngineOpts {
    fn default() -> EngineOpts {
        EngineOpts {
            delta_seeding: false,
            probes: 1,
            guard: RunGuard::default(),
            probe: StepProbe::default(),
        }
    }
}

impl EngineOpts {
    /// Delta-seeded premise search, sequential probing.
    pub fn delta_seeded() -> EngineOpts {
        EngineOpts { delta_seeding: true, ..EngineOpts::default() }
    }

    /// Reference-order engine with `k` speculative probes.
    pub fn with_probes(k: usize) -> EngineOpts {
        EngineOpts { probes: k, ..EngineOpts::default() }
    }

    /// This configuration with the given [`RunGuard`].
    pub fn guarded(mut self, guard: RunGuard) -> EngineOpts {
        self.guard = guard;
        self
    }
}

/// The per-run scheduler state: which dependencies might act.
struct Worklist {
    /// `queued[i]`: dependency `i` must be (re-)checked.
    queued: Vec<bool>,
    /// `blocked_on_admit[i]`: last check found applicable homomorphisms
    /// but the admission predicate rejected all of them — re-arm after
    /// any step (admission is a whole-query property).
    blocked_on_admit: Vec<bool>,
    /// Premise predicate → dependencies listening on it.
    subscribers: HashMap<Predicate, Vec<usize>>,
}

impl Worklist {
    fn new(sigma: &DependencySet) -> Worklist {
        let n = sigma.len();
        let mut subscribers: HashMap<Predicate, Vec<usize>> = HashMap::new();
        for (i, dep) in sigma.iter().enumerate() {
            let mut seen: Vec<Predicate> = Vec::new();
            for atom in dep.lhs() {
                if !seen.contains(&atom.pred) {
                    seen.push(atom.pred);
                    subscribers.entry(atom.pred).or_default().push(i);
                }
            }
        }
        Worklist { queued: vec![true; n], blocked_on_admit: vec![false; n], subscribers }
    }

    /// The lowest queued dependency — the same one the reference driver's
    /// restart-from-σ₀ scan would reach first.
    fn pop_min(&self) -> Option<usize> {
        self.queued.iter().position(|&q| q)
    }

    /// Up to `k` lowest queued dependencies, ascending.
    fn peek_min(&self, k: usize) -> Vec<usize> {
        self.queued.iter().enumerate().filter_map(|(i, &q)| q.then_some(i)).take(k).collect()
    }

    fn retire(&mut self, i: usize, blocked_on_admit: bool) {
        self.queued[i] = false;
        self.blocked_on_admit[i] = blocked_on_admit;
    }

    /// Re-arms every dependency whose premise mentions one of `preds`.
    fn wake_subscribers(&mut self, preds: &[Predicate]) {
        for p in preds {
            if let Some(subs) = self.subscribers.get(p) {
                for &i in subs {
                    self.queued[i] = true;
                }
            }
        }
    }

    /// Re-arms dependencies whose only obstacle was the admission
    /// predicate; called after every step when admission is custom.
    /// Returns the re-armed indices so delta watermarks can be reset
    /// (admission verdicts do not persist across steps).
    fn wake_admission_blocked(&mut self) -> Vec<usize> {
        let mut woken = Vec::new();
        for i in 0..self.queued.len() {
            if self.blocked_on_admit[i] {
                self.queued[i] = true;
                self.blocked_on_admit[i] = false;
                woken.push(i);
            }
        }
        woken
    }
}

/// One argument of a compiled tgd-conclusion template: where the interned
/// id of the fired atom's argument comes from.
#[derive(Copy, Clone, Debug)]
enum ConOp {
    /// A constant, interned at compile time.
    Const(TermId),
    /// Read the premise match's dense slot.
    Prem(u32),
    /// The `i`-th freshly minted existential of this fire.
    Exist(u32),
}

/// A dependency's compiled, run-long search machinery. Plans are built on
/// the dependency's *original* variables (dense slots make them
/// renaming-invariant) against the run's arena, so one compilation serves
/// every step and searches never touch a boxed value.
struct DepPlans {
    /// Premise conjunction, original atom order — emission order equals
    /// the reference backtracker's, so "first admissible" agrees.
    premise: ArenaPlan,
    /// Tgd conclusion, ordered by live initial-body cardinality
    /// (existence-only search), seeded from the premise frame through
    /// `ext_seed`.
    extension: Option<ArenaPlan>,
    /// Extension slot ← premise slot, for every shared universal.
    ext_seed: SeedMap,
    /// Egd equality sides, resolved against the premise plan.
    egd_eq: Option<(EqOp, EqOp)>,
    /// Tgd conclusion template: per rhs atom, its table and argument ops.
    conclusion: Vec<(u32, Vec<ConOp>)>,
    /// The tgd's existential variables, in declaration order (fresh-name
    /// minting must follow it to stay identical to the reference).
    existentials: Vec<Var>,
}

impl DepPlans {
    fn compile(dep: &Dependency, arena: &mut TermArena) -> DepPlans {
        let premise = ArenaPlan::new(dep.lhs(), arena);
        match dep {
            Dependency::Tgd(t) => {
                let universal: Vec<Var> = t.universal_vars().into_iter().collect();
                let extension = ArenaPlan::optimized_with_stats(&t.rhs, &universal, arena);
                let ext_seed = extension.seed_map_from(&premise);
                let existentials = t.existential_vars();
                let conclusion = t
                    .rhs
                    .iter()
                    .map(|atom| {
                        let table = arena.table_id(atom.key());
                        let ops = atom
                            .args
                            .iter()
                            .map(|arg| match arg {
                                Term::Const(_) => ConOp::Const(arena.intern(*arg)),
                                Term::Var(v) => match premise.slot(*v) {
                                    Some(s) => ConOp::Prem(s),
                                    None => ConOp::Exist(
                                        existentials
                                            .iter()
                                            .position(|z| z == v)
                                            .expect("rhs var is universal or existential")
                                            as u32,
                                    ),
                                },
                            })
                            .collect();
                        (table, ops)
                    })
                    .collect();
                DepPlans {
                    premise,
                    extension: Some(extension),
                    ext_seed,
                    egd_eq: None,
                    conclusion,
                    existentials,
                }
            }
            Dependency::Egd(e) => {
                let egd_eq = Some((premise.eq_op(&e.eq.0, arena), premise.eq_op(&e.eq.1, arena)));
                DepPlans {
                    premise,
                    extension: None,
                    ext_seed: SeedMap::new(),
                    egd_eq,
                    conclusion: Vec::new(),
                    existentials: Vec::new(),
                }
            }
        }
    }
}

/// A dependency's reusable search frames (premise + extension), allocated
/// once per run — warm steps reuse them allocation-free.
struct DepFrames {
    premise: ArenaFrame,
    ext: ArenaFrame,
}

impl DepFrames {
    fn new() -> DepFrames {
        DepFrames { premise: ArenaFrame::new(), ext: ArenaFrame::new() }
    }
}

/// Outcome of scanning one dependency against the current body.
enum Scan {
    /// Nothing to do; `saw_applicable` = applicable homomorphisms existed
    /// but a custom admission predicate rejected all of them.
    Idle { saw_applicable: bool },
    /// An egd equated two distinct constants.
    EgdFailed,
    /// First violating egd homomorphism: replace `from` by `to`.
    EgdFire(Var, Term),
    /// Admitted applicable tgd homomorphisms to fire, in search order
    /// (singleton unless batch-firing under delta seeding), as premise
    /// slot arrays.
    TgdFire(Vec<Box<[TermId]>>),
}

/// Searches the egd premise for the first violating homomorphism.
/// Allocation-free on the no-violation path once `frame` is warm.
fn scan_egd(
    plans: &DepPlans,
    arena: &TermArena,
    frame: &mut ArenaFrame,
    delta: Option<&ArenaDelta>,
) -> Scan {
    let (lhs, rhs) = plans.egd_eq.expect("egd has compiled equality sides");
    frame.reset(plans.premise.slot_count());
    let mut verdict: Option<Result<(Var, Term), ()>> = None;
    let emit = &mut |slots: &[TermId]| {
        verdict = classify_egd_images(lhs.resolve(arena, slots), rhs.resolve(arena, slots));
        verdict.is_none() // keep searching until a violation
    };
    match delta {
        None => plans.premise.search(arena, frame, emit),
        Some(d) => plans.premise.search_delta(arena, d, frame, emit),
    };
    match verdict {
        None => Scan::Idle { saw_applicable: false },
        Some(Err(())) => Scan::EgdFailed,
        Some(Ok((from, to))) => Scan::EgdFire(from, to),
    }
}

/// Searches the tgd premise for admissible applicable homomorphisms: the
/// conclusion-extension check and the admission predicate prune the
/// search in flight. `collect_all` (delta batch-firing) gathers every
/// applicable homomorphism instead of stopping at the first admitted one;
/// it is only used with admission predicates that admit everything.
/// Allocation-free on the all-satisfied path once the frames are warm.
#[allow(clippy::too_many_arguments)]
fn scan_tgd(
    plans: &DepPlans,
    arena: &TermArena,
    pf: &mut ArenaFrame,
    ef: &mut ArenaFrame,
    delta: Option<&ArenaDelta>,
    dedup_hom_bindings: bool,
    collect_all: bool,
    admit: &mut dyn FnMut(&[TermId]) -> bool,
) -> Scan {
    let extension = plans.extension.as_ref().expect("tgd has an extension plan");
    let mut fires: Vec<Box<[TermId]>> = Vec::new();
    let mut saw_applicable = false;
    // Distinct target choices can yield the same premise bindings (always
    // possible across delta-pinned passes, and under lenient dedup
    // policies even within one pass); dedup by the dense slot values so
    // the extension/admission work per binding runs once.
    let dedup = dedup_hom_bindings || delta.is_some();
    let mut seen: std::collections::HashSet<Box<[TermId]>> = std::collections::HashSet::new();
    pf.reset(plans.premise.slot_count());
    let emit = &mut |slots: &[TermId]| {
        if dedup {
            if seen.contains(slots) {
                return true; // same bindings already examined
            }
            seen.insert(slots.into());
        }
        ef.reset(extension.slot_count());
        ef.seed_from(&plans.ext_seed, slots);
        if extension.has_match(arena, ef) {
            return true; // conclusion already witnessed
        }
        saw_applicable = true;
        if admit(slots) {
            fires.push(slots.into());
            collect_all // stop at the first admitted match unless batching
        } else {
            true
        }
    };
    match delta {
        None => plans.premise.search(arena, pf, emit),
        Some(d) => plans.premise.search_delta(arena, d, pf, emit),
    };
    if fires.is_empty() {
        Scan::Idle { saw_applicable }
    } else {
        Scan::TgdFire(fires)
    }
}

/// Runs the chase with the incremental indexed engine under the default
/// [`EngineOpts`]: semantics (firing order, budgets, trace, renaming
/// bookkeeping) match [`crate::reference::chase_with_policy_reference`]
/// exactly; see the module docs for why.
pub fn chase_indexed(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
    dedup: &DedupPolicy,
    admission: Admission<'_>,
) -> Result<Chased, ChaseError> {
    chase_indexed_opts(q, sigma, config, dedup, admission, &EngineOpts::default())
}

/// [`chase_indexed`] with explicit [`EngineOpts`] (delta-seeded premise
/// search, speculative parallel probes).
pub fn chase_indexed_opts(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
    dedup: &DedupPolicy,
    mut admission: Admission<'_>,
    opts: &EngineOpts,
) -> Result<Chased, ChaseError> {
    // Normalize up front, as the reference does: dropping duplicates per
    // the policy is equivalence-preserving before any step fires.
    let normalized = dedup.apply(q);
    let name = normalized.name;
    let mut head: Vec<Term> = normalized.head.clone();
    let mut index = BodyIndex::new(&normalized.body);

    let mut supply = VarSupply::avoiding([q]);
    for d in sigma.iter() {
        for v in d.all_vars() {
            supply.record_var(v);
        }
    }

    let deps: Vec<&Dependency> = sigma.iter().collect();
    // Compile every plan against the body's arena: constants and tables
    // from Σ are interned/registered up front, so searches and fires never
    // miss a table and the steady state interns nothing.
    let plans: Vec<DepPlans> =
        deps.iter().map(|d| DepPlans::compile(d, index.arena_mut())).collect();
    let mut frames: Vec<DepFrames> = deps.iter().map(|_| DepFrames::new()).collect();
    let mut worklist = Worklist::new(sigma);
    let custom_admission = matches!(admission, Admission::Custom(_));
    let probes = if custom_admission { 1 } else { opts.probes.max(1) };
    // The run-long probe pool: k-1 parked workers (the caller's thread is
    // the k-th) living for the whole chase — per-step job handoff, no
    // thread spawn inside the loop.
    let pool = (probes > 1).then(|| ProbePool::new(probes - 1));
    // Per-dependency cache for query-independent admission verdicts
    // (renaming-invariant, so one evaluation per dependency suffices).
    let mut dep_admitted: Vec<Option<bool>> = vec![None; deps.len()];
    // Delta-seeded mode: generation below which dependency i's premise
    // search is known exhausted (0 = never checked → full search).
    let mut watermark: Vec<u64> = vec![0; deps.len()];
    // With a policy that never drops some duplicate atoms, distinct target
    // choices can yield the same premise bindings; see `scan_tgd`.
    let dedup_hom_bindings = !matches!(dedup, DedupPolicy::All);
    // Scratch buffers for the fire path, reused across steps.
    let mut exist_ids: Vec<TermId> = Vec::new();
    let mut arg_ids: Vec<TermId> = Vec::new();

    let mut steps = 0usize;
    let mut renaming = Subst::new();
    let mut trace: Vec<TraceEntry> = Vec::new();

    macro_rules! terminal {
        ($failed:expr) => {
            Ok(Chased {
                query: index.to_query(name, head),
                failed: $failed,
                steps,
                renaming,
                trace,
            })
        };
    }

    loop {
        opts.guard.poll(steps)?;
        if steps >= config.max_steps {
            return Err(ChaseError::BudgetExhausted { steps });
        }
        if index.len() >= config.max_atoms {
            return Err(ChaseError::QueryTooLarge { atoms: index.len() });
        }
        // Pick the dependencies to examine this round: the single lowest
        // queued one, or (speculatively) the `probes` lowest.
        let picks = if probes > 1 {
            worklist.peek_min(probes)
        } else {
            match worklist.pop_min() {
                Some(i) => vec![i],
                None => Vec::new(),
            }
        };
        if picks.is_empty() {
            // Worklist drained: no dependency applicable — terminal.
            return terminal!(false);
        }
        // Resolve query-independent admission before probing (cached,
        // mutable closure): rejected dependencies retire for good.
        if let Admission::QueryIndependent(admit) = &mut admission {
            let mut any_left = false;
            for &i in &picks {
                if let Dependency::Tgd(t) = deps[i] {
                    let allowed = *dep_admitted[i].get_or_insert_with(|| admit(t));
                    if !allowed {
                        worklist.retire(i, false);
                        continue;
                    }
                }
                any_left = true;
            }
            if !any_left {
                continue;
            }
        }
        let admitted_q_indep =
            |i: usize, dep_admitted: &[Option<bool>]| dep_admitted[i] != Some(false);

        // The generation every scan this round runs against; delta-mode
        // watermarks advance to it on an exhaustive no-find.
        let scan_gen = index.current_gen();
        fn gather_delta(index: &BodyIndex, seeded: bool, watermark_i: u64) -> Option<ArenaDelta> {
            if !seeded || watermark_i == 0 {
                return None;
            }
            let mut d = ArenaDelta::new();
            index.delta_since(watermark_i, &mut d);
            Some(d)
        }

        // Scan the picked dependencies — on the pool when probing. Every
        // scan reads the same immutable body snapshot. Custom admission
        // is sequential (probes == 1) and handled below.
        let scans: Vec<Scan> = if let Some(pool) = &pool {
            let index_ref = &index;
            let plans_ref = &plans;
            let deps_ref = &deps;
            let delta_seeding = opts.delta_seeding;
            let watermark_ref = &watermark;
            let jobs: Vec<Box<dyn FnOnce() -> Scan + Send + '_>> = picks
                .iter()
                .filter(|&&i| admitted_q_indep(i, &dep_admitted))
                .map(|&i| {
                    Box::new(move || {
                        let delta = gather_delta(index_ref, delta_seeding, watermark_ref[i]);
                        let mut pf = ArenaFrame::new();
                        match deps_ref[i] {
                            Dependency::Egd(_) => {
                                scan_egd(&plans_ref[i], index_ref.arena(), &mut pf, delta.as_ref())
                            }
                            Dependency::Tgd(_) => {
                                let mut ef = ArenaFrame::new();
                                scan_tgd(
                                    &plans_ref[i],
                                    index_ref.arena(),
                                    &mut pf,
                                    &mut ef,
                                    delta.as_ref(),
                                    dedup_hom_bindings,
                                    delta_seeding,
                                    &mut |_| true,
                                )
                            }
                        }
                    }) as Box<dyn FnOnce() -> Scan + Send + '_>
                })
                .collect();
            opts.probe.on_scans(jobs.len() as u64);
            pool.run(jobs)
        } else {
            let i = picks[0];
            if !admitted_q_indep(i, &dep_admitted) {
                continue;
            }
            opts.probe.on_scans(1);
            let delta = gather_delta(&index, opts.delta_seeding, watermark[i]);
            let DepFrames { premise: pf, ext: ef } = &mut frames[i];
            let scan = match deps[i] {
                Dependency::Egd(_) => scan_egd(&plans[i], index.arena(), pf, delta.as_ref()),
                Dependency::Tgd(_) => {
                    // Custom admission: rename the dependency apart from
                    // the current query lazily (only this mode needs the
                    // renamed namespace) and consult the predicate with
                    // the homomorphism translated into it.
                    match &mut admission {
                        Admission::Custom(admit) => {
                            let head_ref = &head;
                            let (renamed, map) = rename_dep_apart_mapped(
                                deps[i],
                                |v| index.contains_var(v) || head_ref.contains(&Term::Var(v)),
                                &mut supply,
                            );
                            let tgd_r = renamed.as_tgd().expect("renaming preserves kind");
                            let mut cur_cache: Option<CqQuery> = None;
                            let premise_plan = &plans[i].premise;
                            let index_ref = &index;
                            scan_tgd(
                                &plans[i],
                                index.arena(),
                                pf,
                                ef,
                                delta.as_ref(),
                                dedup_hom_bindings,
                                false,
                                &mut |slots| {
                                    // Boundary conversion: materialize the
                                    // match as a Subst in the renamed
                                    // namespace for the predicate.
                                    let mut h = Subst::new();
                                    premise_plan.bind_subst(index_ref.arena(), slots, &mut h);
                                    let h_r = Subst::from_pairs(h.iter().map(|(v, t)| {
                                        match map.apply_term(&Term::Var(v)) {
                                            Term::Var(v_r) => (v_r, *t),
                                            Term::Const(_) => unreachable!("vars rename to vars"),
                                        }
                                    }));
                                    let cur = cur_cache.get_or_insert_with(|| {
                                        index_ref.to_query(name, head_ref.clone())
                                    });
                                    admit(tgd_r, cur, &h_r)
                                },
                            )
                        }
                        Admission::All | Admission::QueryIndependent(_) => scan_tgd(
                            &plans[i],
                            index.arena(),
                            pf,
                            ef,
                            delta.as_ref(),
                            dedup_hom_bindings,
                            opts.delta_seeding,
                            &mut |_| true,
                        ),
                    }
                }
            };
            vec![scan]
        };

        // Commit: walk the scans in dependency order; idle verdicts
        // retire (every scan saw the same pre-step body), the first
        // actionable one fires, later results are discarded unexamined —
        // exactly the sequential schedule.
        let live_picks: Vec<usize> =
            picks.into_iter().filter(|&i| admitted_q_indep(i, &dep_admitted)).collect();
        let mut committed = false;
        for (&i, scan) in live_picks.iter().zip(scans.into_iter()) {
            match scan {
                Scan::Idle { saw_applicable } => {
                    worklist.retire(i, saw_applicable);
                    if opts.delta_seeding && !saw_applicable {
                        // Exhausted over everything below scan_gen: old
                        // verdicts carried over, the delta was searched.
                        watermark[i] = scan_gen;
                    }
                }
                Scan::EgdFailed => {
                    trace.push(TraceEntry {
                        dep_index: i,
                        dep: deps[i].to_string(),
                        action: "equated distinct constants: chase failed".into(),
                        body_size: index.len(),
                    });
                    return terminal!(true);
                }
                Scan::EgdFire(from, to) => {
                    renaming.rewrite(from, to);
                    let changed = index.apply_rewrite(from, &to, dedup);
                    for t in &mut head {
                        if *t == Term::Var(from) {
                            *t = to;
                        }
                    }
                    steps += 1;
                    index.advance_gen();
                    opts.probe.on_step();
                    trace.push(TraceEntry {
                        dep_index: i,
                        dep: deps[i].to_string(),
                        action: format!("egd: {from} := {to}"),
                        body_size: index.len(),
                    });
                    // The substitution rewrote at least one atom of the
                    // egd's own premise image, so `changed` re-arms it
                    // along with every other listener. The watermark is
                    // NOT advanced: delta candidates behind the first
                    // violation are still unexamined.
                    worklist.wake_subscribers(&changed);
                    committed = true;
                }
                Scan::TgdFire(homs) => {
                    let tgd = match deps[i] {
                        Dependency::Tgd(t) => t,
                        Dependency::Egd(_) => unreachable!("tgd scan on egd"),
                    };
                    let dp = &plans[i];
                    let ext = dp.extension.as_ref().expect("tgd extension plan");
                    for (k, slots) in homs.into_iter().enumerate() {
                        if k > 0 {
                            // Loop-head poll covers the first fire; later
                            // fires in the batch are their own steps.
                            opts.guard.poll(steps)?;
                        }
                        if steps >= config.max_steps {
                            return Err(ChaseError::BudgetExhausted { steps });
                        }
                        if index.len() >= config.max_atoms {
                            return Err(ChaseError::QueryTooLarge { atoms: index.len() });
                        }
                        // Under batch-firing an earlier fire in this very
                        // batch may have witnessed this homomorphism's
                        // conclusion; re-validate before firing.
                        if k > 0 {
                            let ef = &mut frames[i].ext;
                            ef.reset(ext.slot_count());
                            ef.seed_from(&dp.ext_seed, &slots);
                            if ext.has_match(index.arena(), ef) {
                                continue;
                            }
                        }
                        // Mint the existentials in declaration order (the
                        // fresh-name sequence must match the reference).
                        exist_ids.clear();
                        for z in &dp.existentials {
                            let fresh = Term::Var(supply.fresh(z.name()));
                            exist_ids.push(index.arena_mut().intern(fresh));
                        }
                        let mut added_preds: Vec<Predicate> = Vec::new();
                        let mut added: Vec<Atom> = Vec::with_capacity(dp.conclusion.len());
                        for (table, ops) in &dp.conclusion {
                            arg_ids.clear();
                            for op in ops {
                                arg_ids.push(match op {
                                    ConOp::Const(id) => *id,
                                    ConOp::Prem(s) => slots[*s as usize],
                                    ConOp::Exist(e) => exist_ids[*e as usize],
                                });
                            }
                            // The trace lists every instantiated rhs atom,
                            // inserted or deduped away (as the reference
                            // does) — a boundary conversion.
                            let pred = index.arena().table(*table).key().0;
                            added.push(Atom {
                                pred,
                                args: arg_ids.iter().map(|&id| index.arena().term(id)).collect(),
                            });
                            if index.insert_ids(*table, &arg_ids, dedup)
                                && !added_preds.contains(&pred)
                            {
                                added_preds.push(pred);
                            }
                        }
                        steps += 1;
                        index.advance_gen();
                        opts.probe.on_step();
                        trace.push(TraceEntry {
                            dep_index: i,
                            dep: deps[i].to_string(),
                            action: format!(
                                "tgd: added {}",
                                added.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(" ∧ ")
                            ),
                            body_size: index.len(),
                        });
                        let _ = tgd;
                        worklist.wake_subscribers(&added_preds);
                    }
                    // The same tgd may be applicable through another
                    // homomorphism whose premise predicates are not
                    // among the added atoms — stay armed. Under delta
                    // seeding the batch drained every pre-`scan_gen`
                    // candidate, so the watermark advances; future
                    // checks only examine the batch's own additions.
                    // (The first collected homomorphism always fires — it
                    // was validated applicable against this very body —
                    // so the commit is never empty.)
                    worklist.queued[i] = true;
                    if opts.delta_seeding && !custom_admission {
                        watermark[i] = scan_gen;
                    }
                    committed = true;
                }
            }
            if committed {
                if custom_admission {
                    for j in worklist.wake_admission_blocked() {
                        watermark[j] = 0;
                    }
                }
                break; // one commit per round, like the sequential scan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::chase_with_policy_reference;
    use eqsql_cq::{are_isomorphic, parse_query};
    use eqsql_deps::parse_dependencies;

    fn run_both(
        q: &str,
        sigma: &str,
        config: &ChaseConfig,
    ) -> (Result<Chased, ChaseError>, Result<Chased, ChaseError>) {
        run_both_opts(q, sigma, config, &EngineOpts::default())
    }

    fn run_both_opts(
        q: &str,
        sigma: &str,
        config: &ChaseConfig,
        opts: &EngineOpts,
    ) -> (Result<Chased, ChaseError>, Result<Chased, ChaseError>) {
        let q = parse_query(q).unwrap();
        let sigma = parse_dependencies(sigma).unwrap();
        let indexed =
            chase_indexed_opts(&q, &sigma, config, &DedupPolicy::All, Admission::All, opts);
        let reference =
            chase_with_policy_reference(&q, &sigma, config, &DedupPolicy::All, &mut |_, _, _| true);
        (indexed, reference)
    }

    /// The scheduling argument in the module docs, exercised: on inputs
    /// mixing tgds and egds the engine fires the same dependency sequence
    /// as the reference (same step count, same per-step dep indices).
    #[test]
    fn fire_order_matches_reference() {
        let cases = [
            (
                "q4(X) :- p(X,Y)",
                "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
                 p(X,Y) -> t(X,Y,W).\n\
                 p(X,Y) -> r(X).\n\
                 p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
                 s(X,Y) & s(X,Z) -> Y = Z.\n\
                 t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
            ),
            (
                "q(X) :- p(X,Y), s(X,Z)",
                "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
                 t(X,Y) & t(Z,Y) -> X = Z.",
            ),
            ("q(X) :- a(X)", "a(X) -> b(X). b(X) -> c(X,W)."),
        ];
        for (q, sigma) in cases {
            let (a, b) = run_both(q, sigma, &ChaseConfig::default());
            let (a, b) = (a.unwrap(), b.unwrap());
            assert_eq!(a.steps, b.steps, "step counts diverged on {q}");
            let seq_a: Vec<usize> = a.trace.iter().map(|t| t.dep_index).collect();
            let seq_b: Vec<usize> = b.trace.iter().map(|t| t.dep_index).collect();
            assert_eq!(seq_a, seq_b, "dependency firing order diverged on {q}");
            assert!(are_isomorphic(&a.query, &b.query), "{} vs {}", a.query, b.query);
        }
    }

    /// Speculative probing commits the same step sequence as the
    /// sequential engine — bit-identical traces, any probe width.
    #[test]
    fn parallel_probes_match_sequential_step_sequence() {
        let cases = [
            (
                "q4(X) :- p(X,Y)",
                "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
                 p(X,Y) -> t(X,Y,W).\n\
                 p(X,Y) -> r(X).\n\
                 p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
                 s(X,Y) & s(X,Z) -> Y = Z.\n\
                 t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
            ),
            (
                "q(X) :- p(X,Y), s(X,Z)",
                "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
                 t(X,Y) & t(Z,Y) -> X = Z.",
            ),
        ];
        for (q, sigma) in cases {
            for k in [2usize, 4, 8] {
                let (seq, _) = run_both(q, sigma, &ChaseConfig::default());
                let (par, _) =
                    run_both_opts(q, sigma, &ChaseConfig::default(), &EngineOpts::with_probes(k));
                let (seq, par) = (seq.unwrap(), par.unwrap());
                assert_eq!(seq.steps, par.steps, "probes={k} diverged on {q}");
                let a: Vec<usize> = seq.trace.iter().map(|t| t.dep_index).collect();
                let b: Vec<usize> = par.trace.iter().map(|t| t.dep_index).collect();
                assert_eq!(a, b, "probes={k} firing order diverged on {q}");
                assert!(are_isomorphic(&seq.query, &par.query));
            }
        }
    }

    /// Delta-seeded search may reorder steps but must land on an
    /// equivalent, Σ-satisfying terminal with the same failure/budget
    /// behavior.
    #[test]
    fn delta_seeding_reaches_equivalent_terminals() {
        let cases = [
            (
                "q4(X) :- p(X,Y)",
                "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
                 p(X,Y) -> t(X,Y,W).\n\
                 p(X,Y) -> r(X).\n\
                 p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
                 s(X,Y) & s(X,Z) -> Y = Z.\n\
                 t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
            ),
            ("q(X) :- a(X)", "a(X) -> b(X). b(X) -> c(X,W)."),
            (
                "q(X) :- p(X,Y), s(X,Z)",
                "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
                 t(X,Y) & t(Z,Y) -> X = Z.",
            ),
        ];
        for (q, sigma) in cases {
            let (delta, reference) =
                run_both_opts(q, sigma, &ChaseConfig::default(), &EngineOpts::delta_seeded());
            let (delta, reference) = (delta.unwrap(), reference.unwrap());
            assert_eq!(delta.failed, reference.failed);
            let sigma_parsed = parse_dependencies(sigma).unwrap();
            assert!(
                eqsql_deps::satisfaction::query_satisfies_all(&delta.query, &sigma_parsed),
                "delta terminal violates Σ on {q}: {}",
                delta.query
            );
            let dc = eqsql_cq::canonical_representation(&delta.query);
            let rc = eqsql_cq::canonical_representation(&reference.query);
            assert!(
                eqsql_cq::containment_mapping(&dc, &rc).is_some()
                    && eqsql_cq::containment_mapping(&rc, &dc).is_some(),
                "terminals not equivalent on {q}: {} vs {}",
                delta.query,
                reference.query
            );
        }
    }

    /// The budget-exhaustion chain: delta seeding must report the same
    /// error at the same step count as the reference.
    #[test]
    fn delta_seeding_budget_exhaustion_matches() {
        let (a, b) = run_both_opts(
            "q(X) :- e(X,Y)",
            "e(X,Y) -> e(Y,Z).",
            &ChaseConfig::with_max_steps(17),
            &EngineOpts::delta_seeded(),
        );
        assert_eq!(a.unwrap_err(), b.unwrap_err());
    }

    #[test]
    fn failure_and_budget_agree_with_reference() {
        let (a, b) = run_both(
            "q(X) :- s(X,3), s(X,4)",
            "s(X,Y) & s(X,Z) -> Y = Z.",
            &ChaseConfig::default(),
        );
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(a.failed && b.failed);
        assert_eq!(a.steps, b.steps);

        let (a, b) =
            run_both("q(X) :- e(X,Y)", "e(X,Y) -> e(Y,Z).", &ChaseConfig::with_max_steps(17));
        assert_eq!(a.unwrap_err(), b.unwrap_err());
    }

    #[test]
    fn multiple_homs_of_one_tgd_all_fire() {
        // Premise pred of the fired tgd is NOT among its added atoms: the
        // self-re-arm path must keep it queued for the second hom.
        let (a, b) =
            run_both("q(X) :- p(X,Y), p(Y,X)", "p(A,B) -> s(A,Z).", &ChaseConfig::default());
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.steps, 2);
        assert_eq!(a.steps, b.steps);
        assert!(are_isomorphic(&a.query, &b.query));
    }

    #[test]
    fn terminal_state_is_sigma_satisfying() {
        let q = parse_query("q4(X) :- p(X,Y)").unwrap();
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        let r =
            chase_indexed(&q, &sigma, &ChaseConfig::default(), &DedupPolicy::All, Admission::All)
                .unwrap();
        assert!(eqsql_deps::satisfaction::query_satisfies_all(&r.query, &sigma));
    }
}
