//! The incremental indexed chase engine.
//!
//! The naive driver (kept as [`crate::reference`], the differential-testing
//! oracle) restarts the Σ scan from σ₀ after every step and re-derives all
//! of its working state — variable set, homomorphism buckets, deduplicated
//! body — from scratch each time. With chase results exponential in the
//! schema size (Appendix H of the paper), those per-step constants multiply
//! an already-exponential object. This engine eliminates them:
//!
//! 1. **Persistent [`BodyIndex`]** — predicate/arity buckets, variable
//!    occurrence lists and atom-value fingerprints live across the whole
//!    run and are mutated in place by tgd appends and egd substitutions;
//!    nothing is rebuilt, re-sorted or re-cloned per step.
//! 2. **First-match homomorphism search** — tgd applicability threads the
//!    conclusion-extension check (and the admission predicate) into the
//!    backtracking premise search as a filter, stopping at the first
//!    admissible homomorphism; the driver only ever fires one per step, so
//!    the reference's materialize-then-filter enumeration is pure waste.
//!    Egd search stops at the first violating homomorphism the same way.
//! 3. **Delta-driven scheduling** — a worklist of dependency indices,
//!    re-armed only for dependencies whose premise predicates intersect
//!    the atoms just added or rewritten (semi-naive evaluation). A
//!    dependency checked satisfied stays retired until a relevant delta:
//!    a homomorphism that avoids every changed atom existed before the
//!    step, with its conclusion extension intact, so its verdict carries
//!    over (see `docs` on [`fire_order_matches_reference`] in the tests).
//!
//! The engine fires, at every step, the same dependency the reference
//! driver would (the lowest-indexed applicable one, with the first
//! admissible homomorphism in the shared deterministic search order), so
//! the two produce isomorphic terminal queries, identical step counts,
//! identical failure flags and identical error variants — which the
//! differential suite in `tests/tests/engine_differential.rs` checks.
//!
//! One deliberate divergence from semi-naive purity: a *custom* admission
//! predicate (the sound chase's assignment-fixing test) depends on the
//! whole current query, not just the premise image — Example 5.1 of the
//! paper is exactly a query whose growth flips a verdict. Dependencies
//! rejected only by admission are therefore re-armed after **every**
//! step, preserving the reference semantics; dependencies with no
//! applicable homomorphism at all still enjoy delta scheduling.

use crate::error::{ChaseConfig, ChaseError};
use crate::index::BodyIndex;
use crate::set_chase::{Chased, TraceEntry};
use crate::step::{classify_egd_violation, rename_dep_apart_with, DedupPolicy};
use eqsql_cq::hom::{extend_homomorphism_with_buckets, search_homomorphisms};
use eqsql_cq::{CqQuery, Predicate, Subst, Term, Var, VarSupply};
use eqsql_deps::{Dependency, DependencySet, Tgd};
use std::collections::HashMap;

/// How tgd steps are admitted.
pub enum Admission<'a> {
    /// Every applicable step fires (the classical set chase).
    All,
    /// `admit(tgd, cur, hom)` decides (the sound chase's assignment-fixing
    /// filter). The tgd is renamed apart, `hom` maps its premise into
    /// `cur`'s body. Because the verdict may depend on the whole current
    /// query, rejected dependencies are re-armed after every step.
    Custom(&'a mut dyn FnMut(&Tgd, &CqQuery, &Subst) -> bool),
    /// `admit(tgd)` decides from the dependency alone (the key-based /
    /// UWD filter): evaluated once per dependency, cached, and a rejected
    /// dependency retires permanently — no per-homomorphism or per-step
    /// re-checking.
    QueryIndependent(&'a mut dyn FnMut(&Tgd) -> bool),
}

/// The per-run scheduler state: which dependencies might act.
struct Worklist {
    /// `queued[i]`: dependency `i` must be (re-)checked.
    queued: Vec<bool>,
    /// `blocked_on_admit[i]`: last check found applicable homomorphisms
    /// but the admission predicate rejected all of them — re-arm after
    /// any step (admission is a whole-query property).
    blocked_on_admit: Vec<bool>,
    /// Premise predicate → dependencies listening on it.
    subscribers: HashMap<Predicate, Vec<usize>>,
}

impl Worklist {
    fn new(sigma: &DependencySet) -> Worklist {
        let n = sigma.len();
        let mut subscribers: HashMap<Predicate, Vec<usize>> = HashMap::new();
        for (i, dep) in sigma.iter().enumerate() {
            let mut seen: Vec<Predicate> = Vec::new();
            for atom in dep.lhs() {
                if !seen.contains(&atom.pred) {
                    seen.push(atom.pred);
                    subscribers.entry(atom.pred).or_default().push(i);
                }
            }
        }
        Worklist { queued: vec![true; n], blocked_on_admit: vec![false; n], subscribers }
    }

    /// The lowest queued dependency — the same one the reference driver's
    /// restart-from-σ₀ scan would reach first.
    fn pop_min(&self) -> Option<usize> {
        self.queued.iter().position(|&q| q)
    }

    fn retire(&mut self, i: usize, blocked_on_admit: bool) {
        self.queued[i] = false;
        self.blocked_on_admit[i] = blocked_on_admit;
    }

    /// Re-arms every dependency whose premise mentions one of `preds`.
    fn wake_subscribers(&mut self, preds: &[Predicate]) {
        for p in preds {
            if let Some(subs) = self.subscribers.get(p) {
                for &i in subs {
                    self.queued[i] = true;
                }
            }
        }
    }

    /// Re-arms dependencies whose only obstacle was the admission
    /// predicate; called after every step when admission is custom.
    fn wake_admission_blocked(&mut self) {
        for i in 0..self.queued.len() {
            if self.blocked_on_admit[i] {
                self.queued[i] = true;
                self.blocked_on_admit[i] = false;
            }
        }
    }
}

/// Runs the chase with the incremental indexed engine. Semantics (firing
/// order, budgets, trace, renaming bookkeeping) match
/// [`crate::reference::chase_with_policy_reference`] exactly; see the
/// module docs for why.
pub fn chase_indexed(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
    dedup: &DedupPolicy,
    mut admission: Admission<'_>,
) -> Result<Chased, ChaseError> {
    // Normalize up front, as the reference does: dropping duplicates per
    // the policy is equivalence-preserving before any step fires.
    let normalized = dedup.apply(q);
    let name = normalized.name;
    let mut head: Vec<Term> = normalized.head.clone();
    let mut index = BodyIndex::new(&normalized.body);

    let mut supply = VarSupply::avoiding([q]);
    for d in sigma.iter() {
        for v in d.all_vars() {
            supply.record_var(v);
        }
    }

    let deps: Vec<&Dependency> = sigma.iter().collect();
    let mut worklist = Worklist::new(sigma);
    let custom_admission = matches!(admission, Admission::Custom(_));
    // Per-dependency cache for query-independent admission verdicts
    // (renaming-invariant, so one evaluation per dependency suffices).
    let mut dep_admitted: Vec<Option<bool>> = vec![None; deps.len()];
    // With a policy that never drops some duplicate atoms, distinct target
    // choices can yield the same premise bindings; dedup those so the
    // extension/admission work per binding runs once (the reference's
    // `all_homomorphisms` dedups the same way). Under `DedupPolicy::All`
    // bindings are unique per homomorphism, so the set is skipped.
    let dedup_hom_bindings = !matches!(dedup, DedupPolicy::All);

    let mut steps = 0usize;
    let mut renaming = Subst::new();
    let mut trace: Vec<TraceEntry> = Vec::new();

    loop {
        if steps >= config.max_steps {
            return Err(ChaseError::BudgetExhausted { steps });
        }
        if index.len() >= config.max_atoms {
            return Err(ChaseError::QueryTooLarge { atoms: index.len() });
        }
        let Some(i) = worklist.pop_min() else {
            // Worklist drained: no dependency applicable — terminal.
            return Ok(Chased {
                query: index.to_query(name, head),
                failed: false,
                steps,
                renaming,
                trace,
            });
        };
        let head_has = |v: Var| head.contains(&Term::Var(v));
        let dep_r = rename_dep_apart_with(
            deps[i],
            |v| index.contains_var(v) || head_has(v),
            &mut supply,
        );
        match &dep_r {
            Dependency::Egd(egd) => {
                // First violating homomorphism, found lazily.
                let mut verdict: Option<Result<(Var, Term), ()>> = None;
                search_homomorphisms(
                    &egd.lhs,
                    index.atoms(),
                    index.buckets(),
                    &Subst::new(),
                    &mut |h| {
                        verdict = classify_egd_violation(egd, h);
                        verdict.is_none() // keep searching until a violation
                    },
                );
                match verdict {
                    None => worklist.retire(i, false),
                    Some(Err(())) => {
                        trace.push(TraceEntry {
                            dep_index: i,
                            dep: deps[i].to_string(),
                            action: "equated distinct constants: chase failed".into(),
                            body_size: index.len(),
                        });
                        return Ok(Chased {
                            query: index.to_query(name, head),
                            failed: true,
                            steps,
                            renaming,
                            trace,
                        });
                    }
                    Some(Ok((from, to))) => {
                        renaming.rewrite(from, to);
                        let changed = index.apply_rewrite(from, &to, dedup);
                        for t in &mut head {
                            if *t == Term::Var(from) {
                                *t = to;
                            }
                        }
                        steps += 1;
                        trace.push(TraceEntry {
                            dep_index: i,
                            dep: deps[i].to_string(),
                            action: format!("egd: {from} := {to}"),
                            body_size: index.len(),
                        });
                        // The substitution rewrote at least one atom of the
                        // egd's own premise image, so `changed` re-arms it
                        // along with every other listener.
                        worklist.wake_subscribers(&changed);
                        if custom_admission {
                            worklist.wake_admission_blocked();
                        }
                    }
                }
            }
            Dependency::Tgd(tgd) => {
                if let Admission::QueryIndependent(admit) = &mut admission {
                    let allowed =
                        *dep_admitted[i].get_or_insert_with(|| admit(tgd));
                    if !allowed {
                        // Rejected on the dependency alone: retire for good
                        // (the verdict cannot change as the query evolves).
                        worklist.retire(i, false);
                        continue;
                    }
                }
                // First applicable *and admitted* homomorphism: the
                // conclusion-extension check and the admission predicate
                // prune the premise search in flight.
                let mut found: Option<Subst> = None;
                let mut saw_applicable = false;
                let mut cur_cache: Option<CqQuery> = None;
                let mut seen_bindings: std::collections::HashSet<Vec<(Var, Term)>> =
                    std::collections::HashSet::new();
                search_homomorphisms(
                    &tgd.lhs,
                    index.atoms(),
                    index.buckets(),
                    &Subst::new(),
                    &mut |h| {
                        if dedup_hom_bindings && !seen_bindings.insert(h.sorted_pairs()) {
                            return true; // same bindings already examined
                        }
                        let extends = extend_homomorphism_with_buckets(
                            &tgd.rhs,
                            index.atoms(),
                            index.buckets(),
                            h,
                        )
                        .is_some();
                        if extends {
                            return true; // conclusion already witnessed
                        }
                        saw_applicable = true;
                        let admitted = match &mut admission {
                            Admission::All | Admission::QueryIndependent(_) => true,
                            Admission::Custom(admit) => {
                                let cur = cur_cache.get_or_insert_with(|| {
                                    index.to_query(name, head.clone())
                                });
                                admit(tgd, cur, h)
                            }
                        };
                        if admitted {
                            found = Some(h.clone());
                            false
                        } else {
                            true
                        }
                    },
                );
                match found {
                    None => worklist.retire(i, saw_applicable),
                    Some(h) => {
                        let mut s = h;
                        for z in tgd.existential_vars() {
                            s.set(z, Term::Var(supply.fresh(z.name())));
                        }
                        let added = s.apply_atoms(&tgd.rhs);
                        let mut added_preds: Vec<Predicate> = Vec::new();
                        for atom in &added {
                            if index.insert(atom.clone(), dedup)
                                && !added_preds.contains(&atom.pred)
                            {
                                added_preds.push(atom.pred);
                            }
                        }
                        steps += 1;
                        trace.push(TraceEntry {
                            dep_index: i,
                            dep: deps[i].to_string(),
                            action: format!(
                                "tgd: added {}",
                                added
                                    .iter()
                                    .map(|a| a.to_string())
                                    .collect::<Vec<_>>()
                                    .join(" ∧ ")
                            ),
                            body_size: index.len(),
                        });
                        worklist.wake_subscribers(&added_preds);
                        // The same tgd may be applicable through another
                        // homomorphism whose premise predicates are not
                        // among the added atoms — stay armed.
                        worklist.queued[i] = true;
                        if custom_admission {
                            worklist.wake_admission_blocked();
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::chase_with_policy_reference;
    use eqsql_cq::{are_isomorphic, parse_query};
    use eqsql_deps::parse_dependencies;

    fn run_both(
        q: &str,
        sigma: &str,
        config: &ChaseConfig,
    ) -> (Result<Chased, ChaseError>, Result<Chased, ChaseError>) {
        let q = parse_query(q).unwrap();
        let sigma = parse_dependencies(sigma).unwrap();
        let indexed =
            chase_indexed(&q, &sigma, config, &DedupPolicy::All, Admission::All);
        let reference = chase_with_policy_reference(
            &q,
            &sigma,
            config,
            &DedupPolicy::All,
            &mut |_, _, _| true,
        );
        (indexed, reference)
    }

    /// The scheduling argument in the module docs, exercised: on inputs
    /// mixing tgds and egds the engine fires the same dependency sequence
    /// as the reference (same step count, same per-step dep indices).
    #[test]
    fn fire_order_matches_reference() {
        let cases = [
            (
                "q4(X) :- p(X,Y)",
                "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
                 p(X,Y) -> t(X,Y,W).\n\
                 p(X,Y) -> r(X).\n\
                 p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
                 s(X,Y) & s(X,Z) -> Y = Z.\n\
                 t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
            ),
            (
                "q(X) :- p(X,Y), s(X,Z)",
                "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
                 t(X,Y) & t(Z,Y) -> X = Z.",
            ),
            ("q(X) :- a(X)", "a(X) -> b(X). b(X) -> c(X,W)."),
        ];
        for (q, sigma) in cases {
            let (a, b) = run_both(q, sigma, &ChaseConfig::default());
            let (a, b) = (a.unwrap(), b.unwrap());
            assert_eq!(a.steps, b.steps, "step counts diverged on {q}");
            let seq_a: Vec<usize> = a.trace.iter().map(|t| t.dep_index).collect();
            let seq_b: Vec<usize> = b.trace.iter().map(|t| t.dep_index).collect();
            assert_eq!(seq_a, seq_b, "dependency firing order diverged on {q}");
            assert!(are_isomorphic(&a.query, &b.query), "{} vs {}", a.query, b.query);
        }
    }

    #[test]
    fn failure_and_budget_agree_with_reference() {
        let (a, b) = run_both(
            "q(X) :- s(X,3), s(X,4)",
            "s(X,Y) & s(X,Z) -> Y = Z.",
            &ChaseConfig::default(),
        );
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(a.failed && b.failed);
        assert_eq!(a.steps, b.steps);

        let (a, b) = run_both(
            "q(X) :- e(X,Y)",
            "e(X,Y) -> e(Y,Z).",
            &ChaseConfig::with_max_steps(17),
        );
        assert_eq!(a.unwrap_err(), b.unwrap_err());
    }

    #[test]
    fn multiple_homs_of_one_tgd_all_fire() {
        // Premise pred of the fired tgd is NOT among its added atoms: the
        // self-re-arm path must keep it queued for the second hom.
        let (a, b) = run_both(
            "q(X) :- p(X,Y), p(Y,X)",
            "p(A,B) -> s(A,Z).",
            &ChaseConfig::default(),
        );
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.steps, 2);
        assert_eq!(a.steps, b.steps);
        assert!(are_isomorphic(&a.query, &b.query));
    }

    #[test]
    fn terminal_state_is_sigma_satisfying() {
        let q = parse_query("q4(X) :- p(X,Y)").unwrap();
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        let r = chase_indexed(
            &q,
            &sigma,
            &ChaseConfig::default(),
            &DedupPolicy::All,
            Admission::All,
        )
        .unwrap();
        assert!(eqsql_deps::satisfaction::query_satisfies_all(&r.query, &sigma));
    }
}
