//! The `Max-Bag-Σ-Subset` and `Max-Bag-Set-Σ-Subset` algorithms
//! (Algorithms 1 and 2, Theorems 5.3, 5.4 and I.1 of the paper).
//!
//! For a query `Q` and dependencies Σ with terminating set-chase, let `Q_n`
//! be the sound chase result under the chosen semantics. There is a unique
//! maximal `Σ^max ⊆ Σ` with `D(Q_n) ⊨ Σ^max`, and it is obtained by
//! removing exactly those dependencies that are *unsoundly applicable* to
//! `Q_n`.
//!
//! On the terminal result of a sound chase, a dependency is applicable iff
//! it is unsoundly applicable (every soundly applicable step has already
//! fired, and egd steps — always sound — have all fired too). Hence the
//! `soundChaseStep = false` filter of the paper's pseudocode coincides with
//! the satisfaction check `D(Q_n) ⊨ σ`, which is how we implement it.

use crate::error::{ChaseConfig, ChaseError};
use crate::sound::{sound_chase, SoundChased};
use eqsql_cq::CqQuery;
use eqsql_deps::satisfaction::satisfied_subset;
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};

/// Output of the Max-Σ-Subset algorithms: the subset plus the sound chase
/// result it was computed from.
#[derive(Clone, Debug)]
pub struct MaxSubset {
    /// The maximal `Σ^max ⊆ Σ` with `D(Q_n) ⊨ Σ^max`.
    pub subset: DependencySet,
    /// The sound chase result `Q_n`.
    pub chased: SoundChased,
}

fn max_subset(
    sem: Semantics,
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<MaxSubset, ChaseError> {
    let chased = sound_chase(sem, q, sigma, schema, config)?;
    let subset = satisfied_subset(&chased.query, sigma);
    Ok(MaxSubset { subset, chased })
}

/// `Max-Bag-Σ-Subset(Q, Σ)` — Algorithm 1 / Theorem 5.3.
pub fn max_bag_sigma_subset(
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<MaxSubset, ChaseError> {
    max_subset(Semantics::Bag, q, sigma, schema, config)
}

/// `Max-Bag-Set-Σ-Subset(Q, Σ)` — Algorithm 2 / Theorem I.1.
pub fn max_bag_set_sigma_subset(
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<MaxSubset, ChaseError> {
    max_subset(Semantics::BagSet, q, sigma, schema, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;
    use eqsql_deps::satisfaction::query_satisfies_all;

    fn sigma_4_1() -> DependencySet {
        parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap()
    }

    fn schema_4_1() -> Schema {
        let mut s = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        s.mark_set_valued(eqsql_cq::Predicate::new("s"));
        s.mark_set_valued(eqsql_cq::Predicate::new("t"));
        s
    }

    #[test]
    fn proposition_5_2_proper_chain_on_example_4_1() {
        // Σ^max_B(Q4, Σ) ⊂ Σ^max_BS(Q4, Σ) ⊂ Σ, all inclusions proper.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let sigma = sigma_4_1();
        let cfg = ChaseConfig::default();
        let b = max_bag_sigma_subset(&q4, &sigma, &schema_4_1(), &cfg).unwrap();
        let bs = max_bag_set_sigma_subset(&q4, &sigma, &schema_4_1(), &cfg).unwrap();
        assert!(b.subset.len() < bs.subset.len(), "B ⊂ BS must be proper here");
        assert!(bs.subset.len() < sigma.len(), "BS ⊂ Σ must be proper here");
        // Every dependency in the smaller set is in the larger.
        for d in b.subset.iter() {
            assert!(bs.subset.contains(d));
        }
        for d in bs.subset.iter() {
            assert!(sigma.contains(d));
        }
    }

    #[test]
    fn subsets_are_satisfied_and_maximal() {
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let sigma = sigma_4_1();
        let cfg = ChaseConfig::default();
        for result in [
            max_bag_sigma_subset(&q4, &sigma, &schema_4_1(), &cfg).unwrap(),
            max_bag_set_sigma_subset(&q4, &sigma, &schema_4_1(), &cfg).unwrap(),
        ] {
            // D(Q_n) ⊨ Σ^max ...
            assert!(query_satisfies_all(&result.chased.query, &result.subset));
            // ... and no proper superset within Σ is satisfied: every
            // removed dependency individually fails.
            for d in sigma.iter() {
                if !result.subset.contains(d) {
                    assert!(!eqsql_deps::satisfaction::query_satisfies(&result.chased.query, d));
                }
            }
        }
    }

    #[test]
    fn sigma3_and_sigma4_are_dropped_under_bag() {
        // The canonical database of Q3 = (Q4)_{Σ,B} misses r and u tuples.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let b = max_bag_sigma_subset(&q4, &sigma_4_1(), &schema_4_1(), &ChaseConfig::default())
            .unwrap();
        let dropped: Vec<String> =
            sigma_4_1().iter().filter(|d| !b.subset.contains(d)).map(|d| d.to_string()).collect();
        assert_eq!(
            dropped,
            vec!["p(X, Y) -> r(X)".to_string(), "p(X, Y) -> u(X, Z) & t(X, Y, W)".to_string()]
        );
    }

    #[test]
    fn query_dependence_of_max_subset() {
        // §5.3: for Q(X) :- p(X,Y), u(X,Z), the canonical database of
        // (Q)_{Σ,B} satisfies σ4 — unlike for Q4.
        let q = parse_query("q(X) :- p(X,Y), u(X,Z)").unwrap();
        let b =
            max_bag_sigma_subset(&q, &sigma_4_1(), &schema_4_1(), &ChaseConfig::default()).unwrap();
        let sigma4 = sigma_4_1().as_slice()[3].clone();
        assert!(b.subset.contains(&sigma4), "σ4 should be satisfied for this query");
    }

    #[test]
    fn all_kept_when_chase_is_noop_and_sigma_satisfied() {
        let q = parse_query("q(X) :- a(X), b(X)").unwrap();
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let r = max_bag_sigma_subset(
            &q,
            &sigma,
            &Schema::all_bags(&[("a", 1), ("b", 1)]),
            &ChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(r.subset.len(), 1);
    }
}
