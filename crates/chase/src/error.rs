//! Chase configuration and errors.

use std::fmt;

/// Resource limits for a chase run.
///
/// Set-semantics chase terminates for weakly acyclic Σ (Theorem H.1) but is
/// undecidable in general, so every public entry point takes a step budget.
/// Exhausting it yields [`ChaseError::BudgetExhausted`], and callers (the
/// Σ-equivalence tests, the C&B family) report "unknown" rather than loop —
/// matching the paper's "whenever set-chase on the inputs terminates"
/// proviso.
#[derive(Copy, Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum number of chase steps before giving up.
    pub max_steps: usize,
    /// Maximum number of body atoms a chased query may grow to.
    pub max_atoms: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig { max_steps: 5_000, max_atoms: 5_000 }
    }
}

impl ChaseConfig {
    /// A configuration with the given step budget.
    pub fn with_max_steps(max_steps: usize) -> ChaseConfig {
        ChaseConfig { max_steps, ..ChaseConfig::default() }
    }
}

/// A chase-engine error.
///
/// The first two variants are *stable* outcomes — deterministic facts
/// about (Q, Σ, budget) that hold on every re-run and may be cached. The
/// guard variants ([`DeadlineExceeded`](ChaseError::DeadlineExceeded),
/// [`Cancelled`](ChaseError::Cancelled)) are *transient*: they record that
/// this particular run was abandoned, not anything about the input, and
/// [`is_cacheable`](ChaseError::is_cacheable) excludes them from
/// memoization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// The step budget ran out — the chase may not terminate on this input
    /// (Σ is not weakly acyclic, or the budget is too small).
    BudgetExhausted {
        /// Steps taken before giving up.
        steps: usize,
    },
    /// The chased query grew past the atom budget.
    QueryTooLarge {
        /// Number of atoms reached.
        atoms: usize,
    },
    /// The run's wall-clock deadline passed before the chase terminated
    /// (see [`crate::RunGuard`]). Transient: says nothing about (Q, Σ).
    DeadlineExceeded {
        /// Steps taken before the deadline was observed.
        steps: usize,
    },
    /// The run's cancellation token was set before the chase terminated
    /// (see [`crate::Cancel`]). Transient: says nothing about (Q, Σ).
    Cancelled {
        /// Steps taken before cancellation was observed.
        steps: usize,
    },
}

impl ChaseError {
    /// Is this error a stable fact about (Q, Σ, budget) that a chase-result
    /// cache may memoize? `true` for the budget variants (re-running the
    /// same input under the same budgets deterministically reproduces
    /// them), `false` for the transient guard aborts — caching those would
    /// poison the cache with outcomes of one run's deadline or one
    /// caller's lost interest.
    pub fn is_cacheable(&self) -> bool {
        match self {
            ChaseError::BudgetExhausted { .. } | ChaseError::QueryTooLarge { .. } => true,
            ChaseError::DeadlineExceeded { .. } | ChaseError::Cancelled { .. } => false,
        }
    }

    /// Stable wire encoding of the *cacheable* variants, for persistence
    /// layers that memoize terminal outcomes across processes: `(code,
    /// magnitude)`, where the magnitude is the steps/atoms count. `None`
    /// for transient guard aborts — they must never be serialized (the
    /// mirror of [`ChaseError::is_cacheable`], and the codes are part of
    /// the on-disk format, so they must never be renumbered).
    pub fn wire(&self) -> Option<(u8, u64)> {
        match self {
            ChaseError::BudgetExhausted { steps } => Some((1, *steps as u64)),
            ChaseError::QueryTooLarge { atoms } => Some((2, *atoms as u64)),
            ChaseError::DeadlineExceeded { .. } | ChaseError::Cancelled { .. } => None,
        }
    }

    /// Inverse of [`ChaseError::wire`]: `None` for unknown codes (a decoder
    /// must treat that as a corrupt record, not a panic).
    pub fn from_wire(code: u8, magnitude: u64) -> Option<ChaseError> {
        match code {
            1 => Some(ChaseError::BudgetExhausted { steps: magnitude as usize }),
            2 => Some(ChaseError::QueryTooLarge { atoms: magnitude as usize }),
            _ => None,
        }
    }
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::BudgetExhausted { steps } => {
                write!(f, "chase did not terminate within {steps} steps")
            }
            ChaseError::QueryTooLarge { atoms } => {
                write!(f, "chased query grew past {atoms} atoms")
            }
            ChaseError::DeadlineExceeded { steps } => {
                write!(f, "deadline exceeded after {steps} chase steps")
            }
            ChaseError::Cancelled { steps } => {
                write!(f, "cancelled after {steps} chase steps")
            }
        }
    }
}

impl std::error::Error for ChaseError {}
