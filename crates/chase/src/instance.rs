//! Instance-level chase with labelled nulls (the data-exchange-style chase
//! of \[14\], used here as a substrate).
//!
//! Repairs a database into a model of Σ: tgd violations add tuples whose
//! existential positions hold fresh labelled nulls ([`Value::Labeled`]);
//! egd violations merge a labelled null into the other value (failing when
//! two distinct non-null constants are equated). The result, when the
//! chase terminates, satisfies Σ — this is how `eqsql-gen` turns random
//! databases into Σ-satisfying test instances for the cross-validation
//! suites.
//!
//! ## Search
//!
//! [`chase_database`]'s violation search runs on the flat arena
//! ([`eqsql_cq::arena`]): the database is interned once into columnar
//! per-relation tables (`u32` ids, one contiguous column per argument
//! position) and refilled — terms and table registry kept — only when a
//! step mutates it (satisfied checks reuse the view). Per-dependency
//! [`eqsql_cq::ArenaPlan`]s compile once per run against that arena, and
//! the dependency premise streams over it first-match with the tgd
//! conclusion check threaded in as a pruning predicate through a
//! precompiled seed map — no assignment set is ever collected, where the
//! naive path materialized *every* premise assignment before looking at
//! one. Rows are appended in the naive evaluator's per-relation tuple
//! order, so both drivers repair the same violation first and allocate
//! identical labelled nulls — which the differential suite asserts
//! tuple-for-tuple. The naive [`assignments`]-based step functions
//! survive privately for [`chase_database_reference`], the oracle.
//!
//! ## Scheduling
//!
//! [`chase_database`] uses the same delta-driven worklist as the query
//! chase engine ([`crate::engine`]): a dependency found satisfied retires
//! until a step changes one of its **premise** relations. That is sound
//! here because steps only ever *add* witnesses elsewhere —
//!
//! * tgd steps insert tuples and remove nothing, so a satisfied
//!   dependency's extensions survive;
//! * an egd step applies a value replacement `ρ` to the whole database;
//!   for any premise assignment whose tuples `ρ` leaves unchanged, its
//!   assigned values contain no replaced value, so a conclusion witness
//!   `T` maps to the still-present `ρ(T)` (and an egd's satisfied
//!   equality stays satisfied). Any premise tuple `ρ` *does* change lives
//!   in a changed relation, which re-arms the dependency.
//!
//! The worklist pops the lowest queued index, so the engine fires the
//! same dependency sequence as the naive restart-from-σ₀ scan — kept as
//! [`chase_database_reference`], the differential oracle.

use crate::error::{ChaseConfig, ChaseError};
use crate::guard::RunGuard;
use eqsql_cq::{
    ArenaFrame, ArenaPlan, Atom, EqOp, Predicate, SeedMap, Term, TermArena, TermId, Value, Var,
};
use eqsql_deps::{Dependency, DependencySet, Egd, Tgd};
use eqsql_relalg::eval::{assignments, Assignment};
use eqsql_relalg::{Database, Relation, Tuple};
use std::collections::HashMap;

/// Result of an instance chase.
#[derive(Clone, Debug)]
pub struct InstanceChased {
    /// The repaired database (meaningless when `failed`).
    pub db: Database,
    /// Did an egd equate two distinct non-null constants?
    pub failed: bool,
    /// Number of chase steps applied.
    pub steps: usize,
}

fn max_label(db: &Database) -> u64 {
    db.active_domain()
        .into_iter()
        .filter_map(|v| match v {
            Value::Labeled(n) => Some(n),
            _ => None,
        })
        .max()
        .map_or(0, |n| n + 1)
}

fn ground_with(atoms: &[Atom], asg: &Assignment) -> Vec<Atom> {
    atoms
        .iter()
        .map(|a| Atom {
            pred: a.pred,
            args: a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match asg.get(v) {
                        Some(val) => Term::Const(*val),
                        None => *t,
                    },
                    Term::Const(_) => *t,
                })
                .collect(),
        })
        .collect()
}

/// Replaces every occurrence of `from` by `to` throughout the database,
/// merging multiplicities of tuples that collide. Returns the rewritten
/// database plus the predicates whose relations actually changed (had at
/// least one tuple containing `from`) — the delta the worklist wakes on.
fn replace_value(db: &Database, from: Value, to: Value) -> (Database, Vec<Predicate>) {
    let mut out = Database::new();
    let mut changed = Vec::new();
    for (p, r) in db.iter() {
        let target = out.get_or_create(p, r.arity());
        let mut touched = false;
        for (t, m) in r.iter() {
            touched |= t.iter().any(|v| *v == from);
            let vals: Vec<Value> = t.iter().map(|v| if *v == from { to } else { *v }).collect();
            target.insert(Tuple::new(vals), m);
        }
        if touched {
            changed.push(p);
        }
    }
    (out, changed)
}

/// The database interned into a columnar [`TermArena`] — the search
/// target. Per relation, rows are appended in core-set order, so the
/// arena's candidate order equals the naive evaluator's.
struct GroundView {
    arena: TermArena,
}

impl GroundView {
    fn of(db: &Database) -> GroundView {
        let mut gv = GroundView { arena: TermArena::new() };
        gv.fill(db);
        gv
    }

    fn fill(&mut self, db: &Database) {
        let mut scratch: Vec<TermId> = Vec::new();
        for (p, r) in db.iter() {
            let t = self.arena.table_id((p, r.arity()));
            for tup in r.core_set() {
                scratch.clear();
                for v in tup.iter() {
                    scratch.push(self.arena.intern(Term::Const(*v)));
                }
                self.arena.push_row(t, &scratch);
            }
        }
    }

    /// Re-interns the database after a mutating step. Interned term ids
    /// and the table registry survive ([`TermArena::clear_rows`]), so
    /// compiled plans stay valid and steady-state refills intern nothing
    /// new except freshly minted nulls.
    fn refill(&mut self, db: &Database) {
        self.arena.clear_rows();
        self.fill(db);
    }
}

/// Inserts the grounded conclusion atoms, minting fresh labelled nulls
/// for the variables the premise match left free (shared across the
/// conclusion atoms). Returns the predicates that received a new tuple.
fn insert_conclusion(db: &mut Database, rhs: &[Atom], next_null: &mut u64) -> Vec<Predicate> {
    let mut nulls: HashMap<Var, Value> = HashMap::new();
    let mut added = Vec::new();
    for atom in rhs {
        let vals: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *nulls.entry(*v).or_insert_with(|| {
                    let val = Value::Labeled(*next_null);
                    *next_null += 1;
                    val
                }),
            })
            .collect();
        let rel: &mut Relation = db.get_or_create(atom.pred, vals.len());
        let tup = Tuple::new(vals);
        if !rel.contains(&tup) {
            rel.insert(tup, 1);
            if !added.contains(&atom.pred) {
                added.push(atom.pred);
            }
        }
    }
    added
}

/// A dependency's compiled plans, built once per chase run against the
/// ground view's arena (the premise keeps the written atom order so the
/// first violation found matches the naive oracle's).
struct InstancePlans {
    premise: ArenaPlan,
    /// Tgd conclusion; `None` for egds.
    conclusion: Option<ArenaPlan>,
    /// Conclusion slot ← premise slot, for the shared universals.
    con_seed: SeedMap,
    /// Tgd rhs template: per atom, its predicate and how each argument
    /// reads off a premise match (`Free` = existential, minted as a null).
    rhs_tmpl: Vec<(Predicate, Vec<EqOp>)>,
    /// Egd equality sides, resolved against the premise plan.
    egd_eq: Option<(EqOp, EqOp)>,
}

impl InstancePlans {
    fn compile(dep: &Dependency, arena: &mut TermArena) -> InstancePlans {
        let premise = ArenaPlan::new(dep.lhs(), arena);
        match dep {
            Dependency::Tgd(t) => {
                let conclusion = ArenaPlan::new(&t.rhs, arena);
                let con_seed = conclusion.seed_map_from(&premise);
                let rhs_tmpl = t
                    .rhs
                    .iter()
                    .map(|a| (a.pred, a.args.iter().map(|arg| premise.eq_op(arg, arena)).collect()))
                    .collect();
                InstancePlans {
                    premise,
                    conclusion: Some(conclusion),
                    con_seed,
                    rhs_tmpl,
                    egd_eq: None,
                }
            }
            Dependency::Egd(e) => {
                let egd_eq = Some((premise.eq_op(&e.eq.0, arena), premise.eq_op(&e.eq.1, arena)));
                InstancePlans {
                    premise,
                    conclusion: None,
                    con_seed: SeedMap::new(),
                    rhs_tmpl: Vec::new(),
                    egd_eq,
                }
            }
        }
    }
}

/// A dependency's reusable search frames, allocated once per run.
struct InstanceFrames {
    premise: ArenaFrame,
    con: ArenaFrame,
}

impl InstanceFrames {
    fn new() -> InstanceFrames {
        InstanceFrames { premise: ArenaFrame::new(), con: ArenaFrame::new() }
    }
}

/// Repairs the first tgd violation found, if any. Returns the predicates
/// that received a new tuple, or `None` when the tgd is satisfied.
///
/// First-match arena search over the caller's [`GroundView`] with the
/// conclusion check threaded in as a pruning predicate (seeded through
/// the precompiled map): no assignment set is materialized, and a
/// satisfied premise match costs one existence probe instead of a full
/// enumeration of the conclusion's assignments.
fn apply_tgd_instance(
    db: &mut Database,
    gv: &GroundView,
    plans: &InstancePlans,
    frames: &mut InstanceFrames,
    next_null: &mut u64,
) -> Option<Vec<Predicate>> {
    let conclusion = plans.conclusion.as_ref().expect("tgd has a conclusion plan");
    let InstanceFrames { premise: pf, con: cf } = frames;
    pf.reset(plans.premise.slot_count());
    let mut violating: Option<Box<[TermId]>> = None;
    plans.premise.search(&gv.arena, pf, &mut |slots| {
        cf.reset(conclusion.slot_count());
        cf.seed_from(&plans.con_seed, slots);
        if conclusion.has_match(&gv.arena, cf) {
            true // conclusion witnessed; keep scanning
        } else {
            violating = Some(slots.into());
            false
        }
    });
    let slots = violating?;
    // Ground the rhs template off the match (boundary conversion):
    // premise-bound variables resolve to their matched constants, free
    // (existential) variables stay variables for the null minting below.
    let rhs: Vec<Atom> = plans
        .rhs_tmpl
        .iter()
        .map(|(pred, ops)| Atom {
            pred: *pred,
            args: ops.iter().map(|op| op.resolve(&gv.arena, &slots)).collect(),
        })
        .collect();
    Some(insert_conclusion(db, &rhs, next_null))
}

enum EgdInstanceOutcome {
    NoViolation,
    /// A value was merged; the listed relations had tuples rewritten.
    Applied(Vec<Predicate>),
    Failed,
}

/// The merge direction for an egd violation `a ≠ b` (nulls merge into
/// the other side, higher null into lower), or `None` on a
/// constant/constant clash.
fn egd_merge(a: Value, b: Value) -> Option<(Value, Value)> {
    match (a, b) {
        (Value::Labeled(x), Value::Labeled(y)) => {
            if x > y {
                Some((Value::Labeled(x), Value::Labeled(y)))
            } else {
                Some((Value::Labeled(y), Value::Labeled(x)))
            }
        }
        (Value::Labeled(_), other) => Some((a, other)),
        (other, Value::Labeled(_)) => Some((b, other)),
        _ => None,
    }
}

fn egd_image(op: &EqOp, gv: &GroundView, slots: &[TermId]) -> Value {
    match op.resolve(&gv.arena, slots) {
        Term::Const(c) => c,
        Term::Var(v) => panic!("egd equates unbound variable {v}"),
    }
}

fn apply_egd_instance(
    db: &mut Database,
    gv: &GroundView,
    plans: &InstancePlans,
    frames: &mut InstanceFrames,
) -> EgdInstanceOutcome {
    let (lhs, rhs) = plans.egd_eq.as_ref().expect("egd has compiled equality sides");
    let pf = &mut frames.premise;
    pf.reset(plans.premise.slot_count());
    let mut violation: Option<(Value, Value)> = None;
    plans.premise.search(&gv.arena, pf, &mut |slots| {
        let a = egd_image(lhs, gv, slots);
        let b = egd_image(rhs, gv, slots);
        if a == b {
            true
        } else {
            violation = Some((a, b));
            false
        }
    });
    let Some((a, b)) = violation else {
        return EgdInstanceOutcome::NoViolation;
    };
    let Some((from, to)) = egd_merge(a, b) else {
        return EgdInstanceOutcome::Failed;
    };
    let (next, changed) = replace_value(db, from, to);
    *db = next;
    EgdInstanceOutcome::Applied(changed)
}

/// Naive twin of [`apply_tgd_instance`]: materializes every premise
/// assignment through the relational evaluator. Kept for
/// [`chase_database_reference`], the oracle — do not "optimize".
fn apply_tgd_instance_reference(
    db: &mut Database,
    tgd: &Tgd,
    next_null: &mut u64,
) -> Option<Vec<Predicate>> {
    let lhs_assignments = assignments(&tgd.lhs, db);
    for asg in &lhs_assignments {
        let rhs = ground_with(&tgd.rhs, asg);
        if assignments(&rhs, db).is_empty() {
            return Some(insert_conclusion(db, &rhs, next_null));
        }
    }
    None
}

/// Naive twin of [`apply_egd_instance`], for the oracle driver.
fn apply_egd_instance_reference(db: &mut Database, egd: &Egd) -> EgdInstanceOutcome {
    let lhs_assignments = assignments(&egd.lhs, db);
    for asg in &lhs_assignments {
        let a = match &egd.eq.0 {
            Term::Const(c) => *c,
            Term::Var(v) => asg[v],
        };
        let b = match &egd.eq.1 {
            Term::Const(c) => *c,
            Term::Var(v) => asg[v],
        };
        if a == b {
            continue;
        }
        let Some((from, to)) = egd_merge(a, b) else {
            return EgdInstanceOutcome::Failed;
        };
        let (next, changed) = replace_value(db, from, to);
        *db = next;
        return EgdInstanceOutcome::Applied(changed);
    }
    EgdInstanceOutcome::NoViolation
}

/// Chases `db` with Σ until it satisfies every dependency, fails, or the
/// budget runs out.
///
/// Scheduling is delta-driven (see the module docs): each dependency
/// subscribes to its premise predicates, a satisfied dependency retires
/// until one of them changes, and the lowest queued index fires — the
/// identical step sequence to [`chase_database_reference`] without the
/// per-step rescan of all of Σ.
pub fn chase_database(
    db: &Database,
    sigma: &DependencySet,
    config: &ChaseConfig,
) -> Result<InstanceChased, ChaseError> {
    chase_database_guarded(db, sigma, config, &RunGuard::unguarded())
}

/// [`chase_database`] polling a [`RunGuard`] at every step, so instance
/// chases issued inside a deadlined or cancellable decision (database
/// repair in the counterexample search, `Request::ChaseInstance`) abort
/// within one step of the signal. The guard never changes the step
/// sequence — with the unguarded guard this is exactly [`chase_database`].
pub fn chase_database_guarded(
    db: &Database,
    sigma: &DependencySet,
    config: &ChaseConfig,
    guard: &RunGuard,
) -> Result<InstanceChased, ChaseError> {
    let mut cur = db.clone();
    let mut next_null = max_label(db);
    let mut steps = 0usize;
    let n = sigma.len();
    // Premise predicate → dependencies listening on it.
    let mut subscribers: HashMap<Predicate, Vec<usize>> = HashMap::new();
    for (i, dep) in sigma.iter().enumerate() {
        let mut seen: Vec<Predicate> = Vec::new();
        for atom in dep.lhs() {
            if !seen.contains(&atom.pred) {
                seen.push(atom.pred);
                subscribers.entry(atom.pred).or_default().push(i);
            }
        }
    }
    let mut queued = vec![true; n];
    let wake = |queued: &mut Vec<bool>, preds: &[Predicate]| {
        for p in preds {
            if let Some(subs) = subscribers.get(p) {
                for &i in subs {
                    queued[i] = true;
                }
            }
        }
    };
    // Plans compile once per run against the ground view's arena; the
    // view is refilled only after a step actually mutates the database —
    // satisfied checks reuse it.
    let mut gv = GroundView::of(&cur);
    let plans: Vec<InstancePlans> =
        sigma.iter().map(|d| InstancePlans::compile(d, &mut gv.arena)).collect();
    let mut frames: Vec<InstanceFrames> = sigma.iter().map(|_| InstanceFrames::new()).collect();
    loop {
        guard.poll(steps)?;
        if steps >= config.max_steps {
            return Err(ChaseError::BudgetExhausted { steps });
        }
        let Some(i) = queued.iter().position(|&q| q) else {
            return Ok(InstanceChased { db: cur, failed: false, steps });
        };
        match sigma.as_slice()[i] {
            Dependency::Tgd(ref _t) => {
                match apply_tgd_instance(&mut cur, &gv, &plans[i], &mut frames[i], &mut next_null) {
                    Some(added) => {
                        steps += 1;
                        gv.refill(&cur);
                        wake(&mut queued, &added);
                        // Another premise assignment of the same tgd may still
                        // be violated even if nothing it listens on changed.
                        queued[i] = true;
                    }
                    None => queued[i] = false,
                }
            }
            Dependency::Egd(ref _e) => {
                match apply_egd_instance(&mut cur, &gv, &plans[i], &mut frames[i]) {
                    EgdInstanceOutcome::NoViolation => queued[i] = false,
                    EgdInstanceOutcome::Applied(changed) => {
                        steps += 1;
                        gv.refill(&cur);
                        wake(&mut queued, &changed);
                        // The violating premise tuples contained the replaced
                        // value, so `changed` re-arms this egd via its own
                        // subscription; keep it queued explicitly regardless.
                        queued[i] = true;
                    }
                    EgdInstanceOutcome::Failed => {
                        return Ok(InstanceChased { db: cur, failed: true, steps });
                    }
                }
            }
        }
    }
}

/// The naive restart-scan driver [`chase_database`] replaced: rescans Σ
/// from σ₀ after every step. Kept as the differential-testing oracle — the
/// worklist engine must fire the identical step sequence.
pub fn chase_database_reference(
    db: &Database,
    sigma: &DependencySet,
    config: &ChaseConfig,
) -> Result<InstanceChased, ChaseError> {
    let mut cur = db.clone();
    let mut next_null = max_label(db);
    let mut steps = 0usize;
    'outer: loop {
        if steps >= config.max_steps {
            return Err(ChaseError::BudgetExhausted { steps });
        }
        for dep in sigma.iter() {
            match dep {
                Dependency::Tgd(t) => {
                    if apply_tgd_instance_reference(&mut cur, t, &mut next_null).is_some() {
                        steps += 1;
                        continue 'outer;
                    }
                }
                Dependency::Egd(e) => match apply_egd_instance_reference(&mut cur, e) {
                    EgdInstanceOutcome::NoViolation => {}
                    EgdInstanceOutcome::Applied(_) => {
                        steps += 1;
                        continue 'outer;
                    }
                    EgdInstanceOutcome::Failed => {
                        return Ok(InstanceChased { db: cur, failed: true, steps });
                    }
                },
            }
        }
        return Ok(InstanceChased { db: cur, failed: false, steps });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_deps::parse_dependencies;
    use eqsql_deps::satisfaction::db_satisfies_all;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn tgd_repair_adds_tuples_with_nulls() {
        let sigma = parse_dependencies("p(X,Y) -> t(X,Y,W).").unwrap();
        let db = Database::new().with_ints("p", &[[1, 2]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        assert!(db_satisfies_all(&r.db, &sigma));
        let t = r.db.get_str("t").unwrap();
        assert_eq!(t.len(), 1);
        let tup = t.core_set().next().unwrap();
        assert_eq!(tup[0], Value::Int(1));
        assert_eq!(tup[1], Value::Int(2));
        assert!(tup[2].is_labeled());
    }

    #[test]
    fn egd_repair_merges_nulls_into_constants() {
        let sigma = parse_dependencies(
            "p(X,Y) -> t(X,W).\n\
             t(X,W) & t(X,V) -> W = V.",
        )
        .unwrap();
        let mut db = Database::new().with_ints("p", &[[1, 2]]);
        db.insert_ints("t", [1, 9]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        assert!(db_satisfies_all(&r.db, &sigma));
        // No null survives: the tgd's witness merged into the constant 9.
        let t = r.db.get_str("t").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.core_set().next().unwrap()[1], Value::Int(9));
    }

    #[test]
    fn egd_failure_on_constants() {
        let sigma = parse_dependencies("t(X,W) & t(X,V) -> W = V.").unwrap();
        let db = Database::new().with_ints("t", &[[1, 3], [1, 4]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(r.failed);
    }

    #[test]
    fn shared_existentials_get_one_null() {
        let sigma = parse_dependencies("p(X) -> a(X,Z) & b(Z,X).").unwrap();
        let db = Database::new().with_ints("p", &[[7]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        let a = r.db.get_str("a").unwrap().core_set().next().unwrap().clone();
        let b = r.db.get_str("b").unwrap().core_set().next().unwrap().clone();
        assert_eq!(a[1], b[0], "the shared existential Z must be one null");
    }

    #[test]
    fn example_4_1_repair() {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let db = Database::new().with_ints("p", &[[1, 2], [5, 6]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        assert!(db_satisfies_all(&r.db, &sigma));
        // Two p-rows mean (at least) two r-, s-, t- and u-rows.
        for rel in ["r", "s", "u"] {
            assert!(r.db.get_str(rel).unwrap().len() >= 2, "{rel} not repaired");
        }
    }

    #[test]
    fn budget_guard_on_non_terminating_sigma() {
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let db = Database::new().with_ints("e", &[[1, 2]]);
        let err = chase_database(&db, &sigma, &ChaseConfig::with_max_steps(30)).unwrap_err();
        assert!(matches!(err, ChaseError::BudgetExhausted { .. }));
        // And the reference driver exhausts the identical budget.
        let err_ref =
            chase_database_reference(&db, &sigma, &ChaseConfig::with_max_steps(30)).unwrap_err();
        assert_eq!(err, err_ref);
    }

    /// xorshift64*, so the differential draws need no external rng crate.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// The worklist engine must be step-for-step identical to the naive
    /// restart-scan driver: same repaired database (null allocation
    /// included), same step count, same failure flag — across random
    /// databases and dependency sets mixing tgd chains and key egds.
    #[test]
    fn worklist_matches_reference_on_random_draws() {
        let sigmas = [
            // Layered tgds + keys (weakly acyclic, egd merges nulls).
            "a(X,Y) -> b(Y,Z).\n\
             b(X,Y) -> c(X).\n\
             b(X,Y1) & b(X,Y2) -> Y1 = Y2.",
            // Key first, then tgds that listen on each other.
            "a(X,Y1) & a(X,Y2) -> Y1 = Y2.\n\
             a(X,Y) -> b(X,Z).\n\
             b(X,Y) -> a(Y,W).\n\
             b(X,Y1) & b(X,Y2) -> Y1 = Y2.",
            // Constant-equating key: failure paths must agree too.
            "a(X,Y) -> b(X,Y).\n\
             b(X,Y1) & b(X,Y2) -> Y1 = Y2.\n\
             c(X) -> a(X,X).",
        ];
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        for round in 0..40 {
            let sigma = parse_dependencies(sigmas[round % sigmas.len()]).unwrap();
            let mut db = Database::new();
            for _ in 0..rng.below(5) {
                db.insert_ints("a", [rng.below(4) as i64, rng.below(4) as i64]);
            }
            for _ in 0..rng.below(4) {
                db.insert_ints("b", [rng.below(4) as i64, rng.below(4) as i64]);
            }
            for _ in 0..rng.below(3) {
                db.insert_ints("c", [rng.below(3) as i64]);
            }
            let cfg = ChaseConfig::with_max_steps(200);
            let fast = chase_database(&db, &sigma, &cfg);
            let slow = chase_database_reference(&db, &sigma, &cfg);
            match (fast, slow) {
                (Ok(f), Ok(s)) => {
                    assert_eq!(f.failed, s.failed, "round {round}: failure flags diverge");
                    assert_eq!(f.steps, s.steps, "round {round}: step counts diverge");
                    assert_eq!(f.db, s.db, "round {round}: repaired databases diverge");
                }
                (Err(f), Err(s)) => {
                    assert_eq!(f, s, "round {round}: error variants diverge")
                }
                (f, s) => panic!("round {round}: outcomes diverge: {f:?} vs {s:?}"),
            }
        }
    }
}
