//! Instance-level chase with labelled nulls (the data-exchange-style chase
//! of [14], used here as a substrate).
//!
//! Repairs a database into a model of Σ: tgd violations add tuples whose
//! existential positions hold fresh labelled nulls ([`Value::Labeled`]);
//! egd violations merge a labelled null into the other value (failing when
//! two distinct non-null constants are equated). The result, when the
//! chase terminates, satisfies Σ — this is how `eqsql-gen` turns random
//! databases into Σ-satisfying test instances for the cross-validation
//! suites.

use crate::error::{ChaseConfig, ChaseError};
use eqsql_cq::{Atom, Term, Value, Var};
use eqsql_deps::{Dependency, DependencySet, Egd, Tgd};
use eqsql_relalg::eval::{assignments, Assignment};
use eqsql_relalg::{Database, Relation, Tuple};
use std::collections::HashMap;

/// Result of an instance chase.
#[derive(Clone, Debug)]
pub struct InstanceChased {
    /// The repaired database (meaningless when `failed`).
    pub db: Database,
    /// Did an egd equate two distinct non-null constants?
    pub failed: bool,
    /// Number of chase steps applied.
    pub steps: usize,
}

fn max_label(db: &Database) -> u64 {
    db.active_domain()
        .into_iter()
        .filter_map(|v| match v {
            Value::Labeled(n) => Some(n),
            _ => None,
        })
        .max()
        .map_or(0, |n| n + 1)
}

fn ground_with(atoms: &[Atom], asg: &Assignment) -> Vec<Atom> {
    atoms
        .iter()
        .map(|a| Atom {
            pred: a.pred,
            args: a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match asg.get(v) {
                        Some(val) => Term::Const(*val),
                        None => *t,
                    },
                    Term::Const(_) => *t,
                })
                .collect(),
        })
        .collect()
}

/// Replaces every occurrence of `from` by `to` throughout the database,
/// merging multiplicities of tuples that collide.
fn replace_value(db: &Database, from: Value, to: Value) -> Database {
    let mut out = Database::new();
    for (p, r) in db.iter() {
        let target = out.get_or_create(p, r.arity());
        for (t, m) in r.iter() {
            let vals: Vec<Value> =
                t.iter().map(|v| if *v == from { to } else { *v }).collect();
            target.insert(Tuple::new(vals), m);
        }
    }
    out
}

fn apply_tgd_instance(db: &mut Database, tgd: &Tgd, next_null: &mut u64) -> bool {
    let lhs_assignments = assignments(&tgd.lhs, db);
    for asg in &lhs_assignments {
        let rhs = ground_with(&tgd.rhs, asg);
        if assignments(&rhs, db).is_empty() {
            // Violation: add the conclusion with fresh nulls for the
            // existential variables (shared across the conclusion atoms).
            let mut nulls: HashMap<Var, Value> = HashMap::new();
            for atom in &rhs {
                let vals: Vec<Value> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => *nulls.entry(*v).or_insert_with(|| {
                            let val = Value::Labeled(*next_null);
                            *next_null += 1;
                            val
                        }),
                    })
                    .collect();
                let rel: &mut Relation = db.get_or_create(atom.pred, vals.len());
                let tup = Tuple::new(vals);
                if !rel.contains(&tup) {
                    rel.insert(tup, 1);
                }
            }
            return true;
        }
    }
    false
}

enum EgdInstanceOutcome {
    NoViolation,
    Applied,
    Failed,
}

fn apply_egd_instance(db: &mut Database, egd: &Egd) -> EgdInstanceOutcome {
    let lhs_assignments = assignments(&egd.lhs, db);
    for asg in &lhs_assignments {
        let a = match &egd.eq.0 {
            Term::Const(c) => *c,
            Term::Var(v) => asg[v],
        };
        let b = match &egd.eq.1 {
            Term::Const(c) => *c,
            Term::Var(v) => asg[v],
        };
        if a == b {
            continue;
        }
        let (from, to) = match (a, b) {
            (Value::Labeled(x), Value::Labeled(y)) => {
                if x > y {
                    (Value::Labeled(x), Value::Labeled(y))
                } else {
                    (Value::Labeled(y), Value::Labeled(x))
                }
            }
            (Value::Labeled(_), other) => (a, other),
            (other, Value::Labeled(_)) => (b, other),
            _ => return EgdInstanceOutcome::Failed,
        };
        *db = replace_value(db, from, to);
        return EgdInstanceOutcome::Applied;
    }
    EgdInstanceOutcome::NoViolation
}

/// Chases `db` with Σ until it satisfies every dependency, fails, or the
/// budget runs out.
pub fn chase_database(
    db: &Database,
    sigma: &DependencySet,
    config: &ChaseConfig,
) -> Result<InstanceChased, ChaseError> {
    let mut cur = db.clone();
    let mut next_null = max_label(db);
    let mut steps = 0usize;
    'outer: loop {
        if steps >= config.max_steps {
            return Err(ChaseError::BudgetExhausted { steps });
        }
        for dep in sigma.iter() {
            match dep {
                Dependency::Tgd(t) => {
                    if apply_tgd_instance(&mut cur, t, &mut next_null) {
                        steps += 1;
                        continue 'outer;
                    }
                }
                Dependency::Egd(e) => match apply_egd_instance(&mut cur, e) {
                    EgdInstanceOutcome::NoViolation => {}
                    EgdInstanceOutcome::Applied => {
                        steps += 1;
                        continue 'outer;
                    }
                    EgdInstanceOutcome::Failed => {
                        return Ok(InstanceChased { db: cur, failed: true, steps });
                    }
                },
            }
        }
        return Ok(InstanceChased { db: cur, failed: false, steps });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_deps::parse_dependencies;
    use eqsql_deps::satisfaction::db_satisfies_all;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn tgd_repair_adds_tuples_with_nulls() {
        let sigma = parse_dependencies("p(X,Y) -> t(X,Y,W).").unwrap();
        let db = Database::new().with_ints("p", &[[1, 2]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        assert!(db_satisfies_all(&r.db, &sigma));
        let t = r.db.get_str("t").unwrap();
        assert_eq!(t.len(), 1);
        let tup = t.core_set().next().unwrap();
        assert_eq!(tup[0], Value::Int(1));
        assert_eq!(tup[1], Value::Int(2));
        assert!(tup[2].is_labeled());
    }

    #[test]
    fn egd_repair_merges_nulls_into_constants() {
        let sigma = parse_dependencies(
            "p(X,Y) -> t(X,W).\n\
             t(X,W) & t(X,V) -> W = V.",
        )
        .unwrap();
        let mut db = Database::new().with_ints("p", &[[1, 2]]);
        db.insert_ints("t", [1, 9]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        assert!(db_satisfies_all(&r.db, &sigma));
        // No null survives: the tgd's witness merged into the constant 9.
        let t = r.db.get_str("t").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.core_set().next().unwrap()[1], Value::Int(9));
    }

    #[test]
    fn egd_failure_on_constants() {
        let sigma = parse_dependencies("t(X,W) & t(X,V) -> W = V.").unwrap();
        let db = Database::new().with_ints("t", &[[1, 3], [1, 4]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(r.failed);
    }

    #[test]
    fn shared_existentials_get_one_null() {
        let sigma = parse_dependencies("p(X) -> a(X,Z) & b(Z,X).").unwrap();
        let db = Database::new().with_ints("p", &[[7]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        let a = r.db.get_str("a").unwrap().core_set().next().unwrap().clone();
        let b = r.db.get_str("b").unwrap().core_set().next().unwrap().clone();
        assert_eq!(a[1], b[0], "the shared existential Z must be one null");
    }

    #[test]
    fn example_4_1_repair() {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let db = Database::new().with_ints("p", &[[1, 2], [5, 6]]);
        let r = chase_database(&db, &sigma, &cfg()).unwrap();
        assert!(!r.failed);
        assert!(db_satisfies_all(&r.db, &sigma));
        // Two p-rows mean (at least) two r-, s-, t- and u-rows.
        for rel in ["r", "s", "u"] {
            assert!(r.db.get_str(rel).unwrap().len() >= 2, "{rel} not repaired");
        }
    }

    #[test]
    fn budget_guard_on_non_terminating_sigma() {
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let db = Database::new().with_ints("e", &[[1, 2]]);
        let err = chase_database(&db, &sigma, &ChaseConfig::with_max_steps(30)).unwrap_err();
        assert!(matches!(err, ChaseError::BudgetExhausted { .. }));
    }
}
