//! `Σ ⊨ σ` — dependency implication, decided by chasing the frozen
//! premise (see `eqsql_deps::implication` for the pieces).

use crate::error::{ChaseConfig, ChaseError};
use crate::set_chase::set_chase;
use eqsql_deps::implication::{conclusion_holds, premise_query};
use eqsql_deps::{Dependency, DependencySet};

/// Does Σ logically imply `dep` (on all instances)? Sound and complete
/// when the chase terminates; errors propagate the chase budget.
pub fn implies(
    sigma: &DependencySet,
    dep: &Dependency,
    config: &ChaseConfig,
) -> Result<bool, ChaseError> {
    let q = premise_query(dep);
    let chased = set_chase(&q, sigma, config)?;
    if chased.failed {
        // The premise is unsatisfiable under Σ: σ holds vacuously.
        return Ok(true);
    }
    Ok(conclusion_holds(dep, &chased.query, &chased.renaming))
}

/// Removes from Σ every dependency implied by the others — a minimal
/// cover under chase-implication (greedy; the result depends on order but
/// is always an equivalent subset).
pub fn minimal_cover(
    sigma: &DependencySet,
    config: &ChaseConfig,
) -> Result<DependencySet, ChaseError> {
    let mut kept: Vec<Dependency> = sigma.iter().cloned().collect();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i].clone();
        let rest: DependencySet =
            kept.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, d)| d.clone()).collect();
        if implies(&rest, &candidate, config)? {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(DependencySet::from_vec(kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_deps::{parse_dependencies, parse_dependency};

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn transitive_inclusion_implied() {
        let sigma = parse_dependencies("a(X) -> b(X). b(X) -> c(X).").unwrap();
        let d = parse_dependency("a(X) -> c(X)").unwrap();
        assert!(implies(&sigma, &d, &cfg()).unwrap());
        let not = parse_dependency("c(X) -> a(X)").unwrap();
        assert!(!implies(&sigma, &not, &cfg()).unwrap());
    }

    #[test]
    fn fd_transitivity_implied() {
        // A->B, B->C implies A->C (Armstrong), via the chase.
        let sigma = parse_dependencies(
            "r(X,Y1,Z1) & r(X,Y2,Z2) -> Y1 = Y2.\n\
             r(X1,Y,Z1) & r(X2,Y,Z2) -> Z1 = Z2.",
        )
        .unwrap();
        let d = parse_dependency("r(X,Y1,Z1) & r(X,Y2,Z2) -> Z1 = Z2").unwrap();
        assert!(implies(&sigma, &d, &cfg()).unwrap());
        // But not C -> A.
        let not = parse_dependency("r(X1,Y1,Z) & r(X2,Y2,Z) -> X1 = X2").unwrap();
        assert!(!implies(&sigma, &not, &cfg()).unwrap());
    }

    #[test]
    fn tgd_with_existential_witness() {
        let sigma = parse_dependencies("p(X,Y) -> s(X,Z) & t(Z,Y).").unwrap();
        // Implied: a weaker tgd asking only for the s-atom.
        let weaker = parse_dependency("p(X,Y) -> s(X,W)").unwrap();
        assert!(implies(&sigma, &weaker, &cfg()).unwrap());
        // Not implied: an s-atom with the *pair* (X,Y).
        let stronger = parse_dependency("p(X,Y) -> s(X,Y)").unwrap();
        assert!(!implies(&sigma, &stronger, &cfg()).unwrap());
    }

    #[test]
    fn every_member_is_self_implied() {
        let sigma = parse_dependencies(
            "p(X,Y) -> t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        for d in sigma.iter() {
            assert!(implies(&sigma, d, &cfg()).unwrap(), "{d}");
        }
    }

    #[test]
    fn minimal_cover_drops_redundant_dependency() {
        let sigma = parse_dependencies(
            "a(X) -> b(X).\n\
             b(X) -> c(X).\n\
             a(X) -> c(X).",
        )
        .unwrap();
        let cover = minimal_cover(&sigma, &cfg()).unwrap();
        assert_eq!(cover.len(), 2);
        // The cover still implies everything in Σ.
        for d in sigma.iter() {
            assert!(implies(&cover, d, &cfg()).unwrap());
        }
    }

    #[test]
    fn minimal_cover_keeps_independent_dependencies() {
        let sigma = parse_dependencies(
            "a(X) -> b(X).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        let cover = minimal_cover(&sigma, &cfg()).unwrap();
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn regularization_is_implication_preserving() {
        // Proposition 4.1 at the implication level: σ and its regularized
        // set imply each other.
        let sigma = parse_dependencies("p(X,Y) -> u(X,Z) & t(X,Y,W).").unwrap();
        let reg = eqsql_deps::regularize_set(&sigma);
        assert_eq!(reg.len(), 2);
        for d in reg.iter() {
            assert!(implies(&sigma, d, &cfg()).unwrap());
        }
        for d in sigma.iter() {
            assert!(implies(&reg, d, &cfg()).unwrap());
        }
    }
}
