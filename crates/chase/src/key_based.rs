//! Key-based tgds (Definition 5.1 of the paper — the UWDs of Deutsch \[9\]).
//!
//! A tgd `σ : φ(X̄, Ȳ) → ∃Z̄ ψ(Ȳ, Z̄)` is **key-based** when, for every
//! conclusion atom `p(Ȳ'_j, Z̄'_j)`, the positions holding universally
//! quantified terms form a superkey of `P` *and* `P` is set-valued on all
//! instances. Key-basedness is query-independent and implies that every
//! chase step using the tgd is assignment-fixing; the converse fails
//! (Example 4.8 / §5.1), which is why the paper's sound chase uses the
//! strictly more general assignment-fixing criterion. We keep key-basedness
//! for comparison and for the ablation benchmarks.

use crate::engine::{chase_indexed, Admission};
use crate::error::{ChaseConfig, ChaseError};
use crate::set_chase::Chased;
use crate::step::DedupPolicy;
use eqsql_cq::{CqQuery, Predicate, Term};
use eqsql_deps::keys::is_superkey_of;
use eqsql_deps::regularize::regularize_set;
use eqsql_deps::{DependencySet, Tgd};
use eqsql_relalg::Schema;
use std::collections::{BTreeSet, HashSet};

/// Do all conclusion atoms of `tgd` have their universal positions forming
/// a superkey (under the fd-shaped egds of Σ)? This is Definition 5.1
/// minus the set-valuedness requirement.
pub fn has_key_based_shape(tgd: &Tgd, sigma: &DependencySet) -> bool {
    let uni = tgd.universal_vars();
    tgd.rhs.iter().all(|atom| {
        let positions: BTreeSet<usize> = atom
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Const(_) => true,
                Term::Var(v) => uni.contains(v),
            })
            .map(|(i, _)| i)
            .collect();
        is_superkey_of(sigma, atom.pred, atom.arity(), &positions)
    })
}

/// Is `tgd` key-based (Definition 5.1): key-based shape **and** every
/// conclusion relation set-valued on all instances of the schema?
pub fn is_key_based(tgd: &Tgd, sigma: &DependencySet, schema: &Schema) -> bool {
    tgd.rhs.iter().all(|a| schema.is_set_valued(a.pred)) && has_key_based_shape(tgd, sigma)
}

/// The key-based (UWD) chase: a thin entry point over the incremental
/// engine admitting only key-based tgd steps — Deutsch's query-independent
/// ablation of the paper's sound bag chase. Strictly fewer steps fire than
/// under assignment-fixing admission (Example 4.8), which is the point of
/// keeping it: the ablation benchmarks measure exactly that gap.
///
/// Key-basedness is a property of the dependency alone, so the filter runs
/// as [`Admission::QueryIndependent`]: one cached verdict per dependency,
/// and rejected tgds retire from the worklist permanently.
pub fn key_based_chase(
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<Chased, ChaseError> {
    let sigma_reg = regularize_set(sigma);
    let set_preds: HashSet<Predicate> = schema.set_valued_relations().into_iter().collect();
    chase_indexed(
        q,
        &sigma_reg,
        config,
        &DedupPolicy::SetValuedOnly(set_preds),
        Admission::QueryIndependent(&mut |tgd| is_key_based(tgd, &sigma_reg, schema)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_deps::parse_dependencies;
    use eqsql_relalg::Schema;

    fn first_tgd(s: &DependencySet) -> Tgd {
        s.tgds().next().unwrap().clone()
    }

    #[test]
    fn example_4_1_sigma2_is_key_based() {
        // σ2: p(X,Y) -> t(X,Y,W); first two attributes of T are a key and
        // T is set-valued.
        let sigma = parse_dependencies(
            "p(X,Y) -> t(X,Y,W).\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("t", 3)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        let t = first_tgd(&sigma);
        assert!(has_key_based_shape(&t, &sigma));
        assert!(is_key_based(&t, &sigma, &schema));
    }

    #[test]
    fn set_valuedness_is_required() {
        let sigma = parse_dependencies(
            "p(X,Y) -> t(X,Y,W).\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let schema = Schema::all_bags(&[("p", 2), ("t", 3)]); // t is a bag
        let t = first_tgd(&sigma);
        assert!(has_key_based_shape(&t, &sigma));
        assert!(!is_key_based(&t, &sigma, &schema));
    }

    #[test]
    fn example_4_8_nu1_is_not_key_based() {
        // ν1: p(X,Y) -> ∃Z s(X,Z) ∧ t(Z,Y). The S-atom's universal
        // positions {0} are not a superkey of S in presence of Σ — ν1 is
        // assignment-fixing but NOT key-based (Note on Example 4.8).
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
             t(X,Y) & t(Z,Y) -> X = Z.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        let nu1 = first_tgd(&sigma);
        assert!(!has_key_based_shape(&nu1, &sigma));
        assert!(!is_key_based(&nu1, &sigma, &schema));
    }

    #[test]
    fn full_tgd_over_set_relation_is_key_based() {
        // Every position universal: the full attribute set is always a
        // superkey.
        let sigma = parse_dependencies("r(X,Y) -> p(X,Y).").unwrap();
        let mut schema = Schema::all_bags(&[("r", 2), ("p", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("p"));
        let t = first_tgd(&sigma);
        assert!(is_key_based(&t, &sigma, &schema));
    }

    #[test]
    fn key_based_chase_is_strictly_weaker_on_example_4_8() {
        // ν1 is assignment-fixing but not key-based: the key-based chase
        // leaves Q untouched where the sound bag chase fires (Example 4.8).
        use eqsql_cq::{are_isomorphic, parse_query};
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
             t(X,Y) & t(Z,Y) -> X = Z.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
        let r = key_based_chase(&q, &sigma, &schema, &crate::ChaseConfig::default()).unwrap();
        assert!(are_isomorphic(&r.query, &q), "got {}", r.query);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn key_based_chase_fires_key_based_steps() {
        use eqsql_cq::parse_query;
        let sigma = parse_dependencies(
            "p(X,Y) -> t(X,Y,W).\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("t", 3)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let r = key_based_chase(&q, &sigma, &schema, &crate::ChaseConfig::default()).unwrap();
        assert_eq!(r.query.body.len(), 2);
        assert_eq!(r.steps, 1);
    }

    #[test]
    fn constants_count_as_determined_positions() {
        let sigma = parse_dependencies(
            "p(X) -> t(X, 3, W).\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 1), ("t", 3)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        assert!(is_key_based(&first_tgd(&sigma), &sigma, &schema));
    }
}
