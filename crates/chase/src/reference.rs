//! The naive restart-scan chase driver, kept as the differential-testing
//! oracle for the incremental engine ([`crate::engine`]).
//!
//! This is the seed implementation, preserved behaviorally: after every
//! step it restarts the Σ scan from σ₀, renames each scanned dependency
//! apart against a freshly recomputed variable set, materializes *all*
//! applicable homomorphisms before picking the first admissible one, and
//! re-canonicalizes the whole body through the dedup policy. Every one of
//! those per-step costs is what the engine amortizes; the two drivers fire
//! identical step sequences, which `tests/tests/engine_differential.rs`
//! and the engine's unit tests assert. Do not "optimize" this module — its
//! value is being obviously correct and independently derived.

use crate::error::{ChaseConfig, ChaseError};
use crate::set_chase::{Chased, TraceEntry};
use crate::step::{
    applicable_tgd_homs, apply_egd_step, apply_tgd_step, rename_dep_apart, DedupPolicy, EgdOutcome,
};
use eqsql_cq::{CqQuery, Subst, VarSupply};
use eqsql_deps::{Dependency, DependencySet};
use std::collections::HashSet;

/// [`crate::set_chase()`] on the naive driver.
pub fn set_chase_reference(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
) -> Result<Chased, ChaseError> {
    chase_with_policy_reference(q, sigma, config, &DedupPolicy::All, &mut |_, _, _| true)
}

/// [`crate::set_chase::chase_with_policy`] on the naive driver: full Σ
/// rescan per step, homomorphism sets materialized up front.
pub fn chase_with_policy_reference(
    q: &CqQuery,
    sigma: &DependencySet,
    config: &ChaseConfig,
    dedup: &DedupPolicy,
    admit: &mut dyn FnMut(&eqsql_deps::Tgd, &CqQuery, &Subst) -> bool,
) -> Result<Chased, ChaseError> {
    let mut cur = dedup.apply(q);
    let mut supply = VarSupply::avoiding([q]);
    for d in sigma.iter() {
        for v in d.all_vars() {
            supply.record_var(v);
        }
    }
    let mut steps = 0usize;
    let mut renaming = Subst::new();
    let mut trace: Vec<TraceEntry> = Vec::new();

    'outer: loop {
        if steps >= config.max_steps {
            return Err(ChaseError::BudgetExhausted { steps });
        }
        if cur.body.len() >= config.max_atoms {
            return Err(ChaseError::QueryTooLarge { atoms: cur.body.len() });
        }
        let cur_vars: HashSet<_> = cur.all_vars().into_iter().collect();
        for (i, dep) in sigma.iter().enumerate() {
            let dep_r = rename_dep_apart(dep, &cur_vars, &mut supply);
            match &dep_r {
                Dependency::Egd(e) => match apply_egd_step(&cur, e) {
                    EgdOutcome::NotApplicable => {}
                    EgdOutcome::Failed => {
                        trace.push(TraceEntry {
                            dep_index: i,
                            dep: dep.to_string(),
                            action: "equated distinct constants: chase failed".into(),
                            body_size: cur.body.len(),
                        });
                        return Ok(Chased { query: cur, failed: true, steps, renaming, trace });
                    }
                    EgdOutcome::Applied { query, from, to } => {
                        renaming.rewrite(from, to);
                        cur = dedup.apply(&query);
                        steps += 1;
                        trace.push(TraceEntry {
                            dep_index: i,
                            dep: dep.to_string(),
                            action: format!("egd: {from} := {to}"),
                            body_size: cur.body.len(),
                        });
                        continue 'outer;
                    }
                },
                Dependency::Tgd(t) => {
                    for h in applicable_tgd_homs(&cur, t) {
                        if !admit(t, &cur, &h) {
                            continue;
                        }
                        let (next, added) = apply_tgd_step(&cur, t, &h, &mut supply);
                        cur = dedup.apply(&next);
                        steps += 1;
                        trace.push(TraceEntry {
                            dep_index: i,
                            dep: dep.to_string(),
                            action: format!(
                                "tgd: added {}",
                                added.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(" ∧ ")
                            ),
                            body_size: cur.body.len(),
                        });
                        continue 'outer;
                    }
                }
            }
        }
        // No dependency applicable (under the admission predicate).
        return Ok(Chased { query: cur, failed: false, steps, renaming, trace });
    }
}
