//! The persistent body index of the incremental chase engine.
//!
//! The naive driver pays, on **every** step, for a full rescan of the
//! query: rebuilding homomorphism buckets, recomputing the variable set,
//! re-cloning and re-deduplicating the whole (exponentially growing —
//! Appendix H) body. [`BodyIndex`] amortizes all of that: it owns the body
//! for the duration of a chase run and is updated in place as tgd steps
//! append atoms and egd steps substitute variables.
//!
//! Maintained invariants:
//!
//! * `atoms[slot]` is append-only storage; dead slots (deduplicated
//!   duplicates) keep their last value but are never referenced again;
//! * `buckets` maps each `(predicate, arity)` key to the **live** slots
//!   holding such an atom, in ascending slot order — exactly the candidate
//!   lists the backtracking homomorphism search consumes, so searches run
//!   against the index with zero rebuild cost;
//! * `occurrences` maps each live atom *value* to its live slots (the
//!   incremental fingerprint dedup: a would-be duplicate is refused in
//!   O(1) instead of re-canonicalizing the body);
//! * `var_slots` / `var_count` track, per variable, the slots whose atom
//!   mentions it (lazily pruned) and the number of live occurrences — an
//!   egd substitution touches only the atoms that actually contain the
//!   replaced variable, and the chase loop's "current variables" set is
//!   read off `var_count` instead of a per-step body scan;
//! * `slot_gen` / `touch_log` stamp every slot with the **generation**
//!   (chase step) that last created or rewrote it, and keep the touches in
//!   generation order — the delta-seeded premise search
//!   ([`eqsql_cq::matcher::MatchPlan::search_delta`]) reads "every atom
//!   added or changed since generation g" off the log tail in
//!   O(log + |delta|) instead of scanning the body.
//!
//! Slot order equals first-occurrence order, so materializing the body
//! yields the same atom sequence the naive driver's
//! `canonical_representation`-after-every-step discipline produces.

use crate::step::DedupPolicy;
use eqsql_cq::hom::Buckets;
use eqsql_cq::{Atom, CqQuery, Predicate, Term, Var};
use std::collections::HashMap;

/// The incremental body index. See the module docs.
pub struct BodyIndex {
    /// Slot-stable atom storage (dead slots keep stale values).
    atoms: Vec<Atom>,
    /// Liveness per slot.
    alive: Vec<bool>,
    /// Number of live slots.
    live: usize,
    /// `(pred, arity)` → ascending live slots.
    buckets: Buckets,
    /// Atom value → live slots holding it (usually 1 entry).
    occurrences: HashMap<Atom, Vec<usize>>,
    /// Variable → slots whose atom mentions it (may contain stale slots;
    /// pruned when consulted).
    var_slots: HashMap<Var, Vec<usize>>,
    /// Variable → live occurrence count (argument positions, over live
    /// atoms only). A variable is "current" iff its count is positive.
    var_count: HashMap<Var, usize>,
    /// The current generation: 0 while building, advanced by the engine
    /// after every chase step. Slots created or rewritten at generation g
    /// carry stamp g.
    gen: u64,
    /// Slot → generation of its last creation/rewrite.
    slot_gen: Vec<u64>,
    /// Touches `(gen, slot)` in non-decreasing generation order (a slot
    /// reappears when rewritten; dead slots are filtered on read).
    touch_log: Vec<(u64, usize)>,
}

impl BodyIndex {
    /// Builds the index over a query body (assumed already normalized by
    /// the caller's dedup policy — slots mirror the body in order).
    pub fn new(body: &[Atom]) -> BodyIndex {
        let mut ix = BodyIndex {
            atoms: Vec::with_capacity(body.len() * 2),
            alive: Vec::with_capacity(body.len() * 2),
            live: 0,
            buckets: Buckets::new(),
            occurrences: HashMap::new(),
            var_slots: HashMap::new(),
            var_count: HashMap::new(),
            gen: 0,
            slot_gen: Vec::with_capacity(body.len() * 2),
            touch_log: Vec::new(),
        };
        for atom in body {
            ix.push_slot(atom.clone());
        }
        ix.advance_gen();
        ix
    }

    /// Number of live atoms.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the body empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Does any live atom mention `v`?
    pub fn contains_var(&self, v: Var) -> bool {
        self.var_count.get(&v).copied().unwrap_or(0) > 0
    }

    /// The slot-stable atom storage, paired with [`BodyIndex::buckets`]
    /// for homomorphism searches (dead slots are unreachable through the
    /// buckets).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The live `(pred, arity)` buckets.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Materializes the live body in first-occurrence order.
    pub fn to_body(&self) -> Vec<Atom> {
        (0..self.atoms.len()).filter(|&s| self.alive[s]).map(|s| self.atoms[s].clone()).collect()
    }

    /// Is an atom with this exact value live?
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        self.occurrences.get(atom).is_some_and(|slots| !slots.is_empty())
    }

    /// The current generation. Every live slot has stamp `< gen` once the
    /// engine has advanced past the step that touched it, so "exhaustively
    /// checked at generation g" means: verified over all slots with stamp
    /// `< g`.
    pub fn current_gen(&self) -> u64 {
        self.gen
    }

    /// Closes the current generation (called by the engine after every
    /// fired chase step; the constructor closes generation 0, the initial
    /// body).
    pub fn advance_gen(&mut self) {
        self.gen += 1;
    }

    /// Collects the live slots created or rewritten at generation ≥
    /// `since` into `delta`, one entry per touch (a slot rewritten twice
    /// appears twice; the delta-pinned search tolerates the duplicate
    /// candidates). O(log |touch_log| + touches since).
    pub fn delta_since(&self, since: u64, delta: &mut eqsql_cq::DeltaSlots) {
        let start = self.touch_log.partition_point(|&(g, _)| g < since);
        for &(_, slot) in &self.touch_log[start..] {
            if self.alive[slot] {
                delta.push(&self.atoms[slot], slot);
            }
        }
    }

    /// Unconditionally appends a new live slot holding `atom`.
    fn push_slot(&mut self, atom: Atom) -> usize {
        let slot = self.atoms.len();
        for v in atom.vars() {
            *self.var_count.entry(v).or_insert(0) += 1;
            let slots = self.var_slots.entry(v).or_default();
            // An atom like p(X, X) yields v twice; record the slot once.
            if slots.last() != Some(&slot) {
                slots.push(slot);
            }
        }
        self.buckets.entry(atom.key()).or_default().push(slot);
        self.occurrences.entry(atom.clone()).or_default().push(slot);
        self.atoms.push(atom);
        self.alive.push(true);
        self.live += 1;
        self.slot_gen.push(self.gen);
        self.touch_log.push((self.gen, slot));
        slot
    }

    /// Appends `atom` unless the dedup policy refuses duplicates of its
    /// predicate and an equal atom is already live. Returns whether a slot
    /// was actually added.
    pub fn insert(&mut self, atom: Atom, dedup: &DedupPolicy) -> bool {
        if dedup.dedups(atom.pred) && self.contains_atom(&atom) {
            return false;
        }
        self.push_slot(atom);
        true
    }

    /// Kills `slot`, unhooking it from every secondary structure.
    fn kill(&mut self, slot: usize) {
        debug_assert!(self.alive[slot]);
        self.alive[slot] = false;
        self.live -= 1;
        let atom = self.atoms[slot].clone();
        if let Some(b) = self.buckets.get_mut(&atom.key()) {
            if let Ok(pos) = b.binary_search(&slot) {
                b.remove(pos);
            }
        }
        if let Some(occ) = self.occurrences.get_mut(&atom) {
            occ.retain(|&s| s != slot);
            if occ.is_empty() {
                self.occurrences.remove(&atom);
            }
        }
        for v in atom.vars() {
            if let Some(c) = self.var_count.get_mut(&v) {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    self.var_count.remove(&v);
                    self.var_slots.remove(&v);
                }
            }
        }
    }

    /// Applies the egd substitution `from → to` in place.
    ///
    /// Only slots whose atom actually mentions `from` are touched; atoms
    /// that become duplicates of another live atom are deduplicated per
    /// `dedup`, keeping the earliest slot (matching the naive driver's
    /// whole-body `canonical_representation` after the step). Returns the
    /// predicates of every rewritten atom — the delta the scheduler uses
    /// to requeue affected dependencies.
    pub fn apply_rewrite(&mut self, from: Var, to: &Term, dedup: &DedupPolicy) -> Vec<Predicate> {
        let Some(slots) = self.var_slots.remove(&from) else {
            return Vec::new();
        };
        let mut changed_preds: Vec<Predicate> = Vec::new();
        let mut touched: Vec<Atom> = Vec::new();
        let from_term = Term::Var(from);
        for slot in slots {
            if !self.alive[slot] || !self.atoms[slot].args.contains(&from_term) {
                continue; // stale entry from an earlier rewrite/kill
            }
            // Unhook the old value from the occurrence map.
            let old = self.atoms[slot].clone();
            if let Some(occ) = self.occurrences.get_mut(&old) {
                occ.retain(|&s| s != slot);
                if occ.is_empty() {
                    self.occurrences.remove(&old);
                }
            }
            // Rewrite in place; bucket membership is untouched (the
            // predicate/arity key cannot change under a substitution).
            let mut occurrences_of_from = 0usize;
            for arg in &mut self.atoms[slot].args {
                if *arg == from_term {
                    *arg = *to;
                    occurrences_of_from += 1;
                }
            }
            if let Some(c) = self.var_count.get_mut(&from) {
                *c = c.saturating_sub(occurrences_of_from);
                if *c == 0 {
                    self.var_count.remove(&from);
                }
            }
            if let Term::Var(w) = to {
                *self.var_count.entry(*w).or_insert(0) += occurrences_of_from;
                // A duplicate entry is harmless (stale entries are pruned
                // on read), so skip the O(n) membership test.
                self.var_slots.entry(*w).or_default().push(slot);
            }
            let new = self.atoms[slot].clone();
            self.occurrences.entry(new.clone()).or_default().push(slot);
            self.slot_gen[slot] = self.gen;
            self.touch_log.push((self.gen, slot));
            if !changed_preds.contains(&new.pred) {
                changed_preds.push(new.pred);
            }
            touched.push(new);
        }
        // Dedup pass over every value a rewritten slot now holds: keep the
        // earliest live slot, kill the rest (first occurrence wins, as in
        // the naive driver's canonical representation).
        for value in touched {
            if !dedup.dedups(value.pred) {
                continue;
            }
            let Some(occ) = self.occurrences.get(&value) else { continue };
            if occ.len() <= 1 {
                continue;
            }
            let keep = *occ.iter().min().expect("nonempty");
            let extras: Vec<usize> = occ.iter().copied().filter(|&s| s != keep).collect();
            for slot in extras {
                self.kill(slot);
            }
        }
        changed_preds
    }

    /// Materializes the current query given its (already substituted) head.
    pub fn to_query(&self, name: eqsql_cq::Symbol, head: Vec<Term>) -> CqQuery {
        CqQuery { name, head, body: self.to_body() }
    }

    /// Debug-only consistency check: every secondary structure agrees with
    /// a from-scratch rebuild.
    #[cfg(test)]
    fn check_invariants(&self) {
        let body = self.to_body();
        assert_eq!(body.len(), self.live);
        let fresh = BodyIndex::new(&body);
        // Buckets hold the same atom multisets per key.
        for (key, slots) in &self.buckets {
            let mine: Vec<&Atom> = slots.iter().map(|&s| &self.atoms[s]).collect();
            let theirs: Vec<&Atom> = fresh
                .buckets
                .get(key)
                .map(|v| v.iter().map(|&s| &fresh.atoms[s]).collect())
                .unwrap_or_default();
            assert_eq!(mine, theirs, "bucket {key:?} diverged");
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "bucket not ascending");
            assert!(slots.iter().all(|&s| self.alive[s]), "bucket holds dead slot");
        }
        assert_eq!(self.var_count, fresh.var_count, "var_count diverged");
        for (atom, slots) in &self.occurrences {
            assert!(slots.iter().all(|&s| self.alive[s] && self.atoms[s] == *atom));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::{parse_query, Subst};

    fn atoms(s: &str) -> Vec<Atom> {
        parse_query(s).unwrap().body
    }

    #[test]
    fn build_and_materialize_round_trips() {
        let body = atoms("q(X) :- p(X,Y), s(Y,Z), p(Z,X)");
        let ix = BodyIndex::new(&body);
        assert_eq!(ix.to_body(), body);
        assert_eq!(ix.len(), 3);
        assert!(ix.contains_var(Var::new("Y")));
        assert!(!ix.contains_var(Var::new("W")));
        ix.check_invariants();
    }

    #[test]
    fn insert_dedups_per_policy() {
        let body = atoms("q(X) :- p(X,Y)");
        let mut ix = BodyIndex::new(&body);
        let dup = body[0].clone();
        assert!(!ix.insert(dup.clone(), &DedupPolicy::All));
        assert_eq!(ix.len(), 1);
        assert!(ix.insert(dup, &DedupPolicy::None));
        assert_eq!(ix.len(), 2);
        ix.check_invariants();
    }

    #[test]
    fn rewrite_merges_and_dedups() {
        // s(X,A), s(X,B), r(A,B): A := B collapses the two s-atoms.
        let body = atoms("q(X) :- s(X,A), s(X,B), r(A,B)");
        let mut ix = BodyIndex::new(&body);
        let changed = ix.apply_rewrite(Var::new("A"), &Term::var("B"), &DedupPolicy::All);
        assert!(changed.contains(&Predicate::new("s")));
        assert!(changed.contains(&Predicate::new("r")));
        let out = ix.to_body();
        assert_eq!(out, atoms("q(X) :- s(X,B), r(B,B)"));
        assert!(!ix.contains_var(Var::new("A")));
        ix.check_invariants();
    }

    #[test]
    fn rewrite_to_constant() {
        let body = atoms("q(X) :- s(X,A), t(A,A)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("A"), &Term::int(3), &DedupPolicy::All);
        assert_eq!(ix.to_body(), atoms("q(X) :- s(X,3), t(3,3)"));
        assert!(!ix.contains_var(Var::new("A")));
        ix.check_invariants();
    }

    #[test]
    fn rewrite_without_dedup_keeps_duplicates() {
        let body = atoms("q(X) :- u(X,A), u(X,B)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("A"), &Term::var("B"), &DedupPolicy::None);
        assert_eq!(ix.to_body(), atoms("q(X) :- u(X,B), u(X,B)"));
        assert_eq!(ix.len(), 2);
        ix.check_invariants();
    }

    #[test]
    fn first_occurrence_survives_dedup() {
        // Rewriting the *first* atom into the value of the third must kill
        // the third (later) slot, not the rewritten one.
        let body = atoms("q(X) :- s(X,A), r(A,C), s(X,B)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("A"), &Term::var("B"), &DedupPolicy::All);
        assert_eq!(ix.to_body(), atoms("q(X) :- s(X,B), r(B,C)"));
        ix.check_invariants();
    }

    #[test]
    fn chained_rewrites_stay_consistent() {
        let body = atoms("q(A) :- p(A,B), p(B,C), p(C,D), r(A,D)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("B"), &Term::var("A"), &DedupPolicy::All);
        ix.check_invariants();
        ix.apply_rewrite(Var::new("C"), &Term::var("A"), &DedupPolicy::All);
        ix.check_invariants();
        ix.apply_rewrite(Var::new("D"), &Term::var("A"), &DedupPolicy::All);
        ix.check_invariants();
        // Everything collapsed onto p(A,A) and r(A,A).
        assert_eq!(ix.to_body(), atoms("q(A) :- p(A,A), r(A,A)"));
    }

    #[test]
    fn buckets_drive_hom_search_after_mutation() {
        let body = atoms("q(X) :- p(X,Y), p(Y,Z)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("Z"), &Term::var("X"), &DedupPolicy::All);
        let pat = atoms("q(A) :- p(A,B), p(B,A)");
        let h = eqsql_cq::extend_homomorphism_with_buckets(
            &pat,
            ix.atoms(),
            ix.buckets(),
            &Subst::new(),
        );
        assert!(h.is_some());
        ix.check_invariants();
    }
}
