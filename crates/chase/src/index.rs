//! The persistent body index of the incremental chase engine — now
//! arena-backed and columnar.
//!
//! The naive driver pays, on **every** step, for a full rescan of the
//! query: rebuilding homomorphism buckets, recomputing the variable set,
//! re-cloning and re-deduplicating the whole (exponentially growing —
//! Appendix H) body. [`BodyIndex`] amortizes all of that: it owns the body
//! for the duration of a chase run and is updated in place as tgd steps
//! append atoms and egd steps substitute variables.
//!
//! Since the flat-arena refactor the index stores **no boxed atoms at
//! all**: the body lives in a [`TermArena`] — terms interned to `u32` ids
//! once, atoms as rows of per-predicate columnar tables
//! ([`eqsql_cq::ColumnTable`]) — and every secondary structure keys on
//! ids. The former clone churn (snapshotting cloned every live atom;
//! an egd substitution re-cloned old and new atoms per touched slot just
//! to maintain the occurrence map) is gone: substitutions overwrite
//! column cells in place, and the occurrence map hashes an inline
//! fingerprint of the flat id slice.
//!
//! Maintained invariants:
//!
//! * every atom ever inserted owns a **global slot** (append-only;
//!   deduplicated duplicates keep their slot but die); slots map to a
//!   `(table, row)` in the arena, rows are appended in slot order, so
//!   per-table ascending row order equals ascending slot order — exactly
//!   the candidate order of the boxed engine's buckets, which keeps the
//!   arena engine step-identical;
//! * `occurrences` maps each live atom *value* (fingerprint of table +
//!   argument ids) to its live slots — the incremental dedup: a would-be
//!   duplicate is refused in O(1), and a substitution-induced collision
//!   keeps the earliest slot (first occurrence wins, as in the naive
//!   driver's canonical representation);
//! * `var_slots` / `var_count` track, per variable id, the slots whose
//!   atom mentions it (lazily pruned) and the number of live occurrences
//!   — an egd substitution touches only the atoms that actually contain
//!   the replaced variable;
//! * `slot_gen` / `touch_log` stamp every slot with the **generation**
//!   (chase step) that last created or rewrote it, in generation order —
//!   the delta-seeded premise search ([`eqsql_cq::ArenaPlan::search_delta`])
//!   reads "every atom added or changed since generation g" off the log
//!   tail in O(log + |delta|).
//!
//! Slot order equals first-occurrence order, so materializing the body
//! ([`BodyIndex::to_body`], a boundary conversion) yields the same atom
//! sequence the naive driver's `canonical_representation`-after-every-step
//! discipline produces.

use crate::step::DedupPolicy;
use eqsql_cq::{ArenaDelta, Atom, CqQuery, Predicate, Term, TermArena, TermId, Var};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Inline fingerprint capacity: atoms up to this arity hash without any
/// heap allocation (every workload in the tree is arity ≤ 4).
const FP_INLINE: usize = 8;

/// An atom-value fingerprint: the table id plus the flat argument-id
/// slice, inline up to [`FP_INLINE`] arguments. Hash/Eq go through the
/// slice, so inline and spilled fingerprints of equal values agree.
#[derive(Clone, Debug)]
struct AtomFp {
    table: u32,
    len: u8,
    inline: [TermId; FP_INLINE],
    spill: Option<Box<[TermId]>>,
}

impl AtomFp {
    fn new(table: u32, args: &[TermId]) -> AtomFp {
        if args.len() <= FP_INLINE {
            let mut inline = [0u32; FP_INLINE];
            inline[..args.len()].copy_from_slice(args);
            AtomFp { table, len: args.len() as u8, inline, spill: None }
        } else {
            AtomFp { table, len: 0, inline: [0; FP_INLINE], spill: Some(args.into()) }
        }
    }

    fn args(&self) -> &[TermId] {
        match &self.spill {
            Some(b) => b,
            None => &self.inline[..self.len as usize],
        }
    }
}

impl PartialEq for AtomFp {
    fn eq(&self, other: &AtomFp) -> bool {
        self.table == other.table && self.args() == other.args()
    }
}

impl Eq for AtomFp {}

impl Hash for AtomFp {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.table.hash(state);
        self.args().hash(state);
    }
}

/// The incremental, arena-backed body index. See the module docs.
pub struct BodyIndex {
    /// The flat body storage: interner plus columnar tables. Plans are
    /// compiled against it via [`BodyIndex::arena_mut`].
    arena: TermArena,
    /// Global slot → (table, row).
    slot_loc: Vec<(u32, u32)>,
    /// Liveness per slot.
    alive: Vec<bool>,
    /// Number of live slots.
    live: usize,
    /// Atom value fingerprint → live slots holding it (usually 1 entry).
    occurrences: HashMap<AtomFp, Vec<usize>>,
    /// Variable id → slots whose atom mentions it (may contain stale
    /// slots; pruned when consulted).
    var_slots: HashMap<TermId, Vec<usize>>,
    /// Variable id → live occurrence count (argument positions, over live
    /// atoms only). A variable is "current" iff its count is positive.
    var_count: HashMap<TermId, usize>,
    /// The current generation: 0 while building, advanced by the engine
    /// after every chase step.
    gen: u64,
    /// Slot → generation of its last creation/rewrite.
    slot_gen: Vec<u64>,
    /// Touches `(gen, slot)` in non-decreasing generation order (a slot
    /// reappears when rewritten; dead slots are filtered on read).
    touch_log: Vec<(u64, usize)>,
}

impl BodyIndex {
    /// Builds the index over a query body (assumed already normalized by
    /// the caller's dedup policy — slots mirror the body in order).
    pub fn new(body: &[Atom]) -> BodyIndex {
        let mut ix = BodyIndex {
            arena: TermArena::new(),
            slot_loc: Vec::with_capacity(body.len() * 2),
            alive: Vec::with_capacity(body.len() * 2),
            live: 0,
            occurrences: HashMap::new(),
            var_slots: HashMap::new(),
            var_count: HashMap::new(),
            gen: 0,
            slot_gen: Vec::with_capacity(body.len() * 2),
            touch_log: Vec::new(),
        };
        let mut scratch: Vec<TermId> = Vec::new();
        for atom in body {
            let (table, _) = ix.intern_atom(atom, &mut scratch);
            ix.push_slot_ids(table, &scratch);
        }
        ix.advance_gen();
        ix
    }

    /// Interns an atom's table and arguments into `scratch` (boundary
    /// conversion), returning the table id.
    fn intern_atom(&mut self, atom: &Atom, scratch: &mut Vec<TermId>) -> (u32, ()) {
        let table = self.arena.table_id(atom.key());
        scratch.clear();
        for t in &atom.args {
            scratch.push(self.arena.intern(*t));
        }
        (table, ())
    }

    /// Number of live atoms.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the body empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Does any live atom mention `v`?
    pub fn contains_var(&self, v: Var) -> bool {
        self.arena
            .lookup(&Term::Var(v))
            .is_some_and(|id| self.var_count.get(&id).copied().unwrap_or(0) > 0)
    }

    /// The arena the body lives in — searches run directly against it.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// Mutable arena access, for interning terms and compiling
    /// [`eqsql_cq::ArenaPlan`]s against the body's id spaces.
    ///
    /// **Contract:** callers may intern terms and register tables, but
    /// must not push/kill rows or overwrite cells — the index owns row
    /// lifecycle through [`BodyIndex::insert`]/[`BodyIndex::apply_rewrite`].
    pub fn arena_mut(&mut self) -> &mut TermArena {
        &mut self.arena
    }

    /// Materializes the live body in first-occurrence order (boundary
    /// conversion: allocates boxed atoms).
    pub fn to_body(&self) -> Vec<Atom> {
        (0..self.slot_loc.len())
            .filter(|&s| self.alive[s])
            .map(|s| {
                let (t, row) = self.slot_loc[s];
                self.arena.row_atom(t, row)
            })
            .collect()
    }

    /// Is an atom with this exact value live? (Never interns: an atom
    /// with never-seen terms cannot be present.)
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        let Some(table) = self.arena.lookup_table(&atom.key()) else {
            return false;
        };
        let mut args: Vec<TermId> = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match self.arena.lookup(t) {
                Some(id) => args.push(id),
                None => return false,
            }
        }
        self.occurrences.get(&AtomFp::new(table, &args)).is_some_and(|slots| !slots.is_empty())
    }

    /// The current generation. Every live slot has stamp `< gen` once the
    /// engine has advanced past the step that touched it.
    pub fn current_gen(&self) -> u64 {
        self.gen
    }

    /// Closes the current generation (called by the engine after every
    /// fired chase step; the constructor closes generation 0).
    pub fn advance_gen(&mut self) {
        self.gen += 1;
    }

    /// Collects the live rows created or rewritten at generation ≥
    /// `since` into `delta`, one entry per touch (a slot rewritten twice
    /// appears twice; the delta-pinned search tolerates the duplicate
    /// candidates). O(log |touch_log| + touches since).
    pub fn delta_since(&self, since: u64, delta: &mut ArenaDelta) {
        let start = self.touch_log.partition_point(|&(g, _)| g < since);
        for &(_, slot) in &self.touch_log[start..] {
            if self.alive[slot] {
                let (t, row) = self.slot_loc[slot];
                delta.push(t, row);
            }
        }
    }

    /// Unconditionally appends a new live slot holding the interned args.
    fn push_slot_ids(&mut self, table: u32, args: &[TermId]) -> usize {
        let slot = self.slot_loc.len();
        let row = self.arena.push_row(table, args);
        self.slot_loc.push((table, row));
        for &id in args {
            if self.arena.is_var(id) {
                *self.var_count.entry(id).or_insert(0) += 1;
                let slots = self.var_slots.entry(id).or_default();
                // An atom like p(X, X) yields the id twice; record once.
                if slots.last() != Some(&slot) {
                    slots.push(slot);
                }
            }
        }
        self.occurrences.entry(AtomFp::new(table, args)).or_default().push(slot);
        self.alive.push(true);
        self.live += 1;
        self.slot_gen.push(self.gen);
        self.touch_log.push((self.gen, slot));
        slot
    }

    /// Appends a boxed atom (boundary conversion) unless the dedup policy
    /// refuses duplicates of its predicate and an equal atom is already
    /// live. Returns whether a slot was actually added.
    pub fn insert(&mut self, atom: &Atom, dedup: &DedupPolicy) -> bool {
        let mut scratch = Vec::with_capacity(atom.args.len());
        let (table, _) = self.intern_atom(atom, &mut scratch);
        self.insert_ids(table, &scratch, dedup)
    }

    /// Appends an atom given as interned ids (the engine's fire path —
    /// no boxed atom is built). Same dedup contract as
    /// [`BodyIndex::insert`].
    pub fn insert_ids(&mut self, table: u32, args: &[TermId], dedup: &DedupPolicy) -> bool {
        let pred = self.arena.table(table).key().0;
        if dedup.dedups(pred)
            && self
                .occurrences
                .get(&AtomFp::new(table, args))
                .is_some_and(|slots| !slots.is_empty())
        {
            return false;
        }
        self.push_slot_ids(table, args);
        true
    }

    /// Kills `slot`, unhooking it from every secondary structure. The
    /// arena row leaves the live list; its cells stay put (columnar rows
    /// never move).
    fn kill(&mut self, slot: usize) {
        debug_assert!(self.alive[slot]);
        self.alive[slot] = false;
        self.live -= 1;
        let (t, row) = self.slot_loc[slot];
        self.arena.kill_row(t, row);
        let arity = self.arena.table(t).key().1;
        let fp = self.fp_of(t, row);
        if let Some(occ) = self.occurrences.get_mut(&fp) {
            occ.retain(|&s| s != slot);
            if occ.is_empty() {
                self.occurrences.remove(&fp);
            }
        }
        for j in 0..arity {
            let id = self.arena.table(t).cell(row, j);
            if self.arena.is_var(id) {
                if let Some(c) = self.var_count.get_mut(&id) {
                    *c = c.saturating_sub(1);
                    if *c == 0 {
                        self.var_count.remove(&id);
                        self.var_slots.remove(&id);
                    }
                }
            }
        }
    }

    /// The fingerprint of the atom at (table, row), read off the columns.
    fn fp_of(&self, t: u32, row: u32) -> AtomFp {
        let table = self.arena.table(t);
        let arity = table.key().1;
        if arity <= FP_INLINE {
            let mut inline = [0u32; FP_INLINE];
            for (j, cell) in inline.iter_mut().enumerate().take(arity) {
                *cell = table.cell(row, j);
            }
            AtomFp { table: t, len: arity as u8, inline, spill: None }
        } else {
            AtomFp {
                table: t,
                len: 0,
                inline: [0; FP_INLINE],
                spill: Some((0..arity).map(|j| table.cell(row, j)).collect()),
            }
        }
    }

    /// Applies the egd substitution `from → to` in place.
    ///
    /// Only slots whose atom actually mentions `from` are touched: their
    /// column cells are overwritten (no atom is cloned, rows keep their
    /// positions). Atoms that become duplicates of another live atom are
    /// deduplicated per `dedup`, keeping the earliest slot (matching the
    /// naive driver's whole-body `canonical_representation` after the
    /// step). Returns the predicates of every rewritten atom — the delta
    /// the scheduler uses to requeue affected dependencies.
    pub fn apply_rewrite(&mut self, from: Var, to: &Term, dedup: &DedupPolicy) -> Vec<Predicate> {
        let Some(from_id) = self.arena.lookup(&Term::Var(from)) else {
            return Vec::new();
        };
        let to_id = self.arena.intern(*to);
        let to_is_var = to.is_var();
        let Some(slots) = self.var_slots.remove(&from_id) else {
            return Vec::new();
        };
        let mut changed_preds: Vec<Predicate> = Vec::new();
        let mut touched: Vec<AtomFp> = Vec::new();
        for slot in slots {
            if !self.alive[slot] {
                continue; // stale entry from an earlier rewrite/kill
            }
            let (t, row) = self.slot_loc[slot];
            let arity = self.arena.table(t).key().1;
            let mut occurrences_of_from = 0usize;
            for j in 0..arity {
                if self.arena.table(t).cell(row, j) == from_id {
                    occurrences_of_from += 1;
                }
            }
            if occurrences_of_from == 0 {
                continue; // stale entry: an earlier rewrite removed `from`
            }
            // Unhook the old value from the occurrence map, then rewrite
            // the cells in place (bucket membership is untouched — the
            // predicate/arity key cannot change under a substitution).
            let old_fp = self.fp_of(t, row);
            if let Some(occ) = self.occurrences.get_mut(&old_fp) {
                occ.retain(|&s| s != slot);
                if occ.is_empty() {
                    self.occurrences.remove(&old_fp);
                }
            }
            for j in 0..arity {
                if self.arena.table(t).cell(row, j) == from_id {
                    self.arena.set_cell(t, row, j, to_id);
                }
            }
            if let Some(c) = self.var_count.get_mut(&from_id) {
                *c = c.saturating_sub(occurrences_of_from);
                if *c == 0 {
                    self.var_count.remove(&from_id);
                }
            }
            if to_is_var {
                *self.var_count.entry(to_id).or_insert(0) += occurrences_of_from;
                // A duplicate entry is harmless (stale entries are pruned
                // on read), so skip the O(n) membership test.
                self.var_slots.entry(to_id).or_default().push(slot);
            }
            let new_fp = self.fp_of(t, row);
            let pred = self.arena.table(t).key().0;
            self.occurrences.entry(new_fp.clone()).or_default().push(slot);
            self.slot_gen[slot] = self.gen;
            self.touch_log.push((self.gen, slot));
            if !changed_preds.contains(&pred) {
                changed_preds.push(pred);
            }
            touched.push(new_fp);
        }
        // Dedup pass over every value a rewritten slot now holds: keep the
        // earliest live slot, kill the rest (first occurrence wins, as in
        // the naive driver's canonical representation).
        for fp in touched {
            let pred = self.arena.table(fp.table).key().0;
            if !dedup.dedups(pred) {
                continue;
            }
            let Some(occ) = self.occurrences.get(&fp) else { continue };
            if occ.len() <= 1 {
                continue;
            }
            let keep = *occ.iter().min().expect("nonempty");
            let extras: Vec<usize> = occ.iter().copied().filter(|&s| s != keep).collect();
            for slot in extras {
                self.kill(slot);
            }
        }
        changed_preds
    }

    /// Materializes the current query given its (already substituted)
    /// head — a boundary conversion.
    pub fn to_query(&self, name: eqsql_cq::Symbol, head: Vec<Term>) -> CqQuery {
        CqQuery { name, head, body: self.to_body() }
    }

    /// Debug-only consistency check: every secondary structure agrees
    /// with a from-scratch rebuild of the materialized body.
    #[cfg(test)]
    fn check_invariants(&self) {
        let body = self.to_body();
        assert_eq!(body.len(), self.live);
        let fresh = BodyIndex::new(&body);
        // Per-table live rows hold the same atom sequences.
        for (slot, &(t, row)) in self.slot_loc.iter().enumerate() {
            if self.alive[slot] {
                assert!(
                    self.arena.table(t).live_rows().contains(&row),
                    "live slot {slot} not in live rows"
                );
            } else {
                assert!(
                    !self.arena.table(t).live_rows().contains(&row),
                    "dead slot {slot} still live"
                );
            }
        }
        let my_tables: Vec<Vec<Atom>> = {
            let mut v = Vec::new();
            for key in body.iter().map(Atom::key).collect::<std::collections::BTreeSet<_>>() {
                let t = self.arena.lookup_table(&key).unwrap();
                v.push(
                    self.arena
                        .table(t)
                        .live_rows()
                        .iter()
                        .map(|&r| self.arena.row_atom(t, r))
                        .collect(),
                );
            }
            v
        };
        let fresh_tables: Vec<Vec<Atom>> = {
            let mut v = Vec::new();
            for key in body.iter().map(Atom::key).collect::<std::collections::BTreeSet<_>>() {
                let t = fresh.arena.lookup_table(&key).unwrap();
                v.push(
                    fresh
                        .arena
                        .table(t)
                        .live_rows()
                        .iter()
                        .map(|&r| fresh.arena.row_atom(t, r))
                        .collect(),
                );
            }
            v
        };
        assert_eq!(my_tables, fresh_tables, "table contents diverged");
        // Variable counts agree (translated back to boxed vars).
        let mine: HashMap<Var, usize> = self
            .var_count
            .iter()
            .map(|(&id, &c)| (self.arena.term(id).as_var().expect("var id"), c))
            .collect();
        let theirs: HashMap<Var, usize> = fresh
            .var_count
            .iter()
            .map(|(&id, &c)| (fresh.arena.term(id).as_var().expect("var id"), c))
            .collect();
        assert_eq!(mine, theirs, "var_count diverged");
        for (fp, slots) in &self.occurrences {
            for &s in slots {
                assert!(self.alive[s], "occurrence holds dead slot");
                let (t, row) = self.slot_loc[s];
                assert_eq!(*fp, self.fp_of(t, row), "occurrence fingerprint stale");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::{parse_query, ArenaFrame, ArenaPlan};

    fn atoms(s: &str) -> Vec<Atom> {
        parse_query(s).unwrap().body
    }

    #[test]
    fn build_and_materialize_round_trips() {
        let body = atoms("q(X) :- p(X,Y), s(Y,Z), p(Z,X)");
        let ix = BodyIndex::new(&body);
        assert_eq!(ix.to_body(), body);
        assert_eq!(ix.len(), 3);
        assert!(ix.contains_var(Var::new("Y")));
        assert!(!ix.contains_var(Var::new("W")));
        ix.check_invariants();
    }

    #[test]
    fn insert_dedups_per_policy() {
        let body = atoms("q(X) :- p(X,Y)");
        let mut ix = BodyIndex::new(&body);
        let dup = body[0].clone();
        assert!(!ix.insert(&dup, &DedupPolicy::All));
        assert_eq!(ix.len(), 1);
        assert!(ix.insert(&dup, &DedupPolicy::None));
        assert_eq!(ix.len(), 2);
        ix.check_invariants();
    }

    #[test]
    fn rewrite_merges_and_dedups() {
        // s(X,A), s(X,B), r(A,B): A := B collapses the two s-atoms.
        let body = atoms("q(X) :- s(X,A), s(X,B), r(A,B)");
        let mut ix = BodyIndex::new(&body);
        let changed = ix.apply_rewrite(Var::new("A"), &Term::var("B"), &DedupPolicy::All);
        assert!(changed.contains(&Predicate::new("s")));
        assert!(changed.contains(&Predicate::new("r")));
        let out = ix.to_body();
        assert_eq!(out, atoms("q(X) :- s(X,B), r(B,B)"));
        assert!(!ix.contains_var(Var::new("A")));
        ix.check_invariants();
    }

    #[test]
    fn rewrite_to_constant() {
        let body = atoms("q(X) :- s(X,A), t(A,A)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("A"), &Term::int(3), &DedupPolicy::All);
        assert_eq!(ix.to_body(), atoms("q(X) :- s(X,3), t(3,3)"));
        assert!(!ix.contains_var(Var::new("A")));
        ix.check_invariants();
    }

    #[test]
    fn rewrite_without_dedup_keeps_duplicates() {
        let body = atoms("q(X) :- u(X,A), u(X,B)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("A"), &Term::var("B"), &DedupPolicy::None);
        assert_eq!(ix.to_body(), atoms("q(X) :- u(X,B), u(X,B)"));
        assert_eq!(ix.len(), 2);
        ix.check_invariants();
    }

    #[test]
    fn first_occurrence_survives_dedup() {
        // Rewriting the *first* atom into the value of the third must kill
        // the third (later) slot, not the rewritten one.
        let body = atoms("q(X) :- s(X,A), r(A,C), s(X,B)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("A"), &Term::var("B"), &DedupPolicy::All);
        assert_eq!(ix.to_body(), atoms("q(X) :- s(X,B), r(B,C)"));
        ix.check_invariants();
    }

    #[test]
    fn chained_rewrites_stay_consistent() {
        let body = atoms("q(A) :- p(A,B), p(B,C), p(C,D), r(A,D)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("B"), &Term::var("A"), &DedupPolicy::All);
        ix.check_invariants();
        ix.apply_rewrite(Var::new("C"), &Term::var("A"), &DedupPolicy::All);
        ix.check_invariants();
        ix.apply_rewrite(Var::new("D"), &Term::var("A"), &DedupPolicy::All);
        ix.check_invariants();
        // Everything collapsed onto p(A,A) and r(A,A).
        assert_eq!(ix.to_body(), atoms("q(A) :- p(A,A), r(A,A)"));
    }

    #[test]
    fn arena_search_runs_against_mutated_index() {
        let body = atoms("q(X) :- p(X,Y), p(Y,Z)");
        let mut ix = BodyIndex::new(&body);
        ix.apply_rewrite(Var::new("Z"), &Term::var("X"), &DedupPolicy::All);
        let pat = atoms("q(A) :- p(A,B), p(B,A)");
        let plan = ArenaPlan::new(&pat, ix.arena_mut());
        let mut frame = ArenaFrame::for_plan(&plan);
        assert!(plan.has_match(ix.arena(), &mut frame));
        ix.check_invariants();
    }

    #[test]
    fn contains_atom_and_foreign_terms() {
        let body = atoms("q(X) :- p(X,Y)");
        let ix = BodyIndex::new(&body);
        assert!(ix.contains_atom(&body[0]));
        // Never-interned terms / predicates can't be present (and must
        // not panic or intern).
        assert!(!ix.contains_atom(&atoms("q(X) :- p(X,3)")[0]));
        assert!(!ix.contains_atom(&atoms("q(X) :- zz(X,Y)")[0]));
    }
}
