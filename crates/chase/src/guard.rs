//! Cooperative run guards: deadlines, cancellation, and fault injection.
//!
//! Chase termination is undecidable in general, and even a terminating
//! chase can be slow enough to pin a worker far past any useful response
//! time. The step budget in [`ChaseConfig`](crate::ChaseConfig) bounds
//! *work*; a [`RunGuard`] bounds *latency* and *interest*: a wall-clock
//! deadline and an externally settable cancellation token, polled
//! cooperatively at the engine's per-step poll points (the same loop heads
//! that check the step and atom budgets). An aborted run surfaces as
//! [`ChaseError::DeadlineExceeded`] or [`ChaseError::Cancelled`] — *transient*
//! outcomes that, unlike `BudgetExhausted`, say nothing about (Q, Σ) and
//! must never be memoized (see `eqsql_service`'s cache).
//!
//! The default guard is **unguarded**: it holds no state and every poll is
//! a single `Option` test, so guard-free callers pay nothing and run
//! step-identically to the pre-guard engine.
//!
//! [`FaultPlan`] is the deterministic fault-injection hook: it forces a
//! cancellation, a deadline expiry, or a panic at exactly the Nth guard
//! poll of a run, letting tests pin abort behavior ("within one engine
//! step of the signal") without timing races.

use crate::error::ChaseError;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation token.
///
/// Cheap to clone (an [`Arc`] around one atomic flag); one handle is held
/// by the party that may lose interest (a batch driver, a connection
/// handler) and a clone rides inside the [`RunGuard`] of every run that
/// should die with it. Cancellation is sticky: once set it cannot be
/// cleared, so a token is per-unit-of-interest, not reusable.
#[derive(Clone, Debug, Default)]
pub struct Cancel(Arc<AtomicBool>);

impl Cancel {
    /// A fresh, un-cancelled token.
    pub fn new() -> Cancel {
        Cancel::default()
    }

    /// Requests cancellation of every run guarded by a clone of this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// What a [`FaultPlan`] injects when it triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Set the guard's cancellation token, as if an external party called
    /// [`Cancel::cancel`] between two engine steps.
    Cancel,
    /// Mark the guard's deadline as expired, as if the wall clock passed
    /// it between two engine steps.
    Deadline,
    /// Panic, simulating a defect inside the decision procedure. Used to
    /// pin the service layer's per-request panic isolation.
    Panic,
}

/// A deterministic fault-injection plan: trigger `fault` at the `at_poll`th
/// guard poll (1-based) of the run.
///
/// This is a test hook. Guard polls happen at every engine step (query and
/// instance chase alike), so "the 3rd poll" is a reproducible point in the
/// run regardless of wall-clock speed. A plan with `at_poll` past the run's
/// total poll count never triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based index of the guard poll at which to inject.
    pub at_poll: u64,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultPlan {
    /// A plan injecting `fault` at the `at_poll`th guard poll (1-based).
    pub fn new(at_poll: u64, fault: Fault) -> FaultPlan {
        FaultPlan { at_poll, fault }
    }
}

struct GuardInner {
    deadline: Option<Instant>,
    /// Sticky deadline-expiry flag: set by the clock or by fault
    /// injection, so expiry observed once is observed forever.
    expired: AtomicBool,
    cancel: Cancel,
    fault: Option<FaultPlan>,
    /// Polls seen so far — drives deterministic [`FaultPlan`] triggering.
    polls: AtomicU64,
}

impl fmt::Debug for GuardInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuardInner")
            .field("deadline", &self.deadline)
            .field("expired", &self.expired.load(Ordering::Relaxed))
            .field("cancelled", &self.cancel.is_cancelled())
            .field("fault", &self.fault)
            .field("polls", &self.polls.load(Ordering::Relaxed))
            .finish()
    }
}

/// A cooperative run guard: wall-clock deadline + cancellation token +
/// optional [`FaultPlan`], polled at the engine's per-step poll points.
///
/// `RunGuard::default()` is **unguarded** — no allocation, every poll a
/// single `Option` check — so it can be threaded through engine options
/// unconditionally. Clones share state (the poll counter, the sticky
/// expiry flag, the cancellation token), so one guard governs a whole
/// decision even when it spans several chases.
#[derive(Clone, Debug, Default)]
pub struct RunGuard {
    inner: Option<Arc<GuardInner>>,
}

impl RunGuard {
    /// The unguarded guard: never aborts, costs one `Option` test per poll.
    pub fn unguarded() -> RunGuard {
        RunGuard::default()
    }

    /// A guard from its parts. `deadline_ms` counts from now; `None`
    /// disables the corresponding check. `deadline_ms = 0` is an
    /// already-expired deadline (every poll fails) — useful to smoke-test
    /// timeout paths without timing races.
    pub fn new(
        deadline_ms: Option<u64>,
        cancel: Option<Cancel>,
        fault: Option<FaultPlan>,
    ) -> RunGuard {
        if deadline_ms.is_none() && cancel.is_none() && fault.is_none() {
            return RunGuard::unguarded();
        }
        RunGuard {
            inner: Some(Arc::new(GuardInner {
                deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
                expired: AtomicBool::new(deadline_ms == Some(0)),
                cancel: cancel.unwrap_or_default(),
                fault,
                polls: AtomicU64::new(0),
            })),
        }
    }

    /// A guard with only a deadline, `ms` from now.
    pub fn with_deadline_ms(ms: u64) -> RunGuard {
        RunGuard::new(Some(ms), None, None)
    }

    /// A guard watching only the given cancellation token.
    pub fn with_cancel(cancel: Cancel) -> RunGuard {
        RunGuard::new(None, Some(cancel), None)
    }

    /// Is this the unguarded guard?
    pub fn is_unguarded(&self) -> bool {
        self.inner.is_none()
    }

    /// Engine-step polls seen so far (0 for the unguarded guard, which
    /// does not count). Observability reads this to attribute how much
    /// guarded engine work a request performed.
    pub fn polls(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.polls.load(Ordering::Relaxed))
    }

    /// The per-step poll: counts toward [`FaultPlan::at_poll`], injects a
    /// due fault, then checks cancellation and the deadline. `steps` is
    /// the caller's current step count, reported in the error for
    /// diagnostics. Called by the engine at every step; a guarded run
    /// therefore aborts within one engine step of the signal.
    pub fn poll(&self, steps: usize) -> Result<(), ChaseError> {
        let Some(inner) = &self.inner else { return Ok(()) };
        let n = inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(plan) = inner.fault {
            if n == plan.at_poll {
                match plan.fault {
                    Fault::Cancel => inner.cancel.cancel(),
                    Fault::Deadline => inner.expired.store(true, Ordering::Release),
                    Fault::Panic => panic!("fault injection: forced panic at guard poll {n}"),
                }
            }
        }
        self.check_signals(inner, steps)
    }

    /// A non-counting check of the cancellation/deadline signals — for
    /// poll points *between* chases (decision boundaries, candidate loops)
    /// that should notice an abort promptly without perturbing the
    /// [`FaultPlan`]'s engine-step accounting.
    pub fn check(&self, steps: usize) -> Result<(), ChaseError> {
        let Some(inner) = &self.inner else { return Ok(()) };
        self.check_signals(inner, steps)
    }

    fn check_signals(&self, inner: &GuardInner, steps: usize) -> Result<(), ChaseError> {
        if inner.cancel.is_cancelled() {
            return Err(ChaseError::Cancelled { steps });
        }
        if inner.expired.load(Ordering::Acquire) {
            return Err(ChaseError::DeadlineExceeded { steps });
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                inner.expired.store(true, Ordering::Release);
                return Err(ChaseError::DeadlineExceeded { steps });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_never_aborts() {
        let g = RunGuard::unguarded();
        assert!(g.is_unguarded());
        for i in 0..10_000 {
            assert_eq!(g.poll(i), Ok(()));
        }
    }

    #[test]
    fn empty_parts_collapse_to_unguarded() {
        assert!(RunGuard::new(None, None, None).is_unguarded());
        assert!(!RunGuard::with_deadline_ms(1_000).is_unguarded());
    }

    #[test]
    fn cancellation_is_observed_on_the_next_poll() {
        let c = Cancel::new();
        let g = RunGuard::with_cancel(c.clone());
        assert_eq!(g.poll(0), Ok(()));
        c.cancel();
        assert_eq!(g.poll(1), Err(ChaseError::Cancelled { steps: 1 }));
        // Sticky.
        assert_eq!(g.poll(2), Err(ChaseError::Cancelled { steps: 2 }));
    }

    #[test]
    fn zero_deadline_is_already_expired() {
        let g = RunGuard::with_deadline_ms(0);
        assert_eq!(g.poll(0), Err(ChaseError::DeadlineExceeded { steps: 0 }));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let g = RunGuard::with_deadline_ms(1_000_000);
        for i in 0..1_000 {
            assert_eq!(g.poll(i), Ok(()));
        }
    }

    #[test]
    fn fault_plan_triggers_at_exactly_the_nth_poll() {
        let g = RunGuard::new(None, None, Some(FaultPlan::new(3, Fault::Cancel)));
        assert_eq!(g.poll(0), Ok(()));
        assert_eq!(g.poll(1), Ok(()));
        assert_eq!(g.poll(2), Err(ChaseError::Cancelled { steps: 2 }));
    }

    #[test]
    fn fault_deadline_is_sticky_without_a_clock() {
        let g = RunGuard::new(None, None, Some(FaultPlan::new(2, Fault::Deadline)));
        assert_eq!(g.poll(0), Ok(()));
        assert_eq!(g.poll(1), Err(ChaseError::DeadlineExceeded { steps: 1 }));
        assert_eq!(g.poll(2), Err(ChaseError::DeadlineExceeded { steps: 2 }));
    }

    #[test]
    #[should_panic(expected = "fault injection")]
    fn fault_panic_panics() {
        let g = RunGuard::new(None, None, Some(FaultPlan::new(1, Fault::Panic)));
        let _ = g.poll(0);
    }

    #[test]
    fn check_does_not_advance_the_fault_counter() {
        let g = RunGuard::new(None, None, Some(FaultPlan::new(1, Fault::Cancel)));
        assert_eq!(g.check(0), Ok(()));
        assert_eq!(g.check(0), Ok(()));
        // Only the counting poll trips the plan.
        assert_eq!(g.poll(5), Err(ChaseError::Cancelled { steps: 5 }));
        assert_eq!(g.check(6), Err(ChaseError::Cancelled { steps: 6 }));
    }

    #[test]
    fn clones_share_state() {
        let g = RunGuard::new(None, None, Some(FaultPlan::new(2, Fault::Cancel)));
        let h = g.clone();
        assert_eq!(g.poll(0), Ok(()));
        // The clone's poll is the shared counter's 2nd.
        assert_eq!(h.poll(1), Err(ChaseError::Cancelled { steps: 1 }));
        assert_eq!(g.check(2), Err(ChaseError::Cancelled { steps: 2 }));
    }
}
