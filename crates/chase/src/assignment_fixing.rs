//! Assignment-fixing tgds (Definition 4.3 of the paper).
//!
//! A regularized tgd `σ` applicable to `Q` with homomorphism `h` is
//! **assignment-fixing** w.r.t. `(Q, h)` when chasing the associated test
//! query `Q^{σ,h,θ}` under Σ (set semantics) forces, for every existential
//! `Z_i`, the two copies `Z_i` and `θ(Z_i)` to coincide — i.e. every
//! satisfying assignment of `Q` extends to *exactly one* satisfying
//! assignment of the chase-step result on every database satisfying Σ,
//! which is what keeps answer multiplicities intact under bag/bag-set
//! semantics (Theorems 4.1/4.3).
//!
//! ## Implementation note (naming-robustness)
//!
//! The paper phrases the condition as "`(Q^{σ,h,θ})_{Σ,S}` has at most one
//! of `Z_i` and `θ(Z_i)`". Egd chase steps may replace either side of an
//! equality, so the literal variable names surviving the chase depend on
//! tie-breaking; we instead track the accumulated renaming through the
//! chase and require the **final images** of `Z_i` and `θ(Z_i)` to be
//! equal. This is invariant under egd direction choices and agrees with
//! the paper on its examples (4.2 positive, 5.1 positive; see
//! `EXPERIMENTS.md` for the Example 4.3 erratum discussion).
//!
//! Full tgds are assignment-fixing w.r.t. every query they apply to
//! (Proposition 4.3).

use crate::engine::EngineOpts;
use crate::error::{ChaseConfig, ChaseError};
use crate::guard::RunGuard;
use crate::set_chase::set_chase_opts;
use crate::step::{applicable_tgd_homs, rename_dep_apart};
use crate::test_query::associated_test_query;
use eqsql_cq::{CqQuery, Subst, Term};
use eqsql_deps::{Dependency, DependencySet, Tgd};
use std::collections::HashSet;

/// Is `tgd` assignment-fixing w.r.t. `q` and the specific applicable
/// homomorphism `h`? The tgd must be renamed apart from `q` and `h` must
/// make the chase applicable. Σ should be regularized.
pub fn is_assignment_fixing(
    q: &CqQuery,
    sigma: &DependencySet,
    tgd: &Tgd,
    h: &Subst,
    config: &ChaseConfig,
) -> Result<bool, ChaseError> {
    is_assignment_fixing_guarded(q, sigma, tgd, h, config, &RunGuard::unguarded())
}

/// [`is_assignment_fixing`] with a [`RunGuard`] threaded into the nested
/// test-query chase, so a deadline or cancellation signalled mid-decision
/// also aborts the (potentially budget-sized) inner chase promptly. The
/// inner chase always runs in reference order — the guard, like parallel
/// probes, never changes results, only whether the run finishes.
pub fn is_assignment_fixing_guarded(
    q: &CqQuery,
    sigma: &DependencySet,
    tgd: &Tgd,
    h: &Subst,
    config: &ChaseConfig,
    guard: &RunGuard,
) -> Result<bool, ChaseError> {
    if tgd.is_full() {
        return Ok(true); // Proposition 4.3
    }
    let tq = associated_test_query(q, tgd, h);
    let opts = EngineOpts::default().guarded(guard.clone());
    let chased = set_chase_opts(&tq.query, sigma, config, &opts)?;
    if chased.failed {
        // The double-witness pattern is unsatisfiable under Σ: two distinct
        // extensions can never coexist, so the step fixes assignments
        // vacuously.
        return Ok(true);
    }
    for z in &tq.zs {
        let fz = chased.renaming.apply_term(&Term::Var(*z));
        let ftz = chased.renaming.apply_term(&tq.theta.apply_term(&Term::Var(*z)));
        if fz != ftz {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Is `tgd` assignment-fixing w.r.t. `q` (Definition 4.3's final clause):
/// does there exist an applicable homomorphism `h` such that
/// [`is_assignment_fixing`] holds? Returns `Ok(None)` when the chase of `q`
/// with the tgd is not applicable at all.
pub fn is_assignment_fixing_wrt_query(
    q: &CqQuery,
    sigma: &DependencySet,
    tgd: &Tgd,
    config: &ChaseConfig,
) -> Result<Option<bool>, ChaseError> {
    let avoid: HashSet<_> = q.all_vars().into_iter().collect();
    let mut supply = eqsql_cq::VarSupply::avoiding([q]);
    let renamed = rename_dep_apart(&Dependency::Tgd(tgd.clone()), &avoid, &mut supply);
    let tgd_r = renamed.as_tgd().expect("renaming preserves kind");
    let homs = applicable_tgd_homs(q, tgd_r);
    if homs.is_empty() {
        return Ok(None);
    }
    for h in &homs {
        if is_assignment_fixing(q, sigma, tgd_r, h, config)? {
            return Ok(Some(true));
        }
    }
    Ok(Some(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn example_4_2_sigma1_is_assignment_fixing() {
        // Σ = {σ1, σ2 (key of R), σ3}; σ1 is assignment-fixing w.r.t.
        // Q(X) :- p(X,Y): the chased test query keeps only one of Z/Z1 and
        // one of W/W1.
        let sigma = parse_dependencies(
            "p(X,Y) -> r(X,Z) & s(Z,W).\n\
             r(X,Y) & r(X,Z) -> Y = Z.\n\
             r(X,Y) & s(Y,T) & r(X,Z) & s(Z,W) -> T = W.",
        )
        .unwrap();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let sigma1 = sigma.tgds().next().unwrap().clone();
        let verdict = is_assignment_fixing_wrt_query(&q, &sigma, &sigma1, &cfg()).unwrap();
        assert_eq!(verdict, Some(true));
    }

    #[test]
    fn example_4_3_variant_sigma4_is_not_assignment_fixing() {
        // σ4: p(X,Y) -> ∃Z,W,T r(X,Z) ∧ s(Z,W) ∧ s(X,T), with only the key
        // of R available: nothing forces the W/W1 (or T/T1) copies
        // together, so σ4 is not assignment-fixing w.r.t. Q.
        //
        // (The paper's Example 4.3 additionally includes egds σ5/σ6; as
        // printed, exhaustive chasing with σ5 merges the copies — see the
        // erratum note in EXPERIMENTS.md — so we use the reduced Σ that
        // exhibits the intended behaviour.)
        let sigma = parse_dependencies(
            "p(X,Y) -> r(X,Z) & s(Z,W) & s(X,T).\n\
             r(X,Y) & r(X,Z) -> Y = Z.",
        )
        .unwrap();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let sigma4 = sigma.tgds().next().unwrap().clone();
        let verdict = is_assignment_fixing_wrt_query(&q, &sigma, &sigma4, &cfg()).unwrap();
        assert_eq!(verdict, Some(false));
    }

    #[test]
    fn example_5_1_sigma4_is_assignment_fixing_wrt_q_prime() {
        // Same Σ' as the paper's Example 4.3 (σ2, σ4, σ5, σ6) but the query
        // Q'(X) :- p(X,Y), r(A,X): now σ6 fires on the test query and the
        // copies collapse — σ4 IS assignment-fixing w.r.t. Q'
        // (query-dependence of the notion, Example 5.1).
        let sigma = parse_dependencies(
            "r(X,Y) & r(X,Z) -> Y = Z.\n\
             p(X,Y) -> r(X,Z) & s(Z,W) & s(X,T).\n\
             r(X,Z) & s(Z,W) & s(X,T) -> W = T.\n\
             p(X,Y) & r(A,X) & s(X,T) -> X = T.",
        )
        .unwrap();
        let q_prime = parse_query("q(X) :- p(X,Y), r(A,X)").unwrap();
        let sigma4 = sigma.tgds().next().unwrap().clone();
        let verdict = is_assignment_fixing_wrt_query(&q_prime, &sigma, &sigma4, &cfg()).unwrap();
        assert_eq!(verdict, Some(true));
    }

    #[test]
    fn full_tgds_are_always_fixing() {
        // Proposition 4.3.
        let sigma = parse_dependencies("p(X,Y) -> r(X).").unwrap();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = sigma.tgds().next().unwrap().clone();
        assert_eq!(is_assignment_fixing_wrt_query(&q, &sigma, &t, &cfg()).unwrap(), Some(true));
    }

    #[test]
    fn key_constrained_existential_is_fixing() {
        // p(X,Y) -> t(X,Y,W) with the first two attributes of T a key:
        // the two W-copies merge (this is σ2/σ8 of Example 4.1).
        let sigma = parse_dependencies(
            "p(X,Y) -> t(X,Y,W).\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = sigma.tgds().next().unwrap().clone();
        assert_eq!(is_assignment_fixing_wrt_query(&q, &sigma, &t, &cfg()).unwrap(), Some(true));
    }

    #[test]
    fn unconstrained_existential_is_not_fixing() {
        // p(X,Y) -> u(X,Z) with no constraints on U: not fixing
        // (σ4's U-half in Example 4.1 / Note 1 on Example 4.5).
        let sigma = parse_dependencies("p(X,Y) -> u(X,Z).").unwrap();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = sigma.tgds().next().unwrap().clone();
        assert_eq!(is_assignment_fixing_wrt_query(&q, &sigma, &t, &cfg()).unwrap(), Some(false));
    }

    #[test]
    fn inapplicable_tgd_reports_none() {
        let sigma = parse_dependencies("a(X) -> b(X,Z).").unwrap();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = sigma.tgds().next().unwrap().clone();
        assert_eq!(is_assignment_fixing_wrt_query(&q, &sigma, &t, &cfg()).unwrap(), None);
    }

    #[test]
    fn example_4_6_nu1_is_assignment_fixing() {
        // ν1: p(X,Y) -> ∃Z s(X,Z) ∧ t(Z,Y); ν2: t(X,Y) & t(Z,Y) -> X = Z.
        // ν1 is regularized and assignment-fixing w.r.t. Q(X) :- p(X,Y),
        // s(X,Z) (Example 4.6/4.8).
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
             t(X,Y) & t(Z,Y) -> X = Z.",
        )
        .unwrap();
        let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
        let nu1 = sigma.tgds().next().unwrap().clone();
        assert_eq!(is_assignment_fixing_wrt_query(&q, &sigma, &nu1, &cfg()).unwrap(), Some(true));
    }
}
