//! Associated test queries `Q^{σ,h,θ}` (Definition 4.2 of the paper).
//!
//! Given a CQ query `Q(Ā) :- ζ(Ā, B̄)`, a regularized tgd
//! `σ : φ(X̄, Ȳ) → ∃Z̄ ψ(X̄, Z̄)` whose chase is applicable to `Q` with
//! homomorphism `h`, and a substitution `θ` sending each existential `Z_i`
//! to a fresh variable, the associated test query is
//!
//! ```text
//! Q^{σ,h,θ}(Ā) :- ζ(Ā, B̄) ∧ ψ(h(X̄), Z̄) ∧ ψ(h(X̄), θ(Z̄))
//! ```
//!
//! — the body of `Q` plus **two** copies of the instantiated conclusion
//! with independent existential witnesses. Chasing it under Σ reveals
//! whether the two witnesses are forced to coincide on every database
//! satisfying Σ, which is exactly the assignment-fixing condition of
//! Definition 4.3. `Q^{σ,h,θ}` is unique up to isomorphism w.r.t. the
//! choice of θ. For tgds without existential variables the two copies
//! coincide (Equation 3 of the paper).

use eqsql_cq::{CqQuery, Subst, Term, Var, VarSupply};
use eqsql_deps::Tgd;

/// An associated test query together with the bookkeeping the
/// assignment-fixing check needs.
#[derive(Clone, Debug)]
pub struct TestQuery {
    /// The test query `Q^{σ,h,θ}`.
    pub query: CqQuery,
    /// The tgd's existential variables `Z_i` (as they appear in the first
    /// conclusion copy).
    pub zs: Vec<Var>,
    /// `θ`: maps each `Z_i` to its fresh twin in the second copy.
    pub theta: Subst,
}

/// Builds `Q^{σ,h,θ}`. The tgd must already be renamed apart from `q` (its
/// variables disjoint from `q`'s), and `h` must be an applicable-chase
/// homomorphism from its premise into `q`'s body.
pub fn associated_test_query(q: &CqQuery, tgd: &Tgd, h: &Subst) -> TestQuery {
    let mut supply = VarSupply::avoiding([q]);
    for v in tgd.all_vars() {
        supply.record_var(v);
    }
    let zs = tgd.existential_vars();
    let mut theta = Subst::new();
    for z in &zs {
        theta.set(*z, Term::Var(supply.fresh(z.name())));
    }
    // First copy: h on universal variables, existentials kept.
    let copy1 = h.apply_atoms(&tgd.rhs);
    // Second copy: h then θ.
    let h_theta = h.then(&theta);
    let copy2 = h_theta.apply_atoms(&tgd.rhs);

    let mut query = q.clone();
    query.name = eqsql_cq::Symbol::new(&format!("{}_test", q.name));
    query.body.extend(copy1);
    query.body.extend(copy2);
    TestQuery { query, zs, theta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::applicable_tgd_homs;
    use eqsql_cq::{are_isomorphic, parse_query};
    use eqsql_deps::parse_dependency;

    fn tgd(s: &str) -> Tgd {
        parse_dependency(s).unwrap().as_tgd().unwrap().clone()
    }

    #[test]
    fn example_4_2_test_query_shape() {
        // Q(X) :- p(X,Y); σ1: p(A,B) -> ∃Z∃W r(A,Z) ∧ s(Z,W).
        // Q^{σ1,h,θ}(X) :- p(X,Y), r(X,Z), s(Z,W), r(X,Z1), s(Z1,W1).
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = tgd("p(A,B) -> r(A,Z) & s(Z,W)");
        let homs = applicable_tgd_homs(&q, &t);
        assert_eq!(homs.len(), 1);
        let tq = associated_test_query(&q, &t, &homs[0]);
        let expected = parse_query("qt(X) :- p(X,Y), r(X,Z), s(Z,W), r(X,Z2), s(Z2,W2)").unwrap();
        assert!(are_isomorphic(&tq.query, &expected), "got {}", tq.query);
        assert_eq!(tq.zs, vec![Var::new("Z"), Var::new("W")]);
    }

    #[test]
    fn theta_is_injective_and_fresh() {
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = tgd("p(A,B) -> r(A,Z) & s(Z,W)");
        let homs = applicable_tgd_homs(&q, &t);
        let tq = associated_test_query(&q, &t, &homs[0]);
        let tz = tq.theta.apply_term(&Term::var("Z"));
        let tw = tq.theta.apply_term(&Term::var("W"));
        assert_ne!(tz, Term::var("Z"));
        assert_ne!(tw, Term::var("W"));
        assert_ne!(tz, tw);
        // Fresh twins do not collide with q's variables.
        assert_ne!(tz, Term::var("Y"));
        assert_ne!(tw, Term::var("Y"));
    }

    #[test]
    fn full_tgd_yields_duplicate_copies() {
        // Equation 3: for a full tgd θ = ∅ and the two copies coincide.
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let t = tgd("p(A,B) -> r(A)");
        let homs = applicable_tgd_homs(&q, &t);
        let tq = associated_test_query(&q, &t, &homs[0]);
        assert!(tq.zs.is_empty());
        assert_eq!(tq.query.body.len(), 3);
        assert_eq!(tq.query.body[1], tq.query.body[2]);
    }

    #[test]
    fn head_is_preserved() {
        let q = parse_query("q(X, Y) :- p(X,Y)").unwrap();
        let t = tgd("p(A,B) -> r(A,Z)");
        let homs = applicable_tgd_homs(&q, &t);
        let tq = associated_test_query(&q, &t, &homs[0]);
        assert_eq!(tq.query.head, q.head);
    }
}
