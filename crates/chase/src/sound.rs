//! Sound chase under bag and bag-set semantics (Theorems 4.1 and 4.3).
//!
//! The set-semantics chase is *unsound* under bag/bag-set semantics: a tgd
//! step can change answer multiplicities (Example 4.1). The paper's
//! repairs, implemented here:
//!
//! * Σ is **regularized** first (Definition 4.1 / Proposition 4.1);
//! * a tgd step `Q ⇒_σ Q'` fires only when it is **assignment-fixing**
//!   (Definition 4.4) — and, under bag semantics, only when every added
//!   subgoal's relation is set-valued on all instances (Theorem 4.1(1));
//! * egd steps always fire; after a step, duplicate subgoals are dropped
//!   for set-valued relations only under bag semantics (Theorem 4.1(2))
//!   and unconditionally under bag-set semantics (Theorem 4.3(2));
//! * the result is unique up to isomorphism after that normalization
//!   (Theorem 5.1 for bag, Theorem G.1 for bag-set) and the chase
//!   terminates whenever set-chase does (Proposition 5.1).

use crate::assignment_fixing::is_assignment_fixing_guarded;
use crate::engine::EngineOpts;
use crate::error::{ChaseConfig, ChaseError};
use crate::set_chase::{chase_with_policy_opts, set_chase_opts, Chased};
use crate::step::DedupPolicy;
use eqsql_cq::{CqQuery, Predicate};
use eqsql_deps::regularize::regularize_set;
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};
use std::collections::HashSet;

/// The result of a sound chase.
#[derive(Clone, Debug)]
pub struct SoundChased {
    /// The normalized terminal result (`(Q)_{Σ,B}` or `(Q)_{Σ,BS}` or
    /// `(Q)_{Σ,S}`).
    pub query: CqQuery,
    /// Did the chase fail (egd equated distinct constants)?
    pub failed: bool,
    /// Steps taken.
    pub steps: usize,
    /// The regularized Σ actually used. Shared (`Arc`) so memoizing
    /// callers — the `eqsql_service` chase cache regularizes each Σ once
    /// and replays results — don't deep-copy Σ per chase.
    pub sigma_regularized: std::sync::Arc<DependencySet>,
    /// The underlying chase record (trace, renaming).
    pub chased: Chased,
}

/// Runs the sound chase of `q` with Σ under the given semantics.
///
/// Σ is regularized internally. The `schema` supplies the set-valuedness
/// flags (the paper's set-enforcing constraints of Appendix C); it is only
/// consulted under bag semantics.
///
/// ```
/// use eqsql_chase::{sound_chase, ChaseConfig};
/// use eqsql_cq::parse_query;
/// use eqsql_deps::parse_dependencies;
/// use eqsql_relalg::{Schema, Semantics};
///
/// let sigma = parse_dependencies(
///     "a(X) -> b(X,W). b(X,W1) & b(X,W2) -> W1 = W2. a(X) -> c(X).",
/// ).unwrap();
/// let mut schema = Schema::all_bags(&[("a", 1), ("b", 2), ("c", 1)]);
/// schema.mark_set_valued(eqsql_cq::Predicate::new("b"));
///
/// let q = parse_query("q(X) :- a(X)").unwrap();
/// // Bag semantics: only the keyed, set-valued b-atom may be added;
/// // the bag-valued c stays out (Theorem 4.1).
/// let bag = sound_chase(Semantics::Bag, &q, &sigma, &schema,
///                       &ChaseConfig::default()).unwrap();
/// assert_eq!(bag.query.body.len(), 2);
/// // Bag-set semantics additionally admits the full tgd a -> c
/// // (Theorem 4.3).
/// let bs = sound_chase(Semantics::BagSet, &q, &sigma, &schema,
///                      &ChaseConfig::default()).unwrap();
/// assert_eq!(bs.query.body.len(), 3);
/// ```
pub fn sound_chase(
    sem: Semantics,
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<SoundChased, ChaseError> {
    sound_chase_prepared(sem, q, std::sync::Arc::new(regularize_set(sigma)), schema, config)
}

/// [`sound_chase`] over an **already regularized** Σ.
///
/// Regularization (Definition 4.1) depends only on Σ, so callers issuing
/// many chases over one fixed dependency set — the batched equivalence
/// sessions of `eqsql_service`, the C&B backchase — compute
/// [`regularize_set`] once and feed the result here instead of paying for
/// it on every chase. Passing a non-regularized set is sound for set
/// semantics but loses completeness under bag/bag-set semantics
/// (Example 4.4), so only hand this the output of [`regularize_set`].
pub fn sound_chase_prepared(
    sem: Semantics,
    q: &CqQuery,
    sigma_reg: std::sync::Arc<DependencySet>,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<SoundChased, ChaseError> {
    sound_chase_prepared_opts(sem, q, sigma_reg, schema, config, &EngineOpts::default())
}

/// [`sound_chase_prepared`] with explicit [`EngineOpts`] — delta-seeded
/// premise search and speculative parallel probes, as configured by a
/// `Solver` in `eqsql_service`. With [`EngineOpts::default`] this is
/// exactly [`sound_chase_prepared`]; delta seeding trades the
/// reference-identical step order for asymptotic wins (terminals stay
/// Σ-equivalent), and probes never change results at all.
pub fn sound_chase_prepared_opts(
    sem: Semantics,
    q: &CqQuery,
    sigma_reg: std::sync::Arc<DependencySet>,
    schema: &Schema,
    config: &ChaseConfig,
    opts: &EngineOpts,
) -> Result<SoundChased, ChaseError> {
    let chased = match sem {
        Semantics::Set => set_chase_opts(q, &sigma_reg, config, opts)?,
        Semantics::BagSet => {
            let mut af_err: Option<ChaseError> = None;
            let res = chase_with_policy_opts(
                q,
                &sigma_reg,
                config,
                &DedupPolicy::All,
                &mut |tgd, cur, h| match is_assignment_fixing_guarded(
                    cur,
                    &sigma_reg,
                    tgd,
                    h,
                    config,
                    &opts.guard,
                ) {
                    Ok(b) => b,
                    Err(e) => {
                        af_err = Some(e);
                        false
                    }
                },
                opts,
            );
            if let Some(e) = af_err {
                return Err(e);
            }
            res?
        }
        Semantics::Bag => {
            let set_preds: HashSet<Predicate> = schema.set_valued_relations().into_iter().collect();
            let mut af_err: Option<ChaseError> = None;
            let res = chase_with_policy_opts(
                q,
                &sigma_reg,
                config,
                &DedupPolicy::SetValuedOnly(set_preds.clone()),
                &mut |tgd, cur, h| {
                    if !tgd.rhs.iter().all(|a| set_preds.contains(&a.pred)) {
                        return false; // Theorem 4.1(1): added subgoals must be set-valued
                    }
                    match is_assignment_fixing_guarded(cur, &sigma_reg, tgd, h, config, &opts.guard)
                    {
                        Ok(b) => b,
                        Err(e) => {
                            af_err = Some(e);
                            false
                        }
                    }
                },
                opts,
            );
            if let Some(e) = af_err {
                return Err(e);
            }
            res?
        }
    };
    Ok(SoundChased {
        query: chased.query.clone(),
        failed: chased.failed,
        steps: chased.steps,
        sigma_regularized: sigma_reg,
        chased,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::{are_isomorphic, parse_query};
    use eqsql_deps::parse_dependencies;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    /// Example 4.1: Σ = {σ1..σ4 tgds, σ7 key of S, σ8 key of T}; S and T
    /// set-valued (σ5/σ6 as schema flags per Appendix C).
    fn sigma_4_1() -> DependencySet {
        parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap()
    }

    fn schema_4_1() -> Schema {
        let mut s = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        s.mark_set_valued(eqsql_cq::Predicate::new("s"));
        s.mark_set_valued(eqsql_cq::Predicate::new("t"));
        s
    }

    #[test]
    fn example_4_1_bag_chase_of_q4_is_q3() {
        // (Q4)_{Σ,B} = Q3(X) :- p(X,Y), t(X,Y,W), s(X,Z):
        // σ3 (adds bag-valued R) and σ4's U-half are excluded; σ1's
        // t-half is not assignment-fixing; σ1's s-half and σ2 fire.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let r = sound_chase(Semantics::Bag, &q4, &sigma_4_1(), &schema_4_1(), &cfg()).unwrap();
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        assert!(are_isomorphic(&r.query, &q3), "got {}", r.query);
    }

    #[test]
    fn example_4_1_bag_set_chase_of_q4_is_q2() {
        // (Q4)_{Σ,BS} = Q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X):
        // σ3 (full tgd) is sound under bag-set semantics.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let r = sound_chase(Semantics::BagSet, &q4, &sigma_4_1(), &schema_4_1(), &cfg()).unwrap();
        let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
        assert!(are_isomorphic(&r.query, &q2), "got {}", r.query);
    }

    #[test]
    fn example_4_1_set_chase_contains_everything() {
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let r = sound_chase(Semantics::Set, &q4, &sigma_4_1(), &schema_4_1(), &cfg()).unwrap();
        for pred in ["p", "t", "s", "r", "u"] {
            assert!(r.query.count_pred(Predicate::new(pred)) >= 1, "missing {pred}");
        }
    }

    #[test]
    fn sound_chase_fixpoints_match_paper_chain() {
        // Q3 is a fixpoint of sound bag chase; Q2 of sound bag-set chase.
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
        let rb = sound_chase(Semantics::Bag, &q3, &sigma_4_1(), &schema_4_1(), &cfg()).unwrap();
        assert!(are_isomorphic(&rb.query, &q3));
        let rbs = sound_chase(Semantics::BagSet, &q2, &sigma_4_1(), &schema_4_1(), &cfg()).unwrap();
        assert!(are_isomorphic(&rbs.query, &q2));
    }

    #[test]
    fn example_4_4_regularization_recovers_q3() {
        // Σ' = Σ - {σ2}. The non-regularized σ4 must be split so its
        // t-half can fire: sound bag chase of Q4 still reaches Q3
        // (Example 4.4/4.5 and Note 1).
        let sigma_prime = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let r = sound_chase(Semantics::Bag, &q4, &sigma_prime, &schema_4_1(), &cfg()).unwrap();
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        assert!(are_isomorphic(&r.query, &q3), "got {}", r.query);
    }

    #[test]
    fn example_4_8_sound_step_adds_both_subgoals() {
        // Q(X) :- p(X,Y), s(X,Z) with ν1/ν2 of Example 4.6: the sound
        // chase applies ν1 in its traditional form, adding a *fresh*
        // s-subgoal alongside the t-subgoal:
        // Q''(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y).
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
             t(X,Y) & t(Z,Y) -> X = Z.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
        schema.mark_set_valued(Predicate::new("s"));
        schema.mark_set_valued(Predicate::new("t"));
        let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
        let r = sound_chase(Semantics::Bag, &q, &sigma, &schema, &cfg()).unwrap();
        let expected = parse_query("qq(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y)").unwrap();
        assert!(are_isomorphic(&r.query, &expected), "got {}", r.query);
        // Under bag-set semantics the same step fires (set-valuedness not
        // required).
        let schema_bags = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
        let r2 = sound_chase(Semantics::BagSet, &q, &sigma, &schema_bags, &cfg()).unwrap();
        assert!(are_isomorphic(&r2.query, &expected), "got {}", r2.query);
        // But under bag semantics with s,t bag-valued, the step may NOT
        // fire (Theorem 4.1's set-valuedness requirement).
        let r3 = sound_chase(Semantics::Bag, &q, &sigma, &schema_bags, &cfg()).unwrap();
        assert!(are_isomorphic(&r3.query, &q), "got {}", r3.query);
    }

    #[test]
    fn egds_fire_under_all_semantics_with_correct_dedup() {
        // Duplicate subgoals over a bag relation must survive bag-chase
        // dedup (Theorem 4.1(2)); set-valued duplicates are dropped.
        let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
        let mut schema = Schema::all_bags(&[("s", 2), ("u", 2)]);
        schema.mark_set_valued(Predicate::new("s"));
        let q = parse_query("q(X) :- s(X,A), s(X,B), u(X,C), u(X,C)").unwrap();
        let r = sound_chase(Semantics::Bag, &q, &sigma, &schema, &cfg()).unwrap();
        // A/B merge; the two s-atoms collapse (set-valued), the two
        // u-atoms stay (bag-valued).
        assert_eq!(r.query.count_pred(Predicate::new("s")), 1);
        assert_eq!(r.query.count_pred(Predicate::new("u")), 2);
        // Under bag-set semantics everything dedups.
        let r2 = sound_chase(Semantics::BagSet, &q, &sigma, &schema, &cfg()).unwrap();
        assert_eq!(r2.query.count_pred(Predicate::new("u")), 1);
    }

    #[test]
    fn sound_chase_terminates_whenever_set_chase_does() {
        // Proposition 5.1 on Example 4.1's input.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        for sem in [Semantics::Set, Semantics::Bag, Semantics::BagSet] {
            let r = sound_chase(sem, &q4, &sigma_4_1(), &schema_4_1(), &cfg());
            assert!(r.is_ok(), "{sem} chase failed");
        }
    }

    #[test]
    fn order_independence_of_sound_bag_chase() {
        // Theorem 5.1: permuting Σ yields isomorphic results.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let sigma = sigma_4_1();
        let baseline =
            sound_chase(Semantics::Bag, &q4, &sigma, &schema_4_1(), &cfg()).unwrap().query;
        // Reverse the dependency order.
        let mut deps: Vec<_> = sigma.iter().cloned().collect();
        deps.reverse();
        let reversed = DependencySet::from_vec(deps);
        let alt = sound_chase(Semantics::Bag, &q4, &reversed, &schema_4_1(), &cfg()).unwrap().query;
        assert!(are_isomorphic(&baseline, &alt), "{baseline} vs {alt}");
    }
}
