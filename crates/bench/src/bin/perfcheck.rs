//! Quick engine-vs-reference smoke check (no criterion, single run each).
//!
//! ```sh
//! cargo run --release -p eqsql-bench --bin perfcheck
//! ```
//!
//! Prints wall-clock times and speedups for the `chase_scaling` cases and
//! asserts both drivers agree on step counts and terminal sizes. For the
//! committed perf trajectory use `scripts/bench_snapshot.sh`, which
//! measures medians over many samples.

use eqsql_chase::{set_chase, set_chase_reference, ChaseConfig};
use eqsql_cq::{Atom, CqQuery, Term};
use eqsql_gen::appendix_h_instance;
use std::time::Instant;

fn main() {
    let cfg = ChaseConfig { max_steps: 50_000, max_atoms: 50_000 };
    for m in [4usize, 5, 6] {
        let inst = appendix_h_instance(m);
        let t = Instant::now();
        let a = set_chase(&inst.query, &inst.sigma, &cfg).unwrap();
        let ti = t.elapsed();
        let t = Instant::now();
        let b = set_chase_reference(&inst.query, &inst.sigma, &cfg).unwrap();
        let tr = t.elapsed();
        assert_eq!(a.query.body.len(), b.query.body.len());
        assert_eq!(a.steps, b.steps);
        println!(
            "appendix_h m={m}: indexed {ti:?} reference {tr:?} speedup {:.1}x (size {})",
            tr.as_secs_f64() / ti.as_secs_f64(),
            a.query.body.len()
        );
    }
    let sigma = eqsql_deps::parse_dependencies(
        "e(X,Y) -> n(X).\ne(X,Y) -> n(Y).\nn(X) -> m(X,Z).\nm(X,Z1) & m(X,Z2) -> Z1 = Z2.",
    )
    .unwrap();
    for n in [16usize, 32] {
        let body: Vec<Atom> = (0..n)
            .map(|i| {
                Atom::new("e", vec![Term::var(&format!("X{i}")), Term::var(&format!("X{}", i + 1))])
            })
            .collect();
        let q = CqQuery::new("q", vec![Term::var("X0")], body);
        let t = Instant::now();
        let a = set_chase(&q, &sigma, &cfg).unwrap();
        let ti = t.elapsed();
        let t = Instant::now();
        let b = set_chase_reference(&q, &sigma, &cfg).unwrap();
        let tr = t.elapsed();
        assert_eq!(a.query.body.len(), b.query.body.len());
        assert_eq!(a.steps, b.steps);
        println!(
            "query_size n={n}: indexed {ti:?} reference {tr:?} speedup {:.1}x",
            tr.as_secs_f64() / ti.as_secs_f64()
        );
    }
}
