//! `loadgen` — closed/open-loop load harness over an `eqsql-serve` request
//! file, printing one JSON object for `scripts/bench_snapshot.sh`.
//!
//! ```text
//! loadgen [--workers N] [--qps Q] [--passes K] [--connect ADDR] [--drain] [FILE]
//! ```
//!
//! FILE defaults to the committed `crates/service/fixtures/equiv_batch.req`
//! fixture. The run is three phases over one solver:
//!
//! 1. **cold** closed loop — one pass over the workload against an empty
//!    chase cache, `--workers` concurrent clients (every chase is paid);
//! 2. **warm** closed loop — `--passes` more passes on the now-warm cache
//!    (the serving path: cache probes, evidence, dispatch);
//! 3. **open** loop at `--qps` over the warm cache, latency measured from
//!    each request's *scheduled* arrival (coordinated-omission-free).
//!
//! Latencies are measured in this binary around the public
//! [`Solver::decide`] call with instrumentation left **off**, so snapshot
//! deltas across PRs bound the disabled observability layer's overhead.
//! The JSON goes to stdout; a human-readable summary goes to stderr.
//!
//! With `--connect ADDR` the same three phases run against a live
//! `eqsql-serve --listen` server instead of an in-process solver: FILE's
//! verb lines are replayed over `--workers` concurrent
//! [`eqsql_net::Client`] connections (the server must have been started
//! from the same file, since it pins the schema and Σ), so the reported
//! latencies include the wire. The JSON gains a `"connect"` key;
//! `scripts/bench_snapshot.sh` stores it under `net` in
//! `BENCH_chase.json`. `--drain` asks the server to shut down gracefully
//! after the measurement.

use eqsql_bench::workloads::{request_lines, run_load, run_load_connect, LoadMode, LoadReport};
use eqsql_net::Client;
use eqsql_service::{parse_request_file, Error, Solver};
use std::process::ExitCode;

const USAGE: &str =
    "usage: loadgen [--workers N] [--qps Q] [--passes K] [--connect ADDR] [--drain] [FILE]";

fn json_phase(r: &LoadReport) -> String {
    let l = r.latency;
    format!(
        "{{\"count\":{},\"errors\":{},\"achieved_qps\":{:.1},\"mean_us\":{},\
         \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        r.issued, r.errors, r.achieved_qps, l.mean, l.p50, l.p90, l.p99, l.max
    )
}

fn main() -> ExitCode {
    let mut file = "crates/service/fixtures/equiv_batch.req".to_string();
    let mut workers = 4usize;
    let mut qps = 200.0f64;
    let mut passes = 2usize;
    let mut connect: Option<String> = None;
    let mut drain = false;
    let mut saw_file = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} wants a value"));
        let parsed = match a.as_str() {
            "--workers" => value("--workers").and_then(|v| {
                v.parse().map(|n: usize| workers = n.max(1)).map_err(|e| e.to_string())
            }),
            "--qps" => value("--qps")
                .and_then(|v| v.parse().map(|q: f64| qps = q.max(1.0)).map_err(|e| e.to_string())),
            "--passes" => value("--passes").and_then(|v| {
                v.parse().map(|k: usize| passes = k.max(1)).map_err(|e| e.to_string())
            }),
            "--connect" => value("--connect").map(|v| connect = Some(v)),
            "--drain" => {
                drain = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => Err(format!("unknown flag {other}")),
            other if !saw_file => {
                saw_file = true;
                file = other.to_string();
                Ok(())
            }
            other => Err(format!("unexpected argument {other}")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = connect {
        return run_net(&addr, &file, &text, workers, qps, passes, drain);
    }
    let parsed = match parse_request_file(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {file}: {}", Error::from(e));
            return ExitCode::FAILURE;
        }
    };
    let solver = Solver::builder(parsed.sigma, parsed.schema).chase_config(parsed.config).build();
    let n = parsed.requests.len();

    let cold = run_load(&solver, &parsed.requests, n, LoadMode::Closed { workers });
    eprintln!(
        "loadgen: cold closed loop: {} requests, {:.1} qps, p50 {}us p99 {}us",
        cold.issued, cold.achieved_qps, cold.latency.p50, cold.latency.p99
    );
    let warm = run_load(&solver, &parsed.requests, n * passes, LoadMode::Closed { workers });
    eprintln!(
        "loadgen: warm closed loop: {} requests, {:.1} qps, p50 {}us p99 {}us",
        warm.issued, warm.achieved_qps, warm.latency.p50, warm.latency.p99
    );
    let open = run_load(
        &solver,
        &parsed.requests,
        n * passes,
        LoadMode::Open { workers, target_qps: qps },
    );
    eprintln!(
        "loadgen: open loop @ {qps:.0} qps target: achieved {:.1} qps, p50 {}us p99 {}us",
        open.achieved_qps, open.latency.p50, open.latency.p99
    );

    let total_errors = cold.errors + warm.errors + open.errors;
    println!(
        "{{\"workload\":{file:?},\"requests\":{n},\"workers\":{workers},\
         \"closed\":{{\"cold\":{},\"warm\":{}}},\
         \"open\":{{\"target_qps\":{qps:.1},\"warm\":{}}}}}",
        json_phase(&cold),
        json_phase(&warm),
        json_phase(&open)
    );
    if total_errors > 0 {
        eprintln!("loadgen: {total_errors} error verdict(s) under load");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `--connect` path: the same cold/warm/open phases, but replayed
/// over client connections to a running server.
fn run_net(
    addr: &str,
    file: &str,
    text: &str,
    workers: usize,
    qps: f64,
    passes: usize,
    drain: bool,
) -> ExitCode {
    let lines = request_lines(text);
    if lines.is_empty() {
        eprintln!("loadgen: {file} has no request lines");
        return ExitCode::FAILURE;
    }
    let n = lines.len();
    let phase = |total: usize, mode: LoadMode| run_load_connect(addr, &lines, total, mode);

    let cold = match phase(n, LoadMode::Closed { workers }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loadgen: net cold closed loop: {} requests, {:.1} qps, p50 {}us p99 {}us",
        cold.issued, cold.achieved_qps, cold.latency.p50, cold.latency.p99
    );
    let warm = match phase(n * passes, LoadMode::Closed { workers }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loadgen: net warm closed loop: {} requests, {:.1} qps, p50 {}us p99 {}us",
        warm.issued, warm.achieved_qps, warm.latency.p50, warm.latency.p99
    );
    let open = match phase(n * passes, LoadMode::Open { workers, target_qps: qps }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loadgen: net open loop @ {qps:.0} qps target: achieved {:.1} qps, p50 {}us p99 {}us",
        open.achieved_qps, open.latency.p50, open.latency.p99
    );

    if drain {
        match Client::connect(addr).and_then(|mut c| c.drain()) {
            Ok(()) => eprintln!("loadgen: server draining"),
            Err(e) => {
                eprintln!("loadgen: drain: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let total_errors = cold.errors + warm.errors + open.errors;
    println!(
        "{{\"workload\":{file:?},\"connect\":{addr:?},\"requests\":{n},\"workers\":{workers},\
         \"closed\":{{\"cold\":{},\"warm\":{}}},\
         \"open\":{{\"target_qps\":{qps:.1},\"warm\":{}}}}}",
        json_phase(&cold),
        json_phase(&warm),
        json_phase(&open)
    );
    if total_errors > 0 {
        eprintln!("loadgen: {total_errors} error verdict(s) under load");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
