//! Regenerates every quantitative/behavioural claim recorded in
//! `EXPERIMENTS.md` and prints paper-expected vs measured tables.
//!
//! ```sh
//! cargo run -p eqsql-bench --bin experiments --release
//! ```

use eqsql_bench::{schema_4_1, sigma_4_1};
use eqsql_chase::{
    max_bag_set_sigma_subset, max_bag_sigma_subset, set_chase, sound_chase, ChaseConfig,
};
use eqsql_core::aggregate::sigma_agg_equivalent;
use eqsql_core::counterexample::separating_database;
use eqsql_core::Semantics;
use eqsql_cq::parse_query;
use eqsql_cq::parser::parse_aggregate_query;
use eqsql_deps::satisfaction::db_satisfies_all;
use eqsql_gen::appendix_h::{appendix_h_instance, expected_chase_size};
use eqsql_relalg::eval::{eval_bag, eval_bag_set};
use eqsql_relalg::{Database, Tuple};
use eqsql_service::{Answer, Request, RequestOpts, Solver};
use std::time::Instant;

fn header(title: &str) {
    println!("\n══════════════════════════════════════════════════════════════════");
    println!("{title}");
    println!("══════════════════════════════════════════════════════════════════");
}

fn verdict(b: bool) -> &'static str {
    if b {
        "equivalent"
    } else {
        "NOT equivalent"
    }
}

fn t1_example_4_1_matrix() {
    header("T1 — Example 4.1: equivalence matrix (paper §4.1)");
    // One Solver for the whole matrix: all nine decisions share Σ's
    // regularization and the chase-result cache.
    let solver = Solver::builder(sigma_4_1(), schema_4_1()).build();
    let queries = [
        ("Q1", "q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)"),
        ("Q2", "q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)"),
        ("Q3", "q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)"),
    ];
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    println!("{:<6} {:<16} {:<16} {:<16}", "vs Q4", "set", "bag-set", "bag");
    let expected = [
        ("Q1", "equivalent", "NOT", "NOT"),
        ("Q2", "equivalent", "equivalent", "NOT"),
        ("Q3", "equivalent", "equivalent", "equivalent"),
    ];
    for ((name, text), exp) in queries.iter().zip(expected.iter()) {
        let q = parse_query(text).unwrap();
        let decide = |sem| {
            let v = solver
                .decide(&Request::Equivalent {
                    q1: q.clone(),
                    q2: q4.clone(),
                    opts: RequestOpts::with_sem(sem),
                })
                .expect("terminating chase");
            matches!(v.answer, Answer::Equivalent { .. })
        };
        let s = decide(Semantics::Set);
        let bs = decide(Semantics::BagSet);
        let b = decide(Semantics::Bag);
        println!(
            "{:<6} {:<16} {:<16} {:<16}   (paper: {}/{}/{})",
            name,
            verdict(s),
            verdict(bs),
            verdict(b),
            exp.1,
            exp.2,
            exp.3
        );
    }

    println!("\nSound chase chain of Q4 (paper: (Q4)Σ,S≅Q1ᶜ, (Q4)Σ,BS=Q2, (Q4)Σ,B=Q3):");
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        let r =
            sound_chase(sem, &q4, solver.sigma(), solver.schema(), solver.chase_config()).unwrap();
        println!("  (Q4)Σ,{sem:<3} = {}", r.query);
    }

    println!("\nCounterexample database D (paper p.5):");
    let db = Database::new()
        .with_ints("p", &[[1, 2]])
        .with_ints("r", &[[1]])
        .with_ints("s", &[[1, 3]])
        .with_ints("t", &[[1, 2, 4]])
        .with_ints("u", &[[1, 5], [1, 6]]);
    assert!(db_satisfies_all(&db, solver.sigma()));
    let q1 = parse_query(queries[0].1).unwrap();
    println!("  Q4(D,B)  = {}   (paper: {{{{(1)}}}})", eval_bag(&q4, &db));
    println!("  Q1(D,B)  = {}   (paper: {{{{(1), (1)}}}})", eval_bag(&q1, &db));
    println!("  Q1(D,BS) = {}", eval_bag_set(&q1, &db).unwrap());
}

fn t2_appendix_h() {
    header("T2 — Appendix H / Theorem 5.2: chase size exponential in |Σ|");
    println!(
        "{:>3} {:>6} {:>12} {:>12} {:>10} {:>12}",
        "m", "|Σ|", "chase atoms", "closed form", "steps", "time"
    );
    let cfg = ChaseConfig { max_steps: 100_000, max_atoms: 100_000 };
    for m in 1..=6 {
        let inst = appendix_h_instance(m);
        let t0 = Instant::now();
        let r = set_chase(&inst.query, &inst.sigma, &cfg).unwrap();
        let dt = t0.elapsed();
        println!(
            "{:>3} {:>6} {:>12} {:>12} {:>10} {:>12}",
            m,
            inst.sigma.len(),
            r.query.body.len(),
            expected_chase_size(m),
            r.steps,
            format!("{dt:.2?}")
        );
        assert_eq!(r.query.body.len(), expected_chase_size(m));
    }
    println!("growth ratio tends to 1+√2 ≈ 2.414 (Pell recurrence); |Σ| is quadratic in m.");
}

fn t3_max_subsets() {
    header("T3 — Theorem 5.3 / Prop 5.2: Max-Σ-Subset chain on Example 4.1");
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let cfg = ChaseConfig::default();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let b = max_bag_sigma_subset(&q4, &sigma, &schema, &cfg).unwrap();
    let bs = max_bag_set_sigma_subset(&q4, &sigma, &schema, &cfg).unwrap();
    println!("|Σ| = {}", sigma.len());
    println!("|Σ^max_BS(Q4,Σ)| = {}  (paper: drops σ4)", bs.subset.len());
    println!("|Σ^max_B (Q4,Σ)| = {}  (paper: drops σ3, σ4)", b.subset.len());
    for d in sigma.iter() {
        let in_b = b.subset.contains(d);
        let in_bs = bs.subset.contains(d);
        println!("  [{}|{}] {d}", if in_b { "B " } else { "  " }, if in_bs { "BS" } else { "  " });
    }
    assert!(b.subset.len() < bs.subset.len() && bs.subset.len() < sigma.len());
}

fn t4_cnb() {
    header("T4 — C&B family on Example 4.1 (Theorems A.1/6.4/K.1)");
    let solver = Solver::builder(sigma_4_1(), schema_4_1()).build();
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    println!("input: {q1}");
    println!("{:<8} {:>10} {:>12}  Σ-minimal reformulations", "sem", "candidates", "reformuls");
    let expected = [
        (Semantics::Set, "q(X) :- p(X,Y)"),
        (Semantics::BagSet, "q(X) :- p(X,Y), u(X,U)"),
        (Semantics::Bag, "q(X) :- p(X,Y), r(X), u(X,U)"),
    ];
    for (sem, exp) in expected {
        let t0 = Instant::now();
        let v = solver
            .decide(&Request::Reformulate { q: q1.clone(), opts: RequestOpts::with_sem(sem) })
            .expect("terminating chase");
        let dt = t0.elapsed();
        let Answer::Reformulated { reformulations, candidates_tested, .. } = v.answer else {
            unreachable!("Reformulate answers Reformulated")
        };
        let rendered: Vec<String> = reformulations.iter().map(|q| q.to_string()).collect();
        println!(
            "{:<8} {:>10} {:>12}  {:?}  [{dt:.2?}]  (expected shape: {exp})",
            sem.to_string(),
            candidates_tested,
            reformulations.len(),
            rendered
        );
    }
}

fn t5_counterexample_search() {
    header("T5 — counterexample construction (Thm 4.1 case 2 / Lemma D.1)");
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let cfg = ChaseConfig::default();
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    for sem in [Semantics::Bag, Semantics::BagSet] {
        match separating_database(sem, &q1, &q4, &sigma, &schema, &cfg) {
            Some(db) => {
                println!("{sem}: witness found (|D| = {} tuples):", db.len());
                print!("{db}");
            }
            None => println!("{sem}: NO witness found (unexpected)"),
        }
    }
    println!(
        "set: {}",
        match separating_database(Semantics::Set, &q1, &q4, &sigma, &schema, &cfg) {
            Some(_) => "witness found (UNEXPECTED — they are set-equivalent)",
            None => "no witness (correct: Q1 ≡_Σ,S Q4)",
        }
    );
}

fn t6_aggregates() {
    header("T6 — aggregate equivalence (Theorems 2.3/6.3)");
    let sigma = eqsql_deps::parse_dependencies(
        "emp(I,D,S) -> dept(D).\n\
         emp(I1,D1,S1) & emp(I1,D2,S2) -> D1 = D2.",
    )
    .unwrap();
    let mut schema = eqsql_relalg::Schema::all_bags(&[("emp", 3), ("dept", 1), ("audit", 1)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("emp"));
    schema.mark_set_valued(eqsql_cq::Predicate::new("dept"));
    let cfg = ChaseConfig::default();
    let cases = [
        (
            "max ± dept join",
            "m(D, max(S)) :- emp(I,D,S)",
            "m(D, max(S)) :- emp(I,D,S), dept(D)",
            true,
        ),
        (
            "sum ± dept join",
            "t(D, sum(S)) :- emp(I,D,S)",
            "t(D, sum(S)) :- emp(I,D,S), dept(D)",
            true,
        ),
        (
            "max ± audit join",
            "m(D, max(S)) :- emp(I,D,S)",
            "m(D, max(S)) :- emp(I,D,S), audit(I)",
            false,
        ),
        (
            "sum ± dup emp",
            "t(D, sum(S)) :- emp(I,D,S)",
            "t(D, sum(S)) :- emp(I,D,S), emp(I,D,S)",
            true,
        ),
        (
            "count ± extra emp join",
            "c(D, count(*)) :- emp(I,D,S)",
            "c(D, count(*)) :- emp(I,D,S), emp(I2,D,S2)",
            false,
        ),
    ];
    for (name, a, b, expected) in cases {
        let qa = parse_aggregate_query(a).unwrap();
        let qb = parse_aggregate_query(b).unwrap();
        let v = sigma_agg_equivalent(&qa, &qb, &sigma, &schema, &cfg);
        println!(
            "{name:<24} -> {:<16} (expected: {})",
            verdict(v.is_equivalent()),
            verdict(expected)
        );
        assert_eq!(v.is_equivalent(), expected, "{name}");
    }
}

fn t7_lemma_d1() {
    header("T7 — Lemma D.1 / Example D.2: the m-copy amplification");
    use eqsql_core::counterexample::{amplify, lemma_d1_database, lemma_d1_m_star};
    let q7 = parse_query("q7(X) :- p(X,Y), r(X), r(X)").unwrap();
    let q8 = parse_query("q8(X) :- p(X,Y), r(X)").unwrap();
    let r = eqsql_cq::Predicate::new("r");
    let m_star = lemma_d1_m_star(&q7, &q8, r);
    println!("m* bound for (Q7, Q8, R) = {m_star} (paper's Example D.2: 4m < m² needs m > 4)");
    println!("{:>4} {:>10} {:>10}", "m", "Q7 mult", "Q8 mult");
    let base = lemma_d1_database(&q8, r, 1);
    for m in [2u64, 4, m_star, m_star + 3] {
        let db = amplify(&base, r, m);
        let a7 = eval_bag(&q7, &db);
        let a8 = eval_bag(&q8, &db);
        let t = a8.core_set().next().unwrap().clone();
        println!("{m:>4} {:>10} {:>10}", a7.multiplicity(&t), a8.multiplicity(&t));
        assert_eq!(a7.multiplicity(&t), m * m);
        assert_eq!(a8.multiplicity(&t), m);
    }
}

fn t8_engine_sanity() {
    header("T8 — evaluation engine sanity (bag ≠ bag-set ≠ set on one D)");
    let db = Database::new().with_ints("p", &[[1, 2], [1, 3]]);
    let q = parse_query("q(X) :- p(X,Y)").unwrap();
    println!("D: p = {{(1,2), (1,3)}}");
    println!("Q(D,S)  = {}", eqsql_relalg::eval::eval_set(&q, &db).unwrap());
    println!("Q(D,BS) = {}", eval_bag_set(&q, &db).unwrap());
    let mut bag_db = Database::new();
    bag_db.insert("p", Tuple::ints([1, 2]), 3);
    println!("D': p = 3 copies of (1,2)");
    println!("Q(D',B) = {}", eval_bag(&q, &bag_db));
}

fn main() {
    println!("eqsql experiments — paper-vs-measured for Chirkova & Genesereth (PODS 2009)");
    let t0 = Instant::now();
    t1_example_4_1_matrix();
    t2_appendix_h();
    t3_max_subsets();
    t4_cnb();
    t5_counterexample_search();
    t6_aggregates();
    t7_lemma_d1();
    t8_engine_sanity();
    println!(
        "\nall experiment tables regenerated in {:.2?}; every inline assertion held.",
        t0.elapsed()
    );
}
