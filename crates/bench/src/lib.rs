//! Shared fixtures for benchmarks and the experiments binary.

pub mod workloads;

use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_relalg::Schema;

/// Σ of Example 4.1 (tgds σ1–σ4, key egds σ7/σ8).
pub fn sigma_4_1() -> DependencySet {
    parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
         p(X,Y) -> t(X,Y,W).\n\
         p(X,Y) -> r(X).\n\
         p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
         s(X,Y) & s(X,Z) -> Y = Z.\n\
         t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
    )
    .expect("Σ parses")
}

/// Schema of Example 4.1 with S, T set-enforced.
pub fn schema_4_1() -> Schema {
    let mut s = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
    s.mark_set_valued(eqsql_cq::Predicate::new("s"));
    s.mark_set_valued(eqsql_cq::Predicate::new("t"));
    s
}
