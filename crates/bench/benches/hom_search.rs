//! Homomorphism-search benchmarks: the planned, trail-based matcher
//! against the naive backtracking oracle, on the shapes the chase
//! actually produces.
//!
//! * `hom_search/appendix_h/{planned,reference}/m=…`: premise searches of
//!   the Appendix H family's dependencies against the (exponential)
//!   terminal chase body — the raw search layer, one compiled plan reused
//!   across every dependency check vs a per-call `HashMap`-backed
//!   backtrack.
//! * `hom_search/chain/{delta,indexed,reference}/n=…`: the non-weakly-
//!   acyclic budget-exhaustion chain `e(X,Y) -> e(Y,Z)` chased for `n`
//!   steps. The applicable homomorphism always lives at the newest atom;
//!   the delta-seeded engine finds it without rescanning the old ones, so
//!   its speedup over both drivers must **grow** with `n` (asymptotic,
//!   not constant-factor — `scripts/bench_snapshot.sh` snapshots this
//!   into `BENCH_chase.json`'s `hom_search` section).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_chase::reference::set_chase_reference;
use eqsql_chase::{set_chase, set_chase_opts, ChaseConfig, ChaseError, EngineOpts};
use eqsql_cq::matcher::{bucket_atoms, reference, MatchPlan, Seed, Target};
use eqsql_cq::{parse_query, Subst};
use eqsql_gen::appendix_h_instance;
use std::hint::black_box;

fn bench_appendix_h_search(c: &mut Criterion) {
    let cfg = ChaseConfig { max_steps: 50_000, max_atoms: 50_000 };
    let mut group = c.benchmark_group("hom_search/appendix_h");
    group.sample_size(10);
    for m in [3usize, 4, 5] {
        let inst = appendix_h_instance(m);
        let terminal = set_chase(&inst.query, &inst.sigma, &cfg).unwrap().query;
        let premises: Vec<&[eqsql_cq::Atom]> = inst.sigma.iter().map(|d| d.lhs()).collect();
        let plans: Vec<MatchPlan> = premises.iter().map(|p| MatchPlan::new(p)).collect();
        let buckets = bucket_atoms(&terminal.body);
        group.bench_with_input(BenchmarkId::new("planned", m), &terminal, |b, t| {
            b.iter(|| {
                let target = Target::new(&t.body, &buckets);
                let mut found = 0usize;
                for plan in &plans {
                    if plan.first_match(target, &Seed::Empty).is_some() {
                        found += 1;
                    }
                }
                black_box(found)
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", m), &terminal, |b, t| {
            b.iter(|| {
                let mut found = 0usize;
                for p in &premises {
                    if reference::extend_homomorphism(p, &t.body, &Subst::new()).is_some() {
                        found += 1;
                    }
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

fn bench_chain_budget(c: &mut Criterion) {
    let q = parse_query("q(X) :- e(X,Y)").unwrap();
    let sigma = eqsql_deps::parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
    let mut group = c.benchmark_group("hom_search/chain");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let cfg = ChaseConfig { max_steps: n, max_atoms: 1_000_000 };
        group.bench_with_input(BenchmarkId::new("delta", n), &cfg, |b, cfg| {
            b.iter(|| {
                let err = set_chase_opts(black_box(&q), &sigma, cfg, &EngineOpts::delta_seeded())
                    .unwrap_err();
                assert!(matches!(err, ChaseError::BudgetExhausted { .. }));
                black_box(err)
            })
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &cfg, |b, cfg| {
            b.iter(|| {
                let err = set_chase(black_box(&q), &sigma, cfg).unwrap_err();
                black_box(err)
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &cfg, |b, cfg| {
            b.iter(|| {
                let err = set_chase_reference(black_box(&q), &sigma, cfg).unwrap_err();
                black_box(err)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_appendix_h_search, bench_chain_budget);
criterion_main!(benches);
