//! Batched Σ-equivalence service: cold vs warm chase-result cache.
//!
//! Workload: the C&B-style repeated-subquery stream on Example 4.1 — every
//! safe subquery of Q1's universal-plan body paired against Q4 (under set
//! and bag-set semantics), plus an α-renamed copy of each pair. This is
//! exactly what the backchase issues: many structurally overlapping
//! candidates re-chased over one fixed Σ, with Q4 recurring in every pair.
//!
//! * `cold/<threads>` — fresh cache per iteration: every distinct α-class
//!   is chased once, repeats within the batch already hit.
//! * `warm/<threads>` — cache pre-populated by an untimed run: the batch
//!   is served entirely from canonical-key lookups + replay.
//!
//! `scripts/bench_snapshot.sh` records both medians and their ratio in
//! `BENCH_chase.json` (`batch_speedups`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_bench::workloads::{repeated_subquery_pairs, workload_schema, workload_sigma};
use eqsql_chase::ChaseConfig;
use eqsql_service::BatchSession;
use std::hint::black_box;

fn bench_equiv_batch(c: &mut Criterion) {
    let sigma = workload_sigma();
    let schema = workload_schema();
    let config = ChaseConfig::default();
    let pairs = repeated_subquery_pairs();
    let mut group = c.benchmark_group("equiv_batch/cnb_repeated");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, &t| {
            b.iter(|| {
                let session =
                    BatchSession::new(sigma.clone(), schema.clone(), config).with_threads(t);
                black_box(session.run(&pairs))
            })
        });
        let warm = BatchSession::new(sigma.clone(), schema.clone(), config).with_threads(threads);
        warm.run(&pairs); // populate the cache, untimed
        group.bench_with_input(BenchmarkId::new("warm", threads), &threads, |b, _| {
            b.iter(|| black_box(warm.run(&pairs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equiv_batch);
criterion_main!(benches);
