//! Batched Σ-equivalence service: cold vs warm chase-result cache.
//!
//! Workload: the C&B-style repeated-subquery stream on Example 4.1 — every
//! safe subquery of Q1's universal-plan body paired against Q4 (under set
//! and bag-set semantics), plus an α-renamed copy of each pair. This is
//! exactly what the backchase issues: many structurally overlapping
//! candidates re-chased over one fixed Σ, with Q4 recurring in every pair.
//!
//! * `cold/<threads>` — fresh cache per iteration: every distinct α-class
//!   is chased once, repeats within the batch already hit.
//! * `warm/<threads>` — cache pre-populated by an untimed run: the batch
//!   is served entirely from canonical-key lookups + replay.
//!
//! `scripts/bench_snapshot.sh` records both medians and their ratio in
//! `BENCH_chase.json` (`batch_speedups`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_bench::{schema_4_1, sigma_4_1};
use eqsql_chase::ChaseConfig;
use eqsql_cq::{parse_query, CqQuery};
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_gen::rename_isomorphic;
use eqsql_relalg::{Schema, Semantics};
use eqsql_service::{BatchSession, EquivRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Example 4.1's Σ deepened with inclusion chains off `r` and `u` — the
/// depth a real universal plan accumulates — so every candidate touching
/// `r`/`u` chases through several more strata.
fn workload_sigma() -> DependencySet {
    let mut sigma = sigma_4_1();
    let chains = parse_dependencies(
        "r(X) -> r1(X,A).\n\
         r1(X,A) -> r2(A,B).\n\
         r2(A,B) -> r3(B).\n\
         u(X,Z) -> u1(Z,C).\n\
         u1(Z,C) -> u2(C).",
    )
    .expect("chains parse");
    for d in chains.iter() {
        sigma.push(d.clone());
    }
    sigma
}

fn workload_schema() -> Schema {
    let mut schema = schema_4_1();
    for (name, arity) in [("r1", 2), ("r2", 2), ("r3", 1), ("u1", 2), ("u2", 1)] {
        schema.add(eqsql_relalg::RelSchema::bag(name, arity));
    }
    schema
}

/// Every safe subquery of Q1's body vs Q4, twice (α-renamed), per
/// semantics — 118 pairs.
fn repeated_subquery_pairs() -> Vec<EquivRequest> {
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    let n = q1.body.len();
    let mut pairs = Vec::new();
    for mask in 1u32..(1 << n) {
        let body: Vec<_> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| q1.body[i].clone()).collect();
        let candidate = CqQuery { name: q1.name, head: q1.head.clone(), body };
        if !candidate.is_safe() {
            continue;
        }
        for sem in [Semantics::Set, Semantics::BagSet] {
            pairs.push(EquivRequest { sem, q1: candidate.clone(), q2: q4.clone() });
            pairs.push(EquivRequest {
                sem,
                q1: rename_isomorphic(&mut rng, &candidate),
                q2: rename_isomorphic(&mut rng, &q4),
            });
        }
    }
    pairs
}

fn bench_equiv_batch(c: &mut Criterion) {
    let sigma = workload_sigma();
    let schema = workload_schema();
    let config = ChaseConfig::default();
    let pairs = repeated_subquery_pairs();
    let mut group = c.benchmark_group("equiv_batch/cnb_repeated");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, &t| {
            b.iter(|| {
                let session =
                    BatchSession::new(sigma.clone(), schema.clone(), config).with_threads(t);
                black_box(session.run(&pairs))
            })
        });
        let warm = BatchSession::new(sigma.clone(), schema.clone(), config).with_threads(threads);
        warm.run(&pairs); // populate the cache, untimed
        group.bench_with_input(BenchmarkId::new("warm", threads), &threads, |b, _| {
            b.iter(|| black_box(warm.run(&pairs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equiv_batch);
criterion_main!(benches);
