//! E15 — the evaluation engine: naive assignment enumeration vs the
//! operator-algebra planner, under the three semantics, as data grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eqsql_cq::parse_query;
use eqsql_gen::db::{random_database, DbParams};
use eqsql_relalg::eval::{eval, Semantics};
use eqsql_relalg::ops::execute_query;
use eqsql_relalg::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let schema = Schema::all_bags(&[("p", 2), ("s", 2), ("r", 1)]);
    let q = parse_query("q(X,Z) :- p(X,Y), s(Y,Z), r(X)").unwrap();
    let mut group = c.benchmark_group("eval/join3");
    for n in [50usize, 200, 800] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_database(
            &mut rng,
            &schema,
            &DbParams {
                tuples_per_relation: n,
                domain: (n as i64 / 4).max(4),
                dup_prob: 0.2,
                max_mult: 3,
            },
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("naive_bag", n), &db, |b, db| {
            b.iter(|| black_box(eval(&q, db, Semantics::Bag).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("planned_bag", n), &db, |b, db| {
            b.iter(|| black_box(execute_query(&q, db, Semantics::Bag).unwrap().len()))
        });
        let set_db = db.to_set();
        group.bench_with_input(BenchmarkId::new("naive_bag_set", n), &set_db, |b, db| {
            b.iter(|| black_box(eval(&q, db, Semantics::BagSet).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("planned_bag_set", n), &set_db, |b, db| {
            b.iter(|| black_box(execute_query(&q, db, Semantics::BagSet).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("planned_set", n), &set_db, |b, db| {
            b.iter(|| black_box(execute_query(&q, db, Semantics::Set).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_aggregate_eval(c: &mut Criterion) {
    use eqsql_cq::parser::parse_aggregate_query;
    use eqsql_relalg::aggregate::eval_aggregate;
    let schema = Schema::all_sets(&[("emp", 3)]);
    let q = parse_aggregate_query("q(D, sum(S)) :- emp(I, D, S)").unwrap();
    let mut group = c.benchmark_group("eval/aggregate");
    for n in [100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_database(
            &mut rng,
            &schema,
            &DbParams { tuples_per_relation: n, domain: n as i64, dup_prob: 0.0, max_mult: 1 },
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| black_box(eval_aggregate(&q, db).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval, bench_aggregate_eval);
criterion_main!(benches);
