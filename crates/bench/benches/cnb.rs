//! E13 — the C&B family: reformulation cost per semantics on Example 4.1
//! and on a foreign-key chain whose universal plan grows with depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_bench::{schema_4_1, sigma_4_1};
use eqsql_chase::ChaseConfig;
use eqsql_core::cnb::{cnb_via, CnbOptions};
use eqsql_core::DirectChaser;
use eqsql_core::Semantics;
use eqsql_cq::parse_query;
use eqsql_deps::parse_dependencies;
use eqsql_relalg::Schema;
use std::hint::black_box;

fn bench_example_4_1(c: &mut Criterion) {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let cfg = ChaseConfig::default();
    let opts = CnbOptions::default();
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let mut group = c.benchmark_group("cnb/example_4_1");
    group.sample_size(10);
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        group.bench_function(BenchmarkId::from_parameter(sem), |b| {
            b.iter(|| {
                let r = cnb_via(&DirectChaser, sem, black_box(&q1), &sigma, &schema, &cfg, &opts)
                    .unwrap();
                black_box(r.reformulations.len())
            })
        });
    }
    group.finish();
}

/// FK chain t1 -> t2 -> ... -> tk, all keyed and set-valued: the universal
/// plan of a query over t1 grows linearly with k, the backchase
/// exponentially.
fn fk_chain(k: usize) -> (eqsql_deps::DependencySet, Schema) {
    let mut text = String::new();
    for i in 1..k {
        text.push_str(&format!("t{i}(X,Y) -> t{}(Y,Z).\n", i + 1));
    }
    for i in 1..=k {
        text.push_str(&format!("t{i}(X,Y1) & t{i}(X,Y2) -> Y1 = Y2.\n"));
    }
    let sigma = parse_dependencies(&text).unwrap();
    let mut schema = Schema::new();
    for i in 1..=k {
        schema.add(eqsql_relalg::RelSchema::set(&format!("t{i}"), 2));
    }
    (sigma, schema)
}

fn bench_fk_chain(c: &mut Criterion) {
    let cfg = ChaseConfig::default();
    let opts = CnbOptions::default();
    let mut group = c.benchmark_group("cnb/fk_chain");
    group.sample_size(10);
    for k in [2usize, 4, 6, 8] {
        let (sigma, schema) = fk_chain(k);
        let q = parse_query("q(X) :- t1(X,Y)").unwrap();
        for sem in [Semantics::Set, Semantics::Bag] {
            group.bench_with_input(
                BenchmarkId::new(format!("{sem}"), k),
                &(sigma.clone(), schema.clone(), q.clone()),
                |b, (sigma, schema, q)| {
                    b.iter(|| {
                        let r =
                            cnb_via(&DirectChaser, sem, black_box(q), sigma, schema, &cfg, &opts)
                                .unwrap();
                        black_box(r.candidates_tested)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_example_4_1, bench_fk_chain);
criterion_main!(benches);
