//! Columnar-arena vs boxed matcher benchmarks.
//!
//! Measures the search layer the chase engine actually sits on, with the
//! storage representation as the only variable:
//!
//! * `arena/appendix_h/{columnar,boxed}/m=…` — enumerate every premise
//!   match of each Appendix H dependency against the family's terminal
//!   chase body. `columnar` compiles [`ArenaPlan`]s against a
//!   [`BodyIndex`]'s [`TermArena`] (u32 ids, per-position column sweeps,
//!   reusable frames); `boxed` runs the [`MatchPlan`] matcher over the
//!   boxed `Vec<Atom>` body with per-emit `Subst` views.
//! * `arena/chain/{columnar,boxed}/n=…` — the same comparison on the
//!   budget-chain shape `e(X,Y)` scanned over an `n`-atom chain body:
//!   a pure column sweep where per-candidate pointer chasing is the
//!   entire cost difference.
//!
//! `scripts/bench_snapshot.sh` records the medians under the `arena` key
//! of `BENCH_chase.json` and gates `set_chase`/`hom_search` regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_chase::{set_chase, BodyIndex, ChaseConfig};
use eqsql_cq::matcher::{bucket_atoms, MatchPlan, Seed, Target};
use eqsql_cq::{parse_query, ArenaFrame, ArenaPlan, Atom, CqQuery};
use eqsql_gen::appendix_h_instance;
use std::hint::black_box;

/// Counts all premise matches of every plan, columnar side.
fn count_columnar(index: &BodyIndex, plans: &[ArenaPlan], frame: &mut ArenaFrame) -> usize {
    let mut count = 0usize;
    for plan in plans {
        frame.reset(plan.slot_count());
        plan.search(index.arena(), frame, &mut |_| {
            count += 1;
            true
        });
    }
    black_box(count)
}

/// Counts all premise matches of every plan, boxed side.
fn count_boxed(body: &[Atom], plans: &[MatchPlan]) -> usize {
    let buckets = bucket_atoms(body);
    let target = Target::new(body, &buckets);
    let mut count = 0usize;
    for plan in plans {
        plan.search(target, &Seed::Empty, &mut |_| {
            count += 1;
            true
        });
    }
    black_box(count)
}

fn bench_appendix_h(c: &mut Criterion) {
    let cfg = ChaseConfig { max_steps: 50_000, max_atoms: 50_000 };
    let mut group = c.benchmark_group("arena/appendix_h");
    group.sample_size(10);
    for m in [2usize, 3, 4, 5, 6] {
        let inst = appendix_h_instance(m);
        let terminal = set_chase(&inst.query, &inst.sigma, &cfg).unwrap().query;
        let premises: Vec<&[Atom]> = inst.sigma.iter().map(|d| d.lhs()).collect();

        let mut index = BodyIndex::new(&terminal.body);
        let arena_plans: Vec<ArenaPlan> =
            premises.iter().map(|p| ArenaPlan::new(p, index.arena_mut())).collect();
        let mut frame = ArenaFrame::new();
        let boxed_plans: Vec<MatchPlan> = premises.iter().map(|p| MatchPlan::new(p)).collect();

        let expect = count_boxed(&terminal.body, &boxed_plans);
        assert_eq!(count_columnar(&index, &arena_plans, &mut frame), expect);

        group.bench_with_input(BenchmarkId::new("columnar", m), &expect, |b, expect| {
            b.iter(|| {
                let n = count_columnar(&index, &arena_plans, &mut frame);
                assert_eq!(n, *expect);
                n
            })
        });
        group.bench_with_input(BenchmarkId::new("boxed", m), &terminal, |b, t| {
            b.iter(|| count_boxed(&t.body, &boxed_plans))
        });
    }
    group.finish();
}

fn chain_query(n: usize) -> CqQuery {
    let mut s = String::from("q(X0) :- ");
    for i in 0..n {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("e(X{i},X{})", i + 1));
    }
    parse_query(&s).unwrap()
}

fn bench_chain(c: &mut Criterion) {
    let sigma = eqsql_deps::parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
    let premises: Vec<&[Atom]> = sigma.iter().map(|d| d.lhs()).collect();
    let mut group = c.benchmark_group("arena/chain");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let q = chain_query(n);

        let mut index = BodyIndex::new(&q.body);
        let arena_plans: Vec<ArenaPlan> =
            premises.iter().map(|p| ArenaPlan::new(p, index.arena_mut())).collect();
        let mut frame = ArenaFrame::new();
        let boxed_plans: Vec<MatchPlan> = premises.iter().map(|p| MatchPlan::new(p)).collect();

        let expect = count_boxed(&q.body, &boxed_plans);
        assert_eq!(count_columnar(&index, &arena_plans, &mut frame), expect);

        group.bench_with_input(BenchmarkId::new("columnar", n), &expect, |b, expect| {
            b.iter(|| {
                let c = count_columnar(&index, &arena_plans, &mut frame);
                assert_eq!(c, *expect);
                c
            })
        });
        group.bench_with_input(BenchmarkId::new("boxed", n), &q, |b, q| {
            b.iter(|| count_boxed(&q.body, &boxed_plans))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_appendix_h, bench_chain);
criterion_main!(benches);
