//! E10 — the Max-Σ-Subset algorithms (Algorithms 1–2 / Theorem 5.4):
//! runtime on Example 4.1 and as |Σ| grows (per the theorem: polynomial
//! in |Q|, exponential in |Σ| in the worst case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_bench::{schema_4_1, sigma_4_1};
use eqsql_chase::{max_bag_set_sigma_subset, max_bag_sigma_subset, ChaseConfig};
use eqsql_cq::parse_query;
use eqsql_gen::appendix_h_instance;
use std::hint::black_box;

fn bench_example_4_1(c: &mut Criterion) {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let cfg = ChaseConfig::default();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let mut group = c.benchmark_group("max_subset/example_4_1");
    group.bench_function("bag", |b| {
        b.iter(|| {
            let r = max_bag_sigma_subset(black_box(&q4), &sigma, &schema, &cfg).unwrap();
            black_box(r.subset.len())
        })
    });
    group.bench_function("bag_set", |b| {
        b.iter(|| {
            let r = max_bag_set_sigma_subset(black_box(&q4), &sigma, &schema, &cfg).unwrap();
            black_box(r.subset.len())
        })
    });
    group.finish();
}

fn bench_growing_sigma(c: &mut Criterion) {
    let cfg = ChaseConfig { max_steps: 50_000, max_atoms: 50_000 };
    let mut group = c.benchmark_group("max_subset/appendix_h");
    group.sample_size(10);
    for m in [2usize, 3, 4] {
        let inst = appendix_h_instance(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| {
                let r =
                    max_bag_sigma_subset(black_box(&inst.query), &inst.sigma, &inst.schema, &cfg)
                        .unwrap();
                black_box(r.subset.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_example_4_1, bench_growing_sigma);
criterion_main!(benches);
