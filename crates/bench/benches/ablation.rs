//! Ablations called out in DESIGN.md §6:
//!
//! * **regularization**: chasing with the regularized Σ vs the raw Σ — the
//!   sound bag chase finds strictly more sound steps when Σ is
//!   regularized (Example 4.4/4.5), at a small regularization cost;
//! * **admission criterion**: assignment-fixing (the paper's, Def 4.3) vs
//!   key-basedness (Deutsch's UWDs, Def 5.1) — the key-based filter is
//!   cheaper per step but strictly weaker (misses Example 4.8's step).

use criterion::{criterion_group, criterion_main, Criterion};
use eqsql_chase::assignment_fixing::is_assignment_fixing_wrt_query;
use eqsql_chase::{is_key_based, sound_chase, ChaseConfig};
use eqsql_core::Semantics;
use eqsql_cq::parse_query;
use eqsql_deps::parse_dependencies;
use eqsql_deps::regularize::regularize_set;
use eqsql_relalg::Schema;
use std::hint::black_box;

fn bench_regularization(c: &mut Criterion) {
    let sigma = eqsql_bench::sigma_4_1();
    let mut group = c.benchmark_group("ablation/regularize");
    group.bench_function("regularize_set", |b| {
        b.iter(|| black_box(regularize_set(black_box(&sigma)).len()))
    });
    // Sound bag chase (regularizes internally) of Q4 — the baseline the
    // non-regularized variant cannot match (it would miss the t-subgoal).
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let schema = eqsql_bench::schema_4_1();
    let cfg = ChaseConfig::default();
    group.bench_function("sound_bag_chase_q4", |b| {
        b.iter(|| {
            let r = sound_chase(Semantics::Bag, black_box(&q4), &sigma, &schema, &cfg).unwrap();
            black_box(r.query.body.len())
        })
    });
    group.finish();
}

fn bench_admission_criteria(c: &mut Criterion) {
    // ν1 of Example 4.8: assignment-fixing but NOT key-based. Measure the
    // cost of each verdict.
    let sigma = parse_dependencies(
        "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
         t(X,Y) & t(Z,Y) -> X = Z.",
    )
    .unwrap();
    let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
    schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
    schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
    let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
    let nu1 = sigma.tgds().next().unwrap().clone();
    let cfg = ChaseConfig::default();

    let mut group = c.benchmark_group("ablation/admission");
    group.bench_function("assignment_fixing_check", |b| {
        b.iter(|| {
            let v = is_assignment_fixing_wrt_query(black_box(&q), &sigma, &nu1, &cfg).unwrap();
            assert_eq!(v, Some(true)); // the paper's criterion admits it
            black_box(v)
        })
    });
    group.bench_function("key_based_check", |b| {
        b.iter(|| {
            let v = is_key_based(black_box(&nu1), &sigma, &schema);
            assert!(!v); // the UWD criterion misses it
            black_box(v)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_regularization, bench_admission_criteria);
criterion_main!(benches);
