//! E9 — chase complexity (Theorem 5.2 and Appendix H).
//!
//! * `appendix_h/m=…`: the paper's lower-bound family — chase size (and
//!   time) grows exponentially in the schema size m (|Σ| quadratic in m);
//! * `query_size/n=…`: fixed small Σ, growing query — polynomial in |Q|.
//!
//! Each case is measured on both drivers: `set_chase` (the incremental
//! indexed engine) and `set_chase_reference` (the naive restart-scan
//! oracle). `scripts/bench_snapshot.sh` snapshots the medians into
//! `BENCH_chase.json` to track the engine's speedup over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_chase::{set_chase, set_chase_reference, sound_chase, ChaseConfig};
use eqsql_cq::{Atom, CqQuery, Term};
use eqsql_deps::parse_dependencies;
use eqsql_gen::appendix_h_instance;
use eqsql_relalg::Semantics;
use std::hint::black_box;

fn bench_appendix_h(c: &mut Criterion) {
    let cfg = ChaseConfig { max_steps: 50_000, max_atoms: 50_000 };
    let mut group = c.benchmark_group("chase_scaling/appendix_h");
    group.sample_size(10);
    for m in [2usize, 3, 4, 5, 6] {
        let inst = appendix_h_instance(m);
        group.bench_with_input(BenchmarkId::new("set_chase", m), &inst, |b, inst| {
            b.iter(|| {
                let r = set_chase(black_box(&inst.query), &inst.sigma, &cfg).unwrap();
                black_box(r.query.body.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("set_chase_reference", m), &inst, |b, inst| {
            b.iter(|| {
                let r = set_chase_reference(black_box(&inst.query), &inst.sigma, &cfg).unwrap();
                black_box(r.query.body.len())
            })
        });
        if m <= 4 {
            // The sound bag chase re-verifies assignment-fixing per step:
            // same exponential output, higher constant.
            group.bench_with_input(BenchmarkId::new("sound_bag_chase", m), &inst, |b, inst| {
                b.iter(|| {
                    let r = sound_chase(
                        Semantics::Bag,
                        black_box(&inst.query),
                        &inst.sigma,
                        &inst.schema,
                        &cfg,
                    )
                    .unwrap();
                    black_box(r.query.body.len())
                })
            });
        }
    }
    group.finish();
}

/// A chain query q(X0) :- e(X0,X1), ..., e(X_{n-1},X_n) chased with a
/// 2-dependency Σ: polynomial growth in |Q|.
fn chain_query(n: usize) -> CqQuery {
    let body: Vec<Atom> = (0..n)
        .map(|i| {
            Atom::new("e", vec![Term::var(&format!("X{i}")), Term::var(&format!("X{}", i + 1))])
        })
        .collect();
    CqQuery::new("q", vec![Term::var("X0")], body)
}

fn bench_query_size(c: &mut Criterion) {
    let sigma = parse_dependencies(
        "e(X,Y) -> n(X).\n\
         e(X,Y) -> n(Y).\n\
         n(X) -> m(X,Z).\n\
         m(X,Z1) & m(X,Z2) -> Z1 = Z2.",
    )
    .unwrap();
    let cfg = ChaseConfig { max_steps: 50_000, max_atoms: 50_000 };
    let mut group = c.benchmark_group("chase_scaling/query_size");
    group.sample_size(10);
    for n in [2usize, 4, 8, 16, 32] {
        let q = chain_query(n);
        group.bench_with_input(BenchmarkId::new("set_chase", n), &q, |b, q| {
            b.iter(|| {
                let r = set_chase(black_box(q), &sigma, &cfg).unwrap();
                black_box(r.query.body.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("set_chase_reference", n), &q, |b, q| {
            b.iter(|| {
                let r = set_chase_reference(black_box(q), &sigma, &cfg).unwrap();
                black_box(r.query.body.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_appendix_h, bench_query_size);
criterion_main!(benches);
