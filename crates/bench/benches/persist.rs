//! Persistence tier on the equiv_batch workload: what does durability
//! cost, and what does a restart recover?
//!
//! * `cold_disk` — fresh cache + fresh directory per iteration: the cold
//!   batch paying log appends on every distinct chase (compare against
//!   `equiv_batch/cnb_repeated/cold/1` for the write overhead).
//! * `restart_warm` — a directory populated once, untimed; each iteration
//!   opens a *fresh* cache over it (startup recovery included) and serves
//!   the batch from disk hits promoted into memory. This is the restart
//!   story the tier exists for.
//! * `warm_memory` — the same persistent cache instance re-serving the
//!   batch from its memory tier: the in-process warm baseline.
//!
//! `scripts/bench_snapshot.sh` records the medians in `BENCH_chase.json`
//! under `persist`.

use criterion::{criterion_group, criterion_main, Criterion};
use eqsql_bench::workloads::{repeated_subquery_pairs, workload_schema, workload_sigma};
use eqsql_chase::ChaseConfig;
use eqsql_service::{BatchSession, CacheConfig, ChaseCache, PersistConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_root() -> PathBuf {
    std::env::temp_dir().join(format!("eqsql-persist-bench-{}", std::process::id()))
}

fn fresh_dir(root: &PathBuf) -> PathBuf {
    root.join(format!("d{}", DIR_SEQ.fetch_add(1, Ordering::Relaxed)))
}

fn persistent_cache(dir: PathBuf) -> Arc<ChaseCache> {
    let cache = ChaseCache::open(CacheConfig {
        persist: Some(PersistConfig::at(dir)),
        ..CacheConfig::default()
    })
    .expect("bench scratch dir must open");
    assert_eq!(cache.stats().persist.io_errors, 0);
    Arc::new(cache)
}

fn bench_persist(c: &mut Criterion) {
    let sigma = workload_sigma();
    let schema = workload_schema();
    let config = ChaseConfig::default();
    let pairs = repeated_subquery_pairs();
    let root = scratch_root();
    let session_over = |cache: Arc<ChaseCache>| {
        BatchSession::new(sigma.clone(), schema.clone(), config).with_cache(cache)
    };

    let mut group = c.benchmark_group("persist/cnb_repeated");
    group.sample_size(10);

    group.bench_function("cold_disk", |b| {
        b.iter(|| {
            let session = session_over(persistent_cache(fresh_dir(&root)));
            black_box(session.run(&pairs))
        })
    });

    // One directory populated untimed; every restart_warm iteration pays
    // startup recovery over it plus disk-hit promotion for each α-class.
    let warm_dir = fresh_dir(&root);
    session_over(persistent_cache(warm_dir.clone())).run(&pairs);
    group.bench_function("restart_warm", |b| {
        b.iter(|| {
            let session = session_over(persistent_cache(warm_dir.clone()));
            black_box(session.run(&pairs))
        })
    });

    let warm = session_over(persistent_cache(fresh_dir(&root)));
    warm.run(&pairs); // populate memory tier and log, untimed
    group.bench_function("warm_memory", |b| b.iter(|| black_box(warm.run(&pairs))));

    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
