//! E6/E11 — cost of the equivalence tests.
//!
//! * dependency-free tests of Theorem 2.1 (bag ≅, bag-set canonical ≅) and
//!   Chandra–Merlin set equivalence, over growing random queries;
//! * the full Σ-equivalence tests of Theorems 2.2/6.1/6.2 on Example 4.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_bench::{schema_4_1, sigma_4_1};
use eqsql_chase::ChaseConfig;
use eqsql_core::equiv::{bag_equivalent, bag_set_equivalent, set_equivalent};
use eqsql_core::{sigma_equivalent_via, DirectChaser, Semantics};
use eqsql_cq::parse_query;
use eqsql_gen::queries::{random_query, QueryParams};
use eqsql_gen::rename_isomorphic;
use eqsql_relalg::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_dependency_free(c: &mut Criterion) {
    let schema = Schema::all_bags(&[("p", 2), ("s", 2), ("r", 3), ("u", 1)]);
    let mut group = c.benchmark_group("equiv/dependency_free");
    for atoms in [4usize, 8, 12] {
        let mut rng = StdRng::seed_from_u64(atoms as u64);
        let q = random_query(
            &mut rng,
            &schema,
            &QueryParams { atoms, vars: atoms, const_prob: 0.05, const_domain: 3, max_head: 2 },
        );
        let iso = rename_isomorphic(&mut rng, &q);
        group.bench_with_input(
            BenchmarkId::new("bag_iso", atoms),
            &(q.clone(), iso.clone()),
            |b, (q, r)| b.iter(|| black_box(bag_equivalent(q, r))),
        );
        group.bench_with_input(
            BenchmarkId::new("bag_set_canonical", atoms),
            &(q.clone(), iso.clone()),
            |b, (q, r)| b.iter(|| black_box(bag_set_equivalent(q, r))),
        );
        group.bench_with_input(
            BenchmarkId::new("set_chandra_merlin", atoms),
            &(q, iso),
            |b, (q, r)| b.iter(|| black_box(set_equivalent(q, r))),
        );
    }
    group.finish();
}

fn bench_sigma_tests(c: &mut Criterion) {
    let sigma = sigma_4_1();
    let schema = schema_4_1();
    let cfg = ChaseConfig::default();
    let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
    let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
    let mut group = c.benchmark_group("equiv/sigma_example_4_1");
    group.sample_size(20);
    for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
        group.bench_function(BenchmarkId::from_parameter(sem), |b| {
            b.iter(|| {
                black_box(sigma_equivalent_via(
                    &DirectChaser,
                    sem,
                    black_box(&q1),
                    black_box(&q4),
                    &sigma,
                    &schema,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dependency_free, bench_sigma_tests);
criterion_main!(benches);
