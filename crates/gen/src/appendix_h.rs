//! The Appendix H lower-bound family (Examples H.1/H.2 of the paper).
//!
//! Schema `{P1, …, Pm}`, all binary; for every `i < j` two tgds
//!
//! ```text
//! σ(1)_{i,j} : p_i(X,Y) → ∃Z p_j(Z,X)
//! σ(2)_{i,j} : p_i(X,Y) → ∃W p_j(Y,W)
//! ```
//!
//! (so |Σ| is quadratic in `m`), plus per-relation fds making both columns
//! keys — which renders every tgd **key-based** (Definition 5.1) and hence
//! sound under bag/bag-set chase once the relations are set-enforced
//! (Example H.2 uses tuple-ID egds; we use the schema flag). Chasing
//! `Q(X,Y) :- p1(X,Y)` yields `2·(1 + Σ_{i<j} count(i))` subgoals per
//! level — exponential in `m`, witnessing the lower bound of Theorem 5.2.

use eqsql_cq::{CqQuery, Term};
use eqsql_deps::{parse_dependencies, DependencySet};
use eqsql_relalg::{RelSchema, Schema};

/// One instance of the family.
#[derive(Clone, Debug)]
pub struct AppendixH {
    /// The query `Q(X,Y) :- p1(X,Y)`.
    pub query: CqQuery,
    /// The dependency set Σ' (tgds + key fds).
    pub sigma: DependencySet,
    /// The schema (all relations set-valued, standing in for the tuple-ID
    /// egds of Example H.2).
    pub schema: Schema,
    /// The parameter `m`.
    pub m: usize,
}

/// Builds the instance for a given `m ≥ 1`.
pub fn appendix_h_instance(m: usize) -> AppendixH {
    assert!(m >= 1);
    let mut text = String::new();
    for i in 1..=m {
        for j in (i + 1)..=m {
            text.push_str(&format!("p{i}(X,Y) -> p{j}(Z,X).\n"));
            text.push_str(&format!("p{i}(X,Y) -> p{j}(Y,W).\n"));
        }
    }
    for i in 1..=m {
        text.push_str(&format!("p{i}(X,Y) & p{i}(X,Z) -> Y = Z.\n"));
        text.push_str(&format!("p{i}(Y,X) & p{i}(Z,X) -> Y = Z.\n"));
    }
    let sigma = parse_dependencies(&text).expect("family text is well-formed");
    let schema = Schema::from_relations((1..=m).map(|i| RelSchema::set(&format!("p{i}"), 2)));
    let query = CqQuery::new(
        "q",
        vec![Term::var("X"), Term::var("Y")],
        vec![eqsql_cq::Atom::new("p1", vec![Term::var("X"), Term::var("Y")])],
    );
    AppendixH { query, sigma, schema, m }
}

/// The closed-form subgoal count of the terminal chase result.
///
/// Level `j` receives one `p_j(fresh, a)` atom per **distinct** first
/// coordinate `a` seen at levels below `j`, and one `p_j(b, fresh)` per
/// distinct second coordinate `b` — an atom demanded by several sources is
/// created once (the chase's extension check dedups demands). With
/// `c_j = |cumulative firsts| = |cumulative seconds|` and
/// `d_j = |firsts ∪ seconds|`:
///
/// ```text
/// c_1 = 1, d_1 = 2;   count(j) = 2·c_{j-1};
/// c_j = c_{j-1} + d_{j-1};   d_j = d_{j-1} + 2·c_{j-1}.
/// ```
///
/// `c_j` grows like `(1+√2)^j` — exponential in `m`, witnessing the lower
/// bound of Theorem 5.2.
pub fn expected_chase_size(m: usize) -> usize {
    let (mut c, mut d) = (1usize, 2usize);
    let mut total = 1usize; // level 1
    for _ in 2..=m {
        total += 2 * c;
        let (nc, nd) = (c + d, d + 2 * c);
        c = nc;
        d = nd;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_chase::{set_chase, sound_chase, ChaseConfig};
    use eqsql_deps::is_weakly_acyclic;
    use eqsql_relalg::Semantics;

    #[test]
    fn family_is_weakly_acyclic() {
        for m in 1..=5 {
            let inst = appendix_h_instance(m);
            assert!(is_weakly_acyclic(&inst.sigma), "m={m}");
        }
    }

    #[test]
    fn sigma_size_is_quadratic() {
        let inst = appendix_h_instance(4);
        // 2 * C(4,2) tgds + 2*4 egds = 12 + 8.
        assert_eq!(inst.sigma.len(), 20);
    }

    #[test]
    fn chase_size_matches_closed_form_and_grows_exponentially() {
        let cfg = ChaseConfig { max_steps: 20_000, max_atoms: 20_000 };
        let mut sizes = Vec::new();
        for m in 1..=5 {
            let inst = appendix_h_instance(m);
            let r = set_chase(&inst.query, &inst.sigma, &cfg).unwrap();
            assert!(!r.failed);
            assert_eq!(r.query.body.len(), expected_chase_size(m), "m={m}: got {}", r.query);
            sizes.push(r.query.body.len());
        }
        // Totals 1, 3, 9, 23, 57 — asymptotic ratio 1+√2.
        assert_eq!(sizes, vec![1, 3, 9, 23, 57]);
        for w in sizes.windows(2).skip(1) {
            assert!(w[1] * 10 >= w[0] * 23, "growth must stay ≳ 2.3x: {sizes:?}");
        }
    }

    #[test]
    fn sound_bag_chase_matches_set_chase_here() {
        // Every tgd is key-based over set-enforced relations, so the sound
        // bag chase performs the same exponential expansion (Example H.2).
        let cfg = ChaseConfig { max_steps: 20_000, max_atoms: 20_000 };
        for m in 2..=4 {
            let inst = appendix_h_instance(m);
            let b =
                sound_chase(Semantics::Bag, &inst.query, &inst.sigma, &inst.schema, &cfg).unwrap();
            assert_eq!(b.query.body.len(), expected_chase_size(m), "m={m}");
        }
    }

    #[test]
    fn key_basedness_of_family_tgds() {
        let inst = appendix_h_instance(3);
        for tgd in inst.sigma.tgds() {
            assert!(
                eqsql_chase::is_key_based(tgd, &inst.sigma, &inst.schema),
                "{tgd} should be key-based"
            );
        }
    }
}
