//! Random safe CQ queries.

use eqsql_cq::{Atom, CqQuery, Subst, Term, Var};
use eqsql_relalg::Schema;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for [`random_query`].
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Number of body atoms.
    pub atoms: usize,
    /// Size of the variable pool.
    pub vars: usize,
    /// Probability that an argument position is a constant.
    pub const_prob: f64,
    /// Constant domain `0..const_domain`.
    pub const_domain: i64,
    /// Maximum head arity.
    pub max_head: usize,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams { atoms: 4, vars: 5, const_prob: 0.1, const_domain: 4, max_head: 2 }
    }
}

/// Generates a random safe CQ query over the schema's relations.
pub fn random_query<R: Rng>(rng: &mut R, schema: &Schema, p: &QueryParams) -> CqQuery {
    let rels: Vec<_> = schema.iter().collect();
    assert!(!rels.is_empty(), "schema must have relations");
    let pool: Vec<Var> = (0..p.vars.max(1)).map(|i| Var::new(&format!("V{i}"))).collect();
    let mut body = Vec::with_capacity(p.atoms);
    for _ in 0..p.atoms.max(1) {
        let rel = rels[rng.gen_range(0..rels.len())];
        let args: Vec<Term> = (0..rel.arity)
            .map(|_| {
                if rng.gen_bool(p.const_prob) {
                    Term::int(rng.gen_range(0..p.const_domain.max(1)))
                } else {
                    Term::Var(pool[rng.gen_range(0..pool.len())])
                }
            })
            .collect();
        body.push(Atom { pred: rel.name, args });
    }
    // Head: a random subset of body variables (possibly empty).
    let q0 = CqQuery::new("q", vec![], body);
    let mut body_vars = q0.body_vars();
    body_vars.shuffle(rng);
    let head_len = rng.gen_range(0..=p.max_head.min(body_vars.len()));
    let head = body_vars.into_iter().take(head_len).map(Term::Var).collect();
    CqQuery { head, ..q0 }
}

/// Produces an isomorphic copy of `q`: variables bijectively renamed and
/// body atoms shuffled. Used to exercise the ≡_B test positively.
pub fn rename_isomorphic<R: Rng>(rng: &mut R, q: &CqQuery) -> CqQuery {
    let vars = q.all_vars();
    let mut fresh: Vec<Var> = (0..vars.len()).map(|i| Var::new(&format!("W{i}_renamed"))).collect();
    fresh.shuffle(rng);
    let s = Subst::from_pairs(vars.iter().zip(fresh.iter()).map(|(v, w)| (*v, Term::Var(*w))));
    let mut out = q.apply(&s);
    out.body.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::are_isomorphic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::all_bags(&[("p", 2), ("r", 1), ("s", 3)])
    }

    #[test]
    fn generated_queries_are_safe() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let q = random_query(&mut rng, &schema(), &QueryParams::default());
            assert!(q.is_safe(), "unsafe: {q}");
            assert_eq!(q.body.len(), 4);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_query(&mut StdRng::seed_from_u64(42), &schema(), &QueryParams::default());
        let b = random_query(&mut StdRng::seed_from_u64(42), &schema(), &QueryParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn renamed_copies_are_isomorphic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..25 {
            let q = random_query(&mut rng, &schema(), &QueryParams::default());
            let r = rename_isomorphic(&mut rng, &q);
            assert!(are_isomorphic(&q, &r), "{q} vs {r}");
        }
    }
}
