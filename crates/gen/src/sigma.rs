//! Random weakly acyclic dependency sets.
//!
//! The generator layers the schema's relations and only emits tgds whose
//! conclusion relations live in strictly higher layers than every premise
//! relation, which makes the dependency graph's special edges point
//! strictly "upward" — no cycle through a special edge can exist, so the
//! set is weakly acyclic by construction (and the chase terminates,
//! Theorem H.1). Egds are random keys (fd-shaped).

use eqsql_cq::{Atom, Term};
use eqsql_deps::{DependencySet, Egd, Tgd};
use eqsql_relalg::Schema;
use rand::Rng;

/// Parameters for [`random_weakly_acyclic_sigma`].
#[derive(Clone, Copy, Debug)]
pub struct SigmaParams {
    /// Number of tgds to generate.
    pub tgds: usize,
    /// Number of key egds to generate.
    pub egds: usize,
    /// Probability that a conclusion position reuses a premise variable
    /// (otherwise it is existential).
    pub reuse_prob: f64,
}

impl Default for SigmaParams {
    fn default() -> Self {
        SigmaParams { tgds: 3, egds: 2, reuse_prob: 0.6 }
    }
}

/// Generates a weakly acyclic Σ over the schema. Relations are layered by
/// their iteration order.
pub fn random_weakly_acyclic_sigma<R: Rng>(
    rng: &mut R,
    schema: &Schema,
    p: &SigmaParams,
) -> DependencySet {
    let rels: Vec<_> = schema.iter().collect();
    let mut sigma = DependencySet::new();
    if rels.len() < 2 {
        return sigma;
    }
    for t in 0..p.tgds {
        // Premise from a lower layer, conclusion from a strictly higher one.
        let lo = rng.gen_range(0..rels.len() - 1);
        let hi = rng.gen_range(lo + 1..rels.len());
        let (src, dst) = (rels[lo], rels[hi]);
        let lhs_args: Vec<Term> = (0..src.arity).map(|i| Term::var(&format!("X{i}_{t}"))).collect();
        let rhs_args: Vec<Term> = (0..dst.arity)
            .map(|j| {
                if rng.gen_bool(p.reuse_prob) && !lhs_args.is_empty() {
                    lhs_args[rng.gen_range(0..lhs_args.len())]
                } else {
                    Term::var(&format!("Z{j}_{t}"))
                }
            })
            .collect();
        sigma.push(Tgd::new(
            vec![Atom { pred: src.name, args: lhs_args }],
            vec![Atom { pred: dst.name, args: rhs_args }],
        ));
    }
    for _ in 0..p.egds {
        let rel = rels[rng.gen_range(0..rels.len())];
        if rel.arity < 2 {
            continue;
        }
        let det = rng.gen_range(0..rel.arity);
        let key: Vec<usize> = (0..rel.arity).filter(|&i| i != det).collect();
        let mk = |suffix: &str| -> Vec<Term> {
            (0..rel.arity)
                .map(|i| {
                    if key.contains(&i) {
                        Term::var(&format!("K{i}"))
                    } else {
                        Term::var(&format!("D{i}{suffix}"))
                    }
                })
                .collect()
        };
        let a1 = Atom { pred: rel.name, args: mk("a") };
        let a2 = Atom { pred: rel.name, args: mk("b") };
        let (t1, t2) = (a1.args[det], a2.args[det]);
        sigma.push(Egd::new(vec![a1, a2], t1, t2));
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_deps::is_weakly_acyclic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_sigmas_are_weakly_acyclic() {
        let schema = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 3), ("d", 1)]);
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..40 {
            let sigma = random_weakly_acyclic_sigma(
                &mut rng,
                &schema,
                &SigmaParams { tgds: 4, egds: 2, reuse_prob: 0.5 },
            );
            assert!(is_weakly_acyclic(&sigma), "iteration {i}: {sigma}");
        }
    }

    #[test]
    fn chase_of_generated_sigma_terminates() {
        use eqsql_chase::{set_chase, ChaseConfig};
        let schema = Schema::all_bags(&[("a", 2), ("b", 2), ("c", 2)]);
        let mut rng = StdRng::seed_from_u64(5);
        let q = eqsql_cq::parse_query("q(X) :- a(X, Y)").unwrap();
        for _ in 0..20 {
            let sigma = random_weakly_acyclic_sigma(&mut rng, &schema, &SigmaParams::default());
            let r = set_chase(&q, &sigma, &ChaseConfig::default());
            assert!(r.is_ok(), "chase must terminate on weakly acyclic Σ");
        }
    }
}
