//! # eqsql-gen — seeded generators for tests and benchmarks
//!
//! * random safe CQ queries over a schema;
//! * random **weakly acyclic** dependency sets (layered tgds + key egds),
//!   so every generated Σ has a terminating chase (Theorem H.1);
//! * random bag databases and their Σ-repairs (via the instance chase);
//! * the **Appendix H lower-bound family**: the `(Q, Σ)` pairs whose chase
//!   result is polynomial in `|Q|` but exponential in `|Σ|`
//!   (Examples H.1/H.2, witnessing the bound of Theorem 5.2).
//!
//! All generators take explicit [`rand::rngs::StdRng`] seeds, so failures
//! are reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod appendix_h;
pub mod db;
pub mod queries;
pub mod sigma;

pub use appendix_h::{appendix_h_instance, AppendixH};
pub use db::{random_database, repaired_database};
pub use queries::{random_query, rename_isomorphic};
pub use sigma::random_weakly_acyclic_sigma;
