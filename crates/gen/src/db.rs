//! Random bag databases and their Σ-repairs.

use eqsql_chase::instance::chase_database;
use eqsql_chase::ChaseConfig;
use eqsql_deps::DependencySet;
use eqsql_relalg::{Database, Schema, Tuple};
use rand::Rng;

/// Parameters for [`random_database`].
#[derive(Clone, Copy, Debug)]
pub struct DbParams {
    /// Distinct tuples per relation.
    pub tuples_per_relation: usize,
    /// Value domain `0..domain`.
    pub domain: i64,
    /// Probability a tuple gets multiplicity > 1 (bag relations only).
    pub dup_prob: f64,
    /// Maximum multiplicity for duplicated tuples.
    pub max_mult: u64,
}

impl Default for DbParams {
    fn default() -> Self {
        DbParams { tuples_per_relation: 4, domain: 5, dup_prob: 0.3, max_mult: 3 }
    }
}

/// Generates a random database for the schema. Relations the schema marks
/// set-valued receive multiplicity-1 tuples only.
pub fn random_database<R: Rng>(rng: &mut R, schema: &Schema, p: &DbParams) -> Database {
    let mut db = Database::empty_of(schema);
    for rel in schema.iter() {
        for _ in 0..p.tuples_per_relation {
            let tuple = Tuple::ints((0..rel.arity).map(|_| rng.gen_range(0..p.domain.max(1))));
            let mult = if !rel.set_valued && rng.gen_bool(p.dup_prob) {
                rng.gen_range(2..=p.max_mult.max(2))
            } else {
                1
            };
            let r = db.get_or_create(rel.name, rel.arity);
            if r.contains(&tuple) {
                continue; // keep tuple sets distinct; multiplicity set here
            }
            r.insert(tuple, mult);
        }
    }
    db
}

/// Generates a random database and repairs it into a model of Σ with the
/// instance chase. Returns `None` when the chase fails (egds equate
/// distinct constants) or exceeds its budget — callers typically retry
/// with the next seed.
pub fn repaired_database<R: Rng>(
    rng: &mut R,
    schema: &Schema,
    sigma: &DependencySet,
    p: &DbParams,
    config: &ChaseConfig,
) -> Option<Database> {
    let db = random_database(rng, schema, p);
    match chase_database(&db, sigma, config) {
        Ok(r) if !r.failed => {
            // The repair may have added tuples with multiplicities on
            // set-valued relations? No: tgd repairs insert distinct
            // tuples. But egd merges can collide; flatten set-valued
            // relations to stay schema-conformant.
            let mut out = r.db;
            for rel in schema.set_valued_relations() {
                if let Some(existing) = out.get(rel) {
                    if !existing.is_set_valued() {
                        let flat = existing.to_set();
                        let arity = flat.arity();
                        *out.get_or_create(rel, arity) = flat;
                    }
                }
            }
            Some(out)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_deps::{parse_dependencies, satisfaction::db_satisfies_all};
    use eqsql_relalg::RelSchema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::from_relations([
            RelSchema::bag("p", 2),
            RelSchema::set("s", 2),
            RelSchema::bag("u", 1),
        ])
    }

    #[test]
    fn set_valued_relations_stay_sets() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let db = random_database(&mut rng, &schema(), &DbParams::default());
            assert!(db.get_str("s").unwrap().is_set_valued());
        }
    }

    #[test]
    fn bag_relations_do_get_duplicates() {
        let mut rng = StdRng::seed_from_u64(3);
        let found_dup = (0..20).any(|_| {
            let db = random_database(
                &mut rng,
                &schema(),
                &DbParams { dup_prob: 0.9, ..DbParams::default() },
            );
            !db.get_str("p").unwrap().is_set_valued()
        });
        assert!(found_dup);
    }

    #[test]
    fn repaired_databases_satisfy_sigma() {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut produced = 0;
        for _ in 0..30 {
            if let Some(db) = repaired_database(
                &mut rng,
                &schema(),
                &sigma,
                &DbParams::default(),
                &ChaseConfig::default(),
            ) {
                produced += 1;
                assert!(db_satisfies_all(&db, &sigma));
                assert!(db.get_str("s").unwrap().is_set_valued());
            }
        }
        assert!(produced > 0, "at least some repairs must succeed");
    }
}
