//! # eqsql-sql — the SQL face of the equivalence framework
//!
//! The paper is about *SQL* queries: SPJ blocks with equality predicates
//! (safe CQ queries), optionally with `DISTINCT` (set semantics for the
//! answer) and grouping/aggregation, over tables whose `PRIMARY KEY` /
//! `UNIQUE` constraints decide whether stored relations are sets or bags
//! (§1). This crate provides that face:
//!
//! * a [`parser`] for the SQL subset (SELECT/FROM/WHERE with equality
//!   conjunctions, GROUP BY with SUM/COUNT/COUNT(*)/MIN/MAX, CREATE TABLE
//!   with PRIMARY KEY, UNIQUE and FOREIGN KEY);
//! * a [`catalog`] that lowers DDL to a [`eqsql_relalg::Schema`] plus
//!   embedded dependencies: keys become egds, foreign keys become
//!   inclusion tgds, and keyed tables are marked set-valued (the paper's
//!   reading of the SQL standard);
//! * [`lower`]ing of SELECT statements to CQ / aggregate queries, and
//!   [`render`]ing back from the IR to SQL text.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod catalog;
pub mod lower;
pub mod parser;
pub mod render;

pub use ast::{ColRef, CreateTable, SelectItem, SelectStmt, SqlStatement, TableRef};
pub use catalog::Catalog;
pub use lower::{lower_select, LoweredQuery};
pub use parser::parse_sql;
pub use render::{render_aggregate, render_cq};
