//! Abstract syntax for the SQL subset.

use std::fmt;

/// A column reference `alias.column` or bare `column`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ColRef {
    /// Optional table alias/name qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A literal value in a WHERE clause.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
}

/// One equality predicate of the WHERE conjunction.
#[derive(Clone, PartialEq, Debug)]
pub enum WherePred {
    /// `a.x = b.y`
    ColCol(ColRef, ColRef),
    /// `a.x = 3`
    ColLit(ColRef, Literal),
}

/// An aggregate function name in SELECT.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SqlAgg {
    /// `SUM(col)`
    Sum,
    /// `COUNT(col)`
    Count,
    /// `COUNT(*)`
    CountStar,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

/// One item of the SELECT list.
#[derive(Clone, PartialEq, Debug)]
pub enum SelectItem {
    /// A plain column.
    Column(ColRef),
    /// An aggregate term; `arg` is `None` exactly for `COUNT(*)`.
    Aggregate {
        /// The function.
        func: SqlAgg,
        /// The aggregated column.
        arg: Option<ColRef>,
    },
}

/// A FROM item `table [AS] alias`.
#[derive(Clone, PartialEq, Debug)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A SELECT statement of the supported subset.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectStmt {
    /// Was DISTINCT specified? (Set semantics for the answer.)
    pub distinct: bool,
    /// The SELECT list.
    pub items: Vec<SelectItem>,
    /// The FROM list.
    pub from: Vec<TableRef>,
    /// Conjunctive equality WHERE clause.
    pub where_: Vec<WherePred>,
    /// GROUP BY columns (must mirror the non-aggregate SELECT items).
    pub group_by: Vec<ColRef>,
}

/// A column declaration in CREATE TABLE.
#[derive(Clone, PartialEq, Debug)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type name (recorded, not interpreted).
    pub ty: String,
}

/// A table-level constraint.
#[derive(Clone, PartialEq, Debug)]
pub enum TableConstraint {
    /// `PRIMARY KEY (cols)`
    PrimaryKey(Vec<String>),
    /// `UNIQUE (cols)`
    Unique(Vec<String>),
    /// `FOREIGN KEY (cols) REFERENCES table (cols)`
    ForeignKey {
        /// Referencing columns.
        columns: Vec<String>,
        /// Referenced table.
        references: String,
        /// Referenced columns.
        ref_columns: Vec<String>,
    },
}

/// A CREATE TABLE statement.
#[derive(Clone, PartialEq, Debug)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column declarations.
    pub columns: Vec<ColumnDef>,
    /// Table constraints.
    pub constraints: Vec<TableConstraint>,
}

/// A parsed SQL statement.
#[derive(Clone, PartialEq, Debug)]
pub enum SqlStatement {
    /// SELECT.
    Select(SelectStmt),
    /// CREATE TABLE.
    CreateTable(CreateTable),
}
