//! Recursive-descent parser for the SQL subset, over the shared lexer of
//! `eqsql-cq`. Keywords are case-insensitive; statements are separated by
//! `;`.

use crate::ast::*;
use eqsql_cq::lex::Token;
use eqsql_cq::parser::{Cursor, ParseError};

fn is_kw(t: Option<&Token>, kw: &str) -> bool {
    matches!(t, Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
}

fn eat_kw(c: &mut Cursor, kw: &str) -> bool {
    if is_kw(c.peek(), kw) {
        c.next();
        true
    } else {
        false
    }
}

fn expect_kw(c: &mut Cursor, kw: &str) -> Result<(), ParseError> {
    if eat_kw(c, kw) {
        Ok(())
    } else {
        c.err(format!("expected keyword '{kw}'"))
    }
}

fn ident(c: &mut Cursor) -> Result<String, ParseError> {
    match c.next() {
        Some(Token::Ident(s)) => Ok(s),
        Some(t) => c.err(format!("expected identifier, found '{t}'")),
        None => c.err("expected identifier, found end of input"),
    }
}

const KEYWORDS: &[&str] = &[
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "group",
    "by",
    "as",
    "create",
    "table",
    "primary",
    "key",
    "unique",
    "foreign",
    "references",
];

fn non_kw_ident(c: &mut Cursor) -> Result<String, ParseError> {
    let s = ident(c)?;
    if KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
        return c.err(format!("unexpected keyword '{s}'"));
    }
    Ok(s)
}

fn colref(c: &mut Cursor) -> Result<ColRef, ParseError> {
    let first = non_kw_ident(c)?;
    if c.eat(&Token::Dot) {
        let column = non_kw_ident(c)?;
        Ok(ColRef { qualifier: Some(first), column })
    } else {
        Ok(ColRef { qualifier: None, column: first })
    }
}

fn agg_of(name: &str) -> Option<SqlAgg> {
    match name.to_ascii_lowercase().as_str() {
        "sum" => Some(SqlAgg::Sum),
        "count" => Some(SqlAgg::Count),
        "min" => Some(SqlAgg::Min),
        "max" => Some(SqlAgg::Max),
        _ => None,
    }
}

fn select_item(c: &mut Cursor) -> Result<SelectItem, ParseError> {
    // Aggregate: IDENT '(' ... ')'
    if let Some(Token::Ident(name)) = c.peek() {
        if let Some(func) = agg_of(name) {
            if c.peek2() == Some(&Token::LParen) {
                c.next(); // fn name
                c.next(); // (
                if c.eat(&Token::Star) {
                    c.expect(&Token::RParen)?;
                    if func != SqlAgg::Count {
                        return c.err("only COUNT may take '*'");
                    }
                    return Ok(SelectItem::Aggregate { func: SqlAgg::CountStar, arg: None });
                }
                let arg = colref(c)?;
                c.expect(&Token::RParen)?;
                return Ok(SelectItem::Aggregate { func, arg: Some(arg) });
            }
        }
    }
    Ok(SelectItem::Column(colref(c)?))
}

fn where_pred(c: &mut Cursor) -> Result<WherePred, ParseError> {
    let left = colref(c)?;
    c.expect(&Token::Eq)?;
    match c.peek() {
        Some(Token::Int(i)) => {
            let i = *i;
            c.next();
            Ok(WherePred::ColLit(left, Literal::Int(i)))
        }
        Some(Token::Real(r)) => {
            let r = *r;
            c.next();
            Ok(WherePred::ColLit(left, Literal::Real(r)))
        }
        Some(Token::Str(s)) => {
            let s = s.clone();
            c.next();
            Ok(WherePred::ColLit(left, Literal::Str(s)))
        }
        _ => Ok(WherePred::ColCol(left, colref(c)?)),
    }
}

fn select_stmt(c: &mut Cursor) -> Result<SelectStmt, ParseError> {
    expect_kw(c, "select")?;
    let distinct = eat_kw(c, "distinct");
    let mut items = vec![select_item(c)?];
    while c.eat(&Token::Comma) {
        items.push(select_item(c)?);
    }
    expect_kw(c, "from")?;
    let mut from = Vec::new();
    loop {
        let table = non_kw_ident(c)?;
        let alias = if eat_kw(c, "as") {
            non_kw_ident(c)?
        } else if matches!(c.peek(), Some(Token::Ident(s))
            if !KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)))
        {
            ident(c)?
        } else {
            table.clone()
        };
        from.push(TableRef { table, alias });
        if !c.eat(&Token::Comma) {
            break;
        }
    }
    let mut where_ = Vec::new();
    if eat_kw(c, "where") {
        where_.push(where_pred(c)?);
        while eat_kw(c, "and") {
            where_.push(where_pred(c)?);
        }
    }
    let mut group_by = Vec::new();
    if eat_kw(c, "group") {
        expect_kw(c, "by")?;
        group_by.push(colref(c)?);
        while c.eat(&Token::Comma) {
            group_by.push(colref(c)?);
        }
    }
    Ok(SelectStmt { distinct, items, from, where_, group_by })
}

fn column_list(c: &mut Cursor) -> Result<Vec<String>, ParseError> {
    c.expect(&Token::LParen)?;
    let mut cols = vec![non_kw_ident(c)?];
    while c.eat(&Token::Comma) {
        cols.push(non_kw_ident(c)?);
    }
    c.expect(&Token::RParen)?;
    Ok(cols)
}

fn create_table(c: &mut Cursor) -> Result<CreateTable, ParseError> {
    expect_kw(c, "create")?;
    expect_kw(c, "table")?;
    let name = non_kw_ident(c)?;
    c.expect(&Token::LParen)?;
    let mut columns = Vec::new();
    let mut constraints = Vec::new();
    loop {
        if is_kw(c.peek(), "primary") {
            c.next();
            expect_kw(c, "key")?;
            constraints.push(TableConstraint::PrimaryKey(column_list(c)?));
        } else if is_kw(c.peek(), "unique") {
            c.next();
            constraints.push(TableConstraint::Unique(column_list(c)?));
        } else if is_kw(c.peek(), "foreign") {
            c.next();
            expect_kw(c, "key")?;
            let cols = column_list(c)?;
            expect_kw(c, "references")?;
            let references = non_kw_ident(c)?;
            let ref_columns = column_list(c)?;
            constraints.push(TableConstraint::ForeignKey {
                columns: cols,
                references,
                ref_columns,
            });
        } else {
            let col = non_kw_ident(c)?;
            let ty = ident(c)?;
            columns.push(ColumnDef { name: col, ty });
        }
        if c.eat(&Token::RParen) {
            break;
        }
        c.expect(&Token::Comma)?;
    }
    Ok(CreateTable { name, columns, constraints })
}

/// Parses a `;`-separated script of SELECT / CREATE TABLE statements.
pub fn parse_sql(input: &str) -> Result<Vec<SqlStatement>, ParseError> {
    let mut c = Cursor::new(input)?;
    let mut out = Vec::new();
    while !c.done() {
        if is_kw(c.peek(), "select") {
            out.push(SqlStatement::Select(select_stmt(&mut c)?));
        } else if is_kw(c.peek(), "create") {
            out.push(SqlStatement::CreateTable(create_table(&mut c)?));
        } else {
            return c.err("expected SELECT or CREATE TABLE");
        }
        // Statement separator(s).
        while c.eat(&Token::Semi) {}
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let stmts = parse_sql("SELECT e.name FROM emp e WHERE e.dept = 3").unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        assert!(!s.distinct);
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from[0].table, "emp");
        assert_eq!(s.from[0].alias, "e");
        assert_eq!(s.where_.len(), 1);
    }

    #[test]
    fn parse_join_with_distinct() {
        let stmts = parse_sql(
            "SELECT DISTINCT e.name, d.city FROM emp e, dept AS d \
             WHERE e.dept = d.id AND d.city = 'Oslo'",
        )
        .unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.where_.len(), 2);
        assert!(matches!(&s.where_[1], WherePred::ColLit(_, Literal::Str(x)) if x == "Oslo"));
    }

    #[test]
    fn parse_aggregate_with_group_by() {
        let stmts = parse_sql("SELECT e.dept, SUM(e.salary) FROM emp e GROUP BY e.dept").unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        assert_eq!(s.group_by.len(), 1);
        assert!(matches!(&s.items[1], SelectItem::Aggregate { func: SqlAgg::Sum, arg: Some(_) }));
    }

    #[test]
    fn parse_count_star() {
        let stmts = parse_sql("SELECT d.id, COUNT(*) FROM dept d GROUP BY d.id").unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        assert!(matches!(
            &s.items[1],
            SelectItem::Aggregate { func: SqlAgg::CountStar, arg: None }
        ));
    }

    #[test]
    fn parse_create_table() {
        let stmts = parse_sql(
            "CREATE TABLE emp (id INT, dept INT, salary INT, \
             PRIMARY KEY (id), \
             FOREIGN KEY (dept) REFERENCES dept (id));",
        )
        .unwrap();
        let SqlStatement::CreateTable(t) = &stmts[0] else {
            panic!("expected a CREATE TABLE statement, got {:?}", stmts[0])
        };
        assert_eq!(t.name, "emp");
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.constraints.len(), 2);
        assert!(matches!(&t.constraints[0], TableConstraint::PrimaryKey(cols) if cols == &["id"]));
    }

    #[test]
    fn parse_script() {
        let stmts = parse_sql(
            "CREATE TABLE a (x INT, PRIMARY KEY (x)); \
             CREATE TABLE b (x INT); \
             SELECT a.x FROM a, b WHERE a.x = b.x;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn reject_garbage() {
        assert!(parse_sql("DELETE FROM emp").is_err());
        assert!(parse_sql("SELECT FROM emp").is_err());
        assert!(parse_sql("SELECT x FROM").is_err());
    }

    #[test]
    fn unqualified_columns_parse() {
        let stmts = parse_sql("SELECT name FROM emp WHERE dept = 3").unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        assert!(matches!(&s.items[0], SelectItem::Column(c) if c.qualifier.is_none()));
    }
}
