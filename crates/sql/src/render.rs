//! Rendering CQ / aggregate queries back to SQL text.
//!
//! Inverse of [`crate::lower`]: every body atom becomes a FROM item with a
//! generated alias, repeated variables become join equalities, constants
//! become literal predicates, and the head becomes the SELECT list. With a
//! catalog the real column names are used; without one, positional names
//! `c0, c1, …` are emitted.

use crate::catalog::Catalog;
use eqsql_cq::{AggFn, AggregateQuery, CqQuery, Term, Value, Var};
use std::collections::HashMap;
use std::fmt::Write;

fn column_name(catalog: Option<&Catalog>, table: &str, pos: usize) -> String {
    catalog
        .and_then(|c| c.columns_of(table).ok())
        .and_then(|cols| cols.get(pos).cloned())
        .unwrap_or_else(|| format!("c{pos}"))
}

fn literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{s}'"),
        other => other.to_string(),
    }
}

struct Rendered {
    from: Vec<String>,
    conditions: Vec<String>,
    var_site: HashMap<Var, String>,
}

fn render_body(body: &[eqsql_cq::Atom], catalog: Option<&Catalog>) -> Rendered {
    let mut from = Vec::new();
    let mut conditions = Vec::new();
    let mut var_site: HashMap<Var, String> = HashMap::new();
    for (i, atom) in body.iter().enumerate() {
        let table = atom.pred.name();
        let alias = format!("t{i}");
        from.push(format!("{table} {alias}"));
        for (pos, term) in atom.args.iter().enumerate() {
            let site = format!("{alias}.{}", column_name(catalog, table, pos));
            match term {
                Term::Const(c) => conditions.push(format!("{site} = {}", literal(c))),
                Term::Var(v) => match var_site.get(v) {
                    Some(first) => conditions.push(format!("{first} = {site}")),
                    None => {
                        var_site.insert(*v, site);
                    }
                },
            }
        }
    }
    Rendered { from, conditions, var_site }
}

fn head_expr(t: &Term, r: &Rendered) -> String {
    match t {
        Term::Const(c) => literal(c),
        Term::Var(v) => r.var_site.get(v).cloned().unwrap_or_else(|| v.to_string()),
    }
}

fn assemble(select_list: &[String], distinct: bool, r: &Rendered, group_by: &[String]) -> String {
    let mut out = String::from("SELECT ");
    if distinct {
        out.push_str("DISTINCT ");
    }
    out.push_str(&select_list.join(", "));
    write!(out, " FROM {}", r.from.join(", ")).unwrap();
    if !r.conditions.is_empty() {
        write!(out, " WHERE {}", r.conditions.join(" AND ")).unwrap();
    }
    if !group_by.is_empty() {
        write!(out, " GROUP BY {}", group_by.join(", ")).unwrap();
    }
    out
}

/// Renders a plain CQ query as a SQL SELECT. `distinct` selects set
/// semantics for the answer.
pub fn render_cq(q: &CqQuery, catalog: Option<&Catalog>, distinct: bool) -> String {
    let r = render_body(&q.body, catalog);
    let select: Vec<String> = q.head.iter().map(|t| head_expr(t, &r)).collect();
    let select = if select.is_empty() { vec!["1".to_string()] } else { select };
    assemble(&select, distinct, &r, &[])
}

/// Renders an aggregate query as a SQL SELECT ... GROUP BY.
pub fn render_aggregate(q: &AggregateQuery, catalog: Option<&Catalog>) -> String {
    let r = render_body(&q.body, catalog);
    let mut select: Vec<String> = q.grouping.iter().map(|t| head_expr(t, &r)).collect();
    let group_by = select.clone();
    let agg = match (q.agg, q.agg_var) {
        (AggFn::CountStar, _) => "COUNT(*)".to_string(),
        (f, Some(v)) => {
            let fname = match f {
                AggFn::Sum => "SUM",
                AggFn::Count => "COUNT",
                AggFn::Min => "MIN",
                AggFn::Max => "MAX",
                AggFn::CountStar => unreachable!(),
            };
            format!("{fname}({})", head_expr(&Term::Var(v), &r))
        }
        (_, None) => "COUNT(*)".to_string(),
    };
    select.push(agg);
    assemble(&select, false, &r, &group_by)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SqlStatement;
    use crate::lower::{lower_select, LoweredQuery};
    use crate::parser::parse_sql;
    use eqsql_cq::parse_query;
    use eqsql_cq::parser::parse_aggregate_query;

    fn catalog() -> Catalog {
        Catalog::from_ddl(
            "CREATE TABLE dept (id INT, city VARCHAR, PRIMARY KEY (id)); \
             CREATE TABLE emp (id INT, dept INT, salary INT, PRIMARY KEY (id));",
        )
        .unwrap()
    }

    #[test]
    fn render_simple() {
        let q = parse_query("q(S) :- emp(I, D, S)").unwrap();
        let sql = render_cq(&q, Some(&catalog()), false);
        assert_eq!(sql, "SELECT t0.salary FROM emp t0");
    }

    #[test]
    fn render_join_and_constant() {
        let q = parse_query("q(S) :- emp(I, D, S), dept(D, 'Oslo')").unwrap();
        let sql = render_cq(&q, Some(&catalog()), false);
        assert_eq!(
            sql,
            "SELECT t0.salary FROM emp t0, dept t1 \
             WHERE t0.dept = t1.id AND t1.city = 'Oslo'"
        );
    }

    #[test]
    fn render_distinct_and_positional_names() {
        let q = parse_query("q(X) :- p(X, Y)").unwrap();
        let sql = render_cq(&q, None, true);
        assert_eq!(sql, "SELECT DISTINCT t0.c0 FROM p t0");
    }

    #[test]
    fn render_aggregate_query() {
        let q = parse_aggregate_query("q(D, sum(S)) :- emp(I, D, S)").unwrap();
        let sql = render_aggregate(&q, Some(&catalog()));
        assert_eq!(sql, "SELECT t0.dept, SUM(t0.salary) FROM emp t0 GROUP BY t0.dept");
    }

    #[test]
    fn render_zero_ary_head() {
        let q = parse_query("q() :- emp(I, D, S)").unwrap();
        let sql = render_cq(&q, Some(&catalog()), false);
        assert!(sql.starts_with("SELECT 1 FROM"));
    }

    #[test]
    fn round_trip_preserves_structure() {
        // SQL -> CQ -> SQL -> CQ: the two CQs must be isomorphic.
        let cat = catalog();
        let sql = "SELECT e.salary FROM emp e, dept d WHERE e.dept = d.id AND d.city = 'Oslo'";
        let stmts = parse_sql(sql).unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        let LoweredQuery::Cq { query: q1, .. } = lower_select(s, &cat, "q").unwrap() else {
            panic!("expected the SELECT to lower to a plain CQ query")
        };
        let sql2 = render_cq(&q1, Some(&cat), false);
        let stmts2 = parse_sql(&sql2).unwrap();
        let SqlStatement::Select(s2) = &stmts2[0] else {
            panic!("expected the re-rendered SQL to parse as a SELECT, got {:?}", stmts2[0])
        };
        let LoweredQuery::Cq { query: q2, .. } = lower_select(s2, &cat, "q").unwrap() else {
            panic!("expected the round-tripped SELECT to lower to a plain CQ query")
        };
        assert!(eqsql_cq::are_isomorphic(&q1, &q2), "{q1} vs {q2}");
    }

    #[test]
    fn aggregate_round_trip() {
        let cat = catalog();
        let sql = "SELECT e.dept, MAX(e.salary) FROM emp e GROUP BY e.dept";
        let stmts = parse_sql(sql).unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        let LoweredQuery::Agg { query: q1 } = lower_select(s, &cat, "q").unwrap() else {
            panic!("expected the SELECT to lower to an aggregate query")
        };
        let sql2 = render_aggregate(&q1, Some(&cat));
        let stmts2 = parse_sql(&sql2).unwrap();
        let SqlStatement::Select(s2) = &stmts2[0] else {
            panic!("expected the re-rendered SQL to parse as a SELECT, got {:?}", stmts2[0])
        };
        let LoweredQuery::Agg { query: q2 } = lower_select(s2, &cat, "q").unwrap() else {
            panic!("expected the round-tripped SELECT to lower to an aggregate query")
        };
        assert!(eqsql_cq::are_isomorphic(&q1.core(), &q2.core()));
        assert_eq!(q1.agg, q2.agg);
    }
}
