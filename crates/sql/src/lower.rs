//! Lowering SELECT statements to the CQ / aggregate IR.
//!
//! Each FROM item becomes one body atom whose arguments are fresh
//! variables named `alias_column`; WHERE equalities unify variables
//! (column = column) or pin them to constants (column = literal); the
//! SELECT list becomes the head. A statement with aggregates lowers to an
//! [`AggregateQuery`] whose grouping list must match the plain SELECT
//! columns (the usual SQL rule). `DISTINCT` is reported as a flag — it
//! selects set semantics for the answer, per §1 of the paper.

use crate::ast::*;
use crate::catalog::{Catalog, CatalogError};
use eqsql_cq::{AggFn, AggregateQuery, Atom, CqQuery, Predicate, Subst, Term, Value, Var};
use std::collections::HashMap;
use std::fmt;

/// A lowering error.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// Catalog resolution failed.
    Catalog(CatalogError),
    /// A column reference is ambiguous (several FROM items expose it).
    Ambiguous(String),
    /// A column reference matches no FROM item.
    Unresolved(String),
    /// Two FROM items share an alias.
    DuplicateAlias(String),
    /// Equated columns are pinned to conflicting constants.
    ConflictingConstants,
    /// GROUP BY does not match the plain SELECT columns.
    BadGrouping,
    /// More than one aggregate in the SELECT list (the paper's aggregate
    /// queries carry exactly one aggregate term).
    MultipleAggregates,
    /// The query came out unsafe (no FROM items).
    Unsafe,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Catalog(e) => write!(f, "{e}"),
            LowerError::Ambiguous(c) => write!(f, "ambiguous column '{c}'"),
            LowerError::Unresolved(c) => write!(f, "unresolved column '{c}'"),
            LowerError::DuplicateAlias(a) => write!(f, "duplicate alias '{a}'"),
            LowerError::ConflictingConstants => write!(f, "column equated with two constants"),
            LowerError::BadGrouping => write!(f, "GROUP BY must list the plain SELECT columns"),
            LowerError::MultipleAggregates => write!(f, "at most one aggregate is supported"),
            LowerError::Unsafe => write!(f, "query has no FROM items"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<CatalogError> for LowerError {
    fn from(e: CatalogError) -> Self {
        LowerError::Catalog(e)
    }
}

/// A lowered query: plain CQ or aggregate, plus the DISTINCT flag.
#[derive(Clone, Debug)]
pub enum LoweredQuery {
    /// SPJ block.
    Cq {
        /// The conjunctive query.
        query: CqQuery,
        /// Was DISTINCT given? (Set semantics for the answer.)
        distinct: bool,
    },
    /// Grouping/aggregation block.
    Agg {
        /// The aggregate query.
        query: AggregateQuery,
    },
}

impl LoweredQuery {
    /// The plain CQ inside, if any.
    pub fn as_cq(&self) -> Option<&CqQuery> {
        match self {
            LoweredQuery::Cq { query, .. } => Some(query),
            LoweredQuery::Agg { .. } => None,
        }
    }

    /// The aggregate query inside, if any.
    pub fn as_agg(&self) -> Option<&AggregateQuery> {
        match self {
            LoweredQuery::Agg { query } => Some(query),
            LoweredQuery::Cq { .. } => None,
        }
    }
}

/// Union-find over variables with optional constant binding per class.
#[derive(Default)]
struct Unifier {
    parent: HashMap<Var, Var>,
    constant: HashMap<Var, Value>,
}

impl Unifier {
    fn find(&mut self, v: Var) -> Var {
        match self.parent.get(&v).copied() {
            Some(p) if p != v => {
                let root = self.find(p);
                self.parent.insert(v, root);
                root
            }
            _ => v,
        }
    }

    fn union(&mut self, a: Var, b: Var) -> Result<(), LowerError> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(());
        }
        match (self.constant.get(&ra).copied(), self.constant.get(&rb).copied()) {
            (Some(x), Some(y)) if x != y => return Err(LowerError::ConflictingConstants),
            (Some(x), _) => {
                self.constant.insert(rb, x);
            }
            (None, Some(y)) => {
                self.constant.insert(rb, y);
            }
            (None, None) => {}
        }
        self.parent.insert(ra, rb);
        Ok(())
    }

    fn pin(&mut self, v: Var, c: Value) -> Result<(), LowerError> {
        let r = self.find(v);
        match self.constant.get(&r) {
            Some(existing) if *existing != c => Err(LowerError::ConflictingConstants),
            _ => {
                self.constant.insert(r, c);
                Ok(())
            }
        }
    }

    fn resolve(&mut self, v: Var) -> Term {
        let r = self.find(v);
        match self.constant.get(&r) {
            Some(c) => Term::Const(*c),
            None => Term::Var(r),
        }
    }
}

fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Real(r) => Value::real(*r),
        Literal::Str(s) => Value::str(s),
    }
}

fn agg_fn(a: SqlAgg) -> AggFn {
    match a {
        SqlAgg::Sum => AggFn::Sum,
        SqlAgg::Count => AggFn::Count,
        SqlAgg::CountStar => AggFn::CountStar,
        SqlAgg::Min => AggFn::Min,
        SqlAgg::Max => AggFn::Max,
    }
}

struct Resolver<'a> {
    catalog: &'a Catalog,
    // alias -> (table, per-column variable)
    scopes: Vec<(String, String, Vec<Var>)>,
}

impl<'a> Resolver<'a> {
    fn var_of(&self, col: &ColRef) -> Result<Var, LowerError> {
        match &col.qualifier {
            Some(q) => {
                let (_, table, vars) = self
                    .scopes
                    .iter()
                    .find(|(a, _, _)| a.eq_ignore_ascii_case(q))
                    .ok_or_else(|| LowerError::Unresolved(col.to_string()))?;
                let pos = self.catalog.position(table, &col.column)?;
                Ok(vars[pos])
            }
            None => {
                let mut hit: Option<Var> = None;
                for (_, table, vars) in &self.scopes {
                    if let Ok(pos) = self.catalog.position(table, &col.column) {
                        if hit.is_some() {
                            return Err(LowerError::Ambiguous(col.to_string()));
                        }
                        hit = Some(vars[pos]);
                    }
                }
                hit.ok_or_else(|| LowerError::Unresolved(col.to_string()))
            }
        }
    }
}

/// Lowers a SELECT statement against a catalog. `name` becomes the query
/// name.
pub fn lower_select(
    stmt: &SelectStmt,
    catalog: &Catalog,
    name: &str,
) -> Result<LoweredQuery, LowerError> {
    if stmt.from.is_empty() {
        return Err(LowerError::Unsafe);
    }
    // Build one atom per FROM item.
    let mut scopes = Vec::new();
    let mut atoms: Vec<Atom> = Vec::new();
    for (i, tr) in stmt.from.iter().enumerate() {
        if scopes
            .iter()
            .any(|(a, _, _): &(String, String, Vec<Var>)| a.eq_ignore_ascii_case(&tr.alias))
        {
            return Err(LowerError::DuplicateAlias(tr.alias.clone()));
        }
        let cols = catalog.columns_of(&tr.table)?.to_vec();
        let vars: Vec<Var> = cols
            .iter()
            .map(|c| Var::new(&format!("{}_{c}_{i}", tr.alias.to_ascii_lowercase())))
            .collect();
        atoms.push(Atom {
            pred: Predicate::new(&tr.table.to_ascii_lowercase()),
            args: vars.iter().map(|v| Term::Var(*v)).collect(),
        });
        scopes.push((tr.alias.clone(), tr.table.clone(), vars));
    }
    let resolver = Resolver { catalog, scopes };

    // Apply WHERE equalities.
    let mut unifier = Unifier::default();
    for pred in &stmt.where_ {
        match pred {
            WherePred::ColCol(a, b) => {
                let (va, vb) = (resolver.var_of(a)?, resolver.var_of(b)?);
                unifier.union(va, vb)?;
            }
            WherePred::ColLit(a, lit) => {
                let va = resolver.var_of(a)?;
                unifier.pin(va, lit_value(lit))?;
            }
        }
    }
    let subst = {
        let mut s = Subst::new();
        for (_, _, vars) in &resolver.scopes {
            for v in vars {
                let t = unifier.resolve(*v);
                if t != Term::Var(*v) {
                    s.set(*v, t);
                }
            }
        }
        s
    };
    let body: Vec<Atom> = subst.apply_atoms(&atoms);

    // Head.
    let mut plain: Vec<Term> = Vec::new();
    let mut plain_cols: Vec<ColRef> = Vec::new();
    let mut agg: Option<(AggFn, Option<Var>)> = None;
    for item in &stmt.items {
        match item {
            SelectItem::Column(c) => {
                let v = resolver.var_of(c)?;
                plain.push(subst.apply_term(&Term::Var(v)));
                plain_cols.push(c.clone());
            }
            SelectItem::Aggregate { func, arg } => {
                if agg.is_some() {
                    return Err(LowerError::MultipleAggregates);
                }
                let var = match arg {
                    Some(c) => {
                        let v = resolver.var_of(c)?;
                        match subst.apply_term(&Term::Var(v)) {
                            Term::Var(v) => Some(v),
                            // Aggregating a pinned constant: keep the
                            // original variable; it is still bound in the
                            // body through the pinned atom position.
                            Term::Const(_) => Some(v),
                        }
                    }
                    None => None,
                };
                agg = Some((agg_fn(*func), var));
            }
        }
    }

    match agg {
        None => {
            if !stmt.group_by.is_empty() {
                return Err(LowerError::BadGrouping);
            }
            let query = CqQuery { name: eqsql_cq::Symbol::new(name), head: plain, body };
            if !query.is_safe() {
                return Err(LowerError::Unsafe);
            }
            Ok(LoweredQuery::Cq { query, distinct: stmt.distinct })
        }
        Some((f, v)) => {
            // GROUP BY must list exactly the plain select columns.
            if stmt.group_by.len() != plain_cols.len() {
                return Err(LowerError::BadGrouping);
            }
            for g in &stmt.group_by {
                let gv = resolver.var_of(g)?;
                let matched = plain_cols.iter().any(|c| {
                    resolver.var_of(c).map(|cv| {
                        let mut u2 = Subst::new();
                        let _ = &mut u2;
                        cv == gv
                    }) == Ok(true)
                });
                if !matched {
                    return Err(LowerError::BadGrouping);
                }
            }
            let query = AggregateQuery {
                name: eqsql_cq::Symbol::new(name),
                grouping: plain,
                agg: f,
                agg_var: v,
                body,
            };
            if !query.is_valid() {
                return Err(LowerError::Unsafe);
            }
            Ok(LoweredQuery::Agg { query })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;

    fn catalog() -> Catalog {
        Catalog::from_ddl(
            "CREATE TABLE dept (id INT, city VARCHAR, PRIMARY KEY (id)); \
             CREATE TABLE emp (id INT, dept INT, salary INT, PRIMARY KEY (id), \
                               FOREIGN KEY (dept) REFERENCES dept (id)); \
             CREATE TABLE log (emp INT, note VARCHAR);",
        )
        .unwrap()
    }

    fn lower(sql: &str) -> Result<LoweredQuery, LowerError> {
        let stmts = parse_sql(sql).unwrap();
        let SqlStatement::Select(s) = &stmts[0] else {
            panic!("expected a SELECT statement, got {:?}", stmts[0])
        };
        lower_select(s, &catalog(), "q")
    }

    #[test]
    fn simple_projection() {
        let q = lower("SELECT e.salary FROM emp e").unwrap();
        let cq = q.as_cq().unwrap();
        assert_eq!(cq.body.len(), 1);
        assert_eq!(cq.head.len(), 1);
        assert!(cq.is_safe());
    }

    #[test]
    fn join_unifies_variables() {
        let q = lower("SELECT e.salary, d.city FROM emp e, dept d WHERE e.dept = d.id").unwrap();
        let cq = q.as_cq().unwrap();
        assert_eq!(cq.body.len(), 2);
        // The join column must be the same variable in both atoms.
        let emp_dept = &cq.body[0].args[1];
        let dept_id = &cq.body[1].args[0];
        assert_eq!(emp_dept, dept_id);
    }

    #[test]
    fn constants_are_pinned() {
        let q = lower("SELECT e.id FROM emp e WHERE e.salary = 100").unwrap();
        let cq = q.as_cq().unwrap();
        assert_eq!(cq.body[0].args[2], Term::Const(Value::Int(100)));
    }

    #[test]
    fn transitive_equalities() {
        let q = lower("SELECT e.id FROM emp e, log l WHERE e.id = l.emp AND l.emp = 7").unwrap();
        let cq = q.as_cq().unwrap();
        assert_eq!(cq.body[0].args[0], Term::int(7));
        assert_eq!(cq.body[1].args[0], Term::int(7));
        assert_eq!(cq.head[0], Term::int(7));
    }

    #[test]
    fn conflicting_constants_rejected() {
        let e = lower("SELECT e.id FROM emp e WHERE e.id = 1 AND e.id = 2").unwrap_err();
        assert_eq!(e, LowerError::ConflictingConstants);
    }

    #[test]
    fn distinct_flag_propagates() {
        let q = lower("SELECT DISTINCT e.id FROM emp e").unwrap();
        assert!(matches!(q, LoweredQuery::Cq { distinct: true, .. }));
    }

    #[test]
    fn aggregates_lower_to_aggregate_queries() {
        let q = lower("SELECT e.dept, SUM(e.salary) FROM emp e GROUP BY e.dept").unwrap();
        let agg = q.as_agg().unwrap();
        assert_eq!(agg.agg, AggFn::Sum);
        assert_eq!(agg.grouping.len(), 1);
        assert!(agg.is_valid());
    }

    #[test]
    fn count_star_lowering() {
        let q = lower("SELECT e.dept, COUNT(*) FROM emp e GROUP BY e.dept").unwrap();
        let agg = q.as_agg().unwrap();
        assert_eq!(agg.agg, AggFn::CountStar);
        assert_eq!(agg.agg_var, None);
    }

    #[test]
    fn bad_grouping_rejected() {
        assert_eq!(
            lower("SELECT e.dept, SUM(e.salary) FROM emp e").unwrap_err(),
            LowerError::BadGrouping
        );
        assert_eq!(
            lower("SELECT e.dept FROM emp e GROUP BY e.dept").unwrap_err(),
            LowerError::BadGrouping
        );
    }

    #[test]
    fn unqualified_resolution() {
        // salary exists only in emp; note only in log.
        let q = lower("SELECT salary FROM emp e, log l WHERE note = 'x'").unwrap();
        assert!(q.as_cq().is_some());
        // id is ambiguous between emp and dept.
        let e = lower("SELECT id FROM emp e, dept d").unwrap_err();
        assert!(matches!(e, LowerError::Ambiguous(_)));
    }

    #[test]
    fn self_join_gets_distinct_variables() {
        let q = lower("SELECT a.id FROM emp a, emp b WHERE a.dept = b.dept").unwrap();
        let cq = q.as_cq().unwrap();
        assert_eq!(cq.body.len(), 2);
        // ids of a and b must be distinct variables.
        assert_ne!(cq.body[0].args[0], cq.body[1].args[0]);
        // dept columns must be unified.
        assert_eq!(cq.body[0].args[1], cq.body[1].args[1]);
    }

    #[test]
    fn duplicate_alias_rejected() {
        let e = lower("SELECT e.id FROM emp e, dept e").unwrap_err();
        assert!(matches!(e, LowerError::DuplicateAlias(_)));
    }
}
