//! The catalog: DDL lowered to a schema plus embedded dependencies.
//!
//! Following §1 of the paper's reading of the SQL standard:
//!
//! * `PRIMARY KEY` / `UNIQUE` constraints become key egds (functional
//!   dependencies from the key columns to every other column), and a table
//!   carrying one is **set-valued on every instance** — the paper's
//!   set-enforcing constraint, recorded as the schema flag (Appendix C
//!   shows the flag is expressible as an egd via tuple IDs);
//! * tables without any such clause are **bags**;
//! * `FOREIGN KEY ... REFERENCES` becomes an inclusion tgd.

use crate::ast::{CreateTable, SqlStatement, TableConstraint};
use eqsql_cq::{Atom, Predicate, Symbol, Term};
use eqsql_deps::{DependencySet, Egd, Tgd};
use eqsql_relalg::{RelSchema, Schema};
use std::collections::HashMap;
use std::fmt;

/// A catalog error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// Unknown table referenced.
    UnknownTable(String),
    /// Unknown column referenced.
    UnknownColumn {
        /// The table.
        table: String,
        /// The column.
        column: String,
    },
    /// FK column lists have different lengths.
    ForeignKeyArity,
    /// Duplicate table definition.
    DuplicateTable(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' of table '{table}'")
            }
            CatalogError::ForeignKeyArity => write!(f, "foreign-key column lists differ in length"),
            CatalogError::DuplicateTable(t) => write!(f, "table '{t}' defined twice"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A catalog: schema, dependencies and column-name resolution.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    /// The relational schema (with set-valuedness flags).
    pub schema: Schema,
    /// The dependencies derived from the DDL.
    pub sigma: DependencySet,
    columns: HashMap<String, Vec<String>>,
}

impl Catalog {
    /// Builds a catalog from the CREATE TABLE statements of a parsed
    /// script (SELECTs are ignored).
    pub fn from_statements(stmts: &[SqlStatement]) -> Result<Catalog, CatalogError> {
        let mut cat = Catalog::default();
        for s in stmts {
            if let SqlStatement::CreateTable(t) = s {
                cat.add_table(t)?;
            }
        }
        Ok(cat)
    }

    /// Convenience: parse DDL text and build the catalog.
    ///
    /// ```
    /// use eqsql_sql::Catalog;
    ///
    /// let cat = Catalog::from_ddl(
    ///     "CREATE TABLE dept (id INT, PRIMARY KEY (id));
    ///      CREATE TABLE emp (id INT, dept INT, PRIMARY KEY (id),
    ///                        FOREIGN KEY (dept) REFERENCES dept (id));",
    /// ).unwrap();
    /// // Keys become egds, the FK an inclusion tgd, keyed tables sets.
    /// assert_eq!(cat.sigma.egds().count(), 1);  // emp: id -> dept
    /// assert_eq!(cat.sigma.tgds().count(), 1);  // emp ⊆ dept on dept-id
    /// assert!(cat.schema.is_set_valued(eqsql_cq::Predicate::new("emp")));
    /// ```
    pub fn from_ddl(ddl: &str) -> Result<Catalog, Box<dyn std::error::Error>> {
        let stmts = crate::parser::parse_sql(ddl)?;
        Ok(Catalog::from_statements(&stmts)?)
    }

    /// Adds one table.
    pub fn add_table(&mut self, t: &CreateTable) -> Result<(), CatalogError> {
        let lname = t.name.to_ascii_lowercase();
        if self.columns.contains_key(&lname) {
            return Err(CatalogError::DuplicateTable(t.name.clone()));
        }
        let cols: Vec<String> = t.columns.iter().map(|c| c.name.to_ascii_lowercase()).collect();
        let has_key = t
            .constraints
            .iter()
            .any(|c| matches!(c, TableConstraint::PrimaryKey(_) | TableConstraint::Unique(_)));
        let mut rel = if has_key {
            RelSchema::set(&lname, cols.len())
        } else {
            RelSchema::bag(&lname, cols.len())
        };
        rel.attrs = Some(cols.iter().map(|c| Symbol::new(c)).collect());
        self.schema.add(rel);
        self.columns.insert(lname.clone(), cols);

        for c in &t.constraints {
            match c {
                TableConstraint::PrimaryKey(key) | TableConstraint::Unique(key) => {
                    for egd in self.key_egds(&lname, key)? {
                        self.sigma.push(egd);
                    }
                }
                TableConstraint::ForeignKey { columns, references, ref_columns } => {
                    let tgd = self.fk_tgd(&lname, columns, references, ref_columns)?;
                    self.sigma.push(tgd);
                }
            }
        }
        Ok(())
    }

    /// Column position of `column` in `table`.
    pub fn position(&self, table: &str, column: &str) -> Result<usize, CatalogError> {
        let cols = self
            .columns
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| CatalogError::UnknownTable(table.to_string()))?;
        cols.iter().position(|c| c.eq_ignore_ascii_case(column)).ok_or_else(|| {
            CatalogError::UnknownColumn { table: table.to_string(), column: column.to_string() }
        })
    }

    /// Column names of `table`.
    pub fn columns_of(&self, table: &str) -> Result<&[String], CatalogError> {
        self.columns
            .get(&table.to_ascii_lowercase())
            .map(Vec::as_slice)
            .ok_or_else(|| CatalogError::UnknownTable(table.to_string()))
    }

    /// The arity of `table`.
    pub fn arity(&self, table: &str) -> Result<usize, CatalogError> {
        Ok(self.columns_of(table)?.len())
    }

    /// One egd per non-key column: `σ(K|A)` of Appendix B.
    fn key_egds(&self, table: &str, key: &[String]) -> Result<Vec<Egd>, CatalogError> {
        let arity = self.arity(table)?;
        let key_pos: Vec<usize> =
            key.iter().map(|k| self.position(table, k)).collect::<Result<_, _>>()?;
        let pred = Predicate::new(table);
        let mut out = Vec::new();
        for target in 0..arity {
            if key_pos.contains(&target) {
                continue;
            }
            let mk = |suffix: &str| -> Vec<Term> {
                (0..arity)
                    .map(|i| {
                        if key_pos.contains(&i) {
                            Term::var(&format!("K{i}"))
                        } else {
                            Term::var(&format!("V{i}{suffix}"))
                        }
                    })
                    .collect()
            };
            let a1 = Atom { pred, args: mk("a") };
            let a2 = Atom { pred, args: mk("b") };
            let (t1, t2) = (a1.args[target], a2.args[target]);
            out.push(Egd::new(vec![a1, a2], t1, t2));
        }
        Ok(out)
    }

    /// The inclusion tgd of a foreign key.
    fn fk_tgd(
        &self,
        table: &str,
        columns: &[String],
        references: &str,
        ref_columns: &[String],
    ) -> Result<Tgd, CatalogError> {
        if columns.len() != ref_columns.len() {
            return Err(CatalogError::ForeignKeyArity);
        }
        let arity = self.arity(table)?;
        let ref_arity = self.arity(references)?;
        let src_pos: Vec<usize> =
            columns.iter().map(|c| self.position(table, c)).collect::<Result<_, _>>()?;
        let dst_pos: Vec<usize> =
            ref_columns.iter().map(|c| self.position(references, c)).collect::<Result<_, _>>()?;
        let lhs_args: Vec<Term> = (0..arity).map(|i| Term::var(&format!("X{i}"))).collect();
        let rhs_args: Vec<Term> = (0..ref_arity)
            .map(|j| match dst_pos.iter().position(|&d| d == j) {
                Some(k) => lhs_args[src_pos[k]],
                None => Term::var(&format!("F{j}")),
            })
            .collect();
        Ok(Tgd::new(
            vec![Atom { pred: Predicate::new(table), args: lhs_args }],
            vec![Atom { pred: Predicate::new(references), args: rhs_args }],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        Catalog::from_ddl(
            "CREATE TABLE dept (id INT, city VARCHAR, PRIMARY KEY (id)); \
             CREATE TABLE emp (id INT, dept INT, salary INT, PRIMARY KEY (id), \
                               FOREIGN KEY (dept) REFERENCES dept (id)); \
             CREATE TABLE log (emp INT, note VARCHAR);",
        )
        .unwrap()
    }

    #[test]
    fn keyed_tables_are_set_valued() {
        let c = sample();
        assert!(c.schema.is_set_valued(Predicate::new("dept")));
        assert!(c.schema.is_set_valued(Predicate::new("emp")));
        assert!(!c.schema.is_set_valued(Predicate::new("log")));
    }

    #[test]
    fn key_egds_cover_every_non_key_column() {
        let c = sample();
        // dept: 1 key egd (city); emp: 2 (dept, salary); + 1 FK tgd.
        assert_eq!(c.sigma.egds().count(), 3);
        assert_eq!(c.sigma.tgds().count(), 1);
    }

    #[test]
    fn fk_becomes_inclusion_tgd() {
        let c = sample();
        let tgd = c.sigma.tgds().next().unwrap();
        assert_eq!(tgd.to_string(), "emp(X0, X1, X2) -> dept(X1, F1)");
        assert!(tgd.is_inclusion());
    }

    #[test]
    fn key_egd_is_fd_shaped() {
        let c = sample();
        let egd = c.sigma.egds().next().unwrap();
        let fd = eqsql_deps::fd::egd_as_fd(egd).expect("key egds are fds");
        assert_eq!(fd.rel, Predicate::new("dept"));
    }

    #[test]
    fn position_resolution() {
        let c = sample();
        assert_eq!(c.position("emp", "salary").unwrap(), 2);
        assert_eq!(c.position("EMP", "SALARY").unwrap(), 2);
        assert!(c.position("emp", "nope").is_err());
        assert!(c.position("nope", "x").is_err());
    }

    #[test]
    fn duplicate_tables_rejected() {
        let err = Catalog::from_ddl("CREATE TABLE a (x INT); CREATE TABLE a (y INT);");
        assert!(err.is_err());
    }

    #[test]
    fn fk_arity_mismatch_rejected() {
        let r = Catalog::from_ddl(
            "CREATE TABLE b (x INT, PRIMARY KEY (x)); \
             CREATE TABLE a (x INT, y INT, FOREIGN KEY (x, y) REFERENCES b (x));",
        );
        assert!(r.is_err());
    }

    #[test]
    fn composite_key() {
        let c =
            Catalog::from_ddl("CREATE TABLE t (a INT, b INT, w INT, PRIMARY KEY (a, b));").unwrap();
        // Exactly the σ8 of Example 4.1: t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.
        let egd = c.sigma.egds().next().unwrap();
        let fd = eqsql_deps::fd::egd_as_fd(egd).unwrap();
        assert_eq!(fd.lhs, std::collections::BTreeSet::from([0, 1]));
        assert_eq!(fd.rhs, 2);
    }
}
