//! Semiring-annotated evaluation (Green–Karvounarakis–Tannen provenance).
//!
//! The paper's three semantics are instances of one algebraic scheme:
//! annotate stored tuples with elements of a commutative semiring, take
//! products across a satisfying assignment's subgoals and sums across
//! assignments producing the same head tuple. Then
//!
//! * the **counting semiring** `(ℕ, +, ×)` *is* bag semantics (§2.2's
//!   `Π_i m_i` rule),
//! * the **boolean semiring** is set semantics,
//! * counting with all annotations 1 is bag-set semantics, and
//! * the **provenance polynomials** `ℕ[X]` record *why* each answer holds;
//!   substituting stored multiplicities for the indeterminates recovers
//!   the bag answer (the specialization property, tested below and in the
//!   property suite).
//!
//! This module is a substrate extension beyond the paper; it is
//! cross-checked against the naive evaluators of [`crate::eval`].

use crate::database::Database;
use crate::eval::for_each_assignment;
use crate::relation::Relation;
use crate::tuple::Tuple;
use eqsql_cq::{CqQuery, Predicate, Term};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

/// A commutative semiring.
pub trait Semiring {
    /// The carrier.
    type Elem: Clone + PartialEq + fmt::Debug;
    /// Additive identity (absent tuple).
    fn zero() -> Self::Elem;
    /// Multiplicative identity.
    fn one() -> Self::Elem;
    /// Addition (alternative derivations).
    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Multiplication (joint use).
    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// `(ℕ, +, ×)` — bag semantics.
pub struct Counting;

impl Semiring for Counting {
    type Elem = u64;
    fn zero() -> u64 {
        0
    }
    fn one() -> u64 {
        1
    }
    fn add(a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }
    fn mul(a: &u64, b: &u64) -> u64 {
        a.saturating_mul(*b)
    }
}

/// `({false,true}, ∨, ∧)` — set semantics.
pub struct Boolean;

impl Semiring for Boolean {
    type Elem = bool;
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn mul(a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// A tuple identifier: relation plus tuple (used as a provenance
/// indeterminate).
pub type TupleId = (Predicate, Tuple);

/// A monomial over tuple ids: indeterminate → exponent.
pub type Monomial = BTreeMap<TupleId, u32>;

/// A provenance polynomial in `ℕ[X]`: monomial → coefficient.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial(pub BTreeMap<Monomial, u64>);

impl Polynomial {
    /// The polynomial `x` for a single indeterminate.
    pub fn var(id: TupleId) -> Polynomial {
        let mut m = Monomial::new();
        m.insert(id, 1);
        Polynomial(BTreeMap::from([(m, 1)]))
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.0.is_empty()
    }

    /// Evaluates the polynomial by substituting `valuation(x)` for each
    /// indeterminate — the specialization homomorphism ℕ\[X\] → ℕ.
    pub fn evaluate(&self, valuation: impl Fn(&TupleId) -> u64) -> u64 {
        self.0
            .iter()
            .map(|(mono, coeff)| {
                mono.iter().fold(*coeff, |acc, (id, exp)| {
                    acc.saturating_mul(valuation(id).saturating_pow(*exp))
                })
            })
            .fold(0u64, u64::saturating_add)
    }

    /// Total number of monomials.
    pub fn monomials(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        for (mono, coeff) in &self.0 {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            if *coeff != 1 || mono.is_empty() {
                write!(f, "{coeff}")?;
                if !mono.is_empty() {
                    f.write_str("·")?;
                }
            }
            let mut first_var = true;
            for ((pred, tuple), exp) in mono {
                if !first_var {
                    f.write_str("·")?;
                }
                first_var = false;
                write!(f, "{pred}{tuple}")?;
                if *exp > 1 {
                    write!(f, "^{exp}")?;
                }
            }
        }
        Ok(())
    }
}

/// The `ℕ[X]` provenance semiring.
pub struct Provenance;

impl Semiring for Provenance {
    type Elem = Polynomial;
    fn zero() -> Polynomial {
        Polynomial::default()
    }
    fn one() -> Polynomial {
        Polynomial(BTreeMap::from([(Monomial::new(), 1)]))
    }
    fn add(a: &Polynomial, b: &Polynomial) -> Polynomial {
        let mut out = a.clone();
        for (m, c) in &b.0 {
            *out.0.entry(m.clone()).or_insert(0) += c;
        }
        out
    }
    fn mul(a: &Polynomial, b: &Polynomial) -> Polynomial {
        let mut out = Polynomial::default();
        for (ma, ca) in &a.0 {
            for (mb, cb) in &b.0 {
                let mut m = ma.clone();
                for (id, e) in mb {
                    *m.entry(id.clone()).or_insert(0) += e;
                }
                *out.0.entry(m).or_insert(0) += ca.saturating_mul(*cb);
            }
        }
        out
    }
}

/// A per-tuple annotation function.
pub trait Annotation<S: Semiring> {
    /// Annotation of a stored tuple (with its stored multiplicity).
    fn annotate(&self, pred: Predicate, tuple: &Tuple, mult: u64) -> S::Elem;
}

/// Annotate by stored multiplicity (counting) — bag semantics.
pub struct ByMultiplicity;

impl Annotation<Counting> for ByMultiplicity {
    fn annotate(&self, _: Predicate, _: &Tuple, mult: u64) -> u64 {
        mult
    }
}

/// Annotate every tuple `true` — set semantics.
pub struct ByPresence;

impl Annotation<Boolean> for ByPresence {
    fn annotate(&self, _: Predicate, _: &Tuple, _: u64) -> bool {
        true
    }
}

/// Annotate every tuple with its own indeterminate — full provenance.
pub struct ByIdentity;

impl Annotation<Provenance> for ByIdentity {
    fn annotate(&self, pred: Predicate, tuple: &Tuple, _: u64) -> Polynomial {
        Polynomial::var((pred, tuple.clone()))
    }
}

/// Evaluates `q` over `db` in the semiring `S`: for every satisfying
/// assignment, the product of the subgoal annotations; summed per head
/// tuple. Returns `(head tuple, annotation)` pairs sorted by tuple.
pub fn eval_semiring<S: Semiring>(
    q: &CqQuery,
    db: &Database,
    ann: &impl Annotation<S>,
) -> Vec<(Tuple, S::Elem)> {
    let mut acc: HashMap<Tuple, S::Elem> = HashMap::new();
    for_each_assignment(&q.body, db, |asg| {
        let mut prod = S::one();
        for atom in &q.body {
            let tuple = Tuple::new(
                atom.args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => asg[v],
                    })
                    .collect(),
            );
            let rel = db.get(atom.pred).expect("assignment implies relation");
            let a = ann.annotate(atom.pred, &tuple, rel.multiplicity(&tuple));
            prod = S::mul(&prod, &a);
        }
        let head = Tuple::new(
            q.head
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => asg[v],
                })
                .collect(),
        );
        match acc.get_mut(&head) {
            Some(existing) => *existing = S::add(existing, &prod),
            None => {
                acc.insert(head, prod);
            }
        }
    });
    let mut out: Vec<(Tuple, S::Elem)> = acc.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Counting evaluation as a [`Relation`] — must coincide with
/// [`crate::eval::eval_bag`].
pub fn eval_counting(q: &CqQuery, db: &Database) -> Relation {
    let rows = eval_semiring::<Counting>(q, db, &ByMultiplicity);
    let mut out = Relation::new(q.head.len());
    for (t, m) in rows {
        if m > 0 {
            out.insert(t, m);
        }
    }
    out
}

/// Full provenance evaluation.
pub fn eval_provenance(q: &CqQuery, db: &Database) -> Vec<(Tuple, Polynomial)> {
    eval_semiring::<Provenance>(q, db, &ByIdentity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_bag, eval_set};
    use eqsql_cq::parse_query;

    fn db() -> Database {
        let mut db = Database::new().with_ints("p", &[[1, 2], [1, 3]]);
        db.insert("r", Tuple::ints([1]), 2);
        db
    }

    #[test]
    fn counting_semiring_is_bag_semantics() {
        let q = parse_query("q(X) :- p(X,Y), r(X)").unwrap();
        let d = db();
        assert_eq!(eval_counting(&q, &d).sorted(), eval_bag(&q, &d).sorted());
    }

    #[test]
    fn boolean_semiring_is_set_semantics() {
        let q = parse_query("q(X) :- p(X,Y), r(X)").unwrap();
        let d = db().to_set();
        let rows = eval_semiring::<Boolean>(&q, &d, &ByPresence);
        let set = eval_set(&q, &d).unwrap();
        assert_eq!(rows.len(), set.core_len() as usize);
        for (t, b) in rows {
            assert!(b);
            assert!(set.contains(&t));
        }
    }

    #[test]
    fn provenance_polynomials_record_derivations() {
        let q = parse_query("q(X) :- p(X,Y), r(X)").unwrap();
        let d = db();
        let rows = eval_provenance(&q, &d);
        assert_eq!(rows.len(), 1);
        let (t, poly) = &rows[0];
        assert_eq!(*t, Tuple::ints([1]));
        // Two derivations: p(1,2)·r(1) and p(1,3)·r(1).
        assert_eq!(poly.monomials(), 2);
        let rendered = poly.to_string();
        assert!(rendered.contains("p(1, 2)"), "{rendered}");
        assert!(rendered.contains("p(1, 3)"), "{rendered}");
        assert!(rendered.contains("r(1)"), "{rendered}");
    }

    #[test]
    fn self_join_squares_the_indeterminate() {
        let q = parse_query("q(X) :- r(X), r(X)").unwrap();
        let d = db();
        let rows = eval_provenance(&q, &d);
        assert_eq!(rows[0].1.to_string(), "r(1)^2");
    }

    #[test]
    fn specialization_recovers_bag_answers() {
        // Substituting stored multiplicities into the provenance
        // polynomial yields exactly the bag multiplicity.
        let q = parse_query("q(X) :- p(X,Y), r(X), r(X)").unwrap();
        let d = db();
        let bag = eval_bag(&q, &d);
        for (t, poly) in eval_provenance(&q, &d) {
            let specialized =
                poly.evaluate(|(pred, tuple)| d.get(*pred).map_or(0, |r| r.multiplicity(tuple)));
            assert_eq!(specialized, bag.multiplicity(&t), "tuple {t}: {poly}");
        }
    }

    #[test]
    fn all_ones_specialization_is_bag_set() {
        use crate::eval::eval_bag_set;
        let q = parse_query("q(X) :- p(X,Y), r(X)").unwrap();
        let d = db().to_set();
        let bs = eval_bag_set(&q, &d).unwrap();
        for (t, poly) in eval_provenance(&q, &d) {
            assert_eq!(poly.evaluate(|_| 1), bs.multiplicity(&t));
        }
    }

    #[test]
    fn empty_answer_has_no_rows() {
        let q = parse_query("q(X) :- p(X,Y), missing(X)").unwrap();
        assert!(eval_provenance(&q, &db()).is_empty());
    }
}
