//! Evaluation errors.

use std::fmt;

/// An error raised by the evaluators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Bag-set (or set) evaluation was requested on a database that is not
    /// set-valued — both are defined only over set-valued databases
    /// (§2.1–2.2 of the paper).
    NotSetValued,
    /// A relation referenced by the query is missing and no arity is known.
    ArityMismatch {
        /// The offending relation name.
        relation: String,
        /// Arity expected by the query atom.
        expected: usize,
        /// Arity found in the database.
        found: usize,
    },
    /// SUM/MIN/MAX over a non-numeric value.
    NonNumericAggregate,
    /// MIN/MAX over an empty group — undefined for the compared semantics.
    EmptyAggregate,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotSetValued => {
                write!(f, "bag-set/set evaluation requires a set-valued database")
            }
            EvalError::ArityMismatch { relation, expected, found } => {
                write!(f, "relation '{relation}': query uses arity {expected}, stored {found}")
            }
            EvalError::NonNumericAggregate => write!(f, "aggregate over non-numeric values"),
            EvalError::EmptyAggregate => write!(f, "min/max over an empty group"),
        }
    }
}

impl std::error::Error for EvalError {}
