//! Naive evaluation of conjunctive queries under the three semantics.
//!
//! This module transcribes the paper's definitions literally:
//!
//! * an **assignment** γ maps the body variables to constants such that each
//!   subgoal lands on a stored tuple (§2.1);
//! * under **set semantics**, the answer is the set of head tuples γ(X̄);
//! * under **bag-set semantics**, every satisfying assignment contributes
//!   one copy of γ(X̄) (§2.2) — the database must be set-valued;
//! * under **bag semantics**, every satisfying assignment contributes
//!   `Π_i m_i` copies, where `m_i` is the stored multiplicity of the tuple
//!   the i-th subgoal lands on (§2.2).
//!
//! Assignments are enumerated by backtracking over the body atoms, matching
//! against the **core-sets** of the stored relations, which makes the
//! multiplicity product well-defined.

use crate::database::Database;
use crate::error::EvalError;
use crate::relation::Relation;
use crate::tuple::Tuple;
use eqsql_cq::{Atom, CqQuery, Term, Value, Var};
use std::collections::HashMap;
use std::fmt;

/// The three query-evaluation semantics of the paper (§2).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Semantics {
    /// Set semantics: sets in, sets out.
    Set,
    /// Bag semantics: bags in, bags out.
    Bag,
    /// Bag-set semantics: sets in, bags out.
    BagSet,
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::Set => f.write_str("S"),
            Semantics::Bag => f.write_str("B"),
            Semantics::BagSet => f.write_str("BS"),
        }
    }
}

/// A satisfying assignment for a query body.
pub type Assignment = HashMap<Var, Value>;

/// Enumerates all assignments satisfying `body` w.r.t. `db`, calling
/// `emit` with each. Matching is against core-sets, so each distinct γ is
/// produced exactly once.
pub fn for_each_assignment(body: &[Atom], db: &Database, mut emit: impl FnMut(&Assignment)) {
    fn go(
        body: &[Atom],
        db: &Database,
        idx: usize,
        asg: &mut Assignment,
        emit: &mut impl FnMut(&Assignment),
    ) {
        if idx == body.len() {
            emit(asg);
            return;
        }
        let atom = &body[idx];
        let Some(rel) = db.get(atom.pred) else {
            return; // empty relation: no assignments
        };
        if rel.arity() != atom.arity() {
            return;
        }
        'tuples: for t in rel.core_set() {
            let mut added: Vec<Var> = Vec::new();
            for (arg, val) in atom.args.iter().zip(t.iter()) {
                match arg {
                    Term::Const(c) => {
                        if c != val {
                            for v in added.drain(..) {
                                asg.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match asg.get(v) {
                        Some(bound) => {
                            if bound != val {
                                for w in added.drain(..) {
                                    asg.remove(&w);
                                }
                                continue 'tuples;
                            }
                        }
                        None => {
                            asg.insert(*v, *val);
                            added.push(*v);
                        }
                    },
                }
            }
            go(body, db, idx + 1, asg, emit);
            for v in added {
                asg.remove(&v);
            }
        }
    }
    let mut asg = Assignment::new();
    go(body, db, 0, &mut asg, &mut emit);
}

/// All satisfying assignments, collected.
pub fn assignments(body: &[Atom], db: &Database) -> Vec<Assignment> {
    let mut out = Vec::new();
    for_each_assignment(body, db, |a| out.push(a.clone()));
    out
}

fn head_tuple(head: &[Term], asg: &Assignment) -> Tuple {
    Tuple::new(
        head.iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *asg.get(v).expect("safe query: head var bound"),
            })
            .collect(),
    )
}

/// The multiplicity contribution `Π_i m_i` of assignment `asg` (§2.2).
fn bag_multiplicity(body: &[Atom], db: &Database, asg: &Assignment) -> u64 {
    let mut m: u64 = 1;
    for atom in body {
        let rel = db.get(atom.pred).expect("assignment implies relation exists");
        let t = Tuple::new(
            atom.args
                .iter()
                .map(|arg| match arg {
                    Term::Const(c) => *c,
                    Term::Var(v) => *asg.get(v).expect("assignment is total"),
                })
                .collect(),
        );
        m = m.saturating_mul(rel.multiplicity(&t));
    }
    m
}

/// `Q(D, S)` — evaluation under set semantics. Requires `db` set-valued.
pub fn eval_set(q: &CqQuery, db: &Database) -> Result<Relation, EvalError> {
    if !db.is_set_valued() {
        return Err(EvalError::NotSetValued);
    }
    let mut out = Relation::new(q.head.len());
    for_each_assignment(&q.body, db, |asg| {
        let t = head_tuple(&q.head, asg);
        if !out.contains(&t) {
            out.insert(t, 1);
        }
    });
    Ok(out)
}

/// `Q(D, BS)` — evaluation under bag-set semantics. Requires `db`
/// set-valued.
pub fn eval_bag_set(q: &CqQuery, db: &Database) -> Result<Relation, EvalError> {
    if !db.is_set_valued() {
        return Err(EvalError::NotSetValued);
    }
    let mut out = Relation::new(q.head.len());
    for_each_assignment(&q.body, db, |asg| {
        out.insert(head_tuple(&q.head, asg), 1);
    });
    Ok(out)
}

/// `Q(D, B)` — evaluation under bag semantics on a (generally bag-valued)
/// database.
///
/// ```
/// use eqsql_cq::parse_query;
/// use eqsql_relalg::{eval_bag, Database, Tuple};
///
/// let mut db = Database::new().with_ints("p", &[[1, 2]]);
/// db.insert("r", Tuple::ints([1]), 3); // bag relation: 3 copies
/// let q = parse_query("q(X) :- p(X,Y), r(X)").unwrap();
/// // One assignment, multiplicities multiply: 1 × 3 copies of (1).
/// assert_eq!(eval_bag(&q, &db).multiplicity(&Tuple::ints([1])), 3);
/// ```
pub fn eval_bag(q: &CqQuery, db: &Database) -> Relation {
    let mut out = Relation::new(q.head.len());
    for_each_assignment(&q.body, db, |asg| {
        let m = bag_multiplicity(&q.body, db, asg);
        if m > 0 {
            out.insert(head_tuple(&q.head, asg), m);
        }
    });
    out
}

/// Evaluation under the given semantics. For [`Semantics::Bag`] the result
/// is always `Ok`.
pub fn eval(q: &CqQuery, db: &Database, sem: Semantics) -> Result<Relation, EvalError> {
    match sem {
        Semantics::Set => eval_set(q, db),
        Semantics::BagSet => eval_bag_set(q, db),
        Semantics::Bag => Ok(eval_bag(q, db)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    /// Example 4.1's counterexample database:
    /// P = {{(1,2)}}, R = {{(1)}}, S = {{(1,3)}}, T = {{(1,2,4)}},
    /// U = {{(1,5),(1,6)}}.
    fn example_4_1_db() -> Database {
        Database::new()
            .with_ints("p", &[[1, 2]])
            .with_ints("r", &[[1]])
            .with_ints("s", &[[1, 3]])
            .with_ints("t", &[[1, 2, 4]])
            .with_ints("u", &[[1, 5], [1, 6]])
    }

    #[test]
    fn example_4_1_bag_counterexample() {
        // Q4(X) :- p(X,Y): answer {{(1)}}.
        // Q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U): answer {{(1),(1)}}.
        let db = example_4_1_db();
        let q4 = q("q4(X) :- p(X,Y)");
        let q1 = q("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)");
        let a4 = eval_bag(&q4, &db);
        let a1 = eval_bag(&q1, &db);
        assert_eq!(a4.multiplicity(&Tuple::ints([1])), 1);
        assert_eq!(a1.multiplicity(&Tuple::ints([1])), 2);
        assert_ne!(a1, a4);
        // The same (set-valued) database also separates them under BS.
        let b4 = eval_bag_set(&q4, &db).unwrap();
        let b1 = eval_bag_set(&q1, &db).unwrap();
        assert_ne!(b1, b4);
        // But NOT under set semantics.
        assert_eq!(eval_set(&q1, &db).unwrap(), eval_set(&q4, &db).unwrap());
    }

    #[test]
    fn bag_multiplicities_multiply() {
        // Example D.1: S = {{(1,3),(1,3)}} and Q with one s-subgoal vs two.
        let mut db = Database::new().with_ints("p", &[[1, 2]]).with_ints("t", &[[1, 2, 5]]);
        db.insert("s", Tuple::ints([1, 3]), 2);
        let q3 = q("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)");
        let q5 = q("q5(X) :- p(X,Y), t(X,Y,W), s(X,Z), s(X,Z)");
        assert_eq!(eval_bag(&q3, &db).multiplicity(&Tuple::ints([1])), 2);
        assert_eq!(eval_bag(&q5, &db).multiplicity(&Tuple::ints([1])), 4);
    }

    #[test]
    fn bag_set_counts_assignments_not_tuples() {
        // Two assignments for Y produce two copies of (1).
        let db = Database::new().with_ints("p", &[[1, 2], [1, 3]]);
        let qq = q("q(X) :- p(X,Y)");
        let a = eval_bag_set(&qq, &db).unwrap();
        assert_eq!(a.multiplicity(&Tuple::ints([1])), 2);
        // Set semantics dedups.
        assert_eq!(eval_set(&qq, &db).unwrap().multiplicity(&Tuple::ints([1])), 1);
    }

    #[test]
    fn bag_set_rejects_bag_database() {
        let mut db = Database::new();
        db.insert("p", Tuple::ints([1, 2]), 2);
        let qq = q("q(X) :- p(X,Y)");
        assert_eq!(eval_bag_set(&qq, &db), Err(EvalError::NotSetValued));
        assert_eq!(eval_set(&qq, &db), Err(EvalError::NotSetValued));
    }

    #[test]
    fn constants_filter() {
        let db = Database::new().with_ints("p", &[[1, 2], [3, 4]]);
        let qq = q("q(X) :- p(X, 4)");
        let a = eval_bag(&qq, &db);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&Tuple::ints([3])));
    }

    #[test]
    fn repeated_variable_in_atom() {
        let db = Database::new().with_ints("p", &[[1, 1], [1, 2]]);
        let qq = q("q(X) :- p(X, X)");
        let a = eval_bag(&qq, &db);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&Tuple::ints([1])));
    }

    #[test]
    fn missing_relation_means_empty() {
        let db = Database::new();
        let qq = q("q(X) :- p(X, Y)");
        assert!(eval_bag(&qq, &db).is_empty());
    }

    #[test]
    fn cross_product_multiplicities() {
        // q(X,Z) :- p(X), r(Z) with bag multiplicities 2 and 3 -> 6 copies.
        let mut db = Database::new();
        db.insert("p", Tuple::ints([1]), 2);
        db.insert("r", Tuple::ints([9]), 3);
        let qq = q("q(X,Z) :- p(X), r(Z)");
        let a = eval_bag(&qq, &db);
        assert_eq!(a.multiplicity(&Tuple::ints([1, 9])), 6);
    }
}
