//! Canonical databases (§2.1 of the paper).
//!
//! The canonical database `D(Q)` of a CQ query `Q` freezes the body: every
//! variable becomes a distinct fresh constant (a [`eqsql_cq::Value::Labeled`]
//! value, distinct from all constants of `Q`), and every body atom becomes a
//! stored tuple. `D(Q)` is unique up to isomorphism. Note that the
//! canonical database of a query with duplicate subgoals is the same as that
//! of its canonical representation — freezing a *set*.

use crate::database::Database;
use crate::tuple::Tuple;
use eqsql_cq::{CqQuery, Subst, Term, Value, Var};
use std::collections::HashMap;

/// The result of freezing a query.
#[derive(Clone, Debug)]
pub struct CanonicalDb {
    /// The canonical database.
    pub db: Database,
    /// The freezing assignment from the query's variables to the fresh
    /// constants (also a satisfying assignment of `Q` w.r.t. `db`).
    pub assignment: HashMap<Var, Value>,
}

impl CanonicalDb {
    /// The freezing assignment as a substitution (vars to constant terms).
    pub fn as_subst(&self) -> Subst {
        Subst::from_pairs(self.assignment.iter().map(|(v, c)| (*v, Term::Const(*c))))
    }

    /// The frozen head tuple of `q` under the freezing assignment.
    pub fn head_tuple(&self, q: &CqQuery) -> Tuple {
        Tuple::new(
            q.head
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => self.assignment[v],
                })
                .collect(),
        )
    }
}

/// Builds the canonical database of `q`. Fresh constants are labelled
/// values numbered from `label_base` (use different bases to freeze two
/// queries over disjoint constants).
pub fn canonical_database(q: &CqQuery, label_base: u64) -> CanonicalDb {
    let mut assignment: HashMap<Var, Value> = HashMap::new();
    let mut next = label_base;
    let mut db = Database::new();
    for atom in &q.body {
        let vals: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *assignment.entry(*v).or_insert_with(|| {
                    let val = Value::Labeled(next);
                    next += 1;
                    val
                }),
            })
            .collect();
        let rel = db.get_or_create(atom.pred, vals.len());
        let tup = Tuple::new(vals);
        // Canonical databases are set-valued: duplicate subgoals freeze to
        // the same tuple, stored once.
        if !rel.contains(&tup) {
            rel.insert(tup, 1);
        }
    }
    CanonicalDb { db, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_bag_set, eval_set};
    use eqsql_cq::parse_query;

    #[test]
    fn canonical_db_satisfies_query() {
        let q = parse_query("q(X) :- p(X,Y), s(Y,Z)").unwrap();
        let c = canonical_database(&q, 0);
        assert!(c.db.is_set_valued());
        let ans = eval_set(&q, &c.db).unwrap();
        assert!(ans.contains(&c.head_tuple(&q)));
    }

    #[test]
    fn duplicate_subgoals_freeze_once() {
        let q = parse_query("q(X) :- s(X,Z), s(X,Z)").unwrap();
        let c = canonical_database(&q, 0);
        assert_eq!(c.db.get_str("s").unwrap().len(), 1);
    }

    #[test]
    fn constants_are_kept() {
        let q = parse_query("q(X) :- p(X, 7)").unwrap();
        let c = canonical_database(&q, 0);
        let rel = c.db.get_str("p").unwrap();
        let t = rel.core_set().next().unwrap();
        assert_eq!(t[1], Value::Int(7));
        assert!(t[0].is_labeled());
    }

    #[test]
    fn label_base_separates_freezes() {
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let a = canonical_database(&q, 0);
        let b = canonical_database(&q, 100);
        let ta = a.db.get_str("p").unwrap().core_set().next().unwrap().clone();
        let tb = b.db.get_str("p").unwrap().core_set().next().unwrap().clone();
        assert_ne!(ta, tb);
    }

    #[test]
    fn chandra_merlin_canonical_db_test() {
        // Q2 ⊑_S Q1 iff Q1 returns Q2's frozen head on D(Q2).
        let q1 = parse_query("q(X) :- p(X,Y)").unwrap();
        let q2 = parse_query("q(X) :- p(X,X)").unwrap();
        let c2 = canonical_database(&q2, 0);
        let a = eval_bag_set(&q1, &c2.db).unwrap();
        assert!(a.contains(&c2.head_tuple(&q2)));
        // And Q1 ⋢_S Q2: Q2 on D(Q1) misses the frozen head.
        let c1 = canonical_database(&q1, 0);
        let b = eval_bag_set(&q2, &c1.db).unwrap();
        assert!(!b.contains(&c1.head_tuple(&q1)));
    }
}
