//! Bag-valued relations.
//!
//! A relation is a bag of tuples: a *core-set* of distinct tuples with a
//! positive multiplicity attached to each (§2.1 of the paper). A relation is
//! *set-valued* when every multiplicity is 1.

use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;

/// A bag of tuples of a fixed arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    arity: usize,
    tuples: HashMap<Tuple, u64>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation { arity, tuples: HashMap::new() }
    }

    /// Builds a set-valued relation from distinct tuples (duplicates in the
    /// input accumulate multiplicity, making it bag-valued).
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t, 1);
        }
        r
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts `mult` copies of `tuple`.
    ///
    /// # Panics
    /// If the tuple arity mismatches or `mult == 0`.
    pub fn insert(&mut self, tuple: Tuple, mult: u64) {
        assert_eq!(tuple.arity(), self.arity, "tuple arity mismatch");
        assert!(mult > 0, "multiplicity must be positive");
        *self.tuples.entry(tuple).or_insert(0) += mult;
    }

    /// Removes all copies of `tuple`, returning the removed multiplicity.
    pub fn remove(&mut self, tuple: &Tuple) -> u64 {
        self.tuples.remove(tuple).unwrap_or(0)
    }

    /// Multiplicity of `tuple` (0 when absent).
    pub fn multiplicity(&self, tuple: &Tuple) -> u64 {
        self.tuples.get(tuple).copied().unwrap_or(0)
    }

    /// Does the bag contain `tuple` at all?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains_key(tuple)
    }

    /// Size of the core-set (number of distinct tuples).
    pub fn core_len(&self) -> usize {
        self.tuples.len()
    }

    /// Total bag cardinality (sum of multiplicities).
    pub fn len(&self) -> u64 {
        self.tuples.values().sum()
    }

    /// Is the bag empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Is the relation set-valued (cardinality equals core-set size)?
    pub fn is_set_valued(&self) -> bool {
        self.tuples.values().all(|&m| m == 1)
    }

    /// Iterates over `(tuple, multiplicity)` pairs in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> + '_ {
        self.tuples.iter().map(|(t, m)| (t, *m))
    }

    /// The core-set as an iterator of distinct tuples.
    pub fn core_set(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.keys()
    }

    /// A set-valued copy (all multiplicities forced to 1).
    pub fn to_set(&self) -> Relation {
        Relation { arity: self.arity, tuples: self.tuples.keys().map(|t| (t.clone(), 1)).collect() }
    }

    /// Deterministically sorted `(tuple, multiplicity)` pairs.
    pub fn sorted(&self) -> Vec<(Tuple, u64)> {
        let mut v: Vec<(Tuple, u64)> = self.tuples.iter().map(|(t, m)| (t.clone(), *m)).collect();
        v.sort();
        v
    }

    /// Bag union: adds all of `other` into `self`.
    pub fn union_in_place(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity);
        for (t, m) in other.iter() {
            self.insert(t.clone(), m);
        }
    }

    /// Bag projection on `positions` (Appendix E.1): each copy of each tuple
    /// contributes one projected copy.
    pub fn project(&self, positions: &[usize]) -> Relation {
        let mut out = Relation::new(positions.len());
        for (t, m) in self.iter() {
            out.insert(t.project(positions), m);
        }
        out
    }
}

// `Display` writes `{{t1, t1, t2}}`-style bag notation, matching the paper.
impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{{")?;
        let mut first = true;
        for (t, m) in self.sorted() {
            for _ in 0..m {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{t}")?;
            }
        }
        write!(f, "}}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_multiplicities_accumulate() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints([1, 2]), 1);
        r.insert(Tuple::ints([1, 2]), 2);
        assert_eq!(r.multiplicity(&Tuple::ints([1, 2])), 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.core_len(), 1);
        assert!(!r.is_set_valued());
    }

    #[test]
    fn set_valued_detection() {
        let r = Relation::from_tuples(1, [Tuple::ints([1]), Tuple::ints([2])]);
        assert!(r.is_set_valued());
    }

    #[test]
    fn to_set_flattens() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints([5]), 4);
        let s = r.to_set();
        assert!(s.is_set_valued());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bag_projection_keeps_duplicates() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints([1, 2]), 1);
        r.insert(Tuple::ints([1, 3]), 1);
        let p = r.project(&[0]);
        assert_eq!(p.multiplicity(&Tuple::ints([1])), 2);
    }

    #[test]
    fn display_is_bag_notation() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints([1]), 2);
        assert_eq!(r.to_string(), "{{(1), (1)}}");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints([1]), 1);
    }
}
