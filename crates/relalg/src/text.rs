//! A plain-text database format.
//!
//! One fact per statement, `.`-terminated; repeating a fact raises its
//! multiplicity (bag notation by repetition):
//!
//! ```text
//! % Example 4.1's counterexample database
//! p(1, 2).
//! u(1, 5). u(1, 6).
//! s(1, 'oslo').
//! ```
//!
//! [`parse_database`] reads this; [`render_database`] writes it back
//! (multiplicities expanded), so databases round-trip.

use crate::database::Database;
use crate::tuple::Tuple;
use eqsql_cq::lex::Token;
use eqsql_cq::parser::{Cursor, ParseError};
use eqsql_cq::{Term, Value};

/// Parses a fact database. Every argument must be a constant.
pub fn parse_database(input: &str) -> Result<Database, ParseError> {
    let mut c = Cursor::new(input)?;
    let mut db = Database::new();
    while !c.done() {
        let atom = c.parse_atom()?;
        c.eat(&Token::Dot);
        let mut vals: Vec<Value> = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(v) => vals.push(*v),
                Term::Var(v) => {
                    return Err(ParseError {
                        msg: format!("facts must be ground; found variable '{v}'"),
                        at: usize::MAX,
                    })
                }
            }
        }
        db.insert(atom.pred.name(), Tuple::new(vals), 1);
    }
    Ok(db)
}

/// Renders a database in the fact format (multiplicities expanded, sorted
/// deterministically).
pub fn render_database(db: &Database) -> String {
    let mut out = String::new();
    for (pred, rel) in db.iter() {
        for (tuple, mult) in rel.sorted() {
            for _ in 0..mult {
                out.push_str(pred.name());
                out.push('(');
                for (i, v) in tuple.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&v.to_string());
                }
                out.push_str(").\n");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_facts() {
        let db = parse_database("p(1, 2). p(1, 3). r(1).").unwrap();
        assert_eq!(db.get_str("p").unwrap().len(), 2);
        assert_eq!(db.get_str("r").unwrap().len(), 1);
    }

    #[test]
    fn repetition_is_multiplicity() {
        let db = parse_database("u(1, 5). u(1, 5). u(1, 5).").unwrap();
        assert_eq!(db.get_str("u").unwrap().multiplicity(&Tuple::ints([1, 5])), 3);
        assert!(!db.is_set_valued());
    }

    #[test]
    fn strings_and_reals() {
        let db = parse_database("s(1, 'oslo'). m(2.5).").unwrap();
        let s = db.get_str("s").unwrap().core_set().next().unwrap().clone();
        assert_eq!(s[1], Value::str("oslo"));
        let m = db.get_str("m").unwrap().core_set().next().unwrap().clone();
        assert_eq!(m[0], Value::real(2.5));
    }

    #[test]
    fn variables_rejected() {
        assert!(parse_database("p(X, 2).").is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        let db = parse_database("% a comment\n  p(1,2).\n\n% another\nr(3).").unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn round_trip() {
        let text = "p(1, 2).\np(1, 2).\nr('x').\n";
        let db = parse_database(text).unwrap();
        let rendered = render_database(&db);
        let db2 = parse_database(&rendered).unwrap();
        assert_eq!(db, db2);
    }
}
