//! Tuples of constant values.

use eqsql_cq::Value;
use std::fmt;
use std::ops::Index;

/// An immutable tuple of values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Builds a tuple.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values)
    }

    /// Convenience: a tuple of integers.
    pub fn ints(values: impl IntoIterator<Item = i64>) -> Tuple {
        Tuple(values.into_iter().map(Value::Int).collect())
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Projection on the given positions (0-based), duplicating values as
    /// needed — the bag projection of Appendix E.1 at the tuple level.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i]).collect())
    }

    /// Iterates over the values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> + '_ {
        self.0.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_duplicates_positions() {
        let t = Tuple::ints([10, 20, 30]);
        assert_eq!(t.project(&[2, 0, 0]), Tuple::ints([30, 10, 10]));
    }

    #[test]
    fn display() {
        assert_eq!(Tuple::ints([1, 2]).to_string(), "(1, 2)");
    }
}
