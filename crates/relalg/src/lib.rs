//! # eqsql-relalg — bag-relational storage and evaluation
//!
//! The execution substrate of the `eqsql` workspace: bag-valued relations
//! and databases, and evaluation of conjunctive and aggregate queries under
//! the three SQL semantics the paper distinguishes (§2.1–2.2, §2.5):
//!
//! * **set semantics** (`S`) — stored relations and answers are sets;
//! * **bag-set semantics** (`BS`) — stored relations are sets, answers are
//!   bags (SQL without `DISTINCT` over `PRIMARY KEY`ed tables);
//! * **bag semantics** (`B`) — both are bags (SQL without key constraints,
//!   or over materialized views defined without `DISTINCT`).
//!
//! Two independent evaluators are provided: a naive assignment enumerator
//! ([`eval`]) that transcribes the paper's definitions literally, and a
//! bag-semantics operator algebra with a left-deep planner ([`ops`]). They
//! are cross-checked against each other in the test suite.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod canonical;
pub mod database;
pub mod error;
pub mod eval;
pub mod ops;
pub mod provenance;
pub mod relation;
pub mod schema;
pub mod text;
pub mod tuple;

pub use canonical::{canonical_database, CanonicalDb};
pub use database::Database;
pub use error::EvalError;
pub use eval::{eval_bag, eval_bag_set, eval_set, Semantics};
pub use relation::Relation;
pub use schema::{RelSchema, Schema};
pub use tuple::Tuple;
