//! Evaluation of aggregate queries (§2.5 of the paper).
//!
//! Three steps: (1) compute the bag `B = Q̆(D, BS)` of the core under
//! bag-set semantics; (2) group `B` by the grouping arguments; (3) apply the
//! aggregate function to the bag of aggregated values of each group.

use crate::database::Database;
use crate::error::EvalError;
use crate::eval::eval_bag_set;
use crate::relation::Relation;
use crate::tuple::Tuple;
use eqsql_cq::{AggFn, AggregateQuery, Value, R64};
use std::collections::HashMap;

/// One output row: the group key and the aggregated value.
#[derive(Clone, PartialEq, Debug)]
pub struct AggRow {
    /// Values of the grouping arguments.
    pub group: Tuple,
    /// The aggregate value for the group.
    pub value: Value,
}

/// Applies an aggregate function to a bag of values (with multiplicities).
pub fn apply_agg(agg: AggFn, values: &[(Value, u64)]) -> Result<Value, EvalError> {
    match agg {
        AggFn::Count | AggFn::CountStar => {
            Ok(Value::Int(values.iter().map(|(_, m)| *m as i64).sum()))
        }
        AggFn::Sum => {
            let mut int_sum: i64 = 0;
            let mut real_sum: f64 = 0.0;
            let mut any_real = false;
            for (v, m) in values {
                match v {
                    Value::Int(i) => int_sum += i * (*m as i64),
                    Value::Real(r) => {
                        any_real = true;
                        real_sum += r.get() * (*m as f64);
                    }
                    _ => return Err(EvalError::NonNumericAggregate),
                }
            }
            if any_real {
                Ok(Value::Real(R64::new(real_sum + int_sum as f64)))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        AggFn::Min | AggFn::Max => {
            let mut best: Option<f64> = None;
            let mut best_val: Option<Value> = None;
            for (v, _) in values {
                let f = v.as_f64().ok_or(EvalError::NonNumericAggregate)?;
                let better = match (agg, best) {
                    (_, None) => true,
                    (AggFn::Min, Some(b)) => f < b,
                    (AggFn::Max, Some(b)) => f > b,
                    _ => unreachable!(),
                };
                if better {
                    best = Some(f);
                    best_val = Some(*v);
                }
            }
            best_val.ok_or(EvalError::EmptyAggregate)
        }
    }
}

/// Evaluates an aggregate query on a set-valued database, returning one row
/// per group. Rows are sorted by group key for determinism.
pub fn eval_aggregate(q: &AggregateQuery, db: &Database) -> Result<Vec<AggRow>, EvalError> {
    let core = q.core();
    let bag: Relation = eval_bag_set(&core, db)?;
    let k = q.grouping.len();
    // Group: key = first k columns; value column (if any) is the last.
    let mut groups: HashMap<Tuple, Vec<(Value, u64)>> = HashMap::new();
    for (t, m) in bag.iter() {
        let key = Tuple::new(t.iter().take(k).copied().collect());
        let entry = groups.entry(key).or_default();
        match q.agg_var {
            Some(_) => entry.push((t[k], m)),
            None => entry.push((Value::Int(1), m)), // count(*): value irrelevant
        }
    }
    let mut out: Vec<AggRow> = Vec::with_capacity(groups.len());
    for (group, values) in groups {
        out.push(AggRow { group, value: apply_agg(q.agg, &values)? });
    }
    out.sort_by(|a, b| a.group.cmp(&b.group));
    Ok(out)
}

/// Do two aggregate-query answers coincide? (Definition 2.1: `Q(D) = Q'(D)`
/// as relations.)
pub fn agg_answers_equal(a: &[AggRow], b: &[AggRow]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parser::parse_aggregate_query;

    fn db() -> Database {
        // emp(dept, salary)
        Database::new().with_ints("emp", &[[1, 100], [1, 200], [2, 50]])
    }

    #[test]
    fn sum_by_group() {
        let q = parse_aggregate_query("q(D, sum(S)) :- emp(D, S)").unwrap();
        let rows = eval_aggregate(&q, &db()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], AggRow { group: Tuple::ints([1]), value: Value::Int(300) });
        assert_eq!(rows[1], AggRow { group: Tuple::ints([2]), value: Value::Int(50) });
    }

    #[test]
    fn count_star_counts_assignments() {
        let q = parse_aggregate_query("q(D, count(*)) :- emp(D, S)").unwrap();
        let rows = eval_aggregate(&q, &db()).unwrap();
        assert_eq!(rows[0].value, Value::Int(2));
        assert_eq!(rows[1].value, Value::Int(1));
    }

    #[test]
    fn min_max() {
        let qmin = parse_aggregate_query("q(D, min(S)) :- emp(D, S)").unwrap();
        let qmax = parse_aggregate_query("q(D, max(S)) :- emp(D, S)").unwrap();
        let rmin = eval_aggregate(&qmin, &db()).unwrap();
        let rmax = eval_aggregate(&qmax, &db()).unwrap();
        assert_eq!(rmin[0].value, Value::Int(100));
        assert_eq!(rmax[0].value, Value::Int(200));
    }

    #[test]
    fn sum_is_multiplicity_sensitive_but_max_is_not() {
        // The core under BS duplicates rows when an extra join partner
        // exists; SUM changes, MAX does not. This is the heart of
        // Theorem 2.3: sum/count reduce to bag-set, max/min to set.
        let mut d = db();
        d.insert_ints("bonus", [1]); // join partner for dept 1
        let q_sum_join =
            parse_aggregate_query("q(D, sum(S)) :- emp(D, S), bonus(D), bonus(D)").unwrap();
        let q_sum = parse_aggregate_query("q(D, sum(S)) :- emp(D, S), bonus(D)").unwrap();
        let a = eval_aggregate(&q_sum_join, &d).unwrap();
        let b = eval_aggregate(&q_sum, &d).unwrap();
        // Single bonus tuple: duplicate subgoal does not duplicate
        // assignments here (same tuple matched twice), so equal.
        assert!(agg_answers_equal(&a, &b));
        // But adding a second matching bonus tuple doubles assignments.
        d.insert_ints("bonus", [-1]); // irrelevant dept, no effect
        let a2 = eval_aggregate(&q_sum, &d).unwrap();
        assert!(agg_answers_equal(&b, &a2));
    }

    #[test]
    fn real_sum_promotes() {
        let mut d = Database::new();
        d.insert("m", Tuple::new(vec![Value::Int(1), Value::real(0.5)]), 1);
        d.insert("m", Tuple::new(vec![Value::Int(1), Value::Int(2)]), 1);
        let q = parse_aggregate_query("q(D, sum(S)) :- m(D, S)").unwrap();
        let rows = eval_aggregate(&q, &d).unwrap();
        assert_eq!(rows[0].value, Value::real(2.5));
    }

    #[test]
    fn non_numeric_sum_errors() {
        let mut d = Database::new();
        d.insert("m", Tuple::new(vec![Value::Int(1), Value::str("x")]), 1);
        let q = parse_aggregate_query("q(D, sum(S)) :- m(D, S)").unwrap();
        assert_eq!(eval_aggregate(&q, &d), Err(EvalError::NonNumericAggregate));
    }

    #[test]
    fn empty_body_relation_yields_no_groups() {
        let q = parse_aggregate_query("q(D, sum(S)) :- emp(D, S)").unwrap();
        let rows = eval_aggregate(&q, &Database::new()).unwrap();
        assert!(rows.is_empty());
    }
}
