//! Database schemas.
//!
//! A schema records, per relation symbol: the arity, optional attribute
//! names (used by the SQL frontend) and whether the relation is required to
//! be **set-valued on every instance** — the property that drives the
//! set-enforcing dependencies of §4.2/Appendix C and the extended bag
//! equivalence test of Theorem 4.2.

use eqsql_cq::{Predicate, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// Schema of a single relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelSchema {
    /// The relation symbol.
    pub name: Predicate,
    /// Number of attributes.
    pub arity: usize,
    /// Is this relation required to be set-valued on all instances?
    pub set_valued: bool,
    /// Optional attribute names (positional when absent).
    pub attrs: Option<Vec<Symbol>>,
}

impl RelSchema {
    /// A bag-valued relation schema.
    pub fn bag(name: &str, arity: usize) -> RelSchema {
        RelSchema { name: Predicate::new(name), arity, set_valued: false, attrs: None }
    }

    /// A set-valued relation schema.
    pub fn set(name: &str, arity: usize) -> RelSchema {
        RelSchema { name: Predicate::new(name), arity, set_valued: true, attrs: None }
    }

    /// Attaches attribute names.
    pub fn with_attrs(mut self, attrs: &[&str]) -> RelSchema {
        assert_eq!(attrs.len(), self.arity, "attribute count must match arity");
        self.attrs = Some(attrs.iter().map(|a| Symbol::new(a)).collect());
        self
    }
}

/// A database schema: a finite set of relation schemas.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    relations: BTreeMap<Predicate, RelSchema>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Builds a schema from relation schemas.
    pub fn from_relations(rels: impl IntoIterator<Item = RelSchema>) -> Schema {
        let mut s = Schema::new();
        for r in rels {
            s.add(r);
        }
        s
    }

    /// Convenience: every listed relation bag-valued with the given arity.
    pub fn all_bags(rels: &[(&str, usize)]) -> Schema {
        Schema::from_relations(rels.iter().map(|(n, a)| RelSchema::bag(n, *a)))
    }

    /// Convenience: every listed relation set-valued with the given arity.
    pub fn all_sets(rels: &[(&str, usize)]) -> Schema {
        Schema::from_relations(rels.iter().map(|(n, a)| RelSchema::set(n, *a)))
    }

    /// Adds (or replaces) a relation schema.
    pub fn add(&mut self, rel: RelSchema) {
        self.relations.insert(rel.name, rel);
    }

    /// Looks up a relation schema.
    pub fn get(&self, name: Predicate) -> Option<&RelSchema> {
        self.relations.get(&name)
    }

    /// The arity of `name`, if declared.
    pub fn arity(&self, name: Predicate) -> Option<usize> {
        self.get(name).map(|r| r.arity)
    }

    /// Is `name` declared set-valued on all instances? Undeclared relations
    /// are conservatively bag-valued.
    pub fn is_set_valued(&self, name: Predicate) -> bool {
        self.get(name).is_some_and(|r| r.set_valued)
    }

    /// Marks `name` as set-valued (it must be declared).
    pub fn mark_set_valued(&mut self, name: Predicate) {
        if let Some(r) = self.relations.get_mut(&name) {
            r.set_valued = true;
        }
    }

    /// Iterates over relation schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &RelSchema> + '_ {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The maximal set `{P1, ..., Pk}` of relation symbols required to be
    /// set-valued on all instances (as used in Theorem 4.2).
    pub fn set_valued_relations(&self) -> Vec<Predicate> {
        self.iter().filter(|r| r.set_valued).map(|r| r.name).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.iter() {
            writeln!(
                f,
                "{}/{}{}",
                r.name,
                r.arity,
                if r.set_valued { " [set]" } else { " [bag]" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::from_relations([RelSchema::bag("p", 2), RelSchema::set("s", 2)]);
        assert_eq!(s.arity(Predicate::new("p")), Some(2));
        assert!(!s.is_set_valued(Predicate::new("p")));
        assert!(s.is_set_valued(Predicate::new("s")));
        assert!(!s.is_set_valued(Predicate::new("missing")));
    }

    #[test]
    fn set_valued_relations_listing() {
        let s = Schema::from_relations([
            RelSchema::bag("r", 1),
            RelSchema::set("s", 2),
            RelSchema::set("t", 3),
        ]);
        let names: Vec<String> =
            s.set_valued_relations().iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names, vec!["s", "t"]);
    }

    #[test]
    fn mark_set_valued() {
        let mut s = Schema::all_bags(&[("p", 2)]);
        s.mark_set_valued(Predicate::new("p"));
        assert!(s.is_set_valued(Predicate::new("p")));
    }

    #[test]
    #[should_panic]
    fn attrs_must_match_arity() {
        let _ = RelSchema::bag("p", 2).with_attrs(&["a"]);
    }
}
