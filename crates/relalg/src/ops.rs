//! A bag-semantics operator algebra with a left-deep planner.
//!
//! This is the "engine-shaped" evaluator: queries compile to a plan of
//! scans, hash joins and a head projection (plus a dedup for set
//! semantics), and every operator propagates multiplicities according to
//! SQL's bag semantics — scans yield stored multiplicities, joins multiply,
//! projection preserves. Running a plan under bag-set semantics simply
//! forces scan multiplicities to 1 (the database must then be set-valued).
//!
//! The naive evaluator in [`crate::eval`] transcribes the paper's
//! definitions; this module is cross-checked against it (they must agree on
//! every query/database/semantics triple — see the `plans_agree` tests).

use crate::database::Database;
use crate::error::EvalError;
use crate::eval::Semantics;
use crate::relation::Relation;
use crate::tuple::Tuple;
use eqsql_cq::{Atom, CqQuery, Term, Value, Var};
use std::collections::HashMap;
use std::fmt;

/// A physical plan.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Match one atom against its stored relation.
    ScanAtom(Atom),
    /// Natural (hash) join on the shared column variables.
    Join(Box<Plan>, Box<Plan>),
    /// Project to the head terms (bag projection — duplicates preserved).
    ProjectHead {
        /// Input plan.
        input: Box<Plan>,
        /// Output head terms.
        head: Vec<Term>,
    },
    /// Remove duplicates (set semantics only).
    Dedup(Box<Plan>),
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Plan, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match p {
                Plan::ScanAtom(a) => writeln!(f, "{pad}scan {a}"),
                Plan::Join(l, r) => {
                    writeln!(f, "{pad}join")?;
                    go(l, f, depth + 1)?;
                    go(r, f, depth + 1)
                }
                Plan::ProjectHead { input, head } => {
                    let cols: Vec<String> = head.iter().map(|t| t.to_string()).collect();
                    writeln!(f, "{pad}project [{}]", cols.join(", "))?;
                    go(input, f, depth + 1)
                }
                Plan::Dedup(input) => {
                    writeln!(f, "{pad}dedup")?;
                    go(input, f, depth + 1)
                }
            }
        }
        go(self, f, 0)
    }
}

/// An intermediate result: named columns plus a bag of rows.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Column variables, in order.
    pub cols: Vec<Var>,
    /// The rows (arity = `cols.len()`).
    pub rows: Relation,
}

/// Builds a left-deep plan for `q` under `sem`.
pub fn plan_query(q: &CqQuery, sem: Semantics) -> Plan {
    let mut atoms = q.body.iter();
    let first = atoms.next().expect("safe queries have nonempty bodies");
    let mut plan = Plan::ScanAtom(first.clone());
    for a in atoms {
        plan = Plan::Join(Box::new(plan), Box::new(Plan::ScanAtom(a.clone())));
    }
    plan = Plan::ProjectHead { input: Box::new(plan), head: q.head.clone() };
    if sem == Semantics::Set {
        plan = Plan::Dedup(Box::new(plan));
    }
    plan
}

fn scan_atom(atom: &Atom, db: &Database, force_set: bool) -> Frame {
    // Distinct variables of the atom, in first-occurrence order, become the
    // output columns.
    let mut cols: Vec<Var> = Vec::new();
    for v in atom.vars() {
        if !cols.contains(&v) {
            cols.push(v);
        }
    }
    let mut rows = Relation::new(cols.len());
    let Some(rel) = db.get(atom.pred) else {
        return Frame { cols, rows };
    };
    if rel.arity() != atom.arity() {
        return Frame { cols, rows };
    }
    'tuples: for (t, m) in rel.iter() {
        let mut binding: HashMap<Var, Value> = HashMap::new();
        for (arg, val) in atom.args.iter().zip(t.iter()) {
            match arg {
                Term::Const(c) => {
                    if c != val {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match binding.get(v) {
                    Some(b) if b != val => continue 'tuples,
                    Some(_) => {}
                    None => {
                        binding.insert(*v, *val);
                    }
                },
            }
        }
        let row = Tuple::new(cols.iter().map(|v| binding[v]).collect());
        rows.insert(row, if force_set { 1 } else { m });
    }
    Frame { cols, rows }
}

fn hash_join(left: Frame, right: Frame) -> Frame {
    // Shared columns join; right's non-shared columns are appended.
    let shared: Vec<Var> = right.cols.iter().copied().filter(|v| left.cols.contains(v)).collect();
    let left_key_pos: Vec<usize> =
        shared.iter().map(|v| left.cols.iter().position(|c| c == v).unwrap()).collect();
    let right_key_pos: Vec<usize> =
        shared.iter().map(|v| right.cols.iter().position(|c| c == v).unwrap()).collect();
    let right_extra_pos: Vec<usize> = right
        .cols
        .iter()
        .enumerate()
        .filter(|(_, v)| !shared.contains(v))
        .map(|(i, _)| i)
        .collect();

    let mut out_cols = left.cols.clone();
    out_cols.extend(right_extra_pos.iter().map(|&i| right.cols[i]));

    // Build on the right.
    let mut index: HashMap<Tuple, Vec<(Tuple, u64)>> = HashMap::new();
    for (t, m) in right.rows.iter() {
        index.entry(t.project(&right_key_pos)).or_default().push((t.project(&right_extra_pos), m));
    }

    let mut rows = Relation::new(out_cols.len());
    for (lt, lm) in left.rows.iter() {
        let key = lt.project(&left_key_pos);
        if let Some(matches) = index.get(&key) {
            for (extra, rm) in matches {
                let mut vals = lt.0.clone();
                vals.extend(extra.iter().copied());
                rows.insert(Tuple::new(vals), lm.saturating_mul(*rm));
            }
        }
    }
    Frame { cols: out_cols, rows }
}

fn project_head(frame: Frame, head: &[Term]) -> Result<Frame, EvalError> {
    let mut rows = Relation::new(head.len());
    for (t, m) in frame.rows.iter() {
        let vals: Vec<Value> = head
            .iter()
            .map(|term| match term {
                Term::Const(c) => *c,
                Term::Var(v) => {
                    let i = frame
                        .cols
                        .iter()
                        .position(|c| c == v)
                        .expect("safe query: head var appears in body");
                    t[i]
                }
            })
            .collect();
        rows.insert(Tuple::new(vals), m);
    }
    Ok(Frame { cols: Vec::new(), rows })
}

/// Executes `plan` against `db`. `force_set_scans` makes scans yield
/// multiplicity 1 (bag-set and set semantics).
pub fn execute(plan: &Plan, db: &Database, force_set_scans: bool) -> Result<Frame, EvalError> {
    match plan {
        Plan::ScanAtom(a) => Ok(scan_atom(a, db, force_set_scans)),
        Plan::Join(l, r) => {
            let lf = execute(l, db, force_set_scans)?;
            let rf = execute(r, db, force_set_scans)?;
            Ok(hash_join(lf, rf))
        }
        Plan::ProjectHead { input, head } => {
            let f = execute(input, db, force_set_scans)?;
            project_head(f, head)
        }
        Plan::Dedup(input) => {
            let f = execute(input, db, force_set_scans)?;
            Ok(Frame { cols: f.cols, rows: f.rows.to_set() })
        }
    }
}

/// Plans and executes `q` under `sem` — the engine-shaped counterpart of
/// [`crate::eval::eval`].
pub fn execute_query(q: &CqQuery, db: &Database, sem: Semantics) -> Result<Relation, EvalError> {
    if sem != Semantics::Bag && !db.is_set_valued() {
        return Err(EvalError::NotSetValued);
    }
    let plan = plan_query(q, sem);
    let frame = execute(&plan, db, sem != Semantics::Bag)?;
    Ok(frame.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use eqsql_cq::parse_query;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    fn example_db() -> Database {
        let mut db = Database::new()
            .with_ints("p", &[[1, 2], [1, 3], [2, 2]])
            .with_ints("s", &[[2, 9], [3, 9]]);
        db.insert("r", Tuple::ints([1]), 3);
        db
    }

    fn agree(query: &str, db: &Database) {
        let qq = q(query);
        // Bag.
        let naive = eval::eval_bag(&qq, db);
        let plan = execute_query(&qq, db, Semantics::Bag).unwrap();
        assert_eq!(naive.sorted(), plan.sorted(), "bag mismatch on {query}");
        // BS / Set only for set-valued databases.
        if db.is_set_valued() {
            let n = eval::eval_bag_set(&qq, db).unwrap();
            let p = execute_query(&qq, db, Semantics::BagSet).unwrap();
            assert_eq!(n.sorted(), p.sorted(), "bag-set mismatch on {query}");
            let n = eval::eval_set(&qq, db).unwrap();
            let p = execute_query(&qq, db, Semantics::Set).unwrap();
            assert_eq!(n.sorted(), p.sorted(), "set mismatch on {query}");
        }
    }

    #[test]
    fn evaluators_agree_on_joins() {
        let db = example_db();
        agree("q(X) :- p(X,Y)", &db);
        agree("q(X,Z) :- p(X,Y), s(Y,Z)", &db);
        agree("q(X) :- p(X,Y), s(Y,Z), r(X)", &db);
        agree("q(X,X) :- p(X,X)", &db);
        agree("q(X) :- p(X,2)", &db);
        agree("q(X) :- p(X,Y), p(X,Y)", &db);
    }

    #[test]
    fn evaluators_agree_on_set_valued_db() {
        let db = example_db().to_set();
        agree("q(X,Z) :- p(X,Y), s(Y,Z)", &db);
        agree("q(X) :- p(X,Y), r(X)", &db);
        agree("q() :- p(X,Y), s(Y,Z)", &db);
    }

    #[test]
    fn join_multiplicities_multiply() {
        let db = example_db();
        // r has multiplicity 3 for (1): bag answer for q(X) :- p(X,Y), r(X)
        // must count 3 per p-match.
        let qq = q("q(X) :- p(X,Y), r(X)");
        let ans = execute_query(&qq, &db, Semantics::Bag).unwrap();
        assert_eq!(ans.multiplicity(&Tuple::ints([1])), 6); // 2 p-rows * 3
    }

    #[test]
    fn cartesian_join_when_no_shared_vars() {
        let db = Database::new().with_ints("a", &[[1], [2]]).with_ints("b", &[[7], [8]]);
        let qq = q("q(X,Y) :- a(X), b(Y)");
        let ans = execute_query(&qq, &db, Semantics::Bag).unwrap();
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn set_semantics_dedups() {
        let db = example_db().to_set();
        let qq = q("q(Y) :- p(X,Y)");
        let bag = execute_query(&qq, &db, Semantics::BagSet).unwrap();
        let set = execute_query(&qq, &db, Semantics::Set).unwrap();
        assert_eq!(bag.multiplicity(&Tuple::ints([2])), 2);
        assert_eq!(set.multiplicity(&Tuple::ints([2])), 1);
    }

    #[test]
    fn plan_display_is_readable() {
        let qq = q("q(X) :- p(X,Y), s(Y,Z)");
        let plan = plan_query(&qq, Semantics::Set);
        let s = plan.to_string();
        assert!(s.contains("dedup"));
        assert!(s.contains("join"));
        assert!(s.contains("scan p(X, Y)"));
    }
}
