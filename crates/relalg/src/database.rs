//! Database instances.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use eqsql_cq::{Predicate, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A (generally bag-valued) database instance: one bag relation per
/// relation symbol.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    relations: BTreeMap<Predicate, Relation>,
}

impl Database {
    /// The empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// An empty instance of `schema` (every declared relation present and
    /// empty).
    pub fn empty_of(schema: &Schema) -> Database {
        let mut db = Database::new();
        for r in schema.iter() {
            db.relations.insert(r.name, Relation::new(r.arity));
        }
        db
    }

    /// Inserts `mult` copies of a tuple into relation `name`, creating the
    /// relation on first use.
    pub fn insert(&mut self, name: &str, tuple: Tuple, mult: u64) {
        let pred = Predicate::new(name);
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(tuple.arity()))
            .insert(tuple, mult);
    }

    /// Inserts one copy of a tuple of integers — test convenience.
    pub fn insert_ints(&mut self, name: &str, tuple: impl IntoIterator<Item = i64>) {
        self.insert(name, Tuple::ints(tuple), 1);
    }

    /// Builder-style batch insert of integer tuples, one copy each.
    pub fn with_ints<const N: usize>(mut self, name: &str, tuples: &[[i64; N]]) -> Database {
        for t in tuples {
            self.insert_ints(name, t.iter().copied());
        }
        self
    }

    /// The relation for `name`, if present.
    pub fn get(&self, name: Predicate) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// The relation for `name` by string, if present.
    pub fn get_str(&self, name: &str) -> Option<&Relation> {
        self.get(Predicate::new(name))
    }

    /// Mutable access, creating an empty relation of the given arity.
    pub fn get_or_create(&mut self, name: Predicate, arity: usize) -> &mut Relation {
        self.relations.entry(name).or_insert_with(|| Relation::new(arity))
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Predicate, &Relation)> + '_ {
        self.relations.iter().map(|(p, r)| (*p, r))
    }

    /// Is every relation set-valued?
    pub fn is_set_valued(&self) -> bool {
        self.relations.values().all(Relation::is_set_valued)
    }

    /// Are the relations named by `preds` set-valued?
    pub fn are_set_valued(&self, preds: &[Predicate]) -> bool {
        preds.iter().all(|p| self.relations.get(p).is_none_or(Relation::is_set_valued))
    }

    /// A fully set-valued copy (multiplicities forced to 1).
    pub fn to_set(&self) -> Database {
        Database { relations: self.relations.iter().map(|(p, r)| (*p, r.to_set())).collect() }
    }

    /// Total number of stored tuples (with multiplicities).
    pub fn len(&self) -> u64 {
        self.relations.values().map(Relation::len).sum()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(Relation::is_empty)
    }

    /// All values appearing anywhere in the database — the active domain.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .relations
            .values()
            .flat_map(|r| r.core_set())
            .flat_map(|t| t.iter().copied())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, r) in self.iter() {
            writeln!(f, "{p} = {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        db.insert_ints("p", [1, 2]);
        db.insert("p", Tuple::ints([1, 2]), 2);
        let r = db.get_str("p").unwrap();
        assert_eq!(r.multiplicity(&Tuple::ints([1, 2])), 3);
        assert!(!db.is_set_valued());
    }

    #[test]
    fn empty_of_schema_has_all_relations() {
        let schema = Schema::from_relations([RelSchema::bag("p", 2), RelSchema::set("s", 1)]);
        let db = Database::empty_of(&schema);
        assert!(db.get_str("p").unwrap().is_empty());
        assert!(db.get_str("s").unwrap().is_empty());
    }

    #[test]
    fn active_domain_is_sorted_unique() {
        let db = Database::new().with_ints("p", &[[1, 2], [2, 3]]);
        assert_eq!(db.active_domain(), vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn to_set_flattens_all() {
        let mut db = Database::new();
        db.insert("p", Tuple::ints([1]), 5);
        assert!(db.to_set().is_set_valued());
    }

    #[test]
    fn are_set_valued_checks_named_relations_only() {
        let mut db = Database::new();
        db.insert("p", Tuple::ints([1]), 5);
        db.insert("s", Tuple::ints([1]), 1);
        assert!(db.are_set_valued(&[Predicate::new("s")]));
        assert!(!db.are_set_valued(&[Predicate::new("p")]));
        // Relations absent from the database are vacuously set-valued.
        assert!(db.are_set_valued(&[Predicate::new("zzz")]));
    }
}
