//! Dependency-free equivalence tests (Theorems 2.1 and 4.2 of the paper).

use eqsql_cq::iso::dedup_set_valued;
use eqsql_cq::{are_isomorphic, canonical_representation, containment_mapping, CqQuery};
use eqsql_relalg::Schema;

/// `q1 ⊑_S q2`: is `q1` set-contained in `q2`? By Chandra–Merlin \[2\], iff
/// a containment mapping from `q2` to `q1` exists.
pub fn set_contained(q1: &CqQuery, q2: &CqQuery) -> bool {
    containment_mapping(q2, q1).is_some()
}

/// `q1 ≡_S q2`: set equivalence — containment both ways.
pub fn set_equivalent(q1: &CqQuery, q2: &CqQuery) -> bool {
    set_contained(q1, q2) && set_contained(q2, q1)
}

/// `q1 ≡_B q2`: bag equivalence in the absence of dependencies —
/// isomorphism of the queries, bodies compared as multisets
/// (Theorem 2.1(1), \[4\]).
pub fn bag_equivalent(q1: &CqQuery, q2: &CqQuery) -> bool {
    are_isomorphic(q1, q2)
}

/// `q1 ≡_BS q2`: bag-set equivalence — isomorphism of the canonical
/// representations (Theorem 2.1(2), \[4\]).
pub fn bag_set_equivalent(q1: &CqQuery, q2: &CqQuery) -> bool {
    are_isomorphic(&canonical_representation(q1), &canonical_representation(q2))
}

/// `q1 ≡_B q2` in the absence of all dependencies **other than the
/// set-enforcing dependencies** of the schema (Theorem 4.2): drop duplicate
/// subgoals over relations that are set-valued on every instance, then test
/// isomorphism.
pub fn bag_equivalent_with_set_relations(q1: &CqQuery, q2: &CqQuery, schema: &Schema) -> bool {
    let d1 = dedup_set_valued(q1, |p| schema.is_set_valued(p));
    let d2 = dedup_set_valued(q2, |p| schema.is_set_valued(p));
    are_isomorphic(&d1, &d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_relalg::Schema;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn containment_classic() {
        // q2's p(X,X) is contained in q1's p(X,Y).
        let q1 = q("q(X) :- p(X,Y)");
        let q2 = q("q(X) :- p(X,X)");
        assert!(set_contained(&q2, &q1));
        assert!(!set_contained(&q1, &q2));
        assert!(!set_equivalent(&q1, &q2));
    }

    #[test]
    fn set_equivalence_ignores_duplicates_and_redundancy() {
        let a = q("q(X) :- p(X,Y)");
        let b = q("q(X) :- p(X,Y), p(X,Z)");
        assert!(set_equivalent(&a, &b));
        // But bag-set equivalence separates them: canonical reps are
        // p(X,Y) vs p(X,Y),p(X,Z) — two assignments on {p(1,2),p(1,3)}.
        assert!(!bag_set_equivalent(&a, &b));
    }

    #[test]
    fn proposition_2_1_hierarchy_on_samples() {
        // ≡_B ⇒ ≡_BS ⇒ ≡_S on a renamed pair.
        let a = q("q(X) :- p(X,Y), s(Y)");
        let b = q("q(A) :- s(B), p(A,B)");
        assert!(bag_equivalent(&a, &b));
        assert!(bag_set_equivalent(&a, &b));
        assert!(set_equivalent(&a, &b));
        // Duplicate atom: BS-equivalent but not B-equivalent.
        let c = q("q(X) :- p(X,Y), p(X,Y), s(Y)");
        assert!(!bag_equivalent(&a, &c));
        assert!(bag_set_equivalent(&a, &c));
        assert!(set_equivalent(&a, &c));
    }

    #[test]
    fn example_4_9_extended_bag_test() {
        // Q3 and Q5 differ by a duplicate s-subgoal; they are bag
        // equivalent on all databases where S is a set (Theorem 4.2) but
        // not bag equivalent outright (Theorem 2.1).
        let q3 = q("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)");
        let q5 = q("q5(X) :- p(X,Y), t(X,Y,W), s(X,Z), s(X,Z)");
        assert!(!bag_equivalent(&q3, &q5));
        let mut schema = Schema::all_bags(&[("p", 2), ("t", 3), ("s", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        assert!(bag_equivalent_with_set_relations(&q3, &q5, &schema));
        // With S bag-valued, the extended test refuses too.
        let bags = Schema::all_bags(&[("p", 2), ("t", 3), ("s", 2)]);
        assert!(!bag_equivalent_with_set_relations(&q3, &q5, &bags));
    }

    #[test]
    fn example_d2_duplicate_over_bag_relation() {
        // Q7 has two copies of r(X), Q8 one; R is bag-valued, so they are
        // not bag equivalent even under the set-enforcing dependencies.
        let q7 = q("q7(X) :- p(X,Y), r(X), r(X)");
        let q8 = q("q8(X) :- p(X,Y), r(X)");
        let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        assert!(!bag_equivalent_with_set_relations(&q7, &q8, &schema));
        // They are set-equivalent and bag-set-equivalent, though.
        assert!(set_equivalent(&q7, &q8));
        assert!(bag_set_equivalent(&q7, &q8));
    }

    #[test]
    fn head_constants_matter() {
        let a = q("q(1) :- p(X)");
        let b = q("q(2) :- p(X)");
        assert!(!set_contained(&a, &b));
        assert!(!bag_equivalent(&a, &b));
    }
}
