//! Bag containment — the necessary condition the paper proves on its way
//! to Theorem 4.2.
//!
//! Deciding `Q1 ⊑_B Q2` is a long-standing open problem (not even known
//! decidable; undecidable with inequalities \[18\]). The paper re-proves,
//! adapted to its setting (Appendix D's Lemma D.1), the necessary
//! condition of Chaudhuri & Vardi \[4\]:
//!
//! > `Q1 ⊑_B Q2` only if, for each predicate used in `Q1`, `Q2` has at
//! > least as many subgoals with this predicate as `Q1` does —
//!
//! and its set-enforced refinement: only predicates over **bag-valued**
//! relations are counted (duplicates over set-valued relations never
//! change multiplicities, Theorem 4.2). This module implements those
//! checks plus known sufficient conditions and a bounded falsifier, giving
//! a sound three-valued procedure.

use crate::counterexample::{amplify, lemma_d1_database};
use eqsql_cq::matcher::{bucket_atoms, MatchPlan, Seed, Target};
use eqsql_cq::{CqQuery, Predicate, Subst};
use eqsql_relalg::eval::eval_bag;
use eqsql_relalg::Schema;
use std::collections::HashSet;

/// Three-valued verdict for bag containment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BagContainment {
    /// A sufficient condition certifies `Q1 ⊑_B Q2`.
    Contained,
    /// A necessary condition fails or a witness database was found.
    NotContained,
    /// Neither direction could be established (the general problem is
    /// open).
    Unknown,
}

/// The per-predicate subgoal-count necessary condition of \[4\] (proved in
/// the paper's Appendix D): `Q1 ⊑_B Q2` requires
/// `count_p(Q2) ≥ count_p(Q1)` for every predicate `p` of `Q1`.
pub fn subgoal_count_condition(q1: &CqQuery, q2: &CqQuery) -> bool {
    let preds: HashSet<Predicate> = q1.body.iter().map(|a| a.pred).collect();
    preds.into_iter().all(|p| q2.count_pred(p) >= q1.count_pred(p))
}

/// The set-enforced refinement (Theorem 4.2's view): only bag-valued
/// relations are counted, after dropping duplicate subgoals over
/// set-valued relations from both queries.
pub fn subgoal_count_condition_with_schema(q1: &CqQuery, q2: &CqQuery, schema: &Schema) -> bool {
    let d1 = eqsql_cq::iso::dedup_set_valued(q1, |p| schema.is_set_valued(p));
    let d2 = eqsql_cq::iso::dedup_set_valued(q2, |p| schema.is_set_valued(p));
    let preds: HashSet<Predicate> =
        d1.body.iter().map(|a| a.pred).filter(|p| !schema.is_set_valued(*p)).collect();
    preds.into_iter().all(|p| d2.count_pred(p) >= d1.count_pred(p))
}

/// A sufficient condition: a **multiset-injective** containment mapping
/// from `Q2` to `Q1` — a containment mapping under which `Q2`'s body
/// covers `Q1`'s as a multiset (every `Q1` atom is the image of at least
/// as many `Q2` atoms as its own multiplicity). In particular isomorphism
/// qualifies, as does `Q2 = Q1 ∧ extra atoms` (more subgoals only raise
/// multiplicities).
pub fn onto_containment_mapping_exists(q1: &CqQuery, q2: &CqQuery) -> bool {
    onto_containment_mapping(q1, q2).is_some()
}

/// [`onto_containment_mapping_exists`], returning the witnessing
/// substitution (a containment mapping from `q2` to `q1` under which
/// `q2`'s body covers `q1`'s as a multiset). The witness certifies
/// `q1 ⊑_B q2` and can be replayed with [`is_multiset_onto_mapping`].
pub fn onto_containment_mapping(q1: &CqQuery, q2: &CqQuery) -> Option<Subst> {
    if q1.head.len() != q2.head.len() {
        return None;
    }
    let mut seed = Subst::new();
    for (t2, t1) in q2.head.iter().zip(q1.head.iter()) {
        match t2 {
            eqsql_cq::Term::Const(c) => {
                if *t1 != eqsql_cq::Term::Const(*c) {
                    return None;
                }
            }
            eqsql_cq::Term::Var(v) => {
                if !seed.bind(*v, *t1) {
                    return None;
                }
            }
        }
    }
    // Stream homomorphisms Q2 -> Q1 extending the head seed off the
    // planned matcher, stopping at the first with the multiset-cover
    // property — the historical path materialized (and silently capped)
    // the whole homomorphism set first.
    let head_vars: Vec<eqsql_cq::Var> = q2.head.iter().filter_map(eqsql_cq::Term::as_var).collect();
    let plan = MatchPlan::optimized(&q2.body, &head_vars);
    let buckets = bucket_atoms(&q1.body);
    let mut witness: Option<Subst> = None;
    plan.search(Target::new(&q1.body, &buckets), &Seed::Subst(&seed), &mut |m| {
        // The head-seeded plan search only emits containment mappings, so
        // the loop checks nothing but the multiset-cover property; the
        // full mapping validity is re-checked only by external replays
        // ([`is_multiset_onto_mapping`]).
        let image: Vec<_> = q2.body.iter().map(|a| m.apply_atom(a)).collect();
        let covered = q1.body.iter().all(|atom| {
            let need = q1.body.iter().filter(|a| *a == atom).count();
            let have = image.iter().filter(|a| *a == atom).count();
            have >= need
        });
        if covered {
            witness = Some(m.to_subst());
            false // stop at the first multiset-onto mapping
        } else {
            true
        }
    });
    witness
}

/// Certificate replay for [`onto_containment_mapping`]: is `h` a
/// containment mapping from `q2` to `q1` whose image covers `q1`'s body as
/// a multiset (every `q1` atom is hit at least as often as its own
/// multiplicity)?
pub fn is_multiset_onto_mapping(q1: &CqQuery, q2: &CqQuery, h: &Subst) -> bool {
    if !eqsql_cq::is_containment_mapping(q2, q1, h) {
        return false;
    }
    let image: Vec<_> = q2.body.iter().map(|a| h.apply_atom(a)).collect();
    q1.body.iter().all(|atom| {
        let need = q1.body.iter().filter(|a| *a == atom).count();
        let have = image.iter().filter(|a| *a == atom).count();
        have >= need
    })
}

/// A bounded falsifier: evaluates both queries under bag semantics on
/// canonical databases of `q1` amplified per relation, looking for a tuple
/// with `Q1`-multiplicity exceeding its `Q2`-multiplicity.
pub fn find_non_containment_witness(
    q1: &CqQuery,
    q2: &CqQuery,
    max_amplification: u64,
) -> Option<eqsql_relalg::Database> {
    let base = lemma_d1_database(q1, Predicate::new("__none__"), 1);
    let mut candidates = vec![base.clone()];
    for (pred, _) in q1.predicates() {
        for m in [2u64, 3, max_amplification.max(2)] {
            candidates.push(amplify(&base, pred, m));
        }
    }
    candidates.into_iter().find(|db| {
        let a1 = eval_bag(q1, db);
        let a2 = eval_bag(q2, db);
        a1.sorted().iter().any(|(t, m)| a2.multiplicity(t) < *m)
    })
}

/// The combined three-valued test.
pub fn bag_contained(q1: &CqQuery, q2: &CqQuery) -> BagContainment {
    if !subgoal_count_condition(q1, q2) {
        return BagContainment::NotContained;
    }
    if onto_containment_mapping_exists(q1, q2) {
        return BagContainment::Contained;
    }
    if find_non_containment_witness(q1, q2, 8).is_some() {
        return BagContainment::NotContained;
    }
    BagContainment::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_relalg::Tuple;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn necessary_condition_counts_per_predicate() {
        let q1 = q("q(X) :- p(X,Y), p(X,Z), r(X)");
        let q2_ok = q("q(X) :- p(X,Y), p(Y,Z), r(X)");
        let q2_bad = q("q(X) :- p(X,Y), r(X)");
        assert!(subgoal_count_condition(&q1, &q2_ok));
        assert!(!subgoal_count_condition(&q1, &q2_bad));
    }

    #[test]
    fn schema_refinement_ignores_set_valued_duplicates() {
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        // Two s-subgoals vs one: fine when s is set-valued...
        let q1 = q("q(X) :- p(X,Y), s(X,Z), s(X,Z)");
        let q2 = q("q(X) :- p(X,Y), s(X,Z)");
        assert!(subgoal_count_condition_with_schema(&q1, &q2, &schema));
        // ...but two p-subgoals vs one is not.
        let q3 = q("q(X) :- p(X,Y), p(X,Z)");
        assert!(!subgoal_count_condition_with_schema(&q3, &q2, &schema));
    }

    #[test]
    fn isomorphic_queries_are_mutually_contained() {
        let a = q("q(X) :- p(X,Y), r(X)");
        let b = q("q(A) :- r(A), p(A,B)");
        assert_eq!(bag_contained(&a, &b), BagContainment::Contained);
        assert_eq!(bag_contained(&b, &a), BagContainment::Contained);
    }

    #[test]
    fn extra_subgoals_raise_multiplicities() {
        // Q2 = Q1 plus an extra p-atom: Q1 ⊑_B Q2 fails the other way
        // around but holds... careful: extra subgoals *multiply*, so
        // Q2's answers dominate only if the extra atom always matches.
        // For q2 = p(X,Y), p(X,Y): each answer of q1 = p(X,Y) with
        // multiplicity m appears in q2 with m². m² ≥ m, so q1 ⊑_B q2.
        let q1 = q("q(X) :- p(X,Y)");
        let q2 = q("q(X) :- p(X,Y), p(X,Y)");
        assert_eq!(bag_contained(&q1, &q2), BagContainment::Contained);
        // And NOT the other way: m² ≤ m fails for m ≥ 2 — the count
        // condition already rejects.
        assert_eq!(bag_contained(&q2, &q1), BagContainment::NotContained);
    }

    #[test]
    fn falsifier_finds_multiplicity_gaps() {
        // Same subgoal counts, different shape: q1 = p(X,Y), p(Y,Z) vs
        // q2 = p(X,Y), p(X,Y). On the canonical database of q1, q2 needs
        // p(x,y) twice — fine — but on amplified copies the counts
        // diverge per tuple.
        let q1 = q("q(X) :- p(X,Y), p(Y,Z)");
        let q2 = q("q(X) :- p(X,X), p(X,X)");
        // q2's answers require a self-loop; on D(q1) (no loop) q1 has an
        // answer q2 lacks.
        let w = find_non_containment_witness(&q1, &q2, 4);
        assert!(w.is_some());
        let db = w.unwrap();
        let a1 = eval_bag(&q1, &db);
        let a2 = eval_bag(&q2, &db);
        assert!(a1.iter().any(|(t, m)| a2.multiplicity(t) < m));
    }

    #[test]
    fn witness_semantics_check() {
        // Verify the witness database actually demonstrates the gap for
        // the canonical Example D.1 pair.
        let q7 = q("q(X) :- p(X,Y), r(X), r(X)");
        let q8 = q("q(X) :- p(X,Y), r(X)");
        assert_eq!(bag_contained(&q7, &q8), BagContainment::NotContained);
        // q8 ⊑_B q7? count condition holds (1 ≤ 2 for r, 1 ≤ 1 for p);
        // and indeed m ≤ m² always: the onto-mapping test certifies it
        // (r-atom image covers both copies? No — the mapping sends the
        // single r atom onto one; multiset cover needs 2 ≥ ... the q7
        // body has each atom once distinct... r(X) appears twice
        // *identically*, image covers it iff 2 q8... Expect Unknown or
        // Contained; assert it is not NotContained (m ≤ m² is true).
        let v = bag_contained(&q8, &q7);
        assert_ne!(v, BagContainment::NotContained);
        // Engine spot-check on an amplified database.
        let db = lemma_d1_database(&q8, Predicate::new("r"), 3);
        let a7 = eval_bag(&q7, &db);
        let a8 = eval_bag(&q8, &db);
        let t = Tuple::new(vec![a8.core_set().next().unwrap()[0]]);
        assert!(a8.multiplicity(&t) <= a7.multiplicity(&t));
    }
}
