//! Equivalence of CQ queries in the presence of embedded dependencies —
//! the paper's headline tests.
//!
//! * Set semantics (Theorem 2.2, folklore from \[1, 9, 10\]):
//!   `Q1 ≡_{Σ,S} Q2` iff `(Q1)_{Σ,S} ≡_S (Q2)_{Σ,S}`.
//! * Bag semantics (**Theorem 6.1**): `Q1 ≡_{Σ,B} Q2` iff
//!   `(Q1)_{Σ,B} ≡_B (Q2)_{Σ,B}` in the absence of all dependencies other
//!   than the set-enforcing ones — decided by the extended bag test of
//!   Theorem 4.2.
//! * Bag-set semantics (**Theorem 6.2**): `Q1 ≡_{Σ,BS} Q2` iff
//!   `(Q1)_{Σ,BS} ≡_BS (Q2)_{Σ,BS}`.
//!
//! All three require set-chase on the inputs to terminate; a blown budget
//! surfaces as [`EquivOutcome::Unknown`].

use crate::equiv::{
    bag_equivalent_with_set_relations, bag_set_equivalent, set_contained, set_equivalent,
};
use eqsql_chase::{sound_chase, ChaseConfig, ChaseError, RunGuard, SoundChased};
use eqsql_cq::CqQuery;
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};

/// A provider of sound-chase results.
///
/// Every decision procedure in this crate reduces to sound chases of its
/// input queries; abstracting the chase behind this trait lets callers
/// swap the direct engine ([`DirectChaser`]) for a memoizing one (the
/// sharded `(Q, Σ)` chase-result cache of `eqsql_service`) without the
/// procedures knowing. Implementations must be semantically transparent:
/// the returned value must be isomorphic (same `failed` flag, equivalent
/// terminal query, consistently renamed `renaming`) to what
/// [`eqsql_chase::sound_chase`] would produce on the same input.
pub trait SoundChaser {
    /// Produces `(q)_{Σ,sem}` — directly or from a cache.
    fn sound_chase(
        &self,
        sem: Semantics,
        q: &CqQuery,
        sigma: &DependencySet,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> Result<SoundChased, ChaseError>;

    /// The [`RunGuard`] governing chases issued through this chaser.
    ///
    /// Decision procedures that do work *besides* chasing — the
    /// counterexample search's instance-chase repairs and candidate
    /// evaluation loops — poll this guard so a deadline or cancellation
    /// aborts them promptly too, not just the query chases. The default
    /// is the unguarded guard (never aborts); guard-carrying chasers (the
    /// `eqsql_service` Solver's per-request chaser) override it.
    fn run_guard(&self) -> RunGuard {
        RunGuard::unguarded()
    }
}

/// The pass-through [`SoundChaser`]: every request runs the chase engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectChaser;

impl SoundChaser for DirectChaser {
    fn sound_chase(
        &self,
        sem: Semantics,
        q: &CqQuery,
        sigma: &DependencySet,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> Result<SoundChased, ChaseError> {
        sound_chase(sem, q, sigma, schema, config)
    }
}

/// Outcome of a Σ-equivalence test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivOutcome {
    /// The queries are equivalent under Σ and the chosen semantics.
    Equivalent,
    /// They are not equivalent.
    NotEquivalent,
    /// The chase did not terminate within budget; the test is inconclusive
    /// (the paper's procedures are complete only when set-chase
    /// terminates).
    Unknown(ChaseError),
}

impl EquivOutcome {
    /// `true` iff the outcome is [`EquivOutcome::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivOutcome::Equivalent)
    }

    fn from_bool(b: bool) -> EquivOutcome {
        if b {
            EquivOutcome::Equivalent
        } else {
            EquivOutcome::NotEquivalent
        }
    }
}

/// `Q1 ≡_{Σ,X} Q2` for the given semantics `X`. The schema provides the
/// set-valuedness flags consulted under bag semantics.
///
/// ```
/// use eqsql_chase::ChaseConfig;
/// use eqsql_core::{sigma_equivalent, Semantics};
/// use eqsql_cq::parse_query;
/// use eqsql_deps::parse_dependencies;
/// use eqsql_relalg::Schema;
///
/// // Every a-fact has a b-partner; b is keyed on its first column and is
/// // set-valued, so the b-join preserves multiplicities.
/// let sigma = parse_dependencies(
///     "a(X) -> b(X,W). b(X,W1) & b(X,W2) -> W1 = W2.",
/// ).unwrap();
/// let mut schema = Schema::all_bags(&[("a", 1), ("b", 2)]);
/// schema.mark_set_valued(eqsql_cq::Predicate::new("b"));
///
/// let q1 = parse_query("q(X) :- a(X)").unwrap();
/// let q2 = parse_query("q(X) :- a(X), b(X,W)").unwrap();
/// for sem in [Semantics::Set, Semantics::BagSet, Semantics::Bag] {
///     # #[allow(deprecated)]
///     let v = sigma_equivalent(sem, &q1, &q2, &sigma, &schema,
///                              &ChaseConfig::default());
///     assert!(v.is_equivalent());
/// }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "construct an `eqsql_service::Solver` and decide `Request::Equivalent` — \
            verdicts come back with machine-checkable evidence; \
            the parameterized engine entry point is `sigma_equivalent_via`"
)]
pub fn sigma_equivalent(
    sem: Semantics,
    q1: &CqQuery,
    q2: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> EquivOutcome {
    sigma_equivalent_via(&DirectChaser, sem, q1, q2, sigma, schema, config)
}

/// [`sigma_equivalent`] with the chases routed through `chaser` — the hook
/// by which `eqsql_service` serves the (possibly repeated) chases of a
/// batch from its shared cache.
pub fn sigma_equivalent_via<C: SoundChaser + ?Sized>(
    chaser: &C,
    sem: Semantics,
    q1: &CqQuery,
    q2: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> EquivOutcome {
    let c1 = match chaser.sound_chase(sem, q1, sigma, schema, config) {
        Ok(c) => c,
        Err(e) => return EquivOutcome::Unknown(e),
    };
    let c2 = match chaser.sound_chase(sem, q2, sigma, schema, config) {
        Ok(c) => c,
        Err(e) => return EquivOutcome::Unknown(e),
    };
    // A failed chase means the query is unsatisfiable under Σ (empty on
    // every D ⊨ Σ): two failed queries are equivalent, a failed and a
    // satisfiable one are not (the canonical database of the survivor
    // witnesses non-emptiness).
    match (c1.failed, c2.failed) {
        (true, true) => return EquivOutcome::Equivalent,
        (true, false) | (false, true) => return EquivOutcome::NotEquivalent,
        (false, false) => {}
    }
    let verdict = match sem {
        Semantics::Set => set_equivalent(&c1.query, &c2.query),
        Semantics::Bag => bag_equivalent_with_set_relations(&c1.query, &c2.query, schema),
        Semantics::BagSet => bag_set_equivalent(&c1.query, &c2.query),
    };
    EquivOutcome::from_bool(verdict)
}

/// `Q1 ⊑_{Σ,S} Q2` — set containment under dependencies, via chase +
/// Chandra–Merlin on the results.
#[deprecated(
    since = "0.2.0",
    note = "construct an `eqsql_service::Solver` and decide `Request::Contained`; \
            the parameterized engine entry point is `sigma_set_contained_via`"
)]
pub fn sigma_set_contained(
    q1: &CqQuery,
    q2: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<bool, ChaseError> {
    sigma_set_contained_via(&DirectChaser, q1, q2, sigma, schema, config)
}

/// [`sigma_set_contained`] with the chases routed through `chaser`.
pub fn sigma_set_contained_via<C: SoundChaser + ?Sized>(
    chaser: &C,
    q1: &CqQuery,
    q2: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<bool, ChaseError> {
    let c1 = chaser.sound_chase(Semantics::Set, q1, sigma, schema, config)?;
    if c1.failed {
        return Ok(true); // empty answer is contained in anything
    }
    let c2 = chaser.sound_chase(Semantics::Set, q2, sigma, schema, config)?;
    if c2.failed {
        // q2 is empty under Σ: containment holds only if q1 is too (it is
        // not — its chase succeeded).
        return Ok(false);
    }
    // (Q1)_{Σ,S} ⊑_S Q2 suffices (and is necessary): chasing q1 does not
    // change its answers on databases satisfying Σ.
    Ok(set_contained(&c1.query, q2))
}

#[cfg(test)]
mod tests {
    // The deprecated convenience entry points stay the differential oracle
    // for the Solver suite; their own unit tests keep exercising them.
    #![allow(deprecated)]

    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    fn sigma_4_1() -> DependencySet {
        parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap()
    }

    fn schema_4_1() -> Schema {
        let mut s = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        s.mark_set_valued(eqsql_cq::Predicate::new("s"));
        s.mark_set_valued(eqsql_cq::Predicate::new("t"));
        s
    }

    #[test]
    fn example_4_1_equivalences_per_semantics() {
        // Q1 ≡_{Σ,S} Q4 but Q1 ≢_{Σ,B} Q4 and Q1 ≢_{Σ,BS} Q4.
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let (sigma, schema) = (sigma_4_1(), schema_4_1());
        assert!(sigma_equivalent(Semantics::Set, &q1, &q4, &sigma, &schema, &cfg()).is_equivalent());
        assert_eq!(
            sigma_equivalent(Semantics::Bag, &q1, &q4, &sigma, &schema, &cfg()),
            EquivOutcome::NotEquivalent
        );
        assert_eq!(
            sigma_equivalent(Semantics::BagSet, &q1, &q4, &sigma, &schema, &cfg()),
            EquivOutcome::NotEquivalent
        );
    }

    #[test]
    fn example_4_1_bag_chain() {
        // Q3 = (Q4)_{Σ,B}: Q3 ≡_{Σ,B} Q4. Q2 = (Q4)_{Σ,BS}: Q2 ≡_{Σ,BS} Q4
        // but Q2 ≢_{Σ,B} Q4 (R is bag-valued).
        let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let (sigma, schema) = (sigma_4_1(), schema_4_1());
        assert!(sigma_equivalent(Semantics::Bag, &q3, &q4, &sigma, &schema, &cfg()).is_equivalent());
        assert!(
            sigma_equivalent(Semantics::BagSet, &q2, &q4, &sigma, &schema, &cfg()).is_equivalent()
        );
        assert_eq!(
            sigma_equivalent(Semantics::Bag, &q2, &q4, &sigma, &schema, &cfg()),
            EquivOutcome::NotEquivalent
        );
        // And all four are set-equivalent under Σ.
        for q in [&q2, &q3] {
            assert!(
                sigma_equivalent(Semantics::Set, q, &q4, &sigma, &schema, &cfg()).is_equivalent()
            );
        }
    }

    #[test]
    fn example_4_4_bag_equivalence_without_sigma2() {
        // Σ' = Σ - {σ2}: still Q3 ≡_{Σ',B} Q4 and Q3 ≡_{Σ',BS} Q4
        // (via the regularized σ4's t-half).
        let sigma_prime = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let schema = schema_4_1();
        assert!(sigma_equivalent(Semantics::Bag, &q3, &q4, &sigma_prime, &schema, &cfg())
            .is_equivalent());
        assert!(sigma_equivalent(Semantics::BagSet, &q3, &q4, &sigma_prime, &schema, &cfg())
            .is_equivalent());
    }

    #[test]
    fn example_4_6_nonequivalence() {
        // Q(X) :- p(X,Y), s(X,Z) vs Q'(X) :- p(X,Y), s(X,Z), t(Z,Y) under
        // Σ = {ν1, ν2}: not equivalent under B or BS (the modified chase
        // of the PODS version was unsound here), but equivalent under S.
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
             t(X,Y) & t(Z,Y) -> X = Z.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
        let qp = parse_query("qp(X) :- p(X,Y), s(X,Z), t(Z,Y)").unwrap();
        assert_eq!(
            sigma_equivalent(Semantics::BagSet, &q, &qp, &sigma, &schema, &cfg()),
            EquivOutcome::NotEquivalent
        );
        assert_eq!(
            sigma_equivalent(Semantics::Bag, &q, &qp, &sigma, &schema, &cfg()),
            EquivOutcome::NotEquivalent
        );
        assert!(sigma_equivalent(Semantics::Set, &q, &qp, &sigma, &schema, &cfg()).is_equivalent());
    }

    #[test]
    fn example_4_8_sound_rewriting_is_equivalent() {
        // Q''(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y) IS equivalent to Q
        // under both B (with s,t set-valued) and BS.
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(Z,Y).\n\
             t(X,Y) & t(Z,Y) -> X = Z.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        let q = parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap();
        let qpp = parse_query("qpp(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y)").unwrap();
        assert!(sigma_equivalent(Semantics::Bag, &q, &qpp, &sigma, &schema, &cfg()).is_equivalent());
        assert!(
            sigma_equivalent(Semantics::BagSet, &q, &qpp, &sigma, &schema, &cfg()).is_equivalent()
        );
    }

    #[test]
    fn unknown_on_non_terminating_chase() {
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let q1 = parse_query("q(X) :- e(X,Y)").unwrap();
        let q2 = parse_query("q(X) :- e(X,Y), e(Y,Z)").unwrap();
        let schema = Schema::all_bags(&[("e", 2)]);
        let out = sigma_equivalent(
            Semantics::Set,
            &q1,
            &q2,
            &sigma,
            &schema,
            &ChaseConfig::with_max_steps(20),
        );
        assert!(matches!(out, EquivOutcome::Unknown(_)));
    }

    #[test]
    fn failed_chases_compare_as_empty_queries() {
        let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
        let schema = Schema::all_bags(&[("s", 2), ("p", 1)]);
        let dead1 = parse_query("q(X) :- s(X,3), s(X,4)").unwrap();
        let dead2 = parse_query("q(X) :- s(X,1), s(X,2)").unwrap();
        let alive = parse_query("q(X) :- s(X,3)").unwrap();
        assert!(sigma_equivalent(Semantics::Set, &dead1, &dead2, &sigma, &schema, &cfg())
            .is_equivalent());
        assert_eq!(
            sigma_equivalent(Semantics::Set, &dead1, &alive, &sigma, &schema, &cfg()),
            EquivOutcome::NotEquivalent
        );
    }

    #[test]
    fn sigma_containment() {
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let qa = parse_query("q(X) :- a(X)").unwrap();
        let qab = parse_query("q(X) :- a(X), b(X)").unwrap();
        // a ⊑ ab under Σ (chase adds b) and ab ⊑ a outright.
        assert!(sigma_set_contained(&qa, &qab, &sigma, &schema, &cfg()).unwrap());
        assert!(sigma_set_contained(&qab, &qa, &sigma, &schema, &cfg()).unwrap());
        // Without Σ, a ⋢ ab.
        assert!(!sigma_set_contained(&qa, &qab, &DependencySet::new(), &schema, &cfg()).unwrap());
    }

    #[test]
    fn proposition_6_2_containment_chain() {
        // (Q)_{Σ,S} ⊑_S (Q)_{Σ,BS} ⊑_S (Q)_{Σ,B} ⊑_S Q on Example 4.1.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let (sigma, schema) = (sigma_4_1(), schema_4_1());
        let s = sound_chase(Semantics::Set, &q4, &sigma, &schema, &cfg()).unwrap().query;
        let bs = sound_chase(Semantics::BagSet, &q4, &sigma, &schema, &cfg()).unwrap().query;
        let b = sound_chase(Semantics::Bag, &q4, &sigma, &schema, &cfg()).unwrap().query;
        assert!(set_contained(&s, &bs));
        assert!(set_contained(&bs, &b));
        assert!(set_contained(&b, &q4));
    }
}
