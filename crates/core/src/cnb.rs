//! The Chase & Backchase family (Appendix A and §6.3 of the paper).
//!
//! `C&B` (Deutsch, Popa & Tannen \[11\]) finds all Σ-minimal conjunctive
//! reformulations of a CQ query under set semantics: chase the query to its
//! **universal plan** `U = (Q)_{Σ,S}`, then *backchase* — test every
//! subquery of `U` for Σ-equivalence with `Q`.
//!
//! The paper's extensions replace both phases:
//!
//! * `Bag-C&B` uses the **sound bag chase** for the universal plan and the
//!   Theorem 6.1 equivalence test (Theorem 6.4: sound and complete when
//!   set-chase terminates);
//! * `Bag-Set-C&B` uses the sound bag-set chase and the Theorem 6.2 test
//!   (Theorem K.1).
//!
//! Both are obtained here by parameterizing one driver on
//! [`Semantics`].

use crate::minimality::is_sigma_minimal_via;
use crate::sigma_equiv::{sigma_equivalent_via, DirectChaser, EquivOutcome, SoundChaser};
use eqsql_chase::{ChaseConfig, ChaseError};
use eqsql_cq::{are_isomorphic, CqQuery, Term};
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};
use std::fmt;

/// Options for the backchase enumeration.
#[derive(Clone, Debug)]
pub struct CnbOptions {
    /// Hard cap on universal-plan size (the backchase enumerates up to
    /// `2^n` subqueries).
    pub max_plan_atoms: usize,
    /// Filter outputs through the Σ-minimality test of Definition 3.1
    /// (subset-minimality within the plan always holds).
    pub require_sigma_minimal: bool,
}

impl Default for CnbOptions {
    fn default() -> Self {
        CnbOptions { max_plan_atoms: 16, require_sigma_minimal: true }
    }
}

/// A C&B failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CnbError {
    /// Chase failure/budget.
    Chase(ChaseError),
    /// The universal plan is too large to backchase.
    PlanTooLarge {
        /// Universal-plan atom count.
        atoms: usize,
    },
}

impl fmt::Display for CnbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnbError::Chase(e) => write!(f, "{e}"),
            CnbError::PlanTooLarge { atoms } => {
                write!(f, "universal plan has {atoms} atoms; backchase would not finish")
            }
        }
    }
}

impl std::error::Error for CnbError {}

impl From<ChaseError> for CnbError {
    fn from(e: ChaseError) -> Self {
        CnbError::Chase(e)
    }
}

/// The result of a C&B run.
#[derive(Clone, Debug)]
pub struct CnbResult {
    /// The universal plan `(Q)_{Σ,sem}`.
    pub universal_plan: CqQuery,
    /// All Σ-minimal reformulations found (pairwise non-isomorphic, sorted
    /// by body size). Includes (a query isomorphic to) the input whenever
    /// the input is itself Σ-minimal.
    pub reformulations: Vec<CqQuery>,
    /// Number of candidate subqueries tested.
    pub candidates_tested: usize,
}

/// Runs C&B / Bag-C&B / Bag-Set-C&B depending on `sem` (Appendix A;
/// §6.3; Theorems A.1, 6.4, K.1).
#[deprecated(
    since = "0.2.0",
    note = "construct an `eqsql_service::Solver` and decide `Request::Reformulate` — \
            the Solver shares one chase cache across the whole backchase; \
            the parameterized engine entry point is `cnb_via`"
)]
pub fn cnb(
    sem: Semantics,
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
    opts: &CnbOptions,
) -> Result<CnbResult, CnbError> {
    cnb_via(&DirectChaser, sem, q, sigma, schema, config, opts)
}

/// [`cnb`] with every chase routed through `chaser`.
///
/// The backchase re-chases `q` once per candidate subquery and chases many
/// structurally identical candidates; a memoizing chaser (the
/// `eqsql_service` cache) turns that quadratic re-chasing into hash
/// lookups, which is the C&B-family speedup the batched equivalence
/// service is built around.
pub fn cnb_via<C: SoundChaser + ?Sized>(
    chaser: &C,
    sem: Semantics,
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
    opts: &CnbOptions,
) -> Result<CnbResult, CnbError> {
    let chased = chaser.sound_chase(sem, q, sigma, schema, config)?;
    if chased.failed {
        // Q is unsatisfiable under Σ; it has no satisfiable reformulations.
        return Ok(CnbResult {
            universal_plan: chased.query,
            reformulations: Vec::new(),
            candidates_tested: 0,
        });
    }
    let u = chased.query;
    let n = u.body.len();
    if n > opts.max_plan_atoms {
        return Err(CnbError::PlanTooLarge { atoms: n });
    }

    // Enumerate nonempty subsets of the plan body, ascending by size, so
    // that subset-minimality is a simple superset check.
    let mut masks: Vec<u32> = (1u32..(1u32 << n)).collect();
    masks.sort_by_key(|m| m.count_ones());

    let mut accepted_masks: Vec<u32> = Vec::new();
    let mut out: Vec<CqQuery> = Vec::new();
    let mut tested = 0usize;
    for mask in masks {
        if accepted_masks.iter().any(|a| mask & a == *a) {
            continue; // proper superset of an accepted reformulation
        }
        let body: Vec<_> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| u.body[i].clone()).collect();
        let candidate = CqQuery { name: q.name, head: u.head.clone(), body };
        if !candidate.is_safe() {
            continue;
        }
        tested += 1;
        match sigma_equivalent_via(chaser, sem, &candidate, q, sigma, schema, config) {
            EquivOutcome::Equivalent => {}
            EquivOutcome::NotEquivalent => continue,
            EquivOutcome::Unknown(e) => return Err(e.into()),
        }
        if opts.require_sigma_minimal
            && !is_sigma_minimal_via(chaser, &candidate, sigma, schema, sem, config)?
        {
            continue;
        }
        if out.iter().any(|r| are_isomorphic(r, &candidate)) {
            continue;
        }
        accepted_masks.push(mask);
        out.push(candidate);
    }
    out.sort_by_key(CqQuery::size);
    Ok(CnbResult { universal_plan: u, reformulations: out, candidates_tested: tested })
}

/// Renders a reformulation list for display/tests.
pub fn render_reformulations(r: &CnbResult) -> Vec<String> {
    r.reformulations.iter().map(|q| q.to_string()).collect()
}

/// Do the reformulations contain a query isomorphic to `q`?
pub fn contains_isomorph(result: &CnbResult, q: &CqQuery) -> bool {
    result.reformulations.iter().any(|r| are_isomorphic(r, q))
}

/// Do the reformulations contain a query set-equivalent to `q` (useful
/// when variable-collapse makes isomorphism too strict)?
pub fn contains_set_equivalent(result: &CnbResult, q: &CqQuery) -> bool {
    result.reformulations.iter().any(|r| crate::equiv::set_equivalent(r, q))
}

/// Heads with constants cannot lose their binding atoms; helper used by
/// the aggregate wrappers to re-target heads.
pub fn head_is_all_vars(q: &CqQuery) -> bool {
    q.head.iter().all(|t| matches!(t, Term::Var(_)))
}

#[cfg(test)]
mod tests {
    // The deprecated convenience entry points stay the differential oracle
    // for the Solver suite; their own unit tests keep exercising them.
    #![allow(deprecated)]

    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;
    use std::collections::HashSet;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }
    fn opts() -> CnbOptions {
        CnbOptions::default()
    }

    fn sigma_4_1() -> DependencySet {
        parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap()
    }

    fn schema_4_1() -> Schema {
        let mut s = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        s.mark_set_valued(eqsql_cq::Predicate::new("s"));
        s.mark_set_valued(eqsql_cq::Predicate::new("t"));
        s
    }

    #[test]
    fn set_cnb_on_example_4_1_finds_q4() {
        // Under set semantics, the minimal reformulation of Q1 is Q4.
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let r = cnb(Semantics::Set, &q1, &sigma_4_1(), &schema_4_1(), &cfg(), &opts()).unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        assert!(contains_isomorph(&r, &q4), "got {:?}", render_reformulations(&r));
        // Q4 is the unique Σ-minimal reformulation here.
        assert_eq!(r.reformulations.len(), 1, "got {:?}", render_reformulations(&r));
    }

    #[test]
    fn bag_cnb_on_example_4_1_q3_reduces_to_q4() {
        // Q3's t/s subgoals live on keyed set-valued relations, so the
        // sound bag chase re-adds them: Q3 ≡_{Σ,B} Q4 and Bag-C&B returns
        // exactly {Q4}.
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        let r = cnb(Semantics::Bag, &q3, &sigma_4_1(), &schema_4_1(), &cfg(), &opts()).unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        assert!(contains_isomorph(&r, &q4), "got {:?}", render_reformulations(&r));
        assert_eq!(r.reformulations.len(), 1, "got {:?}", render_reformulations(&r));
    }

    #[test]
    fn bag_cnb_on_example_4_1_q1_keeps_bag_atoms() {
        // Q1 adds r/u subgoals over *bag-valued* relations. Under set
        // semantics Q1 reduces all the way to Q4; under bag semantics the
        // r/u atoms change multiplicities and must stay: the unique
        // Σ-minimal bag reformulation is q(X) :- p(X,Y), r(X), u(X,U).
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let r = cnb(Semantics::Bag, &q1, &sigma_4_1(), &schema_4_1(), &cfg(), &opts()).unwrap();
        let q_pru = parse_query("q(X) :- p(X,Y), r(X), u(X,U)").unwrap();
        assert!(contains_isomorph(&r, &q_pru), "got {:?}", render_reformulations(&r));
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        assert!(!contains_isomorph(&r, &q4), "Q4 must NOT be bag-equivalent to Q1");
        assert_eq!(r.reformulations.len(), 1, "got {:?}", render_reformulations(&r));
    }

    #[test]
    fn bag_cnb_of_q4_returns_q4() {
        // Sound bag chase of Q4 is Q3; the minimal subquery equivalent to
        // Q4 is Q4 itself.
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let r = cnb(Semantics::Bag, &q4, &sigma_4_1(), &schema_4_1(), &cfg(), &opts()).unwrap();
        assert!(contains_isomorph(&r, &q4), "got {:?}", render_reformulations(&r));
        assert_eq!(r.reformulations.len(), 1);
    }

    #[test]
    fn bag_set_cnb_on_example_4_1() {
        // Under bag-set semantics, Q2 ≡_{Σ,BS} Q4: both should appear when
        // starting from Q2 (Q4 as the minimal one).
        let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
        let r = cnb(Semantics::BagSet, &q2, &sigma_4_1(), &schema_4_1(), &cfg(), &opts()).unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        assert!(contains_isomorph(&r, &q4), "got {:?}", render_reformulations(&r));
    }

    #[test]
    fn cnb_completeness_inclusion_chain() {
        // Σ: a(X) -> b(X), b(X) -> a(X): q(X) :- a(X) and q(X) :- b(X) are
        // both Σ-minimal reformulations of either, under all semantics.
        let sigma = parse_dependencies("a(X) -> b(X). b(X) -> a(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let qa = parse_query("q(X) :- a(X)").unwrap();
        let qb = parse_query("q(X) :- b(X)").unwrap();
        for sem in [Semantics::Set, Semantics::BagSet] {
            let r = cnb(sem, &qa, &sigma, &schema, &cfg(), &opts()).unwrap();
            assert!(contains_isomorph(&r, &qa), "{sem}: {:?}", render_reformulations(&r));
            assert!(contains_isomorph(&r, &qb), "{sem}: {:?}", render_reformulations(&r));
            assert_eq!(r.reformulations.len(), 2);
        }
    }

    #[test]
    fn plan_too_large_is_reported() {
        let sigma = parse_dependencies(
            "p(X) -> a1(X). p(X) -> a2(X). p(X) -> a3(X). p(X) -> a4(X).\n\
             p(X) -> a5(X). p(X) -> a6(X). p(X) -> a7(X). p(X) -> a8(X).",
        )
        .unwrap();
        let schema = Schema::all_bags(&[("p", 1)]);
        let q = parse_query("q(X) :- p(X)").unwrap();
        let small = CnbOptions { max_plan_atoms: 4, ..CnbOptions::default() };
        let err = cnb(Semantics::Set, &q, &sigma, &schema, &cfg(), &small).unwrap_err();
        assert!(matches!(err, CnbError::PlanTooLarge { .. }));
    }

    #[test]
    fn no_dependencies_returns_core() {
        // Without Σ, C&B(set) is just minimization: the core.
        let q = parse_query("q(X) :- p(X,Y), p(X,Z)").unwrap();
        let r = cnb(
            Semantics::Set,
            &q,
            &DependencySet::new(),
            &Schema::all_bags(&[("p", 2)]),
            &cfg(),
            &opts(),
        )
        .unwrap();
        assert_eq!(r.reformulations.len(), 1);
        assert_eq!(r.reformulations[0].body.len(), 1);
    }

    #[test]
    fn unsatisfiable_query_yields_no_reformulations() {
        let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
        let schema = Schema::all_bags(&[("s", 2)]);
        let q = parse_query("q(X) :- s(X,1), s(X,2)").unwrap();
        let r = cnb(Semantics::Set, &q, &sigma, &schema, &cfg(), &opts()).unwrap();
        assert!(r.reformulations.is_empty());
    }

    #[test]
    fn candidate_count_is_reported() {
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let r = cnb(
            Semantics::Set,
            &q,
            &DependencySet::new(),
            &Schema::all_bags(&[("p", 2)]),
            &cfg(),
            &opts(),
        )
        .unwrap();
        assert_eq!(r.candidates_tested, 1);
    }

    #[test]
    fn dedup_is_up_to_isomorphism() {
        // Universal plan with two interchangeable s-atoms must not yield
        // two isomorphic copies of the same reformulation.
        let sigma = parse_dependencies("p(X) -> s(X,Z).").unwrap();
        let schema = Schema::all_bags(&[("p", 1), ("s", 2)]);
        let q = parse_query("q(X) :- p(X), s(X,A), s(X,B)").unwrap();
        let r = cnb(Semantics::Set, &q, &sigma, &schema, &cfg(), &opts()).unwrap();
        let names: HashSet<String> = render_reformulations(&r).into_iter().collect();
        assert_eq!(names.len(), r.reformulations.len());
        for (i, a) in r.reformulations.iter().enumerate() {
            for b in r.reformulations.iter().skip(i + 1) {
                assert!(!are_isomorphic(a, b));
            }
        }
    }
}
