//! Constructing witness databases for non-equivalence.
//!
//! The paper's impossibility arguments are all constructive; this module
//! packages them as a search for a **separating database**: given queries
//! `Q1 ≢_{Σ,X} Q2`, find a database `D ⊨ Σ` (set-valued where the
//! semantics or schema requires) on which the answers differ.
//!
//! Candidate constructions, in order:
//!
//! 1. canonical databases of the set-chased queries (the generic witness —
//!    e.g. Example 4.7 uses the canonical database of the chased test
//!    query, which is the chased unsound-step result);
//! 2. **m-copy amplification** (Lemma D.1): multiply the tuples of one
//!    bag-valued relation `m` times; with `m` past the lemma's bound the
//!    subgoal-count difference dominates every other effect (only
//!    meaningful — and only attempted — under bag semantics);
//! 3. canonical databases of the *unchased* queries repaired by the
//!    instance chase.
//!
//! The search is sound (every returned database is verified to satisfy Σ
//! and to separate the queries) but not complete; `None` means "no witness
//! found among the candidates", not a proof of equivalence.

use eqsql_chase::instance::chase_database_guarded;
use eqsql_chase::ChaseConfig;
use eqsql_cq::{CqQuery, Predicate};
use eqsql_deps::satisfaction::db_satisfies_all;
use eqsql_deps::DependencySet;
use eqsql_relalg::eval::{eval, Semantics};
use eqsql_relalg::{canonical_database, Database, Relation, Schema};

/// Lemma D.1's amplification: the canonical database of (the canonical
/// representation of) `q`, with every tuple of `rel` given multiplicity
/// `m`.
pub fn lemma_d1_database(q: &CqQuery, rel: Predicate, m: u64) -> Database {
    let frozen = canonical_database(&eqsql_cq::canonical_representation(q), 0);
    let mut db = Database::new();
    for (p, r) in frozen.db.iter() {
        let target = db.get_or_create(p, r.arity());
        for (t, _) in r.iter() {
            target.insert(t.clone(), if p == rel { m } else { 1 });
        }
    }
    db
}

/// The explicit bound `m*` from the proof of Lemma D.1, for queries `q1`
/// (with `n1` subgoals on `rel`) and `q2` (with `n2 < n1`): past this
/// multiplicity, `q1`'s answer bag must outgrow `q2`'s.
pub fn lemma_d1_m_star(q1: &CqQuery, q2: &CqQuery, rel: Predicate) -> u64 {
    let n1 = q1.count_pred(rel) as u64;
    let n2 = q2.count_pred(rel) as u64;
    let n3 = q2.body.len() as u64;
    let n4 = (q1.body.len() as u64).saturating_sub(n1).max(1);
    if n3 > n2 {
        1 + n1.pow(2 * n2 as u32) * n4.pow((n3 - n2) as u32)
    } else {
        1 + n1.pow(2 * n2 as u32)
    }
}

fn answers_differ(sem: Semantics, q1: &CqQuery, q2: &CqQuery, db: &Database) -> bool {
    match (eval(q1, db, sem), eval(q2, db, sem)) {
        (Ok(a), Ok(b)) => a != b,
        _ => false, // semantics not applicable on this database
    }
}

fn db_admissible(db: &Database, sem: Semantics, sigma: &DependencySet, schema: &Schema) -> bool {
    if !db_satisfies_all(db, sigma) {
        return false;
    }
    match sem {
        Semantics::Set | Semantics::BagSet => db.is_set_valued(),
        Semantics::Bag => db.are_set_valued(&schema.set_valued_relations()),
    }
}

/// Searches for a database `D ⊨ Σ` separating `q1` from `q2` under `sem`.
pub fn separating_database(
    sem: Semantics,
    q1: &CqQuery,
    q2: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Option<Database> {
    separating_database_via(&crate::sigma_equiv::DirectChaser, sem, q1, q2, sigma, schema, config)
}

/// [`separating_database`] with the *query* chases (candidate family 1)
/// routed through `chaser`, so a memoizing chaser — the `eqsql_service`
/// cache, which has almost always just chased both queries to reach the
/// negative verdict this search is decorating — serves them for free. The
/// instance-repair chases of families 3–4 are database-level and not
/// cacheable through this interface.
pub fn separating_database_via<C: crate::sigma_equiv::SoundChaser + ?Sized>(
    chaser: &C,
    sem: Semantics,
    q1: &CqQuery,
    q2: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Option<Database> {
    // The search runs after the negative verdict and can be the longest
    // phase of a decision; abort it (returning "no witness") as soon as
    // the chaser's guard signals. The query chases of family 1 poll the
    // guard inside the engine; the instance repairs of families 3–4 and
    // the final candidate-evaluation loop poll it here.
    let guard = chaser.run_guard();
    let mut candidates: Vec<Database> = Vec::new();

    // (1) Canonical databases of the chased queries. The set-semantics
    // chase is the right one regardless of `sem`: it produces the most
    // saturated canonical databases, and every candidate is re-verified
    // against Σ and the semantics' set-valuedness rules before use.
    let mut chased: Vec<CqQuery> = Vec::new();
    for q in [q1, q2] {
        if let Ok(c) = chaser.sound_chase(Semantics::Set, q, sigma, schema, config) {
            if !c.failed {
                let frozen = canonical_database(&c.query, 0);
                candidates.push(frozen.db);
                chased.push(c.query);
            }
        }
    }

    // (2) Lemma D.1 amplifications on every bag-valued relation used.
    if sem == Semantics::Bag {
        for base in &chased {
            for rel in base.predicates() {
                if schema.is_set_valued(rel.0) {
                    continue;
                }
                let m_star = lemma_d1_m_star(q1, q2, rel.0).min(64);
                for m in [2u64, 3, m_star.max(2)] {
                    candidates.push(lemma_d1_database(base, rel.0, m));
                }
            }
        }
    }

    // (3) Doubled canonical databases: freeze the chased query twice,
    //     sharing the head variables, and repair with the instance chase.
    //     This realizes "two satisfying assignments per head tuple" — the
    //     shape of the paper's bag-set counterexamples (Example 4.1's D
    //     with two u-tuples; the canonical database of the chased test
    //     query in Example 4.7) — unless Σ forces the copies to collapse,
    //     in which case the queries really are equivalent along this axis.
    for base in &chased {
        let doubled = doubled_database(base);
        if let Ok(r) = chase_database_guarded(&doubled, sigma, config, &guard) {
            if !r.failed {
                // Null merges during the repair can leave multiplicity-2
                // tuples; the set-valued flattening is the candidate the
                // set-based semantics need.
                candidates.push(r.db.to_set());
                candidates.push(r.db);
            }
        }
    }

    // (4) Canonical databases of the raw queries, repaired by the
    //     instance chase.
    for q in [q1, q2] {
        let frozen = canonical_database(&eqsql_cq::canonical_representation(q), 1000);
        if let Ok(r) = chase_database_guarded(&frozen.db, sigma, config, &guard) {
            if !r.failed {
                candidates.push(r.db.to_set());
                candidates.push(r.db);
            }
        }
    }

    candidates.into_iter().find(|db| {
        guard.check(0).is_ok()
            && db_admissible(db, sem, sigma, schema)
            && answers_differ(sem, q1, q2, db)
    })
}

/// Freezes `q` twice — the second copy with all non-head variables renamed
/// fresh — into one canonical database. Every head tuple then has (at
/// least) two satisfying assignments, which is what separates queries with
/// different subgoal structure under bag-set semantics.
fn doubled_database(q: &CqQuery) -> Database {
    use eqsql_cq::{Subst, Term, VarSupply};
    let head_vars: std::collections::HashSet<_> = q.head_vars().into_iter().collect();
    let mut supply = VarSupply::avoiding([q]);
    let mut s = Subst::new();
    for v in q.all_vars() {
        if !head_vars.contains(&v) {
            s.set(v, Term::Var(supply.fresh(v.name())));
        }
    }
    let copy = q.apply(&s);
    let mut merged = q.clone();
    merged.body.extend(copy.body);
    canonical_database(&eqsql_cq::canonical_representation(&merged), 500).db
}

/// Amplify one relation of an existing database by `m` (testing helper
/// mirroring the Example D.1/D.2 constructions).
pub fn amplify(db: &Database, rel: Predicate, m: u64) -> Database {
    let mut out = Database::new();
    for (p, r) in db.iter() {
        let target = out.get_or_create(p, r.arity());
        for (t, mult) in r.iter() {
            target.insert(t.clone(), if p == rel { mult * m } else { mult });
        }
    }
    out
}

/// Placeholder-free re-export for convenience in tests.
pub use eqsql_relalg::Tuple;

#[allow(unused)]
fn _assert_relation_is_sync(_: Relation) {}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;
    use eqsql_relalg::eval::eval_bag;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn example_d2_amplification_separates_q7_q8() {
        // Q7(X) :- p(X,Y), r(X), r(X) vs Q8(X) :- p(X,Y), r(X): with m
        // copies of R's tuple, Q7 yields m², Q8 yields m.
        let q7 = parse_query("q7(X) :- p(X,Y), r(X), r(X)").unwrap();
        let q8 = parse_query("q8(X) :- p(X,Y), r(X)").unwrap();
        let r = Predicate::new("r");
        let m_star = lemma_d1_m_star(&q7, &q8, r);
        assert!(m_star > 4, "paper computes the bound 4m < m² for m > 4");
        let db = lemma_d1_database(&q8, r, 5);
        let a7 = eval_bag(&q7, &db);
        let a8 = eval_bag(&q8, &db);
        let t = a8.core_set().next().unwrap().clone();
        assert_eq!(a7.multiplicity(&t), 25);
        assert_eq!(a8.multiplicity(&t), 5);
    }

    #[test]
    fn separating_database_for_example_4_1() {
        // Q1 ≢_{Σ,B} Q4: the search must produce a witness.
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        schema.mark_set_valued(Predicate::new("s"));
        schema.mark_set_valued(Predicate::new("t"));
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let witness = separating_database(Semantics::Bag, &q1, &q4, &sigma, &schema, &cfg());
        let db = witness.expect("a separating database must exist");
        assert!(db_satisfies_all(&db, &sigma));
        assert!(answers_differ(Semantics::Bag, &q1, &q4, &db));
        // The same pair is separable under bag-set semantics too.
        let witness_bs = separating_database(Semantics::BagSet, &q1, &q4, &sigma, &schema, &cfg());
        assert!(witness_bs.is_some());
        // But NOT under set semantics (they are set-equivalent):
        // the search comes back empty-handed.
        assert!(separating_database(Semantics::Set, &q1, &q4, &sigma, &schema, &cfg()).is_none());
    }

    #[test]
    fn example_4_7_style_witness_from_chased_canonical_db() {
        // Q vs the unsound chase-step result Q'' (non-assignment-fixing σ4
        // with only the key of R): separable under BS via the canonical
        // database of the chased query.
        let sigma = parse_dependencies(
            "p(X,Y) -> r(X,Z) & s(Z,W) & s(X,T).\n\
             r(X,Y) & r(X,Z) -> Y = Z.",
        )
        .unwrap();
        let schema = Schema::all_bags(&[("p", 2), ("r", 2), ("s", 2)]);
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let qpp = parse_query("qq(X) :- p(X,Y), r(X,Z), s(Z,W), s(X,T)").unwrap();
        let witness = separating_database(Semantics::BagSet, &q, &qpp, &sigma, &schema, &cfg());
        let db = witness.expect("Example 4.7's construction must find a witness");
        let a = eval(&q, &db, Semantics::BagSet).unwrap();
        let b = eval(&qpp, &db, Semantics::BagSet).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn no_witness_for_equivalent_queries() {
        let q1 = parse_query("q(X) :- p(X,Y)").unwrap();
        let q2 = parse_query("q(A) :- p(A,B)").unwrap();
        let schema = Schema::all_bags(&[("p", 2)]);
        assert!(separating_database(
            Semantics::Bag,
            &q1,
            &q2,
            &DependencySet::new(),
            &schema,
            &cfg()
        )
        .is_none());
    }

    #[test]
    fn amplify_multiplies_one_relation() {
        let mut db = Database::new();
        db.insert("r", Tuple::ints([1]), 2);
        db.insert("p", Tuple::ints([1]), 1);
        let a = amplify(&db, Predicate::new("r"), 3);
        assert_eq!(a.get_str("r").unwrap().multiplicity(&Tuple::ints([1])), 6);
        assert_eq!(a.get_str("p").unwrap().multiplicity(&Tuple::ints([1])), 1);
    }
}
