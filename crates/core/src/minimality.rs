//! Query minimization and Σ-minimality (Definition 3.1 of the paper).
//!
//! * [`core_of`] computes the core of a CQ query — the classical
//!   dependency-free minimization of Chandra & Merlin \[2\]: remove body
//!   atoms while a containment mapping back into the smaller query exists.
//! * [`is_sigma_minimal`] decides Definition 3.1: `Q` is Σ-minimal if
//!   there are **no** `S1` (obtained from `Q` by replacing zero or more
//!   variables with other variables of `Q`) and `S2` (obtained from `S1`
//!   by dropping at least one atom) that both remain equivalent to `Q`
//!   under Σ. For queries with grouping/aggregation, Σ-minimality is
//!   Σ-minimality of the core (§3).
//!
//! The search over variable-identification substitutions is exact for
//! small variable counts (exhaustive enumeration of maps into the query's
//! own variables) and falls back to unification-derived candidates above
//! [`EXHAUSTIVE_VAR_LIMIT`]; atom-drop sets are enumerated exhaustively up
//! to [`EXHAUSTIVE_BODY_LIMIT`] atoms and as single drops beyond. Paper-
//! scale inputs are always in the exact regime.

use crate::sigma_equiv::{sigma_equivalent_via, EquivOutcome};
use eqsql_chase::{ChaseConfig, ChaseError};
use eqsql_cq::{containment_mapping, CqQuery, Subst, Term, Var};
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};
use std::collections::HashSet;

/// Above this many distinct variables the minimality search switches from
/// exhaustive substitution enumeration to unification-derived candidates.
pub const EXHAUSTIVE_VAR_LIMIT: usize = 6;

/// Above this many body atoms the minimality search drops only single
/// atoms (exact for set semantics; see module docs).
pub const EXHAUSTIVE_BODY_LIMIT: usize = 12;

/// The core of `q` under set semantics: a minimal subquery equivalent to
/// `q` in the absence of dependencies, unique up to isomorphism.
pub fn core_of(q: &CqQuery) -> CqQuery {
    let mut cur = eqsql_cq::canonical_representation(q);
    'retry: loop {
        for i in 0..cur.body.len() {
            if cur.body.len() == 1 {
                break;
            }
            let mut smaller = cur.clone();
            smaller.body.remove(i);
            if !smaller.is_safe() {
                continue;
            }
            // cur ⊑ smaller always (atom removal relaxes); need
            // smaller ⊑ cur, i.e. a containment mapping cur -> smaller.
            if containment_mapping(&cur, &smaller).is_some() {
                cur = smaller;
                continue 'retry;
            }
        }
        return cur;
    }
}

/// All variable-identification substitutions considered by the Σ-minimality
/// search (maps from `q`'s variables to `q`'s variables, identity
/// included). Exhaustive below [`EXHAUSTIVE_VAR_LIMIT`].
fn candidate_substitutions(q: &CqQuery) -> Vec<Subst> {
    let vars = q.all_vars();
    let n = vars.len();
    let mut out = vec![Subst::new()];
    if n == 0 {
        return out;
    }
    if n <= EXHAUSTIVE_VAR_LIMIT {
        // Every map vars -> vars.
        let mut indices = vec![0usize; n];
        loop {
            let s = Subst::from_pairs(
                vars.iter()
                    .zip(indices.iter())
                    .filter(|(v, &i)| vars[i] != **v)
                    .map(|(v, &i)| (*v, Term::Var(vars[i]))),
            );
            if !s.is_empty() {
                out.push(s);
            }
            // Increment mixed-radix counter.
            let mut k = 0;
            loop {
                indices[k] += 1;
                if indices[k] < n {
                    break;
                }
                indices[k] = 0;
                k += 1;
                if k == n {
                    return out;
                }
            }
        }
    }
    // Heuristic regime: substitutions unifying pairs of same-predicate
    // atoms (variable-to-variable only).
    let mut seen: HashSet<Vec<(Var, Term)>> = HashSet::new();
    for i in 0..q.body.len() {
        for j in 0..q.body.len() {
            if i == j || q.body[i].key() != q.body[j].key() {
                continue;
            }
            let mut s = Subst::new();
            let mut ok = true;
            for (a, b) in q.body[i].args.iter().zip(q.body[j].args.iter()) {
                match (a, b) {
                    (Term::Var(v), t) => {
                        if !s.bind(*v, *t) {
                            ok = false;
                            break;
                        }
                    }
                    (Term::Const(c), Term::Const(d)) if c == d => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && !s.is_empty() && seen.insert(s.sorted_pairs()) {
                out.push(s);
            }
        }
    }
    out
}

/// Nonempty atom-index subsets to drop from a body of length `n`.
fn drop_sets(n: usize) -> Vec<Vec<usize>> {
    if n <= EXHAUSTIVE_BODY_LIMIT {
        let mut out = Vec::new();
        for mask in 1u32..(1u32 << n) {
            if mask.count_ones() as usize == n {
                continue; // cannot drop everything
            }
            out.push((0..n).filter(|i| mask & (1 << i) != 0).collect());
        }
        out.sort_by_key(Vec::len);
        out
    } else {
        (0..n).map(|i| vec![i]).collect()
    }
}

/// A witness of non-Σ-minimality (Definition 3.1): the intermediate query
/// `S1` (variables of `q` identified) and the strictly smaller `S2`
/// (atoms of `S1` dropped), both Σ-equivalent to `q` under the semantics
/// the search ran at. Evidence consumers replay the equivalence
/// `S2 ≡_{Σ,sem} q` to confirm the verdict.
#[derive(Clone, Debug)]
pub struct MinimalityWitness {
    /// `q` with zero or more variables replaced by other variables of `q`.
    pub identified: CqQuery,
    /// `identified` with at least one atom dropped — still Σ-equivalent
    /// to `q`, proving `q` is not Σ-minimal.
    pub reduced: CqQuery,
}

/// Is `q` Σ-minimal (Definition 3.1) under the given semantics?
#[deprecated(
    since = "0.2.0",
    note = "construct an `eqsql_service::Solver` and decide `Request::Minimal`; \
            the parameterized engine entry point is `sigma_minimality_witness_via`"
)]
pub fn is_sigma_minimal(
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    sem: Semantics,
    config: &ChaseConfig,
) -> Result<bool, ChaseError> {
    is_sigma_minimal_via(&crate::sigma_equiv::DirectChaser, q, sigma, schema, sem, config)
}

/// [`sigma_minimality_witness_via`] reduced to a boolean: `true` iff no
/// witness of non-minimality exists.
pub fn is_sigma_minimal_via<C: crate::sigma_equiv::SoundChaser + ?Sized>(
    chaser: &C,
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    sem: Semantics,
    config: &ChaseConfig,
) -> Result<bool, ChaseError> {
    Ok(sigma_minimality_witness_via(chaser, q, sigma, schema, sem, config)?.is_none())
}

/// The Σ-minimality search of Definition 3.1, returning evidence: `None`
/// means `q` is Σ-minimal; `Some(witness)` carries the identification
/// step `S1` and the reduced query `S2 ≡_{Σ,sem} q` that disprove
/// minimality. The search re-chases `q` once per candidate, so a
/// memoizing chaser collapses that to a single chase.
pub fn sigma_minimality_witness_via<C: crate::sigma_equiv::SoundChaser + ?Sized>(
    chaser: &C,
    q: &CqQuery,
    sigma: &DependencySet,
    schema: &Schema,
    sem: Semantics,
    config: &ChaseConfig,
) -> Result<Option<MinimalityWitness>, ChaseError> {
    for subst in candidate_substitutions(q) {
        let s1 = q.apply(&subst);
        match sigma_equivalent_via(chaser, sem, &s1, q, sigma, schema, config) {
            EquivOutcome::Equivalent => {}
            EquivOutcome::NotEquivalent => continue,
            EquivOutcome::Unknown(e) => return Err(e),
        }
        for drop in drop_sets(s1.body.len()) {
            let mut s2 = s1.clone();
            // Remove in descending index order.
            for &i in drop.iter().rev() {
                s2.body.remove(i);
            }
            if s2.body.is_empty() || !s2.is_safe() {
                continue;
            }
            match sigma_equivalent_via(chaser, sem, &s2, q, sigma, schema, config) {
                EquivOutcome::Equivalent => {
                    return Ok(Some(MinimalityWitness { identified: s1, reduced: s2 }));
                }
                EquivOutcome::NotEquivalent => {}
                EquivOutcome::Unknown(e) => return Err(e),
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    // The deprecated convenience entry points stay the differential oracle
    // for the Solver suite; their own unit tests keep exercising them.
    #![allow(deprecated)]

    use super::*;
    use eqsql_cq::{are_isomorphic, parse_query};
    use eqsql_deps::parse_dependencies;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn core_removes_redundant_atoms() {
        let q = parse_query("q(X) :- p(X,Y), p(X,Z)").unwrap();
        let c = core_of(&q);
        assert_eq!(c.body.len(), 1);
        assert!(are_isomorphic(&c, &parse_query("q(X) :- p(X,Y)").unwrap()));
    }

    #[test]
    fn core_keeps_non_redundant_atoms() {
        let q = parse_query("q(X) :- p(X,Y), s(Y,Z)").unwrap();
        assert_eq!(core_of(&q).body.len(), 2);
    }

    #[test]
    fn core_handles_cycles() {
        // p(X,Y), p(Y,X), p(X,X): the triangle folds onto the loop only if
        // head allows; here head is X so p(X,X) absorbs both.
        let q = parse_query("q(X) :- p(X,Y), p(Y,X), p(X,X)").unwrap();
        let c = core_of(&q);
        assert_eq!(c.body.len(), 1);
    }

    #[test]
    fn sigma_minimality_without_dependencies() {
        let schema = Schema::all_bags(&[("p", 2)]);
        let sigma = DependencySet::new();
        let min = parse_query("q(X) :- p(X,Y)").unwrap();
        let redundant = parse_query("q(X) :- p(X,Y), p(X,Z)").unwrap();
        assert!(is_sigma_minimal(&min, &sigma, &schema, Semantics::Set, &cfg()).unwrap());
        assert!(!is_sigma_minimal(&redundant, &sigma, &schema, Semantics::Set, &cfg()).unwrap());
        // Under bag-set semantics the "redundant" atom changes
        // multiplicities, so the query IS minimal.
        assert!(is_sigma_minimal(&redundant, &sigma, &schema, Semantics::BagSet, &cfg()).unwrap());
    }

    #[test]
    fn sigma_minimality_uses_dependencies() {
        // Under a(X) -> b(X), the b-atom is redundant for set semantics.
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let q = parse_query("q(X) :- a(X), b(X)").unwrap();
        assert!(!is_sigma_minimal(&q, &sigma, &schema, Semantics::Set, &cfg()).unwrap());
        // But not without the dependency.
        assert!(
            is_sigma_minimal(&q, &DependencySet::new(), &schema, Semantics::Set, &cfg()).unwrap()
        );
    }

    #[test]
    fn example_4_1_q4_is_minimal_q1_is_not_under_set() {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        assert!(is_sigma_minimal(&q4, &sigma, &schema, Semantics::Set, &cfg()).unwrap());
        assert!(!is_sigma_minimal(&q1, &sigma, &schema, Semantics::Set, &cfg()).unwrap());
        // Q3's t/s atoms are over keyed set-valued relations: the sound bag
        // chase re-adds them, so Q3 ≡_{Σ,B} Q4 and Q3 is NOT Σ-minimal even
        // under bag semantics.
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        assert!(!is_sigma_minimal(&q3, &sigma, &schema, Semantics::Set, &cfg()).unwrap());
        assert!(!is_sigma_minimal(&q3, &sigma, &schema, Semantics::Bag, &cfg()).unwrap());
        // Q1 is not Σ-minimal under bag either (t/s drop), but its r/u
        // atoms — bag-valued relations — cannot be dropped: the residue
        // q(X) :- p(X,Y), r(X), u(X,U) IS Σ-minimal under bag semantics
        // while being reducible to Q4 under set semantics.
        let q_pru = parse_query("q(X) :- p(X,Y), r(X), u(X,U)").unwrap();
        assert!(is_sigma_minimal(&q_pru, &sigma, &schema, Semantics::Bag, &cfg()).unwrap());
        assert!(!is_sigma_minimal(&q_pru, &sigma, &schema, Semantics::Set, &cfg()).unwrap());
    }

    #[test]
    fn variable_identification_step_detected() {
        // q(X) :- p(X,Y), p(X,Z), r(Y,Z): identifying Z with Y gives
        // S1 = p(X,Y), p(X,Y), r(Y,Y); under Σ = {r reflexive-ish egd?}
        // keep it dependency-free: S1 ≡_S q? A hom q -> S1 maps Z->Y ✓;
        // S1 -> q identity ✓. Dropping the duplicate p gives S2 =
        // p(X,Y), r(Y,Y) ≡_S q? Needs hom q -> S2 (Z->Y ✓) and S2 -> q:
        // r(Y,Y) -> r(Y,Z)? No — requires Y=Z in q. So not equivalent;
        // q IS minimal.
        let q = parse_query("q(X) :- p(X,Y), p(X,Z), r(Y,Z)").unwrap();
        let schema = Schema::all_bags(&[("p", 2), ("r", 2)]);
        assert!(
            is_sigma_minimal(&q, &DependencySet::new(), &schema, Semantics::Set, &cfg()).unwrap()
        );
        // Whereas with r(Y,Y) already reflexive in the query, folding works.
        let q2 = parse_query("q(X) :- p(X,Y), p(X,Z), r(Y,Y)").unwrap();
        assert!(
            !is_sigma_minimal(&q2, &DependencySet::new(), &schema, Semantics::Set, &cfg()).unwrap()
        );
    }
}
