//! Equivalence and reformulation of aggregate queries (Theorems 2.3 and
//! 6.3, and the `Max-Min-C&B` / `Sum-Count-C&B` algorithms of §6.3).
//!
//! Equivalence of compatible aggregate queries reduces to equivalence of
//! their (unaggregated) CQ cores:
//!
//! * `max` / `min` queries — **set** equivalence of cores;
//! * `sum` / `count` / `count(*)` queries — **bag-set** equivalence of
//!   cores;
//!
//! and the Σ-versions (Theorem 6.3) use the corresponding Σ-equivalence
//! tests via the sound chase. The reformulation algorithms run the
//! matching C&B variant on the core and re-attach the aggregate head
//! (Theorem K.2).

use crate::cnb::{cnb_via, CnbError, CnbOptions, CnbResult};
use crate::sigma_equiv::{sigma_equivalent_via, DirectChaser, EquivOutcome};
use eqsql_chase::ChaseConfig;
use eqsql_cq::{AggFn, AggregateQuery, CqQuery, Term};
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};

/// The core-equivalence semantics prescribed by Theorem 2.3/6.3 for an
/// aggregate function.
pub fn core_semantics(agg: AggFn) -> Semantics {
    if agg.is_bag_set_sensitive() {
        Semantics::BagSet
    } else {
        Semantics::Set
    }
}

/// `Q ≡_Σ Q'` for compatible aggregate queries (Theorem 6.3). Incompatible
/// queries (different grouping arity or aggregate) are reported not
/// equivalent, following the compatible-queries convention of §2.5.
pub fn sigma_agg_equivalent(
    q1: &AggregateQuery,
    q2: &AggregateQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> EquivOutcome {
    if !q1.compatible(q2) {
        return EquivOutcome::NotEquivalent;
    }
    sigma_equivalent_via(
        &DirectChaser,
        core_semantics(q1.agg),
        &q1.core(),
        &q2.core(),
        sigma,
        schema,
        config,
    )
}

/// Dependency-free equivalence of compatible aggregate queries
/// (Theorem 2.3).
pub fn agg_equivalent(q1: &AggregateQuery, q2: &AggregateQuery) -> bool {
    if !q1.compatible(q2) {
        return false;
    }
    match core_semantics(q1.agg) {
        Semantics::Set => crate::equiv::set_equivalent(&q1.core(), &q2.core()),
        Semantics::BagSet => crate::equiv::bag_set_equivalent(&q1.core(), &q2.core()),
        Semantics::Bag => unreachable!("no aggregate reduces to bag semantics"),
    }
}

/// Result of an aggregate C&B run.
#[derive(Clone, Debug)]
pub struct AggCnbResult {
    /// The core-level C&B result.
    pub core_result: CnbResult,
    /// The rebuilt aggregate reformulations. Candidates whose core head
    /// lost its aggregate variable to a constant (possible when Σ equates
    /// it with a constant) are skipped.
    pub reformulations: Vec<AggregateQuery>,
}

fn rebuild(q: &AggregateQuery, core_reform: &CqQuery) -> Option<AggregateQuery> {
    let k = q.grouping.len();
    let grouping = core_reform.head[..k].to_vec();
    let agg_var = if q.agg.takes_arg() {
        match core_reform.head.get(k) {
            Some(Term::Var(v)) => Some(*v),
            _ => return None,
        }
    } else {
        None
    };
    Some(AggregateQuery {
        name: q.name,
        grouping,
        agg: q.agg,
        agg_var,
        body: core_reform.body.clone(),
    })
}

fn agg_cnb(
    q: &AggregateQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
    opts: &CnbOptions,
) -> Result<AggCnbResult, CnbError> {
    let sem = core_semantics(q.agg);
    let core_result = cnb_via(&DirectChaser, sem, &q.core(), sigma, schema, config, opts)?;
    let reformulations = core_result.reformulations.iter().filter_map(|r| rebuild(q, r)).collect();
    Ok(AggCnbResult { core_result, reformulations })
}

/// `Max-Min-C&B` (§6.3 / Theorem K.2(1)): Σ-minimal reformulations of a
/// `max`/`min` query via C&B on the core under **set** semantics.
pub fn max_min_cnb(
    q: &AggregateQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
    opts: &CnbOptions,
) -> Result<AggCnbResult, CnbError> {
    assert!(matches!(q.agg, AggFn::Max | AggFn::Min), "Max-Min-C&B takes max/min queries");
    agg_cnb(q, sigma, schema, config, opts)
}

/// `Sum-Count-C&B` (§6.3 / Theorem K.2(2)): Σ-minimal reformulations of a
/// `sum`/`count` query via Bag-Set-C&B on the core.
pub fn sum_count_cnb(
    q: &AggregateQuery,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
    opts: &CnbOptions,
) -> Result<AggCnbResult, CnbError> {
    assert!(
        matches!(q.agg, AggFn::Sum | AggFn::Count | AggFn::CountStar),
        "Sum-Count-C&B takes sum/count queries"
    );
    agg_cnb(q, sigma, schema, config, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parser::parse_aggregate_query;
    use eqsql_deps::parse_dependencies;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    fn schema() -> Schema {
        Schema::all_bags(&[("emp", 2), ("dept", 1), ("audit", 1)])
    }

    #[test]
    fn incompatible_queries_are_not_equivalent() {
        let a = parse_aggregate_query("q(X, sum(Y)) :- emp(X,Y)").unwrap();
        let b = parse_aggregate_query("q(X, max(Y)) :- emp(X,Y)").unwrap();
        assert_eq!(
            sigma_agg_equivalent(&a, &b, &DependencySet::new(), &schema(), &cfg()),
            EquivOutcome::NotEquivalent
        );
        assert!(!agg_equivalent(&a, &b));
    }

    #[test]
    fn theorem_2_3_split_between_max_and_sum() {
        // Adding a redundant copy of the emp-subgoal: harmless for max
        // (set-equivalent cores), fatal for sum (bag-set distinguishes).
        let max1 = parse_aggregate_query("q(X, max(Y)) :- emp(X,Y)").unwrap();
        let max2 = parse_aggregate_query("q(X, max(Y)) :- emp(X,Y), emp(X,Z)").unwrap();
        assert!(agg_equivalent(&max1, &max2));
        let sum1 = parse_aggregate_query("q(X, sum(Y)) :- emp(X,Y)").unwrap();
        let sum2 = parse_aggregate_query("q(X, sum(Y)) :- emp(X,Y), emp(X,Z)").unwrap();
        assert!(!agg_equivalent(&sum1, &sum2));
    }

    #[test]
    fn theorem_6_3_with_dependencies() {
        // Σ: emp(X,Y) -> dept(X). The dept-subgoal is redundant under Σ
        // for BOTH max and sum queries (it is a full tgd — sound for
        // bag-set chase too).
        let sigma = parse_dependencies("emp(X,Y) -> dept(X).").unwrap();
        let m1 = parse_aggregate_query("q(X, max(Y)) :- emp(X,Y)").unwrap();
        let m2 = parse_aggregate_query("q(X, max(Y)) :- emp(X,Y), dept(X)").unwrap();
        assert!(sigma_agg_equivalent(&m1, &m2, &sigma, &schema(), &cfg()).is_equivalent());
        let s1 = parse_aggregate_query("q(X, sum(Y)) :- emp(X,Y)").unwrap();
        let s2 = parse_aggregate_query("q(X, sum(Y)) :- emp(X,Y), dept(X)").unwrap();
        assert!(sigma_agg_equivalent(&s1, &s2, &sigma, &schema(), &cfg()).is_equivalent());
        // Without Σ, neither pair is equivalent.
        assert_eq!(
            sigma_agg_equivalent(&s1, &s2, &DependencySet::new(), &schema(), &cfg()),
            EquivOutcome::NotEquivalent
        );
    }

    #[test]
    fn max_admits_more_rewritings_than_sum() {
        // Σ: emp(X,Y) -> audit(X) but with a *join* that duplicates rows:
        // audit(X) & audit(X) patterns... keep it simple: a redundant
        // self-join emp(X,Z) is droppable for max but not for sum.
        let sigma = DependencySet::new();
        let sch = schema();
        let maxq = parse_aggregate_query("q(X, max(Y)) :- emp(X,Y), emp(X,Z)").unwrap();
        let r = max_min_cnb(&maxq, &sigma, &sch, &cfg(), &CnbOptions::default()).unwrap();
        // The minimal max-reformulation drops the redundant join.
        assert!(
            r.reformulations.iter().any(|q| q.body.len() == 1),
            "got {:?}",
            r.reformulations.len()
        );
        let sumq = parse_aggregate_query("q(X, sum(Y)) :- emp(X,Y), emp(X,Z)").unwrap();
        let r2 = sum_count_cnb(&sumq, &sigma, &sch, &cfg(), &CnbOptions::default()).unwrap();
        // Sum-Count-C&B must keep both subgoals.
        assert!(r2.reformulations.iter().all(|q| q.body.len() == 2));
    }

    #[test]
    fn sum_count_cnb_uses_dependencies() {
        let sigma = parse_dependencies("emp(X,Y) -> dept(X).").unwrap();
        let q = parse_aggregate_query("q(X, count(Y)) :- emp(X,Y), dept(X)").unwrap();
        let r = sum_count_cnb(&q, &sigma, &schema(), &cfg(), &CnbOptions::default()).unwrap();
        // dept is re-added by the (sound, full-tgd) chase: droppable.
        assert!(r.reformulations.iter().any(|q| q.body.len() == 1));
    }

    #[test]
    fn rebuilt_queries_keep_name_and_aggregate() {
        let q = parse_aggregate_query("total(D, sum(S)) :- emp(D,S)").unwrap();
        let r = sum_count_cnb(&q, &DependencySet::new(), &schema(), &cfg(), &CnbOptions::default())
            .unwrap();
        assert_eq!(r.reformulations.len(), 1);
        let out = &r.reformulations[0];
        assert_eq!(out.name, q.name);
        assert_eq!(out.agg, AggFn::Sum);
        assert!(out.is_valid());
    }

    #[test]
    fn count_star_core_reformulation() {
        let q = parse_aggregate_query("q(D, count(*)) :- emp(D,S), dept(D)").unwrap();
        let sigma = parse_dependencies("emp(X,Y) -> dept(X).").unwrap();
        let r = sum_count_cnb(&q, &sigma, &schema(), &cfg(), &CnbOptions::default()).unwrap();
        assert!(r.reformulations.iter().any(|q| q.body.len() == 1));
        for out in &r.reformulations {
            assert_eq!(out.agg, AggFn::CountStar);
            assert!(out.is_valid());
        }
    }
}
