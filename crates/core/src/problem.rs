//! The Query-Reformulation Problem (§3 of the paper).
//!
//! Input: `(D, X, Q, Σ, L2)` — a schema, an evaluation semantics, a query,
//! a finite set of embedded dependencies and a target language. A solution
//! is a query `Q'` in `L2` with `Q' ≡_{Σ,X} Q`; the paper (and this
//! implementation) returns all **Σ-minimal** solutions. The CQ class maps
//! to `C&B`/`Bag-C&B`/`Bag-Set-C&B`, the CQ-aggregate class to
//! `Max-Min-C&B`/`Sum-Count-C&B` (§6.3).

use crate::aggregate::{max_min_cnb, sum_count_cnb, AggCnbResult};
use crate::cnb::{cnb_via, CnbError, CnbOptions, CnbResult};
use crate::sigma_equiv::DirectChaser;
use eqsql_chase::ChaseConfig;
use eqsql_cq::{AggFn, AggregateQuery, CqQuery};
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};

/// The query of a reformulation problem: plain CQ or CQ-aggregate.
#[derive(Clone, Debug)]
pub enum InputQuery {
    /// Plain conjunctive query (the CQ class).
    Cq(CqQuery),
    /// Aggregate query (the CQ-aggregate class). Its evaluation semantics
    /// is prescribed by the aggregate function (Theorem 6.3), so the
    /// problem's `semantics` field is ignored for this variant.
    Agg(AggregateQuery),
}

/// A problem instance `(D, X, Q, Σ, L2)`.
#[derive(Clone, Debug)]
pub struct ReformulationProblem {
    /// The database schema `D` (with set-valuedness flags).
    pub schema: Schema,
    /// The evaluation semantics `X` (for the CQ class).
    pub semantics: Semantics,
    /// The query `Q`.
    pub query: InputQuery,
    /// The dependencies Σ.
    pub sigma: DependencySet,
    /// Chase resource limits.
    pub config: ChaseConfig,
    /// Backchase options.
    pub options: CnbOptions,
}

/// All Σ-minimal solutions of a problem instance.
#[derive(Clone, Debug)]
pub enum Solutions {
    /// Solutions of a CQ-class instance.
    Cq(CnbResult),
    /// Solutions of a CQ-aggregate-class instance.
    Agg(AggCnbResult),
}

impl Solutions {
    /// Number of reformulations found.
    pub fn len(&self) -> usize {
        match self {
            Solutions::Cq(r) => r.reformulations.len(),
            Solutions::Agg(r) => r.reformulations.len(),
        }
    }

    /// Were any reformulations found?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable renderings of the reformulations.
    pub fn rendered(&self) -> Vec<String> {
        match self {
            Solutions::Cq(r) => r.reformulations.iter().map(|q| q.to_string()).collect(),
            Solutions::Agg(r) => r.reformulations.iter().map(|q| q.to_string()).collect(),
        }
    }
}

impl ReformulationProblem {
    /// A CQ-class instance with default limits.
    pub fn cq(
        schema: Schema,
        semantics: Semantics,
        query: CqQuery,
        sigma: DependencySet,
    ) -> ReformulationProblem {
        ReformulationProblem {
            schema,
            semantics,
            query: InputQuery::Cq(query),
            sigma,
            config: ChaseConfig::default(),
            options: CnbOptions::default(),
        }
    }

    /// A CQ-aggregate-class instance with default limits.
    pub fn aggregate(
        schema: Schema,
        query: AggregateQuery,
        sigma: DependencySet,
    ) -> ReformulationProblem {
        ReformulationProblem {
            schema,
            semantics: Semantics::BagSet, // ignored; kept for Debug clarity
            query: InputQuery::Agg(query),
            sigma,
            config: ChaseConfig::default(),
            options: CnbOptions::default(),
        }
    }

    /// Solves the instance: all Σ-minimal reformulations, sound and
    /// complete whenever set-chase on the inputs terminates (Theorems 6.4,
    /// K.1, K.2).
    pub fn solve(&self) -> Result<Solutions, CnbError> {
        match &self.query {
            InputQuery::Cq(q) => Ok(Solutions::Cq(cnb_via(
                &DirectChaser,
                self.semantics,
                q,
                &self.sigma,
                &self.schema,
                &self.config,
                &self.options,
            )?)),
            InputQuery::Agg(q) => {
                let result = match q.agg {
                    AggFn::Max | AggFn::Min => {
                        max_min_cnb(q, &self.sigma, &self.schema, &self.config, &self.options)?
                    }
                    AggFn::Sum | AggFn::Count | AggFn::CountStar => {
                        sum_count_cnb(q, &self.sigma, &self.schema, &self.config, &self.options)?
                    }
                };
                Ok(Solutions::Agg(result))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_cq::parser::parse_aggregate_query;
    use eqsql_deps::parse_dependencies;

    #[test]
    fn cq_problem_end_to_end() {
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let q = parse_query("q(X) :- a(X), b(X)").unwrap();
        let p = ReformulationProblem::cq(schema, Semantics::Set, q, sigma);
        let s = p.solve().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rendered(), vec!["q(X) :- a(X)".to_string()]);
    }

    #[test]
    fn aggregate_problem_dispatches_on_function() {
        let sigma = parse_dependencies("emp(X,Y) -> dept(X).").unwrap();
        let schema = Schema::all_bags(&[("emp", 2), ("dept", 1)]);
        let q = parse_aggregate_query("q(D, min(S)) :- emp(D,S), dept(D)").unwrap();
        let p = ReformulationProblem::aggregate(schema, q, sigma);
        let s = p.solve().unwrap();
        assert!(!s.is_empty());
        assert!(s.rendered().iter().any(|r| !r.contains("dept")));
    }

    #[test]
    fn bag_problem_respects_multiplicities() {
        // Under bag semantics nothing can be dropped without Σ support.
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let q = parse_query("q(X) :- a(X), b(X)").unwrap();
        let p = ReformulationProblem::cq(schema, Semantics::Bag, q, sigma);
        let s = p.solve().unwrap();
        // b is a bag relation: a(X),b(X) is already Σ-minimal under bag
        // semantics (dropping b changes multiplicities).
        assert_eq!(s.rendered(), vec!["q(X) :- a(X), b(X)".to_string()]);
    }
}
