//! # eqsql-core — query equivalence and reformulation under dependencies
//!
//! The primary contribution of Chirkova & Genesereth (PODS 2009),
//! implemented on top of the `eqsql-cq`/`eqsql-deps`/`eqsql-chase`
//! substrates:
//!
//! * **dependency-free equivalence tests** ([`equiv`]): Chandra–Merlin set
//!   containment/equivalence \[2\], the bag (≅) and bag-set (canonical ≅)
//!   tests of Chaudhuri & Vardi \[4\] (Theorem 2.1), and the paper's
//!   *extended* bag test for schemas with set-enforced relations
//!   (Theorem 4.2);
//! * **Σ-equivalence tests** ([`sigma_equiv`]): Theorem 2.2 for set
//!   semantics, and the paper's Theorems 6.1/6.2 for bag and bag-set
//!   semantics via the sound chase;
//! * **aggregate-query equivalence** ([`aggregate`]): Theorems 2.3/6.3;
//! * **Σ-minimality** (Definition 3.1) and set-semantics query
//!   minimization ([`minimality`]);
//! * the **Chase & Backchase family** ([`mod@cnb`]): `C&B` (Appendix A),
//!   `Bag-C&B`, `Bag-Set-C&B`, `Max-Min-C&B`, `Sum-Count-C&B` (§6.3) —
//!   sound and complete whenever set-chase terminates (Theorems 6.4, K.1,
//!   K.2);
//! * **counterexample construction** ([`counterexample`]): witness
//!   databases separating non-equivalent queries, using canonical
//!   databases of associated test queries (Theorem 4.1's proof) and the
//!   m-copy amplification of Lemma D.1;
//! * the **Query-Reformulation Problem** API ([`problem`], §3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod bag_containment;
pub mod cnb;
pub mod counterexample;
pub mod equiv;
pub mod minimality;
pub mod problem;
pub mod sigma_equiv;
pub mod views;

#[allow(deprecated)]
pub use cnb::cnb;
pub use cnb::{cnb_via, CnbError, CnbOptions, CnbResult};
pub use eqsql_relalg::Semantics;
pub use equiv::{
    bag_equivalent, bag_equivalent_with_set_relations, bag_set_equivalent, set_contained,
    set_equivalent,
};
#[allow(deprecated)]
pub use minimality::is_sigma_minimal;
pub use minimality::{
    core_of, is_sigma_minimal_via, sigma_minimality_witness_via, MinimalityWitness,
};
pub use problem::{ReformulationProblem, Solutions};
#[allow(deprecated)]
pub use sigma_equiv::{sigma_equivalent, sigma_set_contained};
pub use sigma_equiv::{
    sigma_equivalent_via, sigma_set_contained_via, DirectChaser, EquivOutcome, SoundChaser,
};
