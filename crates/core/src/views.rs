//! Rewriting queries using views under embedded dependencies — the
//! application the paper is built for (§1, §7; the C&B of \[11\] is
//! view-based, and \[9\] treats materialized views under bag semantics).
//!
//! A **rewriting** of `Q` is a query over view predicates (and optionally
//! base predicates). Its **expansion** replaces every view atom by the
//! view's body, existential variables freshened per occurrence — the
//! standard unfolding of \[17, 23\]. The equivalence test for a candidate
//! rewriting `R` is then simply `expand(R) ≡_{Σ,X} Q` with the matching
//! Σ-equivalence test of this crate (Theorems 2.2/6.1/6.2):
//!
//! * under **bag semantics** this is the right notion for *materialized*
//!   views: the stored view contents are the bags produced by the view
//!   definitions, so a rewriting's multiplicities are those of its
//!   expansion (the paper's §1 discussion of why bag semantics becomes
//!   imperative with materialized views);
//! * under **set semantics** it degenerates to the classical test.
//!
//! [`rewrite_with_views`] enumerates candidate rewritings C&B-style: the
//! query is chased with Σ extended by the view-defining tgds
//! (`body_V → v(X̄)`), producing a universal plan whose view atoms are the
//! candidate building blocks; subqueries over view atoms are tested via
//! expansion. Completeness for the bag-like semantics follows from
//! Proposition 6.1's hierarchy: every ≡_{Σ,B} (or ≡_{Σ,BS}) rewriting is
//! also ≡_{Σ,S}, and the set-semantics enumeration is complete \[11\].

use crate::sigma_equiv::{sigma_equivalent_via, DirectChaser, EquivOutcome};
use eqsql_chase::{set_chase, ChaseConfig, ChaseError};
use eqsql_cq::{are_isomorphic, Atom, CqQuery, Predicate, Subst, Term, VarSupply};
use eqsql_deps::{DependencySet, Tgd};
use eqsql_relalg::{Schema, Semantics};
use std::collections::HashSet;
use std::fmt;

/// A named view: `v(X̄) :- body`. The head variables are the view's
/// output columns.
#[derive(Clone, Debug)]
pub struct View {
    /// The view definition (its `name` is the view predicate).
    pub def: CqQuery,
}

impl View {
    /// Wraps a definition. The definition must be safe, with an all-
    /// variable head (view outputs are columns).
    pub fn new(def: CqQuery) -> View {
        assert!(def.is_safe(), "view definitions must be safe");
        assert!(def.head.iter().all(|t| t.is_var()), "view heads must be variables");
        View { def }
    }

    /// The view's predicate.
    pub fn predicate(&self) -> Predicate {
        Predicate(self.def.name)
    }

    /// The defining tgd `body_V → v(X̄)` used during the chase phase.
    pub fn defining_tgd(&self) -> Tgd {
        Tgd::new(
            self.def.body.clone(),
            vec![Atom { pred: self.predicate(), args: self.def.head.clone() }],
        )
    }
}

/// A set of views.
#[derive(Clone, Debug, Default)]
pub struct ViewSet {
    views: Vec<View>,
}

impl ViewSet {
    /// Builds a view set.
    pub fn new(views: Vec<View>) -> ViewSet {
        ViewSet { views }
    }

    /// Looks up a view by predicate.
    pub fn get(&self, pred: Predicate) -> Option<&View> {
        self.views.iter().find(|v| v.predicate() == pred)
    }

    /// Iterates over the views.
    pub fn iter(&self) -> impl Iterator<Item = &View> + '_ {
        self.views.iter()
    }

    /// The view predicates.
    pub fn predicates(&self) -> HashSet<Predicate> {
        self.views.iter().map(View::predicate).collect()
    }
}

/// A view-expansion error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// A view atom's arity does not match the view head.
    ArityMismatch(String),
    /// A view with a repeated head variable was called with two distinct
    /// constants — the call can never produce answers.
    InconsistentCall(String),
    /// Chase failure/budget during rewriting search.
    Chase(ChaseError),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::ArityMismatch(v) => write!(f, "view atom arity mismatch for '{v}'"),
            ViewError::InconsistentCall(v) => {
                write!(f, "view '{v}' called with conflicting constants")
            }
            ViewError::Chase(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ViewError {}

impl From<ChaseError> for ViewError {
    fn from(e: ChaseError) -> Self {
        ViewError::Chase(e)
    }
}

/// Expands every view atom of `rewriting` into the view's body, with the
/// view's existential variables freshened per occurrence. Non-view atoms
/// pass through. A view with a repeated head variable (`v(X,X)`) called
/// with distinct arguments (`v(A,B)`) equates those arguments throughout
/// the expansion — head included. Calling such a view with two distinct
/// constants is an [`ViewError::InconsistentCall`].
///
/// ```
/// use eqsql_core::views::{expand, View, ViewSet};
/// use eqsql_cq::parse_query;
///
/// let views = ViewSet::new(vec![
///     View::new(parse_query("v(X,Z) :- p(X,Y), s(Y,Z)").unwrap()),
/// ]);
/// let rewriting = parse_query("q(A) :- v(A,B), r(B)").unwrap();
/// let expanded = expand(&rewriting, &views).unwrap();
/// assert_eq!(expanded.body.len(), 3); // p, s (unfolded) and r
/// ```
pub fn expand(rewriting: &CqQuery, views: &ViewSet) -> Result<CqQuery, ViewError> {
    let mut supply = VarSupply::avoiding([rewriting]);
    for v in views.iter() {
        supply.record_query(&v.def);
    }
    let mut head = rewriting.head.clone();
    let mut done: Vec<Atom> = Vec::new();
    let mut todo: Vec<Atom> = rewriting.body.clone();
    todo.reverse(); // pop from the back = process in order

    while let Some(atom) = todo.pop() {
        let Some(view) = views.get(atom.pred) else {
            done.push(atom);
            continue;
        };
        if view.def.head.len() != atom.args.len() {
            return Err(ViewError::ArityMismatch(atom.pred.name().to_string()));
        }
        // Fresh copy of the view definition.
        let mut rn = Subst::new();
        for v in view.def.all_vars() {
            rn.set(v, Term::Var(supply.fresh(v.name())));
        }
        let vhead: Vec<Term> = view.def.head.iter().map(|t| rn.apply_term(t)).collect();
        let vbody = rn.apply_atoms(&view.def.body);

        // Unify the (renamed) view head with the atom's arguments; the
        // resulting substitution applies to both universes.
        let mut mgu = Subst::new();
        for (hv, arg) in vhead.iter().zip(atom.args.iter()) {
            let a = mgu.apply_term(hv);
            let b = mgu.apply_term(arg);
            match (a, b) {
                (x, y) if x == y => {}
                (Term::Var(x), t) => mgu.rewrite(x, t),
                (t, Term::Var(y)) => mgu.rewrite(y, t),
                (Term::Const(_), Term::Const(_)) => {
                    return Err(ViewError::InconsistentCall(atom.pred.name().to_string()));
                }
            }
        }
        head = head.iter().map(|t| mgu.apply_term(t)).collect();
        done = mgu.apply_atoms(&done);
        todo = mgu.apply_atoms(&todo);
        done.extend(mgu.apply_atoms(&vbody));
    }
    Ok(CqQuery { name: rewriting.name, head, body: done })
}

/// Is `rewriting` (over view and base predicates) an equivalent rewriting
/// of `q` under Σ at the given semantics? Decided via expansion
/// (Theorems 2.2/6.1/6.2 applied to `expand(R)` vs `Q`).
pub fn is_equivalent_rewriting(
    sem: Semantics,
    q: &CqQuery,
    rewriting: &CqQuery,
    views: &ViewSet,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> Result<EquivOutcome, ViewError> {
    let expanded = expand(rewriting, views)?;
    Ok(sigma_equivalent_via(&DirectChaser, sem, &expanded, q, sigma, schema, config))
}

/// Result of a rewriting search.
#[derive(Clone, Debug)]
pub struct RewritingResult {
    /// The universal plan (over base and view predicates).
    pub universal_plan: CqQuery,
    /// Total rewritings found (queries over **view predicates only**),
    /// pairwise non-isomorphic, sorted by size.
    pub rewritings: Vec<CqQuery>,
    /// Candidates tested.
    pub candidates_tested: usize,
}

/// Finds total rewritings of `q` over `views` that are Σ-equivalent under
/// `sem`, C&B-style. `max_plan_atoms` caps the backchase.
pub fn rewrite_with_views(
    sem: Semantics,
    q: &CqQuery,
    views: &ViewSet,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
    max_plan_atoms: usize,
) -> Result<RewritingResult, ViewError> {
    // Chase phase: Σ plus the view-defining tgds populate view atoms.
    let mut sigma_v = sigma.clone();
    for v in views.iter() {
        sigma_v.push(v.defining_tgd());
    }
    let chased = set_chase(q, &sigma_v, config)?;
    if chased.failed {
        return Ok(RewritingResult {
            universal_plan: chased.query,
            rewritings: Vec::new(),
            candidates_tested: 0,
        });
    }
    let u = chased.query;
    let view_preds = views.predicates();
    let view_atoms: Vec<&Atom> = u.body.iter().filter(|a| view_preds.contains(&a.pred)).collect();
    let n = view_atoms.len();
    if n > max_plan_atoms {
        return Err(ViewError::Chase(ChaseError::QueryTooLarge { atoms: n }));
    }
    let mut rewritings: Vec<CqQuery> = Vec::new();
    let mut accepted_masks: Vec<u32> = Vec::new();
    let mut tested = 0usize;
    let mut masks: Vec<u32> = (1u32..(1u32 << n)).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        if accepted_masks.iter().any(|a| mask & a == *a) {
            continue;
        }
        let body: Vec<Atom> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| view_atoms[i].clone()).collect();
        let candidate = CqQuery { name: q.name, head: u.head.clone(), body };
        if !candidate.is_safe() {
            continue;
        }
        tested += 1;
        match is_equivalent_rewriting(sem, q, &candidate, views, sigma, schema, config)? {
            EquivOutcome::Equivalent => {
                if !rewritings.iter().any(|r| are_isomorphic(r, &candidate)) {
                    accepted_masks.push(mask);
                    rewritings.push(candidate);
                }
            }
            EquivOutcome::NotEquivalent => {}
            EquivOutcome::Unknown(e) => return Err(e.into()),
        }
    }
    rewritings.sort_by_key(CqQuery::size);
    Ok(RewritingResult { universal_plan: u, rewritings, candidates_tested: tested })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    fn view(def: &str) -> View {
        View::new(parse_query(def).unwrap())
    }

    #[test]
    fn expansion_unfolds_view_bodies() {
        let views = ViewSet::new(vec![view("v(X,Z) :- p(X,Y), s(Y,Z)")]);
        let r = parse_query("q(A) :- v(A,B), r(B)").unwrap();
        let e = expand(&r, &views).unwrap();
        // p and s unfolded, r untouched; the view's existential Y is fresh.
        assert_eq!(e.body.len(), 3);
        let expected = parse_query("q(A) :- p(A,M), s(M,B), r(B)").unwrap();
        assert!(are_isomorphic(&e, &expected), "got {e}");
    }

    #[test]
    fn two_occurrences_get_independent_existentials() {
        let views = ViewSet::new(vec![view("v(X) :- p(X,Y)")]);
        let r = parse_query("q(A,B) :- v(A), v(B)").unwrap();
        let e = expand(&r, &views).unwrap();
        assert_eq!(e.body.len(), 2);
        let ys: Vec<_> = e.body.iter().map(|a| a.args[1]).collect();
        assert_ne!(ys[0], ys[1], "existential witnesses must be independent");
    }

    #[test]
    fn repeated_view_head_variable_forces_equality() {
        // v(X,X) :- p(X,X): calling v(A,B) must identify A and B.
        let views = ViewSet::new(vec![View::new(parse_query("v(X,X) :- p(X,X)").unwrap())]);
        let r = parse_query("q(A) :- v(A,B), r(B)").unwrap();
        let e = expand(&r, &views).unwrap();
        let expected = parse_query("q(A) :- p(A,A), r(A)").unwrap();
        assert!(are_isomorphic(&e, &expected), "got {e}");
    }

    #[test]
    fn equivalent_rewriting_set_semantics() {
        // Classic: Q(X,Z) :- p(X,Y), s(Y,Z) rewritten as v(X,Z).
        let views = ViewSet::new(vec![view("v(X,Z) :- p(X,Y), s(Y,Z)")]);
        let q = parse_query("q(X,Z) :- p(X,Y), s(Y,Z)").unwrap();
        let r = parse_query("q(X,Z) :- v(X,Z)").unwrap();
        let schema = Schema::all_bags(&[("p", 2), ("s", 2), ("v", 2)]);
        let out = is_equivalent_rewriting(
            Semantics::Set,
            &q,
            &r,
            &views,
            &DependencySet::new(),
            &schema,
            &cfg(),
        )
        .unwrap();
        assert!(out.is_equivalent());
        // Under bag-set semantics it is equivalent too (the expansion is
        // literally the query)...
        let out_bs = is_equivalent_rewriting(
            Semantics::BagSet,
            &q,
            &r,
            &views,
            &DependencySet::new(),
            &schema,
            &cfg(),
        )
        .unwrap();
        assert!(out_bs.is_equivalent());
    }

    #[test]
    fn projection_views_lose_multiplicity_information() {
        // v(X) :- p(X,Y) projects Y away. Under set semantics v rewrites
        // q(X) :- p(X,Y); under bag-set semantics the expansion IS q, so
        // fine; but rewriting q(X) :- p(X,Y), p(X,Z) (a self-join) by
        // v(X), v(X) is bag-set equivalent iff the expansion matches —
        // which it does (two independent fresh Ys). Check the *negative*
        // case: v(X) once is not BS-equivalent to the self-join... in the
        // absence of dependencies the self-join's canonical rep has two
        // p-atoms, the single-view expansion has one.
        let views = ViewSet::new(vec![view("v(X) :- p(X,Y)")]);
        let q = parse_query("q(X) :- p(X,Y), p(X,Z)").unwrap();
        let r1 = parse_query("q(X) :- v(X)").unwrap();
        let r2 = parse_query("q(X) :- v(X), v(X)").unwrap();
        let schema = Schema::all_bags(&[("p", 2), ("v", 1)]);
        let sigma = DependencySet::new();
        let v1 =
            is_equivalent_rewriting(Semantics::BagSet, &q, &r1, &views, &sigma, &schema, &cfg())
                .unwrap();
        assert_eq!(v1, EquivOutcome::NotEquivalent);
        let v2 =
            is_equivalent_rewriting(Semantics::BagSet, &q, &r2, &views, &sigma, &schema, &cfg())
                .unwrap();
        assert!(v2.is_equivalent());
        // Under set semantics the single view atom suffices.
        let v3 = is_equivalent_rewriting(Semantics::Set, &q, &r1, &views, &sigma, &schema, &cfg())
            .unwrap();
        assert!(v3.is_equivalent());
    }

    #[test]
    fn rewrite_search_finds_the_join_view() {
        let views = ViewSet::new(vec![view("v1(X,Z) :- p(X,Y), s(Y,Z)"), view("v2(X) :- p(X,Y)")]);
        let q = parse_query("q(X,Z) :- p(X,Y), s(Y,Z)").unwrap();
        let schema = Schema::all_bags(&[("p", 2), ("s", 2), ("v1", 2), ("v2", 1)]);
        for sem in [Semantics::Set, Semantics::BagSet] {
            let out =
                rewrite_with_views(sem, &q, &views, &DependencySet::new(), &schema, &cfg(), 12)
                    .unwrap();
            let expected = parse_query("q(X,Z) :- v1(X,Z)").unwrap();
            assert!(
                out.rewritings.iter().any(|r| are_isomorphic(r, &expected)),
                "{sem}: got {:?}",
                out.rewritings.iter().map(|r| r.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn rewrite_search_uses_dependencies() {
        // Σ: every a has a b-partner; the view covers the join; the query
        // over a alone is rewritable by the view under Σ (set semantics).
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let views = ViewSet::new(vec![view("v(X) :- a(X), b(X)")]);
        let q = parse_query("q(X) :- a(X)").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("v", 1)]);
        let out =
            rewrite_with_views(Semantics::Set, &q, &views, &sigma, &schema, &cfg(), 12).unwrap();
        let expected = parse_query("q(X) :- v(X)").unwrap();
        assert!(
            out.rewritings.iter().any(|r| are_isomorphic(r, &expected)),
            "got {:?}",
            out.rewritings.iter().map(|r| r.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_rewriting_when_views_cannot_cover() {
        let views = ViewSet::new(vec![view("v(X) :- p(X,Y)")]);
        let q = parse_query("q(X) :- r(X)").unwrap();
        let schema = Schema::all_bags(&[("p", 2), ("r", 1), ("v", 1)]);
        let out = rewrite_with_views(
            Semantics::Set,
            &q,
            &views,
            &DependencySet::new(),
            &schema,
            &cfg(),
            12,
        )
        .unwrap();
        assert!(out.rewritings.is_empty());
    }
}
