//! Logical implication of dependencies, decided by the chase.
//!
//! The classical procedure (\[1\], ch. 8–10): to decide `Σ ⊨ σ`, freeze σ's
//! premise into a canonical query, chase it with Σ, and check that σ's
//! conclusion holds in the result — an existential witness for a tgd, the
//! equated terms actually merged for an egd. Sound and complete whenever
//! the chase terminates (guaranteed for weakly acyclic Σ, Theorem H.1).
//!
//! This lives in `eqsql-deps` but needs the chase; the chase crate
//! re-exports it as `eqsql_chase::implies`. (The implementation is here
//! via a callback to avoid a dependency cycle.)

use crate::dependency::{Dependency, Egd, Tgd};
use eqsql_cq::matcher::{bucket_atoms, MatchPlan, Seed, Target};
use eqsql_cq::{CqQuery, Subst, Term, Var};

/// The premise of `dep` as a query to be chased: head = the universally
/// quantified variables (so egd merges of them remain observable).
pub fn premise_query(dep: &Dependency) -> CqQuery {
    let body = dep.lhs().to_vec();
    let vars: Vec<Term> = {
        let q0 = CqQuery::new("premise", vec![], body.clone());
        q0.body_vars().into_iter().map(Term::Var).collect()
    };
    CqQuery::new("premise", vars, body)
}

/// Given the terminal chase result of [`premise_query`] and the renaming
/// the chase applied, does σ's conclusion hold?
///
/// * tgd: some homomorphism extends the (chased) premise match to the
///   conclusion;
/// * egd: the final images of the equated terms coincide.
pub fn conclusion_holds(dep: &Dependency, chased: &CqQuery, renaming: &Subst) -> bool {
    match dep {
        Dependency::Egd(Egd { eq, .. }) => renaming.apply_term(&eq.0) == renaming.apply_term(&eq.1),
        Dependency::Tgd(tgd @ Tgd { rhs, .. }) => {
            // Every universal (premise) variable is pinned — through the
            // chase renaming, identity included; only the tgd's
            // existential variables are left for the extension search.
            // Existence-only, so the selectivity-ordered plan applies.
            let universal: Vec<Var> = tgd.universal_vars().into_iter().collect();
            let seed = Subst::from_pairs(
                universal.iter().map(|v| (*v, renaming.apply_term(&Term::Var(*v)))),
            );
            let plan = MatchPlan::optimized(rhs, &universal);
            let buckets = bucket_atoms(&chased.body);
            plan.has_match(Target::new(&chased.body, &buckets), &Seed::Subst(&seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dependency;
    use eqsql_cq::Var;

    #[test]
    fn premise_query_exposes_all_variables() {
        let d = parse_dependency("p(X,Y) & q(Y,Z) -> r(X,Z)").unwrap();
        let q = premise_query(&d);
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.head.len(), 3); // X, Y, Z
        assert!(q.is_safe());
    }

    #[test]
    fn conclusion_check_for_egd_uses_renaming() {
        let d = parse_dependency("p(X,Y) & p(X,Z) -> Y = Z").unwrap();
        let chased = eqsql_cq::parse_query("c(X,Y) :- p(X,Y)").unwrap();
        // Renaming that merged Z into Y: conclusion holds.
        let mut ren = Subst::new();
        ren.rewrite(Var::new("Z"), Term::var("Y"));
        assert!(conclusion_holds(&d, &chased, &ren));
        // Identity renaming: conclusion fails.
        assert!(!conclusion_holds(&d, &chased, &Subst::new()));
    }

    #[test]
    fn conclusion_check_for_tgd_searches_witness() {
        let d = parse_dependency("p(X,Y) -> t(X,W)").unwrap();
        let with_t = eqsql_cq::parse_query("c(X,Y) :- p(X,Y), t(X,V)").unwrap();
        let without_t = eqsql_cq::parse_query("c(X,Y) :- p(X,Y)").unwrap();
        assert!(conclusion_holds(&d, &with_t, &Subst::new()));
        assert!(!conclusion_holds(&d, &without_t, &Subst::new()));
    }
}
