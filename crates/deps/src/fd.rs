//! Functional dependencies, attribute closure and superkeys (Appendix B).
//!
//! A functional dependency (fd) on an n-ary relation `P` is an egd of the
//! shape `p(X̄, Y, Z̄) ∧ p(X̄, Y', Z̄') → Y = Y'` where the two atoms share
//! exactly the variables in the determining positions. We recognize that
//! shape syntactically, reason about implied fds via the classic attribute-
//! closure algorithm, and convert fds back to egds.

use crate::dependency::{Dependency, DependencySet, Egd};
use eqsql_cq::{Atom, Predicate, Term, Var};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A functional dependency `lhs -> rhs` on positions (0-based) of `rel`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Fd {
    /// The relation symbol.
    pub rel: Predicate,
    /// Arity of the relation.
    pub arity: usize,
    /// Determining positions.
    pub lhs: BTreeSet<usize>,
    /// Determined position.
    pub rhs: usize,
}

impl Fd {
    /// Builds an fd.
    pub fn new(rel: &str, arity: usize, lhs: impl IntoIterator<Item = usize>, rhs: usize) -> Fd {
        let lhs: BTreeSet<usize> = lhs.into_iter().collect();
        assert!(lhs.iter().all(|&i| i < arity) && rhs < arity, "positions out of range");
        Fd { rel: Predicate::new(rel), arity, lhs, rhs }
    }

    /// Renders the fd as the corresponding egd `σ(K|A)` of Appendix B.
    pub fn to_egd(&self) -> Egd {
        let mk = |suffix: &str| -> Vec<Term> {
            (0..self.arity)
                .map(|i| {
                    if self.lhs.contains(&i) {
                        Term::var(&format!("X{i}"))
                    } else {
                        Term::var(&format!("Y{i}{suffix}"))
                    }
                })
                .collect()
        };
        let a1 = Atom { pred: self.rel, args: mk("a") };
        let a2 = Atom { pred: self.rel, args: mk("b") };
        let t1 = a1.args[self.rhs];
        let t2 = a2.args[self.rhs];
        Egd::new(vec![a1, a2], t1, t2)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs: Vec<String> = self.lhs.iter().map(|i| i.to_string()).collect();
        write!(f, "{}: {{{}}} -> {}", self.rel, lhs.join(","), self.rhs)
    }
}

/// Recognizes an egd as a functional dependency, if it has the fd shape:
/// exactly two atoms, same predicate, the equated terms are variables at the
/// same position of the two atoms, and the atoms agree (same variable) on a
/// set `K` of positions while all other positions are pairwise-distinct
/// variables not shared between the atoms.
pub fn egd_as_fd(egd: &Egd) -> Option<Fd> {
    if egd.lhs.len() != 2 {
        return None;
    }
    let (a1, a2) = (&egd.lhs[0], &egd.lhs[1]);
    if a1.pred != a2.pred || a1.arity() != a2.arity() {
        return None;
    }
    let n = a1.arity();
    let (e1, e2) = (egd.eq.0.as_var()?, egd.eq.1.as_var()?);
    // Locate the determined position: e1 at position i of a1 and e2 at the
    // same i of a2 (or swapped).
    let mut rhs_pos: Option<usize> = None;
    for i in 0..n {
        let (t1, t2) = (a1.args[i].as_var()?, a2.args[i].as_var()?);
        if (t1 == e1 && t2 == e2) || (t1 == e2 && t2 == e1) {
            rhs_pos = Some(i);
            break;
        }
    }
    let rhs = rhs_pos?;
    // Shared positions form the lhs; every variable must be "fresh by
    // position" otherwise (no cross-position sharing), which we check
    // loosely: a position is shared iff the two atoms carry the same var.
    let mut lhs: BTreeSet<usize> = BTreeSet::new();
    let mut var_positions: HashMap<Var, Vec<(usize, usize)>> = HashMap::new();
    for i in 0..n {
        let (t1, t2) = (a1.args[i].as_var()?, a2.args[i].as_var()?);
        var_positions.entry(t1).or_default().push((0, i));
        var_positions.entry(t2).or_default().push((1, i));
        if t1 == t2 {
            if i == rhs {
                return None; // determined position must differ
            }
            lhs.insert(i);
        }
    }
    // Reject shapes where some variable is reused across different
    // positions — those are not plain fds.
    for positions in var_positions.values() {
        let distinct: BTreeSet<usize> = positions.iter().map(|(_, i)| *i).collect();
        if distinct.len() > 1 {
            return None;
        }
    }
    Some(Fd { rel: a1.pred, arity: n, lhs, rhs })
}

/// Extracts all fd-shaped egds on `rel` from Σ.
pub fn fds_of(sigma: &DependencySet, rel: Predicate) -> Vec<Fd> {
    sigma
        .iter()
        .filter_map(Dependency::as_egd)
        .filter_map(egd_as_fd)
        .filter(|fd| fd.rel == rel)
        .collect()
}

/// The attribute closure of `attrs` under `fds` (all on the same relation).
pub fn closure(attrs: &BTreeSet<usize>, fds: &[Fd]) -> BTreeSet<usize> {
    let mut out = attrs.clone();
    loop {
        let before = out.len();
        for fd in fds {
            if fd.lhs.is_subset(&out) {
                out.insert(fd.rhs);
            }
        }
        if out.len() == before {
            return out;
        }
    }
}

/// Is `attrs` a superkey of the `arity`-ary relation under `fds`
/// (Definition B.2)? The full attribute set is always a superkey.
pub fn is_superkey(attrs: &BTreeSet<usize>, arity: usize, fds: &[Fd]) -> bool {
    closure(attrs, fds).len() == arity
}

/// Is `fd` implied by `fds` (Definition B.1)? Standard closure test.
pub fn implies(fds: &[Fd], fd: &Fd) -> bool {
    closure(&fd.lhs, fds).contains(&fd.rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dependency;

    #[test]
    fn egd_fd_round_trip() {
        let fd = Fd::new("r", 3, [0], 2);
        let egd = fd.to_egd();
        let back = egd_as_fd(&egd).unwrap();
        assert_eq!(back, fd);
    }

    #[test]
    fn recognize_simple_key_egd() {
        let d = parse_dependency("r(X,Y) & r(X,Z) -> Y = Z").unwrap();
        let fd = egd_as_fd(d.as_egd().unwrap()).unwrap();
        assert_eq!(fd.lhs, BTreeSet::from([0]));
        assert_eq!(fd.rhs, 1);
    }

    #[test]
    fn recognize_two_column_key() {
        // First two attributes of T are the key of T (σ8 of Example 4.1).
        let d = parse_dependency("t(X,Y,W1) & t(X,Y,W2) -> W1 = W2").unwrap();
        let fd = egd_as_fd(d.as_egd().unwrap()).unwrap();
        assert_eq!(fd.lhs, BTreeSet::from([0, 1]));
        assert_eq!(fd.rhs, 2);
    }

    #[test]
    fn non_fd_egds_are_rejected() {
        // σ3 of Example 4.2 is not an fd: four atoms.
        let d = parse_dependency("r(X,Y) & s(Y,T) & r(X,Z) & s(Z,W) -> T = W").unwrap();
        assert!(egd_as_fd(d.as_egd().unwrap()).is_none());
        // Cross-predicate egd.
        let d = parse_dependency("r(X,Y) & s(X,Z) -> Y = Z").unwrap();
        assert!(egd_as_fd(d.as_egd().unwrap()).is_none());
    }

    #[test]
    fn closure_and_superkey() {
        // r(A,B,C): A->B, B->C. {A} is a superkey.
        let fds = vec![Fd::new("r", 3, [0], 1), Fd::new("r", 3, [1], 2)];
        let cl = closure(&BTreeSet::from([0]), &fds);
        assert_eq!(cl, BTreeSet::from([0, 1, 2]));
        assert!(is_superkey(&BTreeSet::from([0]), 3, &fds));
        assert!(!is_superkey(&BTreeSet::from([1]), 3, &fds));
        assert!(is_superkey(&BTreeSet::from([1, 0]), 3, &fds));
    }

    #[test]
    fn implication() {
        let fds = vec![Fd::new("r", 3, [0], 1), Fd::new("r", 3, [1], 2)];
        // A -> C is implied transitively.
        assert!(implies(&fds, &Fd::new("r", 3, [0], 2)));
        // C -> A is not.
        assert!(!implies(&fds, &Fd::new("r", 3, [2], 0)));
    }
}
