//! Text syntax for dependencies.
//!
//! ```text
//! tgd := conj '->' conj '.'?
//! egd := conj '->' term '=' term ('&' term '=' term)* '.'?
//! conj := atom (('&' | ',') atom)*
//! ```
//!
//! Variables occurring only on the right-hand side of a tgd are
//! existentially quantified (the usual convention). A right-hand side that
//! is a conjunction of equations is split into one egd per equation —
//! mixing atoms and equations on the right is rejected; normalize such
//! dependencies into tgds + egds first (always possible, \[1\]).

use crate::dependency::{Dependency, DependencySet, Egd, Tgd};
use eqsql_cq::lex::Token;
use eqsql_cq::parser::{Cursor, ParseError};
use eqsql_cq::Term;

fn parse_rhs_equation(c: &mut Cursor) -> Result<(Term, Term), ParseError> {
    let a = c.parse_term()?;
    c.expect(&Token::Eq)?;
    let b = c.parse_term()?;
    Ok((a, b))
}

/// True when the upcoming tokens look like `term '='`, i.e. an equation.
fn peek_equation(c: &Cursor) -> bool {
    // After a term (one token for ident/int/real/str) the next token is '='.
    matches!(
        (c.peek(), c.peek2()),
        (Some(Token::Ident(_) | Token::Int(_) | Token::Real(_) | Token::Str(_)), Some(Token::Eq))
    )
}

fn parse_one(c: &mut Cursor) -> Result<Vec<Dependency>, ParseError> {
    let lhs = c.parse_conjunction()?;
    c.expect(&Token::RArrow)?;
    if peek_equation(c) {
        let mut eqs = vec![parse_rhs_equation(c)?];
        while c.eat(&Token::Amp) || c.eat(&Token::Comma) {
            if !peek_equation(c) {
                return c.err("cannot mix atoms and equations on the right-hand side");
            }
            eqs.push(parse_rhs_equation(c)?);
        }
        c.eat(&Token::Dot);
        Ok(eqs.into_iter().map(|(a, b)| Dependency::Egd(Egd::new(lhs.clone(), a, b))).collect())
    } else {
        let rhs = c.parse_conjunction()?;
        c.eat(&Token::Dot);
        Ok(vec![Dependency::Tgd(Tgd::new(lhs, rhs))])
    }
}

/// Parses a single dependency (a tgd, or an egd with one equation).
pub fn parse_dependency(input: &str) -> Result<Dependency, ParseError> {
    let mut c = Cursor::new(input)?;
    let mut deps = parse_one(&mut c)?;
    if !c.done() {
        return c.err("trailing input after dependency");
    }
    if deps.len() != 1 {
        return Err(ParseError {
            msg: "input contains several dependencies; use parse_dependencies".into(),
            at: 0,
        });
    }
    Ok(deps.pop().expect("checked length"))
}

/// Parses a `.`-separated list of dependencies.
pub fn parse_dependencies(input: &str) -> Result<DependencySet, ParseError> {
    let mut c = Cursor::new(input)?;
    let mut out = DependencySet::new();
    while !c.done() {
        for d in parse_one(&mut c)? {
            out.push(d);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::Var;

    #[test]
    fn parse_tgd() {
        let d = parse_dependency("p(X,Y) -> s(X,Z) & t(X,V,W)").unwrap();
        let t = d.as_tgd().unwrap();
        assert_eq!(t.lhs.len(), 1);
        assert_eq!(t.rhs.len(), 2);
        assert_eq!(t.existential_vars(), vec![Var::new("Z"), Var::new("V"), Var::new("W")]);
    }

    #[test]
    fn parse_egd() {
        let d = parse_dependency("r(X,Y) & r(X,Z) -> Y = Z").unwrap();
        let e = d.as_egd().unwrap();
        assert_eq!(e.lhs.len(), 2);
        assert_eq!(e.eq, (Term::var("Y"), Term::var("Z")));
    }

    #[test]
    fn parse_multiple_with_dots() {
        let s = parse_dependencies(
            "p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.tgds().count(), 2);
        assert_eq!(s.egds().count(), 1);
    }

    #[test]
    fn multi_equation_rhs_splits() {
        let s = parse_dependencies("p(X,Y,Z,W) -> X = Y & Z = W.").unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(Dependency::is_egd));
    }

    #[test]
    fn mixed_rhs_rejected() {
        assert!(parse_dependencies("p(X,Y) -> X = Y & r(X).").is_err());
    }

    #[test]
    fn comments_allowed() {
        let s = parse_dependencies("% keys\nr(X,Y) & r(X,Z) -> Y = Z.").unwrap();
        assert_eq!(s.len(), 1);
    }
}
