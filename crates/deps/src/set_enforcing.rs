//! The tuple-ID framework for set-enforcing constraints (Appendix C).
//!
//! Under bag semantics, "relation `R` is set-valued on every instance" is
//! not expressible as an embedded dependency over `R` alone. The paper's
//! solution (Appendix C): extend `R` with a trailing *tuple-ID* attribute —
//! unique per stored tuple, as in commercial systems — and state the egd
//!
//! ```text
//! σ_tid(R):  R(X1..Xk, T1) ∧ R(X1..Xk, T2) → T1 = T2
//! ```
//!
//! Together with tuple-ID uniqueness (Definition C.1), σ_tid forces the
//! user-visible projection `Q_vals(R)` (all columns but the tid) to be
//! set-valued under bag evaluation. This module implements the schema
//! transform, the egd, its recognition, and the instance-level operations.

use crate::dependency::{DependencySet, Egd};
use crate::fd::egd_as_fd;
use eqsql_cq::{Atom, Predicate, Symbol, Term, Value};
use eqsql_relalg::{Database, RelSchema, Relation, Schema, Tuple};

/// The set-enforcing egd `σ_tid(R)` for an `arity`-ary relation (arity
/// **excluding** the tid attribute).
pub fn tid_egd(rel: Predicate, arity: usize) -> Egd {
    let shared: Vec<Term> = (0..arity).map(|i| Term::var(&format!("X{i}"))).collect();
    let mut args1 = shared.clone();
    let mut args2 = shared;
    args1.push(Term::var("T1"));
    args2.push(Term::var("T2"));
    Egd::new(
        vec![Atom { pred: rel, args: args1 }, Atom { pred: rel, args: args2 }],
        Term::var("T1"),
        Term::var("T2"),
    )
}

/// Recognizes an egd with the **shape** of a set-enforcing egd: an fd whose
/// determining set is *all* positions except the (last) determined one.
/// Returns the relation it set-enforces.
///
/// Note this is purely syntactic: whether the last attribute really is a
/// tuple ID is schema metadata (see [`with_tuple_ids`]). In particular, on a
/// binary relation a key on the first attribute has the same shape.
pub fn as_set_enforcing(egd: &Egd) -> Option<Predicate> {
    let fd = egd_as_fd(egd)?;
    let all_but_rhs: std::collections::BTreeSet<usize> =
        (0..fd.arity).filter(|&i| i != fd.rhs).collect();
    (fd.rhs == fd.arity - 1 && fd.lhs == all_but_rhs).then_some(fd.rel)
}

/// Extends `schema` with tuple-ID attributes for the given relations and
/// returns the widened schema plus the set-enforcing egds. The widened
/// relations keep their names; arities grow by one.
pub fn with_tuple_ids(schema: &Schema, rels: &[Predicate]) -> (Schema, DependencySet) {
    let mut out = Schema::new();
    let mut sigma = DependencySet::new();
    for r in schema.iter() {
        if rels.contains(&r.name) {
            let mut attrs: Option<Vec<Symbol>> = r.attrs.clone();
            if let Some(a) = &mut attrs {
                a.push(Symbol::new("tid"));
            }
            out.add(RelSchema {
                name: r.name,
                arity: r.arity + 1,
                set_valued: true, // with unique tids, the relation is a set
                attrs,
            });
            sigma.push(tid_egd(r.name, r.arity));
        } else {
            out.add(r.clone());
        }
    }
    (out, sigma)
}

/// Assigns fresh, unique tuple IDs to every stored *copy* in relation
/// `rel`, producing the widened relation of Appendix C. The result is
/// set-valued by construction, and distinct copies of the same tuple get
/// distinct IDs (so σ_tid is violated exactly when the original was a
/// proper bag).
pub fn assign_tids(db: &Database, rel: Predicate, first_tid: i64) -> Database {
    let mut out = Database::new();
    let mut next = first_tid;
    for (p, r) in db.iter() {
        if p == rel {
            let mut widened = Relation::new(r.arity() + 1);
            for (t, m) in r.iter() {
                for _ in 0..m {
                    let mut vals = t.0.clone();
                    vals.push(Value::Int(next));
                    next += 1;
                    widened.insert(Tuple::new(vals), 1);
                }
            }
            *out.get_or_create(p, r.arity() + 1) = widened;
        } else {
            *out.get_or_create(p, r.arity()) = r.clone();
        }
    }
    out
}

/// `Q^R_vals` of Definition C.1: the bag projection of the widened relation
/// on everything but the tid — the user-visible relation.
pub fn q_vals(db: &Database, rel: Predicate) -> Relation {
    match db.get(rel) {
        Some(r) => {
            let cols: Vec<usize> = (0..r.arity() - 1).collect();
            r.project(&cols)
        }
        None => Relation::new(0),
    }
}

/// Tuple-ID uniqueness of Definition C.1:
/// `|coreSet(Q_tid(D,B))| = |Q_vals(D,B)|`.
pub fn tids_unique(db: &Database, rel: Predicate) -> bool {
    match db.get(rel) {
        Some(r) => {
            let tid_col = [r.arity() - 1];
            let tids = r.project(&tid_col);
            tids.core_len() as u64 == q_vals(db, rel).len()
        }
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfaction::db_satisfies_egd;

    #[test]
    fn tid_egd_shape() {
        let e = tid_egd(Predicate::new("t"), 3);
        // This is exactly σ6 of Appendix C:
        // t(X,Y,Z,U) & t(X,Y,Z,W) -> U = W (up to names).
        assert_eq!(e.lhs.len(), 2);
        assert_eq!(e.lhs[0].arity(), 4);
        assert_eq!(as_set_enforcing(&e), Some(Predicate::new("t")));
    }

    #[test]
    fn non_tid_fds_are_not_set_enforcing() {
        // A key on the first attribute of a ternary relation is an fd but
        // does not have the set-enforcing shape (its determining set is not
        // "everything but the last position").
        let d = crate::parse::parse_dependency("s(X,Y1,Z1) & s(X,Y2,Z2) -> Y1 = Y2").unwrap();
        assert_eq!(as_set_enforcing(d.as_egd().unwrap()), None);
        // On a *binary* relation, a first-attribute key has exactly the
        // σ_tid shape — recognition is syntactic, the schema decides.
        let d2 = crate::parse::parse_dependency("b(X,Y) & b(X,Z) -> Y = Z").unwrap();
        assert_eq!(as_set_enforcing(d2.as_egd().unwrap()), Some(Predicate::new("b")));
    }

    #[test]
    fn widened_schema_and_sigma() {
        let schema = Schema::all_bags(&[("s", 2), ("u", 2)]);
        let (wide, sigma) = with_tuple_ids(&schema, &[Predicate::new("s")]);
        assert_eq!(wide.arity(Predicate::new("s")), Some(3));
        assert_eq!(wide.arity(Predicate::new("u")), Some(2));
        assert!(wide.is_set_valued(Predicate::new("s")));
        assert_eq!(sigma.len(), 1);
    }

    #[test]
    fn bag_relation_violates_tid_egd_after_assignment() {
        // A proper bag gets distinct tids for equal-value copies, which
        // violates σ_tid: exactly the paper's encoding of "R must be a set".
        let mut db = Database::new();
        db.insert("s", Tuple::ints([1, 3]), 2);
        let wide = assign_tids(&db, Predicate::new("s"), 100);
        assert!(wide.is_set_valued());
        assert!(tids_unique(&wide, Predicate::new("s")));
        let egd = tid_egd(Predicate::new("s"), 2);
        assert!(!db_satisfies_egd(&wide, &egd));
    }

    #[test]
    fn set_relation_satisfies_tid_egd_after_assignment() {
        let db = Database::new().with_ints("s", &[[1, 3], [2, 4]]);
        let wide = assign_tids(&db, Predicate::new("s"), 0);
        let egd = tid_egd(Predicate::new("s"), 2);
        assert!(db_satisfies_egd(&wide, &egd));
        assert!(tids_unique(&wide, Predicate::new("s")));
    }

    #[test]
    fn q_vals_recovers_the_original_bag() {
        let mut db = Database::new();
        db.insert("s", Tuple::ints([1, 3]), 2);
        db.insert("s", Tuple::ints([2, 4]), 1);
        let wide = assign_tids(&db, Predicate::new("s"), 0);
        let vals = q_vals(&wide, Predicate::new("s"));
        assert_eq!(vals.multiplicity(&Tuple::ints([1, 3])), 2);
        assert_eq!(vals.multiplicity(&Tuple::ints([2, 4])), 1);
    }

    #[test]
    fn tid_egd_plus_uniqueness_forces_set_valued_q_vals() {
        // The central claim of Appendix C, checked on an instance: if the
        // widened relation satisfies σ_tid and tids are unique, Q_vals is
        // set-valued.
        let wide = Database::new().with_ints("s", &[[1, 3, 100], [2, 4, 101]]);
        let egd = tid_egd(Predicate::new("s"), 2);
        assert!(db_satisfies_egd(&wide, &egd));
        assert!(tids_unique(&wide, Predicate::new("s")));
        assert!(q_vals(&wide, Predicate::new("s")).is_set_valued());
    }
}
