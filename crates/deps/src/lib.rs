//! # eqsql-deps — embedded dependencies
//!
//! Embedded dependencies `φ(Ū, W̄) → ∃V̄ ψ(Ū, V̄)` (§2.4 of the paper),
//! normalized as tuple-generating dependencies (tgds) and equality-
//! generating dependencies (egds), plus everything the chase layer needs to
//! reason about them:
//!
//! * functional dependencies, superkeys and keys with FD-closure
//!   (Appendix B);
//! * the tuple-ID framework that expresses "relation R is set-valued on
//!   every instance" as an egd (Appendix C);
//! * tgd **regularization** (Definition 4.1) — splitting right-hand sides
//!   into components connected through existential variables;
//! * **weak acyclicity** (Definition H.1), the standard chase-termination
//!   condition;
//! * dependency satisfaction, both symbolically on the canonical database
//!   of a query and on concrete database instances.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dependency;
pub mod fd;
pub mod implication;
pub mod keys;
pub mod parse;
pub mod regularize;
pub mod satisfaction;
pub mod set_enforcing;
pub mod weak_acyclicity;

pub use dependency::{Dependency, DependencySet, Egd, Tgd};
pub use parse::{parse_dependencies, parse_dependency};
pub use regularize::{is_regularized, regularize_set, regularize_tgd};
pub use weak_acyclicity::is_weakly_acyclic;
