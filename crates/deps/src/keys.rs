//! Superkeys and keys of relations (Appendix B, Definitions B.2/B.3).

use crate::dependency::DependencySet;
use crate::fd::{fds_of, is_superkey, Fd};
use eqsql_cq::Predicate;
use std::collections::BTreeSet;

/// Is the position set `attrs` a superkey of `rel` (of the given arity)
/// under the fd-shaped egds of Σ?
pub fn is_superkey_of(
    sigma: &DependencySet,
    rel: Predicate,
    arity: usize,
    attrs: &BTreeSet<usize>,
) -> bool {
    let fds = fds_of(sigma, rel);
    is_superkey(attrs, arity, &fds)
}

/// Enumerates the minimal keys of `rel` (Definition B.3) under the
/// fd-shaped egds of Σ. Exponential in the arity; arities here are tiny.
pub fn keys_of(sigma: &DependencySet, rel: Predicate, arity: usize) -> Vec<BTreeSet<usize>> {
    let fds: Vec<Fd> = fds_of(sigma, rel);
    let all: Vec<usize> = (0..arity).collect();
    let mut superkeys: Vec<BTreeSet<usize>> = Vec::new();
    // Enumerate subsets by increasing size so minimality is a subset check
    // against previously found keys.
    for mask in 1u32..(1u32 << arity) {
        let set: BTreeSet<usize> = all.iter().copied().filter(|i| mask & (1 << i) != 0).collect();
        if is_superkey(&set, arity, &fds) {
            superkeys.push(set);
        }
    }
    let mut keys: Vec<BTreeSet<usize>> = Vec::new();
    superkeys.sort_by_key(BTreeSet::len);
    for sk in superkeys {
        if !keys.iter().any(|k| k.is_subset(&sk)) {
            keys.push(sk);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dependencies;

    #[test]
    fn key_of_two_column_relation() {
        // First attribute of S is the key of S (σ7 of Example 4.1).
        let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
        let s = Predicate::new("s");
        assert!(is_superkey_of(&sigma, s, 2, &BTreeSet::from([0])));
        assert!(!is_superkey_of(&sigma, s, 2, &BTreeSet::from([1])));
        let keys = keys_of(&sigma, s, 2);
        assert_eq!(keys, vec![BTreeSet::from([0])]);
    }

    #[test]
    fn no_fds_means_all_attributes_key() {
        let sigma = DependencySet::new();
        let u = Predicate::new("u");
        let keys = keys_of(&sigma, u, 2);
        assert_eq!(keys, vec![BTreeSet::from([0, 1])]);
    }

    #[test]
    fn composite_key() {
        // First two attributes of T are the key (σ8 of Example 4.1).
        let sigma = parse_dependencies("t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.").unwrap();
        let t = Predicate::new("t");
        let keys = keys_of(&sigma, t, 3);
        assert_eq!(keys, vec![BTreeSet::from([0, 1])]);
        assert!(is_superkey_of(&sigma, t, 3, &BTreeSet::from([0, 1, 2])));
    }

    #[test]
    fn multiple_minimal_keys() {
        // r(A,B): A->B and B->A: both {A} and {B} are keys.
        let sigma = parse_dependencies(
            "r(X,Y) & r(X,Z) -> Y = Z.\n\
             r(Y,X) & r(Z,X) -> Y = Z.",
        )
        .unwrap();
        let keys = keys_of(&sigma, Predicate::new("r"), 2);
        assert_eq!(keys.len(), 2);
    }
}
