//! Dependency satisfaction.
//!
//! Two flavours:
//!
//! * **symbolic** — `D(Q) ⊨ σ` where `D(Q)` is the canonical database of a
//!   query: decided directly on the query body via homomorphisms (this is
//!   the chase-termination condition of §2.4);
//! * **instance-level** — `D ⊨ σ` for a concrete (bag) database, decided by
//!   enumerating premise assignments with the naive evaluator. Dependency
//!   satisfaction only looks at *which* tuples are present, never at their
//!   multiplicities, matching the paper's `D ⊨ Σ` for bag-valued `D`.

use crate::dependency::{Dependency, DependencySet, Egd, Tgd};
use eqsql_cq::matcher::{bucket_atoms, MatchPlan, Seed, Target};
use eqsql_cq::{Atom, CqQuery, Term, Value, Var};
use eqsql_relalg::eval::{assignments, Assignment};
use eqsql_relalg::Database;

/// Does the canonical database of `q` satisfy the tgd?
///
/// Streams premise matches off the planned matcher with the conclusion
/// probe threaded in, short-circuiting at the first unwitnessed match —
/// the historical path materialized (and silently capped!) the full
/// premise homomorphism set before looking at one. Plans are ordered by
/// the body's live bucket sizes ([`MatchPlan::optimized_with_stats`],
/// Selinger-lite) — safe for these existence-only searches. The
/// extension seed covers exactly the premise variables, so the tgd's
/// existential variables stay free, as Definition 2.x requires.
pub fn query_satisfies_tgd(q: &CqQuery, tgd: &Tgd) -> bool {
    let buckets = bucket_atoms(&q.body);
    let target = Target::new(&q.body, &buckets);
    let card = |key: &(eqsql_cq::Predicate, usize)| buckets.get(key).map_or(0, Vec::len);
    let premise = MatchPlan::optimized_with_stats(&tgd.lhs, &[], &card);
    let universal: Vec<Var> = tgd.universal_vars().into_iter().collect();
    let conclusion = MatchPlan::optimized_with_stats(&tgd.rhs, &universal, &card);
    let mut satisfied = true;
    premise.search(target, &Seed::Empty, &mut |m| {
        satisfied = conclusion.has_match(target, &Seed::Fn(&|v| m.get(v)));
        satisfied // stop at the first unwitnessed premise match
    });
    satisfied
}

/// Does the canonical database of `q` satisfy the egd?
pub fn query_satisfies_egd(q: &CqQuery, egd: &Egd) -> bool {
    let buckets = bucket_atoms(&q.body);
    let target = Target::new(&q.body, &buckets);
    let card = |key: &(eqsql_cq::Predicate, usize)| buckets.get(key).map_or(0, Vec::len);
    let premise = MatchPlan::optimized_with_stats(&egd.lhs, &[], &card);
    let mut satisfied = true;
    premise.search(target, &Seed::Empty, &mut |m| {
        satisfied = m.apply_term(&egd.eq.0) == m.apply_term(&egd.eq.1);
        satisfied // stop at the first violation
    });
    satisfied
}

/// Does the canonical database of `q` satisfy the dependency?
pub fn query_satisfies(q: &CqQuery, d: &Dependency) -> bool {
    match d {
        Dependency::Tgd(t) => query_satisfies_tgd(q, t),
        Dependency::Egd(e) => query_satisfies_egd(q, e),
    }
}

/// Does the canonical database of `q` satisfy every dependency in Σ?
pub fn query_satisfies_all(q: &CqQuery, sigma: &DependencySet) -> bool {
    sigma.iter().all(|d| query_satisfies(q, d))
}

/// The maximal subset of Σ satisfied by the canonical database of `q`.
pub fn satisfied_subset(q: &CqQuery, sigma: &DependencySet) -> DependencySet {
    sigma.iter().filter(|d| query_satisfies(q, d)).cloned().collect()
}

fn term_value(t: &Term, asg: &Assignment) -> Option<Value> {
    match t {
        Term::Const(c) => Some(*c),
        Term::Var(v) => asg.get(v).copied(),
    }
}

/// Substitutes known assignment values into atoms (vars become constants).
fn ground_with(atoms: &[Atom], asg: &Assignment) -> Vec<Atom> {
    atoms
        .iter()
        .map(|a| Atom {
            pred: a.pred,
            args: a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match asg.get(v) {
                        Some(val) => Term::Const(*val),
                        None => *t,
                    },
                    Term::Const(_) => *t,
                })
                .collect(),
        })
        .collect()
}

/// Does the database instance satisfy the tgd?
pub fn db_satisfies_tgd(db: &Database, tgd: &Tgd) -> bool {
    assignments(&tgd.lhs, db).iter().all(|asg| {
        let rhs = ground_with(&tgd.rhs, asg);
        !assignments(&rhs, db).is_empty()
    })
}

/// Does the database instance satisfy the egd?
pub fn db_satisfies_egd(db: &Database, egd: &Egd) -> bool {
    assignments(&egd.lhs, db)
        .iter()
        .all(|asg| term_value(&egd.eq.0, asg) == term_value(&egd.eq.1, asg))
}

/// Does the database instance satisfy the dependency?
pub fn db_satisfies(db: &Database, d: &Dependency) -> bool {
    match d {
        Dependency::Tgd(t) => db_satisfies_tgd(db, t),
        Dependency::Egd(e) => db_satisfies_egd(db, e),
    }
}

/// Does the database instance satisfy every dependency in Σ (`D ⊨ Σ`)?
pub fn db_satisfies_all(db: &Database, sigma: &DependencySet) -> bool {
    sigma.iter().all(|d| db_satisfies(db, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_dependencies, parse_dependency};
    use eqsql_cq::parse_query;

    #[test]
    fn symbolic_tgd_satisfaction() {
        let tgd = parse_dependency("p(X,Y) -> t(X,Y,W)").unwrap();
        let q_no = parse_query("q(X) :- p(X,Y)").unwrap();
        let q_yes = parse_query("q(X) :- p(X,Y), t(X,Y,W)").unwrap();
        assert!(!query_satisfies(&q_no, &tgd));
        assert!(query_satisfies(&q_yes, &tgd));
    }

    #[test]
    fn symbolic_tgd_existential_must_be_free() {
        // q already has a t-atom but with the *wrong* second coordinate:
        // the extension must still find t(X,Y,_), which it cannot.
        let tgd = parse_dependency("p(X,Y) -> t(X,Y,W)").unwrap();
        let q = parse_query("q(X) :- p(X,Y), t(X,X,W)").unwrap();
        assert!(!query_satisfies(&q, &tgd));
    }

    #[test]
    fn symbolic_egd_satisfaction() {
        let egd = parse_dependency("s(X,Y) & s(X,Z) -> Y = Z").unwrap();
        let q_bad = parse_query("q(X) :- s(X,A), s(X,B)").unwrap();
        let q_ok = parse_query("q(X) :- s(X,A)").unwrap();
        assert!(!query_satisfies(&q_bad, &egd));
        assert!(query_satisfies(&q_ok, &egd));
        // Two s-atoms whose second arguments are already equal: fine.
        let q_eq = parse_query("q(X) :- s(X,A), s(X,A)").unwrap();
        assert!(query_satisfies(&q_eq, &egd));
    }

    #[test]
    fn instance_tgd_satisfaction() {
        let tgd = parse_dependency("p(X,Y) -> t(X,Y,W)").unwrap();
        let db_yes = Database::new().with_ints("p", &[[1, 2]]).with_ints("t", &[[1, 2, 9]]);
        let db_no = Database::new().with_ints("p", &[[1, 2]]).with_ints("t", &[[1, 3, 9]]);
        assert!(db_satisfies(&db_yes, &tgd));
        assert!(!db_satisfies(&db_no, &tgd));
    }

    #[test]
    fn instance_egd_satisfaction() {
        let egd = parse_dependency("s(X,Y) & s(X,Z) -> Y = Z").unwrap();
        let db_yes = Database::new().with_ints("s", &[[1, 3], [2, 4]]);
        let db_no = Database::new().with_ints("s", &[[1, 3], [1, 4]]);
        assert!(db_satisfies(&db_yes, &egd));
        assert!(!db_satisfies(&db_no, &egd));
    }

    #[test]
    fn example_4_1_counterexample_db_satisfies_sigma() {
        // The D of Example 4.1 satisfies Σ (with U bag-valued allowed).
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let db = Database::new()
            .with_ints("p", &[[1, 2]])
            .with_ints("r", &[[1]])
            .with_ints("s", &[[1, 3]])
            .with_ints("t", &[[1, 2, 4]])
            .with_ints("u", &[[1, 5], [1, 6]]);
        assert!(db_satisfies_all(&db, &sigma));
    }

    #[test]
    fn satisfied_subset_picks_the_right_dependencies() {
        let sigma = parse_dependencies(
            "p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z).",
        )
        .unwrap();
        let q = parse_query("q(X) :- p(X,Y), r(X)").unwrap();
        let sub = satisfied_subset(&q, &sigma);
        assert_eq!(sub.len(), 1);
        assert!(sub.as_slice()[0].is_tgd());
        assert_eq!(sub.as_slice()[0].to_string(), "p(X, Y) -> r(X)");
    }

    #[test]
    fn multiplicities_do_not_affect_satisfaction() {
        let egd = parse_dependency("s(X,Y) & s(X,Z) -> Y = Z").unwrap();
        let mut db = Database::new();
        db.insert("s", eqsql_relalg::Tuple::ints([1, 3]), 5);
        assert!(db_satisfies(&db, &egd));
    }
}
