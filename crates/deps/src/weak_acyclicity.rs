//! Weak acyclicity of dependency sets (Definition H.1, after Fagin et al.
//! \[14\]).
//!
//! Build the *dependency graph* whose nodes are positions `(R, i)`: for
//! every tgd and every universally quantified variable `X` occurring in the
//! conclusion, add ordinary edges from each premise position of `X` to each
//! conclusion position of `X`, and *special* edges from each premise
//! position of `X` to every position holding an existential variable of the
//! same tgd. Σ is weakly acyclic iff no cycle passes through a special
//! edge. Weak acyclicity guarantees terminating set-chase (Theorem H.1).

use crate::dependency::DependencySet;
use eqsql_cq::{Predicate, Term, Var};
use std::collections::{HashMap, HashSet};

/// A position: relation symbol and 0-based attribute index.
pub type Position = (Predicate, usize);

/// The dependency graph: ordinary and special edge sets.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Ordinary edges.
    pub edges: HashSet<(Position, Position)>,
    /// Special edges (premise position → existential position).
    pub special: HashSet<(Position, Position)>,
}

/// Builds the dependency graph of the tgds in Σ (egds play no role in
/// Definition H.1).
pub fn dependency_graph(sigma: &DependencySet) -> DependencyGraph {
    let mut g = DependencyGraph::default();
    for tgd in sigma.tgds() {
        let universal: HashSet<Var> = tgd.universal_vars();
        // Positions of each variable in premise and conclusion.
        let mut premise_pos: HashMap<Var, Vec<Position>> = HashMap::new();
        for atom in &tgd.lhs {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    premise_pos.entry(*v).or_default().push((atom.pred, i));
                }
            }
        }
        let mut conclusion_universal: HashMap<Var, Vec<Position>> = HashMap::new();
        let mut conclusion_existential: Vec<Position> = Vec::new();
        for atom in &tgd.rhs {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    if universal.contains(v) {
                        conclusion_universal.entry(*v).or_default().push((atom.pred, i));
                    } else {
                        conclusion_existential.push((atom.pred, i));
                    }
                }
            }
        }
        for (v, srcs) in &premise_pos {
            if let Some(dsts) = conclusion_universal.get(v) {
                for &s in srcs {
                    for &d in dsts {
                        g.edges.insert((s, d));
                    }
                }
            }
            // Special edges only from variables that occur in the
            // conclusion (Definition H.1's "for every X in X̄ that occurs
            // in ψ").
            if conclusion_universal.contains_key(v) {
                for &s in srcs {
                    for &d in &conclusion_existential {
                        g.special.insert((s, d));
                    }
                }
            }
        }
    }
    g
}

/// Is Σ weakly acyclic? Checks, for every special edge `(u, v)`, that `u`
/// is not reachable from `v` through the combined edge set.
pub fn is_weakly_acyclic(sigma: &DependencySet) -> bool {
    let g = dependency_graph(sigma);
    let mut adj: HashMap<Position, Vec<Position>> = HashMap::new();
    for (a, b) in g.edges.iter().chain(g.special.iter()) {
        adj.entry(*a).or_default().push(*b);
    }
    let reaches = |from: Position, to: Position| -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(p) = stack.pop() {
            if p == to {
                return true;
            }
            if seen.insert(p) {
                if let Some(next) = adj.get(&p) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    g.special.iter().all(|(u, v)| !reaches(*v, *u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dependencies;

    #[test]
    fn example_4_1_is_weakly_acyclic() {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        assert!(is_weakly_acyclic(&sigma));
    }

    #[test]
    fn self_feeding_existential_is_not_weakly_acyclic() {
        // e(X,Y) -> e(Y,Z): position (e,2... 0-based (e,1)) feeds (e,0)
        // via ordinary edge and (e,1) via special edge: cycle through
        // special edge.
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        assert!(!is_weakly_acyclic(&sigma));
    }

    #[test]
    fn copy_tgd_is_weakly_acyclic() {
        let sigma = parse_dependencies("e(X,Y) -> f(X,Y). f(X,Y) -> g(X).").unwrap();
        assert!(is_weakly_acyclic(&sigma));
    }

    #[test]
    fn two_step_special_cycle_detected() {
        // a(X) -> b(X,Z). b(X,Z) -> a(Z).
        // (a,0) -special-> (b,1) -ordinary-> (a,0): cycle through special.
        let sigma = parse_dependencies("a(X) -> b(X,Z). b(X,Z) -> a(Z).").unwrap();
        assert!(!is_weakly_acyclic(&sigma));
    }

    #[test]
    fn appendix_h_family_is_weakly_acyclic() {
        // σ(1)_{i,j}: p_i(X,Y) -> p_j(Z,X); σ(2)_{i,j}: p_i(X,Y) -> p_j(Y,W)
        // for i < j only: strictly layered, hence weakly acyclic.
        let sigma = parse_dependencies(
            "p1(X,Y) -> p2(Z,X). p1(X,Y) -> p2(Y,W).\n\
             p1(X,Y) -> p3(Z,X). p1(X,Y) -> p3(Y,W).\n\
             p2(X,Y) -> p3(Z,X). p2(X,Y) -> p3(Y,W).",
        )
        .unwrap();
        assert!(is_weakly_acyclic(&sigma));
    }

    #[test]
    fn egds_do_not_affect_weak_acyclicity() {
        let sigma = parse_dependencies("r(X,Y) & r(X,Z) -> Y = Z.").unwrap();
        assert!(is_weakly_acyclic(&sigma));
    }
}
