//! Tgds, egds and dependency sets.

use eqsql_cq::{Atom, Predicate, Term, Var};
use std::collections::HashSet;
use std::fmt;

/// A tuple-generating dependency `φ(X̄, Ȳ) → ∃Z̄ ψ(X̄, Z̄)`.
///
/// The existential variables are implicit: every variable of the right-hand
/// side that does not occur on the left is existentially quantified.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tgd {
    /// Left-hand side (the premise) — a nonempty conjunction of atoms.
    pub lhs: Vec<Atom>,
    /// Right-hand side (the conclusion) — a nonempty conjunction of atoms.
    pub rhs: Vec<Atom>,
}

impl Tgd {
    /// Builds a tgd.
    pub fn new(lhs: Vec<Atom>, rhs: Vec<Atom>) -> Tgd {
        Tgd { lhs, rhs }
    }

    /// The universally quantified variables (those of the left-hand side).
    pub fn universal_vars(&self) -> HashSet<Var> {
        self.lhs.iter().flat_map(|a| a.vars()).collect()
    }

    /// The existential variables: right-hand-side variables not on the left.
    pub fn existential_vars(&self) -> Vec<Var> {
        let uni = self.universal_vars();
        let mut seen = HashSet::new();
        self.rhs
            .iter()
            .flat_map(|a| a.vars())
            .filter(|v| !uni.contains(v) && seen.insert(*v))
            .collect()
    }

    /// Is this a *full* tgd (no existential variables)?
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Is this an inclusion dependency (single atom on each side)?
    pub fn is_inclusion(&self) -> bool {
        self.lhs.len() == 1 && self.rhs.len() == 1
    }

    /// All variables of the tgd.
    pub fn all_vars(&self) -> HashSet<Var> {
        self.lhs.iter().chain(self.rhs.iter()).flat_map(|a| a.vars()).collect()
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_conj(f, &self.lhs)?;
        write!(f, " -> ")?;
        write_conj(f, &self.rhs)
    }
}

/// An equality-generating dependency `φ(Ū) → U1 = U2`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Egd {
    /// Left-hand side — a nonempty conjunction of atoms.
    pub lhs: Vec<Atom>,
    /// The equated terms (each occurs in the left-hand side).
    pub eq: (Term, Term),
}

impl Egd {
    /// Builds an egd.
    pub fn new(lhs: Vec<Atom>, a: Term, b: Term) -> Egd {
        Egd { lhs, eq: (a, b) }
    }

    /// All variables of the egd.
    pub fn all_vars(&self) -> HashSet<Var> {
        self.lhs.iter().flat_map(|a| a.vars()).collect()
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_conj(f, &self.lhs)?;
        write!(f, " -> {} = {}", self.eq.0, self.eq.1)
    }
}

fn write_conj(f: &mut fmt::Formatter<'_>, atoms: &[Atom]) -> fmt::Result {
    for (i, a) in atoms.iter().enumerate() {
        if i > 0 {
            write!(f, " & ")?;
        }
        write!(f, "{a}")?;
    }
    Ok(())
}

/// An embedded dependency in tgd/egd normal form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Dependency {
    /// A tuple-generating dependency.
    Tgd(Tgd),
    /// An equality-generating dependency.
    Egd(Egd),
}

impl Dependency {
    /// The left-hand side.
    pub fn lhs(&self) -> &[Atom] {
        match self {
            Dependency::Tgd(t) => &t.lhs,
            Dependency::Egd(e) => &e.lhs,
        }
    }

    /// Is this a tgd?
    pub fn is_tgd(&self) -> bool {
        matches!(self, Dependency::Tgd(_))
    }

    /// Is this an egd?
    pub fn is_egd(&self) -> bool {
        matches!(self, Dependency::Egd(_))
    }

    /// The tgd inside, if any.
    pub fn as_tgd(&self) -> Option<&Tgd> {
        match self {
            Dependency::Tgd(t) => Some(t),
            Dependency::Egd(_) => None,
        }
    }

    /// The egd inside, if any.
    pub fn as_egd(&self) -> Option<&Egd> {
        match self {
            Dependency::Egd(e) => Some(e),
            Dependency::Tgd(_) => None,
        }
    }

    /// All variables of the dependency.
    pub fn all_vars(&self) -> HashSet<Var> {
        match self {
            Dependency::Tgd(t) => t.all_vars(),
            Dependency::Egd(e) => e.all_vars(),
        }
    }

    /// The predicates mentioned anywhere in the dependency.
    pub fn predicates(&self) -> HashSet<Predicate> {
        let mut out: HashSet<Predicate> = self.lhs().iter().map(|a| a.pred).collect();
        if let Dependency::Tgd(t) = self {
            out.extend(t.rhs.iter().map(|a| a.pred));
        }
        out
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dependency::Tgd(t) => write!(f, "{t}"),
            Dependency::Egd(e) => write!(f, "{e}"),
        }
    }
}

impl From<Tgd> for Dependency {
    fn from(t: Tgd) -> Self {
        Dependency::Tgd(t)
    }
}

impl From<Egd> for Dependency {
    fn from(e: Egd) -> Self {
        Dependency::Egd(e)
    }
}

/// A finite set Σ of embedded dependencies (order-preserving; duplicates
/// allowed but pointless).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DependencySet {
    deps: Vec<Dependency>,
}

impl DependencySet {
    /// The empty set.
    pub fn new() -> DependencySet {
        DependencySet::default()
    }

    /// From a vector.
    pub fn from_vec(deps: Vec<Dependency>) -> DependencySet {
        DependencySet { deps }
    }

    /// Adds a dependency.
    pub fn push(&mut self, d: impl Into<Dependency>) {
        self.deps.push(d.into());
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Dependency> + '_ {
        self.deps.iter()
    }

    /// The dependencies as a slice.
    pub fn as_slice(&self) -> &[Dependency] {
        &self.deps
    }

    /// Only the tgds.
    pub fn tgds(&self) -> impl Iterator<Item = &Tgd> + '_ {
        self.deps.iter().filter_map(Dependency::as_tgd)
    }

    /// Only the egds.
    pub fn egds(&self) -> impl Iterator<Item = &Egd> + '_ {
        self.deps.iter().filter_map(Dependency::as_egd)
    }

    /// Set difference by structural equality (`Σ - other`).
    pub fn without(&self, other: &DependencySet) -> DependencySet {
        DependencySet {
            deps: self.deps.iter().filter(|d| !other.deps.contains(d)).cloned().collect(),
        }
    }

    /// Removes one dependency by structural equality.
    pub fn without_dep(&self, d: &Dependency) -> DependencySet {
        DependencySet { deps: self.deps.iter().filter(|x| *x != d).cloned().collect() }
    }

    /// Does the set contain `d` (structurally)?
    pub fn contains(&self, d: &Dependency) -> bool {
        self.deps.contains(d)
    }
}

impl fmt::Display for DependencySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.deps {
            writeln!(f, "{d}.")?;
        }
        Ok(())
    }
}

impl FromIterator<Dependency> for DependencySet {
    fn from_iter<I: IntoIterator<Item = Dependency>>(iter: I) -> Self {
        DependencySet { deps: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a DependencySet {
    type Item = &'a Dependency;
    type IntoIter = std::slice::Iter<'a, Dependency>;
    fn into_iter(self) -> Self::IntoIter {
        self.deps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::Term;

    fn tgd_sample() -> Tgd {
        // p(X,Y) -> s(X,Z) & t(X,V,W)   (σ1 of Example 4.1)
        Tgd::new(
            vec![Atom::new("p", vec![Term::var("X"), Term::var("Y")])],
            vec![
                Atom::new("s", vec![Term::var("X"), Term::var("Z")]),
                Atom::new("t", vec![Term::var("X"), Term::var("V"), Term::var("W")]),
            ],
        )
    }

    #[test]
    fn existential_vars_are_rhs_only() {
        let t = tgd_sample();
        let ex = t.existential_vars();
        assert_eq!(ex, vec![Var::new("Z"), Var::new("V"), Var::new("W")]);
        assert!(!t.is_full());
    }

    #[test]
    fn full_tgd_detection() {
        let t = Tgd::new(
            vec![Atom::new("p", vec![Term::var("X"), Term::var("Y")])],
            vec![Atom::new("r", vec![Term::var("X")])],
        );
        assert!(t.is_full());
        assert!(t.is_inclusion());
    }

    #[test]
    fn display_round_trip_shape() {
        let t = tgd_sample();
        assert_eq!(t.to_string(), "p(X, Y) -> s(X, Z) & t(X, V, W)");
        let e = Egd::new(
            vec![
                Atom::new("r", vec![Term::var("X"), Term::var("Y")]),
                Atom::new("r", vec![Term::var("X"), Term::var("Z")]),
            ],
            Term::var("Y"),
            Term::var("Z"),
        );
        assert_eq!(e.to_string(), "r(X, Y) & r(X, Z) -> Y = Z");
    }

    #[test]
    fn dependency_set_ops() {
        let mut s = DependencySet::new();
        s.push(tgd_sample());
        s.push(Egd::new(
            vec![Atom::new("r", vec![Term::var("X"), Term::var("Y")])],
            Term::var("X"),
            Term::var("Y"),
        ));
        assert_eq!(s.len(), 2);
        assert_eq!(s.tgds().count(), 1);
        assert_eq!(s.egds().count(), 1);
        let d = s.as_slice()[0].clone();
        let rest = s.without_dep(&d);
        assert_eq!(rest.len(), 1);
        assert!(!rest.contains(&d));
    }
}
