//! Regularization of tgds (Definition 4.1 and §4.2.1 of the paper).
//!
//! A tgd `σ : φ → ∃Z̄ ψ` is **regularized** when the atom set of `ψ` has no
//! *nonshared partition* — no split into two nonempty parts whose variable
//! sets intersect only in universally quantified variables. Equivalently:
//! the graph on `ψ`'s atoms connecting atoms that share an existential
//! variable is connected.
//!
//! The *regularized set* of a non-regularized tgd is one tgd per connected
//! component, each keeping the original left-hand side (the paper's
//! recursive partitioning algorithm computes exactly these components; we
//! use union-find, which is also within the stated `O(m² log m)` bound).
//! Proposition 4.1: the regularized version of Σ is satisfied by exactly
//! the same instances, and chasing with it yields set-equivalent results.
//!
//! Example 4.1's σ4 `p(X,Y) → u(X,Z) ∧ t(X,Y,W)` splits into
//! `p(X,Y) → u(X,Z)` and `p(X,Y) → t(X,Y,W)`; Example 4.2's σ1
//! `p(X,Y) → ∃Z∃W r(X,Z) ∧ s(Z,W)` is already regularized (shared Z).

use crate::dependency::{Dependency, DependencySet, Tgd};
use eqsql_cq::Var;
use std::collections::{HashMap, HashSet};

/// Union-find over atom indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

/// Groups the rhs atoms of `tgd` into components connected through shared
/// existential variables. Returns the component index of each rhs atom.
fn rhs_components(tgd: &Tgd) -> Vec<usize> {
    let existential: HashSet<Var> = tgd.existential_vars().into_iter().collect();
    let mut dsu = Dsu::new(tgd.rhs.len());
    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, atom) in tgd.rhs.iter().enumerate() {
        for v in atom.vars() {
            if existential.contains(&v) {
                match owner.get(&v) {
                    Some(&j) => dsu.union(i, j),
                    None => {
                        owner.insert(v, i);
                    }
                }
            }
        }
    }
    (0..tgd.rhs.len()).map(|i| dsu.find(i)).collect()
}

/// Is `tgd` regularized (Definition 4.1)? Trivially true for single-atom
/// right-hand sides.
pub fn is_regularized(tgd: &Tgd) -> bool {
    if tgd.rhs.len() <= 1 {
        return true;
    }
    let comp = rhs_components(tgd);
    comp.iter().all(|&c| c == comp[0])
}

/// The regularized set Σ_σ of `tgd`: one tgd per existential-connected
/// component of the right-hand side, each with the original left-hand side.
/// Returns a singleton when `tgd` is already regularized.
pub fn regularize_tgd(tgd: &Tgd) -> Vec<Tgd> {
    let comp = rhs_components(tgd);
    let mut order: Vec<usize> = Vec::new(); // component roots in rhs order
    for &c in &comp {
        if !order.contains(&c) {
            order.push(c);
        }
    }
    order
        .into_iter()
        .map(|root| Tgd {
            lhs: tgd.lhs.clone(),
            rhs: tgd
                .rhs
                .iter()
                .zip(comp.iter())
                .filter(|(_, &c)| c == root)
                .map(|(a, _)| a.clone())
                .collect(),
        })
        .collect()
}

/// The regularized version Σ' of Σ: egds kept as-is, every tgd replaced by
/// its regularized set (§4.2.1). The result is unique.
pub fn regularize_set(sigma: &DependencySet) -> DependencySet {
    let mut out = DependencySet::new();
    for d in sigma.iter() {
        match d {
            Dependency::Egd(e) => out.push(e.clone()),
            Dependency::Tgd(t) => {
                for r in regularize_tgd(t) {
                    out.push(r);
                }
            }
        }
    }
    out
}

/// Is every tgd in Σ regularized?
pub fn is_regularized_set(sigma: &DependencySet) -> bool {
    sigma.tgds().all(is_regularized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_dependencies, parse_dependency};

    fn tgd(s: &str) -> Tgd {
        parse_dependency(s).unwrap().as_tgd().unwrap().clone()
    }

    #[test]
    fn sigma4_of_example_4_1_is_not_regularized() {
        // {u(X,Z)} and {t(X,Y,W)} form a nonshared partition.
        let t = tgd("p(X,Y) -> u(X,Z) & t(X,Y,W)");
        assert!(!is_regularized(&t));
        let reg = regularize_tgd(&t);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg[0].to_string(), "p(X, Y) -> u(X, Z)");
        assert_eq!(reg[1].to_string(), "p(X, Y) -> t(X, Y, W)");
    }

    #[test]
    fn sigma1_of_example_4_2_is_regularized() {
        // Shared existential Z makes the partition "shared".
        let t = tgd("p(X,Y) -> r(X,Z) & s(Z,W)");
        assert!(is_regularized(&t));
        assert_eq!(regularize_tgd(&t).len(), 1);
    }

    #[test]
    fn single_atom_rhs_is_trivially_regularized() {
        assert!(is_regularized(&tgd("p(X,Y) -> t(X,Y,W)")));
    }

    #[test]
    fn full_tgd_with_multi_atom_rhs_splits_completely() {
        // No existential variables at all: every atom is its own component.
        let t = tgd("p(X,Y) -> r(X) & s(X,Y)");
        assert!(!is_regularized(&t));
        assert_eq!(regularize_tgd(&t).len(), 2);
    }

    #[test]
    fn chain_of_shared_existentials_is_one_component() {
        // a-b share Z1, b-c share Z2: all connected.
        let t = tgd("p(X) -> a(X,Z1) & b(Z1,Z2) & c(Z2,X)");
        assert!(is_regularized(&t));
    }

    #[test]
    fn three_way_split() {
        let t = tgd("p(X) -> a(X,Z1) & b(X,Z2) & c(X,Z3)");
        let reg = regularize_tgd(&t);
        assert_eq!(reg.len(), 3);
        for r in &reg {
            assert!(is_regularized(r));
            assert_eq!(r.lhs, t.lhs);
        }
    }

    #[test]
    fn regularize_set_keeps_egds_and_is_idempotent() {
        let sigma = parse_dependencies(
            "p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        let reg = regularize_set(&sigma);
        assert_eq!(reg.len(), 3);
        assert!(is_regularized_set(&reg));
        assert_eq!(regularize_set(&reg), reg);
    }

    #[test]
    fn example_4_1_sigma1_regularization() {
        // σ1: p(X,Y) -> s(X,Z) & t(X,V,W): Z only in s, V,W only in t:
        // two components.
        let t = tgd("p(X,Y) -> s(X,Z) & t(X,V,W)");
        assert!(!is_regularized(&t));
        assert_eq!(regularize_tgd(&t).len(), 2);
    }
}
