//! The newline-delimited request format driven by `eqsql-serve`.
//!
//! A request file describes one batch: a shared Σ, optional schema flags
//! and budgets, and the query pairs to decide. Line-oriented, `#` comments:
//!
//! ```text
//! # Σ, one or more dependencies per line (datalog-ish syntax, '.'-terminated)
//! sigma: p(X,Y) -> s(X,Z) & t(X,V,W).
//! sigma: s(X,Y) & s(X,Z) -> Y = Z.
//! # relations that are set-valued on every instance (Appendix C flags)
//! set_valued: s t
//! # chase budgets (optional)
//! max_steps: 5000
//! max_atoms: 5000
//! # pairs: <semantics> | <query 1> | <query 2>, semantics ∈ set|bag|bagset
//! pair: set | q1(X) :- p(X,Y), s(X,Z) | q2(X) :- p(X,Y)
//! ```
//!
//! The schema is inferred: every predicate/arity mentioned in Σ or in a
//! query becomes a (bag-valued) relation, then `set_valued` lines flip
//! flags. An arity conflict is a parse error.

use crate::batch::EquivRequest;
use eqsql_chase::ChaseConfig;
use eqsql_cq::{parse_query, Atom, Predicate};
use eqsql_deps::{parse_dependencies, Dependency, DependencySet};
use eqsql_relalg::{Schema, Semantics};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed request file: everything a [`crate::BatchSession`] needs.
#[derive(Clone, Debug)]
pub struct RequestFile {
    /// The shared dependency set.
    pub sigma: DependencySet,
    /// The inferred schema, with `set_valued` flags applied.
    pub schema: Schema,
    /// Chase budgets (defaults unless overridden in the file).
    pub config: ChaseConfig,
    /// The batch, in file order.
    pub pairs: Vec<EquivRequest>,
}

/// A request-file syntax or consistency error, with its 1-based line.
#[derive(Clone, Debug)]
pub struct RequestParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RequestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RequestParseError {}

fn err(line: usize, message: impl Into<String>) -> RequestParseError {
    RequestParseError { line, message: message.into() }
}

fn parse_semantics(s: &str, line: usize) -> Result<Semantics, RequestParseError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "set" | "s" => Ok(Semantics::Set),
        "bag" | "b" => Ok(Semantics::Bag),
        "bagset" | "bag-set" | "bag_set" | "bs" => Ok(Semantics::BagSet),
        other => Err(err(line, format!("unknown semantics {other:?} (want set|bag|bagset)"))),
    }
}

fn note_atoms<'a>(
    atoms: impl IntoIterator<Item = &'a Atom>,
    arities: &mut BTreeMap<Predicate, usize>,
    line: usize,
) -> Result<(), RequestParseError> {
    for a in atoms {
        match arities.insert(a.pred, a.arity()) {
            Some(prev) if prev != a.arity() => {
                return Err(err(
                    line,
                    format!("relation {} used with arities {} and {}", a.pred, prev, a.arity()),
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Parses the request format described in the module docs.
pub fn parse_request_file(text: &str) -> Result<RequestFile, RequestParseError> {
    let mut sigma = DependencySet::new();
    let mut set_valued: Vec<(String, usize)> = Vec::new();
    let mut config = ChaseConfig::default();
    let mut raw_pairs: Vec<(Semantics, String, String, usize)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((keyword, rest)) = line.split_once(':') else {
            return Err(err(line_no, format!("expected `keyword: ...`, got {line:?}")));
        };
        let rest = rest.trim();
        match keyword.trim() {
            "sigma" => {
                let deps = parse_dependencies(rest)
                    .map_err(|e| err(line_no, format!("bad dependency: {e}")))?;
                for d in deps.iter() {
                    sigma.push(d.clone());
                }
            }
            "set_valued" => {
                for name in rest.split_whitespace() {
                    set_valued.push((name.to_string(), line_no));
                }
            }
            "max_steps" => {
                config.max_steps =
                    rest.parse().map_err(|_| err(line_no, format!("bad max_steps {rest:?}")))?;
            }
            "max_atoms" => {
                config.max_atoms =
                    rest.parse().map_err(|_| err(line_no, format!("bad max_atoms {rest:?}")))?;
            }
            "pair" => {
                let mut parts = rest.splitn(3, '|');
                let (Some(sem), Some(q1), Some(q2)) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(err(line_no, "pair wants `<sem> | <query> | <query>`"));
                };
                raw_pairs.push((
                    parse_semantics(sem, line_no)?,
                    q1.trim().to_string(),
                    q2.trim().to_string(),
                    line_no,
                ));
            }
            other => return Err(err(line_no, format!("unknown keyword {other:?}"))),
        }
    }
    if raw_pairs.is_empty() {
        return Err(err(0, "request file has no `pair:` lines"));
    }

    // Infer the schema from every atom in sight.
    let mut arities: BTreeMap<Predicate, usize> = BTreeMap::new();
    for d in sigma.iter() {
        note_atoms(d.lhs(), &mut arities, 0)?;
        if let Dependency::Tgd(t) = d {
            note_atoms(&t.rhs, &mut arities, 0)?;
        }
    }
    let mut pairs = Vec::with_capacity(raw_pairs.len());
    for (sem, q1, q2, line_no) in raw_pairs {
        let q1 = parse_query(&q1).map_err(|e| err(line_no, format!("bad query: {e}")))?;
        let q2 = parse_query(&q2).map_err(|e| err(line_no, format!("bad query: {e}")))?;
        note_atoms(&q1.body, &mut arities, line_no)?;
        note_atoms(&q2.body, &mut arities, line_no)?;
        pairs.push(EquivRequest { sem, q1, q2 });
    }
    let rels: Vec<(&str, usize)> = arities.iter().map(|(p, &a)| (p.name(), a)).collect();
    let mut schema = Schema::all_bags(&rels);
    for (name, line_no) in set_valued {
        let pred = Predicate::new(&name);
        if !arities.contains_key(&pred) {
            return Err(err(line_no, format!("set_valued relation {name:?} never mentioned")));
        }
        schema.mark_set_valued(pred);
    }
    Ok(RequestFile { sigma, schema, config, pairs })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
sigma: p(X,Y) -> s(X,Z).
sigma: s(X,Y) & s(X,Z) -> Y = Z.
set_valued: s
max_steps: 1234

pair: set | q(X) :- p(X,Y) | q(X) :- p(X,Y), s(X,Z)
pair: bagset | q(X) :- p(X,Y) | q(X) :- p(X,Y), s(X,Z)
";

    #[test]
    fn parses_the_documented_format() {
        let r = parse_request_file(SAMPLE).unwrap();
        assert_eq!(r.sigma.len(), 2);
        assert_eq!(r.pairs.len(), 2);
        assert_eq!(r.config.max_steps, 1234);
        assert_eq!(r.pairs[0].sem, Semantics::Set);
        assert_eq!(r.pairs[1].sem, Semantics::BagSet);
        assert!(r.schema.is_set_valued(Predicate::new("s")));
        assert!(!r.schema.is_set_valued(Predicate::new("p")));
        assert_eq!(r.schema.arity(Predicate::new("s")), Some(2));
    }

    #[test]
    fn rejects_arity_conflicts_and_junk() {
        assert!(parse_request_file(
            "sigma: p(X) -> s(X).\npair: set | q(X) :- p(X,Y) | q(X) :- p(X)"
        )
        .unwrap_err()
        .message
        .contains("arities"));
        assert!(parse_request_file("nonsense\n").is_err());
        assert!(parse_request_file("pair: magic | q(X) :- p(X) | q(X) :- p(X)").is_err());
        assert!(parse_request_file("sigma: p(X) -> s(X).")
            .unwrap_err()
            .message
            .contains("no `pair:`"));
    }
}
