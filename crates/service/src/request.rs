//! The newline-delimited request format driven by `eqsql-serve`.
//!
//! A request file describes one batch over a shared Σ: file-level schema
//! flags and default budgets, then one line per decision — the full verb
//! family of [`crate::Request`]. Line-oriented, `#` comments:
//!
//! ```text
//! # Σ, one or more dependencies per line (datalog-ish syntax, '.'-terminated)
//! sigma: p(X,Y) -> s(X,Z) & t(X,V,W).
//! sigma: s(X,Y) & s(X,Z) -> Y = Z.
//! # relations that are set-valued on every instance (Appendix C flags)
//! set_valued: s t
//! # file-level default chase budgets (optional)
//! max_steps: 5000
//! max_atoms: 5000
//! # Σ-equivalence: <options> | <query 1> | <query 2>
//! pair: set | q1(X) :- p(X,Y), s(X,Z) | q2(X) :- p(X,Y)
//! equivalent: bag max_steps=200 | q1(X) :- p(X,Y) | q2(X) :- p(X,Y)
//! # set containment: q1 ⊑_{Σ,S} q2 (options before the first '|')
//! contains: | q1(X) :- p(X,Y), s(X,Z) | q2(X) :- p(X,Y)
//! # Σ-minimality and C&B reformulation of one query
//! minimal: set | q(X) :- p(X,Y), s(X,Z)
//! cnb: bagset | q(X) :- p(X,Y)
//! # dependency implication: Σ ⊨ σ?
//! implies: p(X,Y) -> s(X,W).
//! ```
//!
//! The *options* field (everything before the first `|`; may be empty)
//! holds whitespace-separated tokens: a semantics (`set|bag|bagset`),
//! per-request budget overrides (`max_steps=N`, `max_atoms=N`), and/or a
//! per-request wall-clock deadline (`deadline_ms=N`; `0` means already
//! expired) — they populate [`crate::RequestOpts`], falling back to the
//! Solver's defaults when absent. `pair:` is an alias of `equivalent:`.
//!
//! The schema is inferred: every predicate/arity mentioned in Σ, in a
//! query, or in an `implies:` dependency becomes a (bag-valued) relation,
//! then `set_valued` lines flip flags. An arity conflict is a parse error.

use crate::solver::{Request, RequestOpts};
use eqsql_chase::ChaseConfig;
use eqsql_cq::{parse_query, Atom, Predicate};
use eqsql_deps::{parse_dependencies, Dependency, DependencySet};
use eqsql_relalg::{Schema, Semantics};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed request file: everything a [`crate::Solver`] needs.
#[derive(Clone, Debug)]
pub struct RequestFile {
    /// The shared dependency set.
    pub sigma: DependencySet,
    /// The inferred schema, with `set_valued` flags applied.
    pub schema: Schema,
    /// File-level chase budgets (defaults unless overridden per request).
    pub config: ChaseConfig,
    /// The batch, in file order.
    pub requests: Vec<Request>,
}

/// A request-file syntax or consistency error, with its 1-based line.
#[derive(Clone, Debug)]
pub struct RequestParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RequestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RequestParseError {}

fn err(line: usize, message: impl Into<String>) -> RequestParseError {
    RequestParseError { line, message: message.into() }
}

/// The largest request line either parser entry point will look at, in
/// bytes. [`parse_request_line_bytes`] rejects longer lines up front with
/// a parse error (never by killing the connection), so a hostile client
/// cannot make the server buffer or echo unbounded garbage.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A short quoted excerpt of untrusted input for error messages: long or
/// binary junk is truncated rather than echoed in full.
fn snippet(s: &str) -> String {
    const MAX: usize = 60;
    if s.len() <= MAX {
        return format!("{s:?}");
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{:?}…", &s[..end])
}

fn parse_semantics(s: &str, line: usize) -> Result<Semantics, RequestParseError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "set" | "s" => Ok(Semantics::Set),
        "bag" | "b" => Ok(Semantics::Bag),
        "bagset" | "bag-set" | "bag_set" | "bs" => Ok(Semantics::BagSet),
        other => Err(err(line, format!("unknown semantics {other:?} (want set|bag|bagset)"))),
    }
}

/// Parses an options field: optional semantics token plus
/// `max_steps=N`/`max_atoms=N`/`deadline_ms=N` overrides,
/// whitespace-separated.
fn parse_opts(s: &str, line: usize) -> Result<RequestOpts, RequestParseError> {
    let mut opts = RequestOpts::default();
    for tok in s.split_whitespace() {
        if let Some((key, value)) = tok.split_once('=') {
            let n: usize =
                value.parse().map_err(|_| err(line, format!("bad numeric override {tok:?}")))?;
            match key {
                "max_steps" => opts.max_steps = Some(n),
                "max_atoms" => opts.max_atoms = Some(n),
                "deadline_ms" => opts.deadline_ms = Some(n as u64),
                other => return Err(err(line, format!("unknown override {other:?}"))),
            }
        } else {
            if opts.sem.is_some() {
                return Err(err(line, format!("two semantics tokens (second: {tok:?})")));
            }
            opts.sem = Some(parse_semantics(tok, line)?);
        }
    }
    Ok(opts)
}

fn note_atoms<'a>(
    atoms: impl IntoIterator<Item = &'a Atom>,
    arities: &mut BTreeMap<Predicate, usize>,
    line: usize,
) -> Result<(), RequestParseError> {
    for a in atoms {
        match arities.insert(a.pred, a.arity()) {
            Some(prev) if prev != a.arity() => {
                return Err(err(
                    line,
                    format!("relation {} used with arities {} and {}", a.pred, prev, a.arity()),
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

fn note_dep(
    dep: &Dependency,
    arities: &mut BTreeMap<Predicate, usize>,
    line: usize,
) -> Result<(), RequestParseError> {
    note_atoms(dep.lhs(), arities, line)?;
    if let Dependency::Tgd(t) = dep {
        note_atoms(&t.rhs, arities, line)?;
    }
    Ok(())
}

/// A raw request line, before query parsing.
enum RawRequest {
    TwoQueries { verb: Verb2, opts: RequestOpts, q1: String, q2: String },
    OneQuery { verb: Verb1, opts: RequestOpts, q: String },
    Implies { opts: RequestOpts, dep: String },
}

#[derive(Clone, Copy)]
enum Verb2 {
    Equivalent,
    Contains,
}

#[derive(Clone, Copy)]
enum Verb1 {
    Minimal,
    Cnb,
}

fn parse_two(verb: Verb2, rest: &str, line_no: usize) -> Result<RawRequest, RequestParseError> {
    let mut parts = rest.splitn(3, '|');
    let (Some(o), Some(q1), Some(q2)) = (parts.next(), parts.next(), parts.next()) else {
        return Err(err(line_no, "wants `<options> | <query> | <query>`"));
    };
    Ok(RawRequest::TwoQueries {
        verb,
        opts: parse_opts(o, line_no)?,
        q1: q1.trim().to_string(),
        q2: q2.trim().to_string(),
    })
}

fn parse_one(verb: Verb1, rest: &str, line_no: usize) -> Result<RawRequest, RequestParseError> {
    match rest.split_once('|') {
        Some((o, q)) => Ok(RawRequest::OneQuery {
            verb,
            opts: parse_opts(o, line_no)?,
            q: q.trim().to_string(),
        }),
        None => {
            Ok(RawRequest::OneQuery { verb, opts: RequestOpts::default(), q: rest.to_string() })
        }
    }
}

/// Parses one *verb* line into a [`RawRequest`]; `Ok(None)` means the
/// keyword is not a verb (a file-header keyword or junk — the caller
/// decides which of those it accepts).
fn raw_request(
    keyword: &str,
    rest: &str,
    line_no: usize,
) -> Result<Option<RawRequest>, RequestParseError> {
    Ok(Some(match keyword {
        "pair" | "equivalent" => parse_two(Verb2::Equivalent, rest, line_no)?,
        "contains" => parse_two(Verb2::Contains, rest, line_no)?,
        "minimal" => parse_one(Verb1::Minimal, rest, line_no)?,
        "cnb" => parse_one(Verb1::Cnb, rest, line_no)?,
        "implies" => {
            let (opts, dep) = match rest.split_once('|') {
                Some((o, d)) => (parse_opts(o, line_no)?, d.trim().to_string()),
                None => (RequestOpts::default(), rest.to_string()),
            };
            RawRequest::Implies { opts, dep }
        }
        _ => return Ok(None),
    }))
}

/// Materializes one raw request: parses its queries/dependencies, records
/// every mentioned predicate's arity (erroring on conflicts), and appends
/// the resulting [`Request`]s to `out` (an `implies:` line may carry
/// several dependencies, hence several requests).
fn build_requests(
    r: RawRequest,
    line_no: usize,
    arities: &mut BTreeMap<Predicate, usize>,
    out: &mut Vec<Request>,
) -> Result<(), RequestParseError> {
    let parse_q = |s: &str| -> Result<eqsql_cq::CqQuery, RequestParseError> {
        parse_query(s).map_err(|e| err(line_no, format!("bad query: {e}")))
    };
    match r {
        RawRequest::TwoQueries { verb, opts, q1, q2 } => {
            let q1 = parse_q(&q1)?;
            let q2 = parse_q(&q2)?;
            note_atoms(&q1.body, arities, line_no)?;
            note_atoms(&q2.body, arities, line_no)?;
            out.push(match verb {
                Verb2::Equivalent => Request::Equivalent { q1, q2, opts },
                Verb2::Contains => Request::Contained { q1, q2, opts },
            });
        }
        RawRequest::OneQuery { verb, opts, q } => {
            let q = parse_q(&q)?;
            note_atoms(&q.body, arities, line_no)?;
            out.push(match verb {
                Verb1::Minimal => Request::Minimal { q, opts },
                Verb1::Cnb => Request::Reformulate { q, opts },
            });
        }
        RawRequest::Implies { opts, dep } => {
            let deps = parse_dependencies(&dep)
                .map_err(|e| err(line_no, format!("bad dependency: {e}")))?;
            for d in deps.iter() {
                note_dep(d, arities, line_no)?;
                out.push(Request::Implies { dep: d.clone(), opts });
            }
        }
    }
    Ok(())
}

/// Parses one wire request line against a server's fixed schema: a verb
/// line exactly as in a request file (`pair:`/`equivalent:`, `contains:`,
/// `minimal:`, `cnb:`, `implies:` — see the module docs for the grammar),
/// except that the schema is *given*, not inferred. Every relation the
/// line mentions must already exist in `schema` with a matching arity
/// (the server's Σ and set-valued flags were fixed at startup; a request
/// cannot grow them), and an `implies:` line must carry exactly one
/// dependency so one line maps to one response. File-header keywords
/// (`sigma:`, `set_valued:`, `max_steps:`, `max_atoms:`) are rejected
/// with a parse error. Any malformed input — junk bytes, unknown verbs,
/// bad queries — is a per-line [`RequestParseError`] (mapped to
/// [`crate::Error::Parse`]), never a reason to drop a connection.
pub fn parse_request_line(line: &str, schema: &Schema) -> Result<Request, RequestParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Err(err(0, "empty request line"));
    }
    let Some((keyword, rest)) = line.split_once(':') else {
        return Err(err(0, format!("expected `verb: ...`, got {}", snippet(line))));
    };
    let keyword = keyword.trim();
    let rest = rest.trim();
    let raw = match raw_request(keyword, rest, 0)? {
        Some(raw) => raw,
        None => match keyword {
            "sigma" | "set_valued" | "max_steps" | "max_atoms" => {
                return Err(err(
                    0,
                    format!("{keyword:?} is a request-file header, not a wire verb"),
                ));
            }
            other => return Err(err(0, format!("unknown verb {}", snippet(other)))),
        },
    };
    // Seed with the server schema so conflicting uses error in
    // `note_atoms`; afterwards, anything not seeded is a new relation.
    let mut arities: BTreeMap<Predicate, usize> =
        schema.iter().map(|r| (r.name, r.arity)).collect();
    let known = arities.len();
    let mut out = Vec::with_capacity(1);
    build_requests(raw, 0, &mut arities, &mut out)?;
    if arities.len() > known {
        let new: Vec<String> =
            arities.keys().filter(|p| schema.arity(**p).is_none()).map(|p| p.to_string()).collect();
        return Err(err(0, format!("relations not in the server schema: {}", new.join(", "))));
    }
    match out.len() {
        1 => Ok(out.pop().expect("length checked")),
        n => Err(err(0, format!("implies line carries {n} dependencies; send one per line"))),
    }
}

/// [`parse_request_line`] over raw socket bytes: enforces the
/// [`MAX_LINE_BYTES`] bound and UTF-8 validity *before* looking at the
/// content, so oversized or binary garbage degrades to an ordinary parse
/// error for that line alone.
pub fn parse_request_line_bytes(
    bytes: &[u8],
    schema: &Schema,
) -> Result<Request, RequestParseError> {
    if bytes.len() > MAX_LINE_BYTES {
        return Err(err(
            0,
            format!(
                "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
                bytes.len()
            ),
        ));
    }
    let line = std::str::from_utf8(bytes)
        .map_err(|e| err(0, format!("request line is not valid UTF-8: {e}")))?;
    parse_request_line(line, schema)
}

/// Parses the request format described in the module docs.
pub fn parse_request_file(text: &str) -> Result<RequestFile, RequestParseError> {
    let mut sigma = DependencySet::new();
    let mut set_valued: Vec<(String, usize)> = Vec::new();
    let mut config = ChaseConfig::default();
    let mut raw: Vec<(RawRequest, usize)> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((keyword, rest)) = line.split_once(':') else {
            return Err(err(line_no, format!("expected `keyword: ...`, got {}", snippet(line))));
        };
        let keyword = keyword.trim();
        let rest = rest.trim();
        if let Some(r) = raw_request(keyword, rest, line_no)? {
            raw.push((r, line_no));
            continue;
        }
        match keyword {
            "sigma" => {
                let deps = parse_dependencies(rest)
                    .map_err(|e| err(line_no, format!("bad dependency: {e}")))?;
                for d in deps.iter() {
                    sigma.push(d.clone());
                }
            }
            "set_valued" => {
                for name in rest.split_whitespace() {
                    set_valued.push((name.to_string(), line_no));
                }
            }
            "max_steps" => {
                config.max_steps =
                    rest.parse().map_err(|_| err(line_no, format!("bad max_steps {rest:?}")))?;
            }
            "max_atoms" => {
                config.max_atoms =
                    rest.parse().map_err(|_| err(line_no, format!("bad max_atoms {rest:?}")))?;
            }
            other => return Err(err(line_no, format!("unknown keyword {}", snippet(other)))),
        }
    }
    if raw.is_empty() {
        return Err(err(0, "request file has no request lines"));
    }

    // Infer the schema from every atom in sight.
    let mut arities: BTreeMap<Predicate, usize> = BTreeMap::new();
    for d in sigma.iter() {
        note_dep(d, &mut arities, 0)?;
    }
    let mut requests = Vec::with_capacity(raw.len());
    for (r, line_no) in raw {
        build_requests(r, line_no, &mut arities, &mut requests)?;
    }
    let rels: Vec<(&str, usize)> = arities.iter().map(|(p, &a)| (p.name(), a)).collect();
    let mut schema = Schema::all_bags(&rels);
    for (name, line_no) in set_valued {
        let pred = Predicate::new(&name);
        if !arities.contains_key(&pred) {
            return Err(err(line_no, format!("set_valued relation {name:?} never mentioned")));
        }
        schema.mark_set_valued(pred);
    }
    Ok(RequestFile { sigma, schema, config, requests })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
sigma: p(X,Y) -> s(X,Z).
sigma: s(X,Y) & s(X,Z) -> Y = Z.
set_valued: s
max_steps: 1234

pair: set | q(X) :- p(X,Y) | q(X) :- p(X,Y), s(X,Z)
equivalent: bagset max_steps=99 | q(X) :- p(X,Y) | q(X) :- p(X,Y), s(X,Z)
contains: | q(X) :- p(X,Y), s(X,Z) | q(X) :- p(X,Y)
minimal: set | q(X) :- p(X,Y), s(X,Z)
cnb: bag max_atoms=77 | q(X) :- p(X,Y)
implies: p(X,Y) -> s(X,W).
";

    #[test]
    fn parses_the_documented_format() {
        let r = parse_request_file(SAMPLE).unwrap();
        assert_eq!(r.sigma.len(), 2);
        assert_eq!(r.requests.len(), 6);
        assert_eq!(r.config.max_steps, 1234);
        assert!(r.schema.is_set_valued(Predicate::new("s")));
        assert!(!r.schema.is_set_valued(Predicate::new("p")));
        assert_eq!(r.schema.arity(Predicate::new("s")), Some(2));
        match &r.requests[0] {
            Request::Equivalent { opts, .. } => {
                assert_eq!(opts.sem, Some(Semantics::Set));
                assert_eq!(opts.max_steps, None);
            }
            other => panic!("expected Equivalent, got {other:?}"),
        }
        match &r.requests[1] {
            Request::Equivalent { opts, .. } => {
                assert_eq!(opts.sem, Some(Semantics::BagSet));
                assert_eq!(opts.max_steps, Some(99));
            }
            other => panic!("expected Equivalent, got {other:?}"),
        }
        assert!(matches!(
            &r.requests[2],
            Request::Contained { opts: RequestOpts { sem: None, .. }, .. }
        ));
        assert!(matches!(&r.requests[3], Request::Minimal { .. }));
        match &r.requests[4] {
            Request::Reformulate { opts, .. } => {
                assert_eq!(opts.sem, Some(Semantics::Bag));
                assert_eq!(opts.max_atoms, Some(77));
            }
            other => panic!("expected Reformulate, got {other:?}"),
        }
        assert!(matches!(&r.requests[5], Request::Implies { .. }));
    }

    #[test]
    fn rejects_arity_conflicts_and_junk() {
        assert!(parse_request_file(
            "sigma: p(X) -> s(X).\npair: set | q(X) :- p(X,Y) | q(X) :- p(X)"
        )
        .unwrap_err()
        .message
        .contains("arities"));
        assert!(parse_request_file("nonsense\n").is_err());
        assert!(parse_request_file("pair: magic | q(X) :- p(X) | q(X) :- p(X)").is_err());
        assert!(parse_request_file("pair: set set | q(X) :- p(X) | q(X) :- p(X)").is_err());
        assert!(parse_request_file("pair: set max_steps=x | q(X) :- p(X) | q(X) :- p(X)").is_err());
        assert!(parse_request_file("sigma: p(X) -> s(X).")
            .unwrap_err()
            .message
            .contains("no request"));
    }

    #[test]
    fn implies_infers_schema_from_the_dependency() {
        let r = parse_request_file("sigma: a(X) -> b(X).\nimplies: a(X) -> c(X,Y).").unwrap();
        assert_eq!(r.schema.arity(Predicate::new("c")), Some(2));
        assert_eq!(r.requests.len(), 1);
    }

    fn wire_schema() -> Schema {
        let mut s = Schema::all_bags(&[("p", 2), ("s", 2)]);
        s.mark_set_valued(Predicate::new("s"));
        s
    }

    #[test]
    fn single_line_accepts_every_verb() {
        let schema = wire_schema();
        let lines = [
            "pair: set | q(X) :- p(X,Y) | q(X) :- p(X,Y), s(X,Z)",
            "equivalent: bag max_steps=9 | q(X) :- p(X,Y) | q(X) :- p(X,Y)",
            "contains: | q(X) :- p(X,Y), s(X,Z) | q(X) :- p(X,Y)",
            "minimal: set | q(X) :- p(X,Y), s(X,Z)",
            "cnb: q(X) :- p(X,Y)",
            "implies: p(X,Y) -> s(X,W).",
        ];
        for line in lines {
            parse_request_line(line, &schema).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        }
    }

    #[test]
    fn single_line_pins_the_server_schema() {
        let schema = wire_schema();
        // A relation the server never heard of.
        let e = parse_request_line("minimal: q(X) :- zebra(X)", &schema).unwrap_err();
        assert!(e.message.contains("not in the server schema"), "{e}");
        // A known relation at the wrong arity.
        let e = parse_request_line("minimal: q(X) :- p(X)", &schema).unwrap_err();
        assert!(e.message.contains("arities"), "{e}");
        // Headers configure files, not live servers.
        for line in ["sigma: p(X,Y) -> s(X,X).", "set_valued: p", "max_steps: 9", "max_atoms: 9"] {
            let e = parse_request_line(line, &schema).unwrap_err();
            assert!(e.message.contains("request-file header"), "{line:?}: {e}");
        }
        // One implies line, one dependency, one response.
        let e = parse_request_line("implies: p(X,Y) -> s(X,X). s(X,Y) -> p(X,X).", &schema)
            .unwrap_err();
        assert!(e.message.contains("one per line"), "{e}");
    }

    /// Fuzz-style corpus: every line here must come back as a parse
    /// error — never a panic, and (at the byte entry point) never a
    /// reason to treat the input as anything but one bad line.
    #[test]
    fn malformed_corpus_degrades_to_parse_errors() {
        let schema = wire_schema();
        let corpus: &[&[u8]] = &[
            b"",
            b"   ",
            b"# just a comment",
            b"no colon at all",
            b":",
            b": | a | b",
            b"pair",
            b"pair:",
            b"pair: set | q(X) :- p(X,Y)",
            b"pair: set | | ",
            b"pair: magic | q(X) :- p(X,Y) | q(X) :- p(X,Y)",
            b"pair: set set | q(X) :- p(X,Y) | q(X) :- p(X,Y)",
            b"pair: max_steps=x | q(X) :- p(X,Y) | q(X) :- p(X,Y)",
            b"pair: max_steps=-1 | q(X) :- p(X,Y) | q(X) :- p(X,Y)",
            b"equivalent: set | q(X) :- | q(X) :- p(X,Y)",
            b"contains: | q( | q(X) :- p(X,Y)",
            b"minimal: ",
            b"minimal: q(X) :- p(X,Y) extra junk",
            b"cnb: \xc3\x28",    // invalid UTF-8 continuation
            b"\xff\xfe\x00\x01", // binary garbage
            b"implies: ",
            b"implies: p(X,Y) -> ",
            b"implies: p(X,Y) > s(X,X).",
            b"unknown_verb: whatever",
            b"PAIR: set | q(X) :- p(X,Y) | q(X) :- p(X,Y)", // verbs are case-sensitive
            b"pair : set\x00 | q(X) :- p(X,Y) | q(X) :- p(X,Y)",
        ];
        for bytes in corpus {
            let got = parse_request_line_bytes(bytes, &schema);
            assert!(got.is_err(), "expected a parse error for {bytes:?}");
        }
        // An oversized line is rejected by length before content, and the
        // error message does not echo the payload back.
        let huge = vec![b'x'; MAX_LINE_BYTES + 1];
        let e = parse_request_line_bytes(&huge, &schema).unwrap_err();
        assert!(e.message.contains("exceeds"), "{e}");
        assert!(e.message.len() < 200, "oversized input echoed into the error");
        // Junk in ordinary errors is truncated, not echoed in full.
        let junk = format!("pair: set | q(X) :- p(X,Y) | {}", "z".repeat(10_000));
        let _ = parse_request_line(&junk, &schema);
        let no_colon = "y".repeat(10_000);
        let e = parse_request_line(&no_colon, &schema).unwrap_err();
        assert!(e.message.len() < 200, "junk echoed into the error: {} bytes", e.message.len());
    }
}
