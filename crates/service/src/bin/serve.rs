//! `eqsql-serve` — drive a [`BatchSession`] from a request file.
//!
//! ```text
//! eqsql-serve [--threads N] [--repeat K] [--cache-capacity C] [--quiet] FILE
//! ```
//!
//! Decides every `pair:` line of FILE (format: `eqsql_service::request`)
//! over the file's shared Σ and prints one verdict line per pair plus
//! batch statistics. `--repeat K` re-runs the same batch K times against
//! the session's (by then warm) cache — the simplest load test: run 1 pays
//! for the chases, runs 2..K measure the serving path.

use eqsql_service::{parse_request_file, BatchSession, CacheConfig, ChaseCache, EquivRequest};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str =
    "usage: eqsql-serve [--threads N] [--repeat K] [--cache-capacity C] [--quiet] FILE";

struct Args {
    file: String,
    threads: usize,
    repeat: usize,
    cache_capacity: usize,
    quiet: bool,
}

enum ArgsOutcome {
    Run(Args),
    /// `--help`: print usage to stdout, exit success.
    Help,
}

fn parse_args() -> Result<ArgsOutcome, String> {
    let mut args = Args {
        file: String::new(),
        threads: 1,
        repeat: 1,
        cache_capacity: CacheConfig::default().capacity,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut numeric = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} wants a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{name} wants a number"))
        };
        match a.as_str() {
            "--threads" => args.threads = numeric("--threads")?.max(1),
            "--repeat" => args.repeat = numeric("--repeat")?.max(1),
            "--cache-capacity" => args.cache_capacity = numeric("--cache-capacity")?.max(1),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Ok(ArgsOutcome::Help),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other if args.file.is_empty() => args.file = other.to_string(),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if args.file.is_empty() {
        return Err("missing request FILE (see --help)".to_string());
    }
    Ok(ArgsOutcome::Run(args))
}

fn verdict_str(v: &eqsql_core::EquivOutcome) -> String {
    match v {
        eqsql_core::EquivOutcome::Equivalent => "equivalent".to_string(),
        eqsql_core::EquivOutcome::NotEquivalent => "not-equivalent".to_string(),
        eqsql_core::EquivOutcome::Unknown(e) => format!("unknown ({e})"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(ArgsOutcome::Run(a)) => a,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("eqsql-serve: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let request = match parse_request_file(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eqsql-serve: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let cache = Arc::new(ChaseCache::new(CacheConfig {
        capacity: args.cache_capacity,
        ..CacheConfig::default()
    }));
    let session = BatchSession::new(request.sigma, request.schema, request.config)
        .with_cache(Arc::clone(&cache))
        .with_threads(args.threads);

    let start = Instant::now();
    let mut last = None;
    for run in 0..args.repeat {
        let outcome = session.run(&request.pairs);
        if run == 0 && !args.quiet {
            for (req, verdict) in request.pairs.iter().zip(outcome.verdicts.iter()) {
                let EquivRequest { sem, q1, q2 } = req;
                println!("[{sem}] {q1}  ≡?  {q2}  →  {}", verdict_str(verdict));
            }
        }
        last = Some(outcome);
    }
    let total = start.elapsed();
    let outcome = last.expect("repeat >= 1");
    let s = outcome.stats;
    println!(
        "batch: {} pairs ({} equivalent, {} not, {} unknown) on {} thread(s)",
        s.pairs, s.equivalent, s.not_equivalent, s.unknown, s.threads
    );
    let c = cache.stats();
    println!(
        "cache: {} hits, {} misses, {} evictions, {} entries resident",
        c.hits, c.misses, c.evictions, c.entries
    );
    println!(
        "timing: last run {:?}, {} run(s) total {:?} ({:.1} pairs/s overall)",
        s.wall,
        args.repeat,
        total,
        (s.pairs * args.repeat) as f64 / total.as_secs_f64().max(f64::EPSILON)
    );
    ExitCode::SUCCESS
}
