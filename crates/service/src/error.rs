//! The unified error taxonomy of the serving layer.
//!
//! Every failure a [`crate::Solver`] can surface is one of the variants
//! here, regardless of which crate it originated in: the per-crate error
//! types ([`ChaseError`], [`CnbError`], [`crate::RequestParseError`], the
//! parser errors of `eqsql-cq`/`eqsql-deps`) convert losslessly at the
//! boundary. Callers branch on *kind*, not provenance:
//!
//! * [`Error::Parse`] — an input (query, dependency, request file) failed
//!   to parse;
//! * [`Error::BudgetExhausted`] / [`Error::QueryTooLarge`] /
//!   [`Error::PlanTooLarge`] — a resource budget ran out, so the decision
//!   procedure is inconclusive (the paper's results hold "whenever
//!   set-chase terminates");
//! * [`Error::EgdFailure`] — an egd equated two distinct constants where
//!   failure is not itself a verdict (an unrepairable database instance;
//!   for *query* chases a failed chase means the query is unsatisfiable
//!   under Σ and flows into verdicts, never into this error);
//! * [`Error::UnsupportedSemantics`] — the requested decision procedure
//!   is not defined under the requested semantics (e.g. Chandra–Merlin
//!   containment under bag semantics, which is a long-standing open
//!   problem reached through `Request::BagContained` instead);
//! * [`Error::DeadlineExceeded`] / [`Error::Cancelled`] — the run was
//!   abandoned (wall-clock deadline, cancellation token). **Transient**:
//!   unlike `BudgetExhausted`, these say nothing about the input and are
//!   never cached — retrying the identical request may succeed;
//! * [`Error::Shed`] — the request was turned away at admission by a
//!   saturated batch queue; no work was done on it;
//! * [`Error::Internal`] — the decision panicked and was isolated; a
//!   defect report, never a statement about the input.

use eqsql_chase::ChaseError;
use eqsql_core::CnbError;
use eqsql_relalg::Semantics;
use std::fmt;

/// A serving-layer failure. See the module docs for the taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// An input failed to parse.
    Parse {
        /// 1-based line in the originating request file, `0` when the
        /// input was not line-addressed (an API-level query string).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The chase step budget ran out — Σ may not be weakly acyclic, or
    /// the budget is too small for this input.
    BudgetExhausted {
        /// Steps taken before giving up.
        steps: usize,
    },
    /// A chased query grew past the atom budget.
    QueryTooLarge {
        /// Number of atoms reached.
        atoms: usize,
    },
    /// A C&B universal plan is too large to backchase.
    PlanTooLarge {
        /// Universal-plan atom count.
        atoms: usize,
    },
    /// An egd equated two distinct constants while repairing a database
    /// instance: the instance admits no model of Σ.
    EgdFailure {
        /// The operation that hit the failure (e.g. `"chase-instance"`).
        operation: &'static str,
    },
    /// The decision procedure named by `operation` is not defined under
    /// `sem`.
    UnsupportedSemantics {
        /// The requested operation.
        operation: &'static str,
        /// The semantics it was requested under.
        sem: Semantics,
    },
    /// The request's wall-clock deadline passed before the decision
    /// finished. Transient — never cached; the identical request may
    /// succeed on retry.
    DeadlineExceeded {
        /// Chase steps taken before the deadline was observed.
        steps: usize,
    },
    /// The request's cancellation token was set before the decision
    /// finished. Transient — never cached.
    Cancelled {
        /// Chase steps taken before cancellation was observed.
        steps: usize,
    },
    /// The request was shed at admission: the batch's bounded queue was
    /// at capacity and the shed policy turned this request away before
    /// any work was done on it.
    Shed {
        /// The admission queue's capacity at the time.
        capacity: usize,
    },
    /// The decision panicked; the panic was isolated to this verdict and
    /// the rest of the batch completed. A defect report about the
    /// service, never a statement about the input.
    Internal {
        /// The panic message, best effort.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line: 0, message } => write!(f, "parse error: {message}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::BudgetExhausted { steps } => {
                write!(f, "chase did not terminate within {steps} steps")
            }
            Error::QueryTooLarge { atoms } => {
                write!(f, "chased query grew past {atoms} atoms")
            }
            Error::PlanTooLarge { atoms } => {
                write!(f, "universal plan has {atoms} atoms; backchase would not finish")
            }
            Error::EgdFailure { operation } => {
                write!(f, "{operation}: egd equated two distinct constants")
            }
            Error::UnsupportedSemantics { operation, sem } => {
                write!(f, "{operation} is not defined under {sem} semantics")
            }
            Error::DeadlineExceeded { steps } => {
                write!(f, "deadline exceeded after {steps} chase steps")
            }
            Error::Cancelled { steps } => write!(f, "cancelled after {steps} chase steps"),
            Error::Shed { capacity } => {
                write!(f, "shed at admission: queue at capacity {capacity}")
            }
            Error::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// A whole-input parse error (no line number).
    pub fn parse(message: impl Into<String>) -> Error {
        Error::Parse { line: 0, message: message.into() }
    }

    /// An [`Error::Internal`] defect report.
    pub fn internal(message: impl Into<String>) -> Error {
        Error::Internal { message: message.into() }
    }

    /// Is this a transient outcome of one particular run (deadline,
    /// cancellation, shedding, an isolated panic) rather than a stable
    /// fact about the request? Transient errors are never cached and may
    /// clear on retry.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::DeadlineExceeded { .. }
                | Error::Cancelled { .. }
                | Error::Shed { .. }
                | Error::Internal { .. }
        )
    }

    /// Stable `(outcome, terminal)` labels of this error, as used by the
    /// `event=request …` trace lines and the `eqsql_net` wire protocol's
    /// verdict lines. The terminal separates "decided negatively"
    /// (`error`) from the transient ways a request dies (`deadline`,
    /// `cancelled`, `shed`, `panic`).
    pub fn labels(&self) -> (&'static str, &'static str) {
        match self {
            Error::Parse { .. } => ("parse-error", "error"),
            Error::BudgetExhausted { .. } => ("budget-exhausted", "error"),
            Error::QueryTooLarge { .. } => ("query-too-large", "error"),
            Error::PlanTooLarge { .. } => ("plan-too-large", "error"),
            Error::EgdFailure { .. } => ("egd-failure", "error"),
            Error::UnsupportedSemantics { .. } => ("unsupported-semantics", "error"),
            Error::DeadlineExceeded { .. } => ("deadline-exceeded", "deadline"),
            Error::Cancelled { .. } => ("cancelled", "cancelled"),
            Error::Shed { .. } => ("shed", "shed"),
            Error::Internal { .. } => ("internal", "panic"),
        }
    }

    /// The underlying [`ChaseError`], for callers (the legacy
    /// `EquivOutcome::Unknown` surface) that still speak the chase
    /// crate's vocabulary. `None` for the variants with no chase-level
    /// counterpart.
    pub fn as_chase_error(&self) -> Option<ChaseError> {
        match self {
            Error::BudgetExhausted { steps } => Some(ChaseError::BudgetExhausted { steps: *steps }),
            Error::QueryTooLarge { atoms } => Some(ChaseError::QueryTooLarge { atoms: *atoms }),
            Error::DeadlineExceeded { steps } => {
                Some(ChaseError::DeadlineExceeded { steps: *steps })
            }
            Error::Cancelled { steps } => Some(ChaseError::Cancelled { steps: *steps }),
            _ => None,
        }
    }
}

impl From<ChaseError> for Error {
    fn from(e: ChaseError) -> Error {
        match e {
            ChaseError::BudgetExhausted { steps } => Error::BudgetExhausted { steps },
            ChaseError::QueryTooLarge { atoms } => Error::QueryTooLarge { atoms },
            ChaseError::DeadlineExceeded { steps } => Error::DeadlineExceeded { steps },
            ChaseError::Cancelled { steps } => Error::Cancelled { steps },
        }
    }
}

impl From<CnbError> for Error {
    fn from(e: CnbError) -> Error {
        match e {
            CnbError::Chase(e) => e.into(),
            CnbError::PlanTooLarge { atoms } => Error::PlanTooLarge { atoms },
        }
    }
}

impl From<crate::request::RequestParseError> for Error {
    fn from(e: crate::request::RequestParseError) -> Error {
        Error::Parse { line: e.line, message: e.message }
    }
}

impl From<eqsql_cq::ParseError> for Error {
    fn from(e: eqsql_cq::ParseError) -> Error {
        Error::parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chase_errors_map_onto_the_taxonomy() {
        assert_eq!(
            Error::from(ChaseError::BudgetExhausted { steps: 7 }),
            Error::BudgetExhausted { steps: 7 }
        );
        assert_eq!(
            Error::from(ChaseError::QueryTooLarge { atoms: 9 }),
            Error::QueryTooLarge { atoms: 9 }
        );
        assert_eq!(
            Error::from(CnbError::PlanTooLarge { atoms: 33 }),
            Error::PlanTooLarge { atoms: 33 }
        );
        assert_eq!(
            Error::from(CnbError::Chase(ChaseError::BudgetExhausted { steps: 3 })),
            Error::BudgetExhausted { steps: 3 }
        );
    }

    #[test]
    fn round_trip_to_chase_error() {
        let e = Error::BudgetExhausted { steps: 5 };
        assert_eq!(e.as_chase_error(), Some(ChaseError::BudgetExhausted { steps: 5 }));
        assert_eq!(Error::parse("nope").as_chase_error(), None);
        assert_eq!(
            Error::UnsupportedSemantics { operation: "containment", sem: Semantics::Bag }
                .as_chase_error(),
            None
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(Error::parse("bad token").to_string().contains("bad token"));
        assert!(Error::Parse { line: 4, message: "x".into() }.to_string().contains("line 4"));
        assert!(Error::EgdFailure { operation: "chase-instance" }
            .to_string()
            .contains("chase-instance"));
        assert!(Error::UnsupportedSemantics { operation: "containment", sem: Semantics::Bag }
            .to_string()
            .contains("B semantics"));
    }
}
