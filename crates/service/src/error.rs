//! The unified error taxonomy of the serving layer.
//!
//! Every failure a [`crate::Solver`] can surface is one of the variants
//! here, regardless of which crate it originated in: the per-crate error
//! types ([`ChaseError`], [`CnbError`], [`crate::RequestParseError`], the
//! parser errors of `eqsql-cq`/`eqsql-deps`) convert losslessly at the
//! boundary. Callers branch on *kind*, not provenance:
//!
//! * [`Error::Parse`] — an input (query, dependency, request file) failed
//!   to parse;
//! * [`Error::BudgetExhausted`] / [`Error::QueryTooLarge`] /
//!   [`Error::PlanTooLarge`] — a resource budget ran out, so the decision
//!   procedure is inconclusive (the paper's results hold "whenever
//!   set-chase terminates");
//! * [`Error::EgdFailure`] — an egd equated two distinct constants where
//!   failure is not itself a verdict (an unrepairable database instance;
//!   for *query* chases a failed chase means the query is unsatisfiable
//!   under Σ and flows into verdicts, never into this error);
//! * [`Error::UnsupportedSemantics`] — the requested decision procedure
//!   is not defined under the requested semantics (e.g. Chandra–Merlin
//!   containment under bag semantics, which is a long-standing open
//!   problem reached through `Request::BagContained` instead).

use eqsql_chase::ChaseError;
use eqsql_core::CnbError;
use eqsql_relalg::Semantics;
use std::fmt;

/// A serving-layer failure. See the module docs for the taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// An input failed to parse.
    Parse {
        /// 1-based line in the originating request file, `0` when the
        /// input was not line-addressed (an API-level query string).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The chase step budget ran out — Σ may not be weakly acyclic, or
    /// the budget is too small for this input.
    BudgetExhausted {
        /// Steps taken before giving up.
        steps: usize,
    },
    /// A chased query grew past the atom budget.
    QueryTooLarge {
        /// Number of atoms reached.
        atoms: usize,
    },
    /// A C&B universal plan is too large to backchase.
    PlanTooLarge {
        /// Universal-plan atom count.
        atoms: usize,
    },
    /// An egd equated two distinct constants while repairing a database
    /// instance: the instance admits no model of Σ.
    EgdFailure {
        /// The operation that hit the failure (e.g. `"chase-instance"`).
        operation: &'static str,
    },
    /// The decision procedure named by `operation` is not defined under
    /// `sem`.
    UnsupportedSemantics {
        /// The requested operation.
        operation: &'static str,
        /// The semantics it was requested under.
        sem: Semantics,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line: 0, message } => write!(f, "parse error: {message}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::BudgetExhausted { steps } => {
                write!(f, "chase did not terminate within {steps} steps")
            }
            Error::QueryTooLarge { atoms } => {
                write!(f, "chased query grew past {atoms} atoms")
            }
            Error::PlanTooLarge { atoms } => {
                write!(f, "universal plan has {atoms} atoms; backchase would not finish")
            }
            Error::EgdFailure { operation } => {
                write!(f, "{operation}: egd equated two distinct constants")
            }
            Error::UnsupportedSemantics { operation, sem } => {
                write!(f, "{operation} is not defined under {sem} semantics")
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// A whole-input parse error (no line number).
    pub fn parse(message: impl Into<String>) -> Error {
        Error::Parse { line: 0, message: message.into() }
    }

    /// The underlying [`ChaseError`], for callers (the legacy
    /// `EquivOutcome::Unknown` surface) that still speak the chase
    /// crate's vocabulary. `None` for the variants with no chase-level
    /// counterpart.
    pub fn as_chase_error(&self) -> Option<ChaseError> {
        match self {
            Error::BudgetExhausted { steps } => Some(ChaseError::BudgetExhausted { steps: *steps }),
            Error::QueryTooLarge { atoms } => Some(ChaseError::QueryTooLarge { atoms: *atoms }),
            _ => None,
        }
    }
}

impl From<ChaseError> for Error {
    fn from(e: ChaseError) -> Error {
        match e {
            ChaseError::BudgetExhausted { steps } => Error::BudgetExhausted { steps },
            ChaseError::QueryTooLarge { atoms } => Error::QueryTooLarge { atoms },
        }
    }
}

impl From<CnbError> for Error {
    fn from(e: CnbError) -> Error {
        match e {
            CnbError::Chase(e) => e.into(),
            CnbError::PlanTooLarge { atoms } => Error::PlanTooLarge { atoms },
        }
    }
}

impl From<crate::request::RequestParseError> for Error {
    fn from(e: crate::request::RequestParseError) -> Error {
        Error::Parse { line: e.line, message: e.message }
    }
}

impl From<eqsql_cq::ParseError> for Error {
    fn from(e: eqsql_cq::ParseError) -> Error {
        Error::parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chase_errors_map_onto_the_taxonomy() {
        assert_eq!(
            Error::from(ChaseError::BudgetExhausted { steps: 7 }),
            Error::BudgetExhausted { steps: 7 }
        );
        assert_eq!(
            Error::from(ChaseError::QueryTooLarge { atoms: 9 }),
            Error::QueryTooLarge { atoms: 9 }
        );
        assert_eq!(
            Error::from(CnbError::PlanTooLarge { atoms: 33 }),
            Error::PlanTooLarge { atoms: 33 }
        );
        assert_eq!(
            Error::from(CnbError::Chase(ChaseError::BudgetExhausted { steps: 3 })),
            Error::BudgetExhausted { steps: 3 }
        );
    }

    #[test]
    fn round_trip_to_chase_error() {
        let e = Error::BudgetExhausted { steps: 5 };
        assert_eq!(e.as_chase_error(), Some(ChaseError::BudgetExhausted { steps: 5 }));
        assert_eq!(Error::parse("nope").as_chase_error(), None);
        assert_eq!(
            Error::UnsupportedSemantics { operation: "containment", sem: Semantics::Bag }
                .as_chase_error(),
            None
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(Error::parse("bad token").to_string().contains("bad token"));
        assert!(Error::Parse { line: 4, message: "x".into() }.to_string().contains("line 4"));
        assert!(Error::EgdFailure { operation: "chase-instance" }
            .to_string()
            .contains("chase-instance"));
        assert!(Error::UnsupportedSemantics { operation: "containment", sem: Semantics::Bag }
            .to_string()
            .contains("B semantics"));
    }
}
