//! Machine-checkable evidence carried by [`crate::Verdict`]s.
//!
//! A decision procedure's answer is only as trustworthy as the search that
//! produced it; the Solver therefore attaches, to every verdict, the
//! *certificate* the paper's theorems say must exist:
//!
//! * equivalence under set semantics — containment mappings in **both**
//!   directions between the sound-chased queries (Theorem 2.2 reduces
//!   `≡_{Σ,S}` to `≡_S` of the terminals, which is Chandra–Merlin \[2\]);
//! * equivalence under bag / bag-set semantics — the witnessing
//!   **isomorphism bijection** between the normalized terminals
//!   (Theorems 6.1/6.2 via Theorems 2.1/4.2);
//! * non-equivalence — where the (sound, incomplete) search finds one, a
//!   **separating database** `D ⊨ Σ` on which the answers differ;
//! * containment — the witnessing containment mapping; bag containment —
//!   the multiset-onto mapping of Appendix D;
//! * non-minimality — the identified-and-reduced query of Definition 3.1.
//!
//! Each certificate type has a `verify` method that *replays* the evidence
//! against the original inputs — applying the homomorphism atom by atom,
//! re-evaluating both queries on the counterexample instance, re-checking
//! `D ⊨ Σ` — without re-running any search. The randomized Solver suite
//! calls these on every verdict it draws, which is what keeps the evidence
//! real rather than decorative.

use eqsql_cq::{is_containment_mapping, is_isomorphism, CqQuery, Subst, Var};
use eqsql_deps::satisfaction::{db_satisfies, db_satisfies_all};
use eqsql_deps::{Dependency, DependencySet};
use eqsql_relalg::eval::eval;
use eqsql_relalg::{Database, Schema, Semantics};
use std::collections::HashMap;
use std::fmt;

/// A certificate that failed to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateError {
    /// What the replay found wrong.
    pub reason: String,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate replay failed: {}", self.reason)
    }
}

impl std::error::Error for CertificateError {}

fn fail(reason: impl Into<String>) -> Result<(), CertificateError> {
    Err(CertificateError { reason: reason.into() })
}

/// Evidence that two queries are Σ-equivalent, expressed over their
/// sound-chase terminals.
#[derive(Clone, Debug)]
pub enum EquivalenceCertificate {
    /// Both chases failed: both queries are unsatisfiable under Σ (empty
    /// on every `D ⊨ Σ`), hence trivially equivalent.
    BothUnsatisfiable,
    /// Set semantics: Chandra–Merlin containment mappings both ways
    /// between the chased queries.
    Set {
        /// `(Q1)_{Σ,S}`.
        chased1: CqQuery,
        /// `(Q2)_{Σ,S}`.
        chased2: CqQuery,
        /// Containment mapping from `chased2` into `chased1`, witnessing
        /// `chased1 ⊑_S chased2`.
        forward: Subst,
        /// Containment mapping from `chased1` into `chased2`, witnessing
        /// `chased2 ⊑_S chased1`.
        backward: Subst,
    },
    /// Bag or bag-set semantics: the witnessing isomorphism between the
    /// normalized terminals (set-valued duplicates dropped under bag
    /// semantics, all duplicates under bag-set — Theorems 4.2 / 2.1(2)).
    Iso {
        /// The normalized terminal of `Q1`.
        normal1: CqQuery,
        /// The normalized terminal of `Q2`.
        normal2: CqQuery,
        /// Bijection from `normal1`'s variables onto `normal2`'s.
        bijection: HashMap<Var, Var>,
    },
}

impl EquivalenceCertificate {
    /// Replays the certificate: every homomorphism is re-checked atom by
    /// atom against the queries it claims to relate. Does **not** re-run
    /// the chase — the chased queries are part of the certificate, and
    /// their relationship to the inputs is the chase engine's own
    /// (differentially tested) contract.
    pub fn verify(&self) -> Result<(), CertificateError> {
        match self {
            EquivalenceCertificate::BothUnsatisfiable => Ok(()),
            EquivalenceCertificate::Set { chased1, chased2, forward, backward } => {
                if !is_containment_mapping(chased2, chased1, forward) {
                    return fail("forward witness is not a containment mapping (Q2c -> Q1c)");
                }
                if !is_containment_mapping(chased1, chased2, backward) {
                    return fail("backward witness is not a containment mapping (Q1c -> Q2c)");
                }
                Ok(())
            }
            EquivalenceCertificate::Iso { normal1, normal2, bijection } => {
                if !is_isomorphism(normal1, normal2, bijection) {
                    return fail("bijection does not carry normal1 onto normal2");
                }
                Ok(())
            }
        }
    }
}

/// A separating database: `D ⊨ Σ` on which the two queries answer
/// differently under the recorded semantics.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The witness instance.
    pub db: Database,
    /// The semantics under which the answers differ.
    pub sem: Semantics,
}

impl Counterexample {
    /// Replays the counterexample: `db ⊨ Σ`, `db` is admissible for the
    /// semantics (set-valued where required), and evaluating `q1` and `q2`
    /// on it really yields different answers.
    pub fn verify(
        &self,
        q1: &CqQuery,
        q2: &CqQuery,
        sigma: &DependencySet,
        schema: &Schema,
    ) -> Result<(), CertificateError> {
        if !db_satisfies_all(&self.db, sigma) {
            return fail("witness database does not satisfy Σ");
        }
        let admissible = match self.sem {
            Semantics::Set | Semantics::BagSet => self.db.is_set_valued(),
            Semantics::Bag => self.db.are_set_valued(&schema.set_valued_relations()),
        };
        if !admissible {
            return fail("witness database violates the schema's set-valuedness flags");
        }
        match (eval(q1, &self.db, self.sem), eval(q2, &self.db, self.sem)) {
            (Ok(a), Ok(b)) if a != b => Ok(()),
            (Ok(_), Ok(_)) => fail("queries agree on the witness database"),
            _ => fail("queries could not be evaluated on the witness database"),
        }
    }

    /// Replays a **set-containment** gap: `db ⊨ Σ` and some answer of `q1`
    /// on `db` (set semantics) is not an answer of `q2` — so `q1 ⋢_{Σ,S}
    /// q2`. Mere inequality of the answers is *not* enough here (extra
    /// `q2` answers would not contradict containment).
    pub fn verify_set_gap(
        &self,
        q1: &CqQuery,
        q2: &CqQuery,
        sigma: &DependencySet,
    ) -> Result<(), CertificateError> {
        if !db_satisfies_all(&self.db, sigma) {
            return fail("witness database does not satisfy Σ");
        }
        match (eval(q1, &self.db, Semantics::Set), eval(q2, &self.db, Semantics::Set)) {
            (Ok(a), Ok(b)) => {
                if a.iter().any(|(t, _)| b.multiplicity(t) == 0) {
                    Ok(())
                } else {
                    fail("every q1 answer on the witness is also a q2 answer")
                }
            }
            _ => fail("queries could not be evaluated on the witness database"),
        }
    }

    /// Replays a **bag-containment** gap: `db ⊨ Σ`, `db` keeps the
    /// schema's set-valued relations set-valued, and some tuple's
    /// `q1`-multiplicity on `db` exceeds its `q2`-multiplicity — so
    /// `q1 ⋢_{Σ,B} q2`.
    pub fn verify_bag_gap(
        &self,
        q1: &CqQuery,
        q2: &CqQuery,
        sigma: &DependencySet,
        schema: &Schema,
    ) -> Result<(), CertificateError> {
        if !db_satisfies_all(&self.db, sigma) {
            return fail("witness database does not satisfy Σ");
        }
        if !self.db.are_set_valued(&schema.set_valued_relations()) {
            return fail("witness database violates the schema's set-valuedness flags");
        }
        let a = eqsql_relalg::eval::eval_bag(q1, &self.db);
        let b = eqsql_relalg::eval::eval_bag(q2, &self.db);
        if a.iter().any(|(t, m)| b.multiplicity(t) < m) {
            Ok(())
        } else {
            fail("no tuple has a q1-multiplicity exceeding its q2-multiplicity")
        }
    }
}

/// A counterexample to `Σ ⊨ σ`: a concrete instance that satisfies every
/// dependency of Σ but violates σ. Carried on [`crate::Answer::NotImplied`]
/// so the implication verb has a replayable certificate like every other
/// verb family — the instance is the canonical database of the chased
/// premise (the chase terminal satisfies Σ; the failed conclusion check
/// means σ's conclusion has no extension over it).
#[derive(Clone, Debug)]
pub struct ImplicationCounterexample {
    /// The witness instance.
    pub db: Database,
}

impl ImplicationCounterexample {
    /// Replays the counterexample: `db ⊨ Σ` and `db ⊭ dep`, checked by
    /// direct dependency evaluation on the instance — no chase is re-run.
    pub fn verify(&self, dep: &Dependency, sigma: &DependencySet) -> Result<(), CertificateError> {
        if !db_satisfies_all(&self.db, sigma) {
            return fail("implication witness does not satisfy Σ");
        }
        if db_satisfies(&self.db, dep) {
            return fail("implication witness satisfies the dependency it should violate");
        }
        Ok(())
    }
}

/// Evidence for a set-containment verdict `q1 ⊑_{Σ,S} q2`.
#[derive(Clone, Debug)]
pub enum ContainmentCertificate {
    /// `q1`'s chase failed: it is empty under Σ, contained in anything.
    EmptyLeft,
    /// The Chandra–Merlin witness: a containment mapping from `q2` into
    /// `(q1)_{Σ,S}` (chasing `q1` preserves its answers on `D ⊨ Σ`).
    Mapping {
        /// `(Q1)_{Σ,S}`.
        chased1: CqQuery,
        /// The witnessing containment mapping `q2 -> chased1`.
        witness: Subst,
    },
}

impl ContainmentCertificate {
    /// Replays the witness mapping against `q2` and the chased `q1`.
    pub fn verify(&self, q2: &CqQuery) -> Result<(), CertificateError> {
        match self {
            ContainmentCertificate::EmptyLeft => Ok(()),
            ContainmentCertificate::Mapping { chased1, witness } => {
                if !is_containment_mapping(q2, chased1, witness) {
                    return fail("witness is not a containment mapping q2 -> (q1)_{Σ,S}");
                }
                Ok(())
            }
        }
    }
}

/// Evidence for a bag-containment verdict (the three-valued procedure of
/// Theorem 4.2 / Appendix D).
#[derive(Clone, Debug)]
pub enum BagContainmentCertificate {
    /// `q1`'s sound bag chase failed: empty under Σ, contained in
    /// anything.
    EmptyLeft,
    /// The sufficient condition: a containment mapping from the chased
    /// `q2` onto the chased `q1` covering its body as a multiset.
    OntoMapping {
        /// `(Q1)_{Σ,B}`.
        chased1: CqQuery,
        /// `(Q2)_{Σ,B}`.
        chased2: CqQuery,
        /// The multiset-onto witness `chased2 -> chased1`.
        witness: Subst,
    },
}

impl BagContainmentCertificate {
    /// Replays the multiset-onto property of the witness.
    pub fn verify(&self) -> Result<(), CertificateError> {
        match self {
            BagContainmentCertificate::EmptyLeft => Ok(()),
            BagContainmentCertificate::OntoMapping { chased1, chased2, witness } => {
                if !eqsql_core::bag_containment::is_multiset_onto_mapping(chased1, chased2, witness)
                {
                    return fail("witness is not a multiset-onto containment mapping");
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;

    #[test]
    fn tampered_set_certificate_is_rejected() {
        let q1 = parse_query("q(X) :- p(X,Y)").unwrap();
        let q2 = parse_query("q(A) :- p(A,B)").unwrap();
        let forward = eqsql_cq::containment_mapping(&q2, &q1).unwrap();
        let backward = eqsql_cq::containment_mapping(&q1, &q2).unwrap();
        let good = EquivalenceCertificate::Set {
            chased1: q1.clone(),
            chased2: q2.clone(),
            forward,
            backward: backward.clone(),
        };
        assert!(good.verify().is_ok());
        // Swap the directions: the replay must notice.
        let bad = EquivalenceCertificate::Set {
            chased1: q1,
            chased2: q2,
            forward: backward.clone(),
            backward,
        };
        assert!(bad.verify().is_err());
    }

    #[test]
    fn implication_counterexample_replays_both_conditions() {
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let dep = parse_dependencies("b(X) -> a(X).").unwrap().iter().next().unwrap().clone();
        // b(1) alone satisfies Σ (no a-tuple to fire on) but violates σ.
        let mut db = Database::new();
        db.insert("b", eqsql_relalg::Tuple::ints([1]), 1);
        let cex = ImplicationCounterexample { db };
        assert!(cex.verify(&dep, &sigma).is_ok());
        // a(1) alone violates Σ itself: rejected as a witness.
        let mut bad = Database::new();
        bad.insert("a", eqsql_relalg::Tuple::ints([1]), 1);
        assert!(ImplicationCounterexample { db: bad }.verify(&dep, &sigma).is_err());
        // {a(1), b(1)} satisfies both Σ and σ: not a counterexample.
        let mut sat = Database::new();
        sat.insert("a", eqsql_relalg::Tuple::ints([1]), 1);
        sat.insert("b", eqsql_relalg::Tuple::ints([1]), 1);
        assert!(ImplicationCounterexample { db: sat }.verify(&dep, &sigma).is_err());
    }

    #[test]
    fn counterexample_must_satisfy_sigma_and_separate() {
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let qa = parse_query("q(X) :- a(X)").unwrap();
        let qab = parse_query("q(X) :- b(X)").unwrap();
        // b(1) alone satisfies Σ and separates: qa empty, qab = {1}.
        let mut db = Database::new();
        db.insert("b", eqsql_relalg::Tuple::ints([1]), 1);
        let cex = Counterexample { db, sem: Semantics::Set };
        assert!(cex.verify(&qa, &qab, &sigma, &schema).is_ok());
        // a(1) alone violates Σ: rejected even though the answers differ.
        let mut bad = Database::new();
        bad.insert("a", eqsql_relalg::Tuple::ints([1]), 1);
        let cex = Counterexample { db: bad, sem: Semantics::Set };
        assert!(cex.verify(&qa, &qab, &sigma, &schema).is_err());
    }
}
