//! Disk persistence for the chase-result cache: an append-only checksummed
//! record log, periodic compacted snapshots, and corruption-tolerant
//! startup recovery.
//!
//! ## Why a log is enough
//!
//! Chase results are **immutable terminal objects**: once `(Q, Σ, budgets)`
//! has chased to termination (or to a deterministic budget error), that
//! outcome never changes. There are no in-place updates, so no WAL
//! discipline, no page management, no fsync ordering protocol — an
//! append-only log of self-validating records plus an occasional compacted
//! snapshot covers every durability need the cache has. Losing the tail of
//! the log is *always safe*: the worst case is re-paying a chase.
//!
//! ## On-disk format
//!
//! Both files (`log.eqc`, `snapshot.eqc`) share one layout:
//!
//! ```text
//! file   := magic[8] version[u32 le] record*
//! record := body_len[u32 le] checksum[u64 le, FNV-1a over body] body
//! ```
//!
//! A record body serializes the full cache entry **by structure, never by
//! hash**: the context key material (semantics, budgets, engine mode,
//! sorted set-valued relation names, the regularized Σ as tgd/egd trees),
//! the representative query, and the outcome — a terminal chase (terminal
//! query, failure flag, step count, accumulated renaming) or a cacheable
//! [`ChaseError`] via its stable wire code. Symbols are stored as name
//! strings and re-interned on decode (interner ids are process-local);
//! substitutions are stored in sorted order, so encoding is
//! byte-deterministic and fixtures are reproducible. Fingerprints are
//! **recomputed** from the decoded material on load — a stored hash could
//! silently diverge from the live hashing recipe, a recomputed one cannot.
//!
//! ## Recovery guarantees
//!
//! Startup recovery never fails on hostile *content*: it validates every
//! record (length bounds, checksum, full structural decode) and stops at
//! the first invalid one, keeping exactly the valid prefix. A torn tail is
//! truncated from the log (snapshots are never rewritten in place — an
//! invalid snapshot tail is simply not indexed); a file with a bad header
//! is discarded wholesale. Each corruption event increments the
//! `discarded` counter ([`PersistStats`]). Because every admitted record
//! re-enters through the same confirm path as a live probe — exact
//! [`ChaseContext::same`] equality plus `find_isomorphism` — recovery can
//! *never* admit an entry a fresh solver would decide differently: a
//! forged-but-checksummed record either fails to decode, fails to match,
//! or is a genuine `(Q, Σ)` terminal.
//!
//! Only genuine I/O environment errors (an uncreatable directory, an
//! unopenable file) surface as `Err` from
//! [`ChaseCache::open`](crate::ChaseCache::open).
//!
//! ## Single writer, enforced
//!
//! The append-only discipline assumes **one writer per directory**: two
//! processes appending to one `log.eqc` would interleave frames and each
//! would truncate the other's tail at the next recovery. A writable open
//! therefore takes a `writer.lock` file in the cache dir — created with
//! `O_EXCL` and holding the owner's pid — and releases it on drop. A
//! second writable open (say, a double-started server over the same
//! `--cache-dir`) fails fast with an I/O error naming the live owner. A
//! lock whose pid no longer runs is *stale* (the owner crashed before
//! its `Drop`): it is silently reclaimed, because the log format already
//! tolerates whatever torn tail the dead writer left. Read-only opens
//! ([`PersistConfig::read_only`] — replicas over a shared warm store)
//! neither take nor respect the lock; they never write, so they are safe
//! alongside any writer.

use super::{lock_recovering, StoredChase};
use crate::canon::{cache_key, query_fingerprint, ChaseContext};
use eqsql_chase::ChaseError;
use eqsql_cq::{find_isomorphism, Atom, CqQuery, Subst, Term, Value, Var, R64};
use eqsql_deps::{Dependency, DependencySet, Egd, Tgd};
use eqsql_relalg::Semantics;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic prefix of the append-only record log (`log.eqc`).
pub const LOG_MAGIC: [u8; 8] = *b"EQSQLOG1";
/// Magic prefix of the compacted snapshot (`snapshot.eqc`).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EQSNAP01";
/// On-disk format version, bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;
/// Bytes of file header: magic plus little-endian version.
pub const FILE_HEADER_LEN: usize = 12;
/// Bytes of per-record framing: little-endian body length plus checksum.
pub const FRAME_HEADER_LEN: usize = 12;

const LOG_FILE: &str = "log.eqc";
const SNAPSHOT_FILE: &str = "snapshot.eqc";
/// Single-writer guard (see the module docs): created with `O_EXCL`,
/// holds the owning pid, removed on [`PersistTier`] drop.
const LOCK_FILE: &str = "writer.lock";

/// Distinct decoded Σs kept shared before the decode memo is reset
/// (mirrors the in-memory cache's Σ memo bound).
const SIGMA_MEMO_CAP: usize = 256;

/// FNV-1a over `bytes` — the per-record checksum. Not cryptographic: it
/// guards against torn writes and bit rot, while decode-level validation
/// and the cache's exact-match confirm path guard against everything else.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Configuration of the persistence tier, carried inside
/// [`super::CacheConfig::persist`].
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding `log.eqc` and `snapshot.eqc` (created if absent,
    /// unless read-only).
    pub dir: PathBuf,
    /// Compact a snapshot after this many appends since the last one;
    /// `0` disables snapshotting (the log grows unboundedly).
    pub snapshot_every: usize,
    /// Serve disk hits but never write: no appends, no snapshots, no
    /// recovery truncation. For read replicas over a shared warm store.
    pub read_only: bool,
    /// Deterministic write-fault injection (test hook), mirroring the
    /// engine's [`eqsql_chase::FaultPlan`] idiom.
    pub fault: Option<PersistFault>,
}

impl PersistConfig {
    /// A writable tier rooted at `dir` with default snapshot cadence.
    pub fn at(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig { dir: dir.into(), snapshot_every: 512, read_only: false, fault: None }
    }
}

/// Deterministic writer-death injection: on the `at_append`th append
/// (1-based) the tier writes only the first `keep_bytes` bytes of the
/// framed record and then goes permanently silent — exactly the disk state
/// a process killed mid-`write` leaves behind. The in-memory tier keeps
/// working; only durability stops, as it would for the dead writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PersistFault {
    /// 1-based index of the append at which the writer "dies".
    pub at_append: u64,
    /// Bytes of the framed record that make it to disk before death.
    pub keep_bytes: usize,
}

/// Point-in-time counters of the persistence tier, surfaced through
/// [`super::CacheStats::persist`] and `Solver::stats()`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Records admitted from the snapshot at startup.
    pub loaded: u64,
    /// Records admitted by replaying the log tail at startup.
    pub recovered: u64,
    /// Corruption events survived: invalid tails truncated or whole files
    /// with unreadable headers skipped (one count per event — everything
    /// past the first invalid byte is untrusted by design, so individual
    /// lost records are uncountable).
    pub discarded: u64,
    /// Snapshot compactions performed.
    pub snapshots: u64,
    /// Records appended to the log (complete, flushed writes only).
    pub appended: u64,
    /// Memory-tier misses answered from disk (also counted as cache hits).
    pub disk_hits: u64,
    /// I/O errors observed after open; the first one stops further writes.
    pub io_errors: u64,
}

/// One persisted cache entry, the unit of [`encode_record`] /
/// [`decode_record`]: the exact context key material, the regularized Σ it
/// renders from, the representative query, and the terminal outcome.
#[derive(Clone, Debug)]
pub struct PersistRecord {
    /// The context key. Its `sigma_text` must be the rendering of `sigma`
    /// (live cache entries satisfy this by construction; decode
    /// re-derives the text from the decoded structure).
    pub ctx: ChaseContext,
    /// The regularized Σ, stored structurally — text round-tripping
    /// through the parser is not injective for every constant shape.
    pub sigma: Arc<DependencySet>,
    /// The representative query the outcome is expressed over.
    pub representative: CqQuery,
    /// Terminal chase or cacheable terminal error.
    pub outcome: Result<PersistedChase, ChaseError>,
}

/// The serializable shape of a terminal chase result (the persisted half
/// of the cache's stored entry; the trace is diagnostics and is not
/// persisted, matching the in-memory tier).
#[derive(Clone, Debug)]
pub struct PersistedChase {
    /// Terminal query, over the representative's variables.
    pub query: CqQuery,
    /// Did an egd fail (query unsatisfiable under Σ)?
    pub failed: bool,
    /// Chase steps taken.
    pub steps: usize,
    /// Accumulated renaming (input to assignment fixing).
    pub renaming: Subst,
}

/// A structural decode failure: byte offset reached and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Offset into the record body at which decoding stopped.
    pub offset: usize,
    /// Static description of the violated invariant.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid record at body offset {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeError {}

fn sem_tag(sem: Semantics) -> u8 {
    match sem {
        Semantics::Set => 0,
        Semantics::Bag => 1,
        Semantics::BagSet => 2,
    }
}

fn sem_from_tag(tag: u8) -> Option<Semantics> {
    match tag {
        0 => Some(Semantics::Set),
        1 => Some(Semantics::Bag),
        2 => Some(Semantics::BagSet),
        _ => None,
    }
}

// Term tags. Part of the on-disk format: never renumber.
const TERM_VAR: u8 = 0;
const TERM_INT: u8 = 1;
const TERM_REAL: u8 = 2;
const TERM_STR: u8 = 3;
const TERM_LABELED: u8 = 4;

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn u32v(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64v(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32v(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn term(&mut self, t: &Term) {
        match t {
            Term::Var(v) => {
                self.u8(TERM_VAR);
                self.str(v.name());
            }
            Term::Const(Value::Int(i)) => {
                self.u8(TERM_INT);
                self.u64v(*i as u64);
            }
            Term::Const(Value::Real(r)) => {
                self.u8(TERM_REAL);
                self.u64v(r.get().to_bits());
            }
            Term::Const(Value::Str(s)) => {
                self.u8(TERM_STR);
                self.str(s.as_str());
            }
            Term::Const(Value::Labeled(l)) => {
                self.u8(TERM_LABELED);
                self.u64v(*l);
            }
        }
    }

    fn terms(&mut self, ts: &[Term]) {
        self.u32v(ts.len() as u32);
        for t in ts {
            self.term(t);
        }
    }

    fn atom(&mut self, a: &Atom) {
        self.str(a.pred.name());
        self.terms(&a.args);
    }

    fn atoms(&mut self, atoms: &[Atom]) {
        self.u32v(atoms.len() as u32);
        for a in atoms {
            self.atom(a);
        }
    }

    fn query(&mut self, q: &CqQuery) {
        self.str(q.name.as_str());
        self.terms(&q.head);
        self.atoms(&q.body);
    }

    fn dependency(&mut self, d: &Dependency) {
        match d {
            Dependency::Tgd(t) => {
                self.u8(0);
                self.atoms(&t.lhs);
                self.atoms(&t.rhs);
            }
            Dependency::Egd(e) => {
                self.u8(1);
                self.atoms(&e.lhs);
                self.term(&e.eq.0);
                self.term(&e.eq.1);
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn fail<T>(&self, reason: &'static str) -> Result<T, DecodeError> {
        Err(DecodeError { offset: self.pos, reason })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return self.fail("truncated");
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32v(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64v(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32v()? as usize;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.fail("invalid utf-8"),
        }
    }

    fn term(&mut self) -> Result<Term, DecodeError> {
        match self.u8()? {
            TERM_VAR => Ok(Term::Var(Var::new(&self.str()?))),
            TERM_INT => Ok(Term::Const(Value::Int(self.u64v()? as i64))),
            TERM_REAL => {
                let bits = self.u64v()?;
                let f = f64::from_bits(bits);
                if f.is_nan() {
                    return self.fail("NaN real");
                }
                Ok(Term::Const(Value::Real(R64::new(f))))
            }
            TERM_STR => Ok(Term::Const(Value::str(&self.str()?))),
            TERM_LABELED => Ok(Term::Const(Value::Labeled(self.u64v()?))),
            _ => self.fail("unknown term tag"),
        }
    }

    fn terms(&mut self) -> Result<Vec<Term>, DecodeError> {
        let n = self.u32v()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.term()?);
        }
        Ok(out)
    }

    fn atom(&mut self) -> Result<Atom, DecodeError> {
        let pred = self.str()?;
        if pred.is_empty() {
            return self.fail("empty predicate name");
        }
        let args = self.terms()?;
        Ok(Atom::new(&pred, args))
    }

    fn atoms(&mut self) -> Result<Vec<Atom>, DecodeError> {
        let n = self.u32v()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.atom()?);
        }
        Ok(out)
    }

    fn query(&mut self) -> Result<CqQuery, DecodeError> {
        let name = self.str()?;
        if name.is_empty() {
            return self.fail("empty query name");
        }
        let head = self.terms()?;
        let body = self.atoms()?;
        Ok(CqQuery::new(&name, head, body))
    }

    fn dependency(&mut self) -> Result<Dependency, DecodeError> {
        match self.u8()? {
            0 => {
                let lhs = self.atoms()?;
                let rhs = self.atoms()?;
                Ok(Dependency::Tgd(Tgd::new(lhs, rhs)))
            }
            1 => {
                let lhs = self.atoms()?;
                let a = self.term()?;
                let b = self.term()?;
                Ok(Dependency::Egd(Egd::new(lhs, a, b)))
            }
            _ => self.fail("unknown dependency tag"),
        }
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return self.fail("trailing bytes");
        }
        Ok(())
    }
}

/// Serializes `record` to a body (unframed — see [`frame_record`]).
///
/// Byte-deterministic: substitutions are written in sorted order and every
/// other sequence preserves its (deterministic) structural order, so the
/// same record always yields the same bytes and committed fixtures are
/// reproducible.
///
/// # Panics
///
/// If the outcome is a transient (non-cacheable) error — the persistence
/// gate is the same [`ChaseError::is_cacheable`] line the in-memory tier
/// enforces, and callers must not cross it.
pub fn encode_record(record: &PersistRecord) -> Vec<u8> {
    debug_assert_eq!(
        record.ctx.sigma_text().as_ref(),
        record.sigma.to_string(),
        "PersistRecord: ctx.sigma_text must render record.sigma"
    );
    let mut e = Enc { buf: Vec::new() };
    let ctx = &record.ctx;
    e.u8(sem_tag(ctx.sem()));
    e.u8(ctx.delta_seeding() as u8);
    e.u64v(ctx.max_steps() as u64);
    e.u64v(ctx.max_atoms() as u64);
    e.u32v(ctx.set_valued().len() as u32);
    for name in ctx.set_valued() {
        e.str(name);
    }
    e.u32v(record.sigma.as_slice().len() as u32);
    for d in record.sigma.iter() {
        e.dependency(d);
    }
    e.query(&record.representative);
    match &record.outcome {
        Ok(chase) => {
            e.u8(0);
            e.query(&chase.query);
            e.u8(chase.failed as u8);
            e.u64v(chase.steps as u64);
            let pairs = chase.renaming.sorted_pairs();
            e.u32v(pairs.len() as u32);
            for (v, t) in pairs {
                e.str(v.name());
                e.term(&t);
            }
        }
        Err(err) => {
            let (code, magnitude) = err.wire().expect("only cacheable outcomes may be persisted");
            e.u8(code);
            e.u64v(magnitude);
        }
    }
    e.buf
}

/// Deserializes a record body, validating every structural invariant the
/// encoder maintains (tags, utf-8, sortedness of the set-valued list,
/// non-empty names, no trailing bytes). The context fingerprint is
/// recomputed from the decoded material, never read from disk.
pub fn decode_record(body: &[u8]) -> Result<PersistRecord, DecodeError> {
    let mut d = Dec { buf: body, pos: 0 };
    let sem = match sem_from_tag(d.u8()?) {
        Some(s) => s,
        None => return d.fail("unknown semantics tag"),
    };
    let delta_seeding = match d.u8()? {
        0 => false,
        1 => true,
        _ => return d.fail("invalid delta flag"),
    };
    let max_steps = d.u64v()? as usize;
    let max_atoms = d.u64v()? as usize;
    let n = d.u32v()? as usize;
    let mut set_valued: Vec<String> = Vec::new();
    for _ in 0..n {
        let name = d.str()?;
        if name.is_empty() {
            return d.fail("empty relation name");
        }
        if let Some(prev) = set_valued.last() {
            if *prev >= name {
                // Live contexts sort this list; an unsorted one could never
                // match a probe and marks the record as forged/corrupt.
                return d.fail("set-valued names not sorted");
            }
        }
        set_valued.push(name);
    }
    let n = d.u32v()? as usize;
    let mut deps = Vec::new();
    for _ in 0..n {
        deps.push(d.dependency()?);
    }
    let sigma = Arc::new(DependencySet::from_vec(deps));
    let representative = d.query()?;
    let outcome = match d.u8()? {
        0 => {
            let query = d.query()?;
            let failed = match d.u8()? {
                0 => false,
                1 => true,
                _ => return d.fail("invalid failure flag"),
            };
            let steps = d.u64v()? as usize;
            let n = d.u32v()? as usize;
            let mut pairs = Vec::new();
            for _ in 0..n {
                let name = d.str()?;
                if name.is_empty() {
                    return d.fail("empty variable name");
                }
                let term = d.term()?;
                pairs.push((Var::new(&name), term));
            }
            Ok(PersistedChase { query, failed, steps, renaming: Subst::from_pairs(pairs) })
        }
        code => {
            let magnitude = d.u64v()?;
            match ChaseError::from_wire(code, magnitude) {
                Some(err) => Err(err),
                None => return d.fail("unknown outcome tag"),
            }
        }
    };
    d.finish()?;
    let ctx = ChaseContext::from_parts(
        sem,
        sigma.to_string().into(),
        set_valued.into(),
        max_steps,
        max_atoms,
        delta_seeding,
    );
    Ok(PersistRecord { ctx, sigma, representative, outcome })
}

/// Frames a record body for appending: length, checksum, body.
pub fn frame_record(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// The 12-byte file header for the given magic.
pub fn file_header(magic: &[u8; 8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FILE_HEADER_LEN);
    out.extend_from_slice(magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out
}

/// The cache key a decoded record indexes under — recomputed from the
/// decoded material with the live hashing recipe.
pub fn record_key(record: &PersistRecord) -> u64 {
    cache_key(query_fingerprint(&record.representative), record.ctx.fingerprint())
}

/// Where an indexed record lives on disk.
#[derive(Clone, Copy, Debug)]
struct Loc {
    /// In the snapshot (`true`) or the log (`false`).
    snap: bool,
    /// Frame start offset.
    off: u64,
    /// Body length (frame length minus [`FRAME_HEADER_LEN`]).
    len: u32,
}

struct ScanOutcome {
    /// `(key, loc)` of every valid record, in file order.
    locs: Vec<(u64, Loc)>,
    /// Count of valid records.
    records: u64,
    /// End offset of the valid prefix.
    valid_end: u64,
    /// Was the file header readable?
    header_ok: bool,
    /// Were invalid bytes encountered (bad header on a non-empty file, or
    /// an invalid record tail)?
    corrupt: bool,
}

/// Validates `bytes` as a record file: checks the header, then walks
/// records validating length bounds, checksum and a full structural
/// decode, stopping at the first invalid byte. Never fails — corruption is
/// an expected input here.
fn scan_file(bytes: &[u8], magic: &[u8; 8], snap: bool) -> ScanOutcome {
    let header_ok = bytes.len() >= FILE_HEADER_LEN
        && bytes[..8] == *magic
        && bytes[8..FILE_HEADER_LEN] == FORMAT_VERSION.to_le_bytes();
    if !header_ok {
        return ScanOutcome {
            locs: Vec::new(),
            records: 0,
            valid_end: 0,
            header_ok,
            corrupt: !bytes.is_empty(),
        };
    }
    let mut locs = Vec::new();
    let mut pos = FILE_HEADER_LEN;
    let mut corrupt = false;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER_LEN {
            corrupt = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if bytes.len() - pos - FRAME_HEADER_LEN < len {
            corrupt = true;
            break;
        }
        let body = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
        if checksum(body) != sum {
            corrupt = true;
            break;
        }
        let Ok(record) = decode_record(body) else {
            corrupt = true;
            break;
        };
        locs.push((record_key(&record), Loc { snap, off: pos as u64, len: len as u32 }));
        pos += FRAME_HEADER_LEN + len;
    }
    ScanOutcome { records: locs.len() as u64, locs, valid_end: pos as u64, header_ok, corrupt }
}

/// A memory-tier miss answered from disk.
pub(crate) struct DiskHit {
    /// The decoded representative — what gets promoted into memory, so the
    /// promoted entry's outcome stays expressed over its own variables.
    pub(crate) representative: CqQuery,
    /// The decoded outcome, rebuilt into the in-memory stored shape.
    pub(crate) outcome: Result<Arc<StoredChase>, ChaseError>,
    /// The probe→representative bijection that confirmed the hit.
    pub(crate) map: HashMap<Var, Var>,
}

struct TierState {
    log: Option<File>,
    snap: Option<File>,
    index: HashMap<u64, Vec<Loc>>,
    /// Valid length of the log file (next append offset).
    log_len: u64,
    appends_since_snapshot: usize,
    /// Appends attempted (drives [`PersistFault`] triggering).
    appends_seen: u64,
    fault: Option<PersistFault>,
    /// Sticky write-failure flag: one failed write stops all further
    /// writes (the log tail past a failed write cannot be trusted), while
    /// reads and the memory tier continue unharmed.
    broken: bool,
    /// Rendered Σ → decoded Σ, so entries decoded from one store share one
    /// `Arc<DependencySet>` like live entries do.
    sigma_memo: HashMap<String, Arc<DependencySet>>,
}

/// The disk tier of [`super::ChaseCache`]: an in-memory key → location
/// index over the two record files, consulted on memory-tier misses.
/// Entries are decoded lazily on first probe and promoted into the memory
/// tier (without re-appending). All file I/O happens under one mutex —
/// the tier sits behind the sharded memory tier, so it only sees the
/// (rare) memory-miss traffic.
pub(crate) struct PersistTier {
    read_only: bool,
    snapshot_every: usize,
    snapshot_path: PathBuf,
    /// The held `writer.lock`, removed on drop. `None` for read-only
    /// tiers and the [`PersistTier::unavailable`] stub.
    lock_path: Option<PathBuf>,
    state: Mutex<TierState>,
    loaded: AtomicU64,
    recovered: AtomicU64,
    discarded: AtomicU64,
    snapshots: AtomicU64,
    appended: AtomicU64,
    disk_hits: AtomicU64,
    io_errors: AtomicU64,
}

impl Drop for PersistTier {
    fn drop(&mut self) {
        // Release the single-writer lock. Best-effort: if removal fails
        // the lock goes stale and the next writable open reclaims it.
        if let Some(path) = &self.lock_path {
            fs::remove_file(path).ok();
        }
    }
}

/// Whether `pid` names a running process. Linux answers via `/proc`; on
/// other platforms there is no dependency-free check, so every holder is
/// conservatively treated as alive (a crash there leaves a lock that
/// needs manual removal, rather than risking two live writers).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

impl PersistTier {
    fn empty(read_only: bool, snapshot_every: usize, snapshot_path: PathBuf) -> PersistTier {
        PersistTier {
            read_only,
            snapshot_every,
            snapshot_path,
            lock_path: None,
            state: Mutex::new(TierState {
                log: None,
                snap: None,
                index: HashMap::new(),
                log_len: 0,
                appends_since_snapshot: 0,
                appends_seen: 0,
                fault: None,
                broken: false,
                sigma_memo: HashMap::new(),
            }),
            loaded: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// A permanently-disabled tier, recording that persistence could not
    /// be opened: every lookup misses, every append is dropped, and
    /// `io_errors` is 1 so the degradation is observable in stats.
    pub(crate) fn unavailable() -> PersistTier {
        let tier = PersistTier::empty(true, 0, PathBuf::new());
        lock_recovering(&tier.state).broken = true;
        tier.io_errors.store(1, Ordering::Relaxed);
        tier
    }

    /// Opens (or creates) the tier at `config.dir`, running corruption-
    /// tolerant recovery: index the snapshot, replay the log tail,
    /// truncate the log at the first invalid record. Corrupt *content*
    /// never fails; only environment-level I/O errors do.
    pub(crate) fn open(config: &PersistConfig) -> io::Result<PersistTier> {
        let lock_path = if config.read_only {
            None
        } else {
            fs::create_dir_all(&config.dir)?;
            Some(Self::acquire_writer_lock(&config.dir)?)
        };
        let mut tier = PersistTier::empty(
            config.read_only,
            config.snapshot_every,
            config.dir.join(SNAPSHOT_FILE),
        );
        tier.lock_path = lock_path;
        let log_path = config.dir.join(LOG_FILE);
        let mut state = lock_recovering(&tier.state);
        state.fault = config.fault;

        if tier.snapshot_path.exists() {
            let mut file = File::open(&tier.snapshot_path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            let scan = scan_file(&bytes, &SNAPSHOT_MAGIC, true);
            for (key, loc) in scan.locs {
                state.index.entry(key).or_default().push(loc);
            }
            tier.loaded.store(scan.records, Ordering::Relaxed);
            if scan.corrupt {
                // Snapshots are replaced atomically, never repaired in
                // place: the invalid tail is simply not indexed.
                tier.discarded.fetch_add(1, Ordering::Relaxed);
            }
            state.snap = Some(file);
        }

        if config.read_only {
            if log_path.exists() {
                let mut file = File::open(&log_path)?;
                let mut bytes = Vec::new();
                file.read_to_end(&mut bytes)?;
                let scan = scan_file(&bytes, &LOG_MAGIC, false);
                for (key, loc) in scan.locs {
                    state.index.entry(key).or_default().push(loc);
                }
                tier.recovered.store(scan.records, Ordering::Relaxed);
                if scan.corrupt {
                    tier.discarded.fetch_add(1, Ordering::Relaxed);
                }
                state.log = Some(file);
                state.log_len = scan.valid_end;
            }
        } else {
            let mut file =
                OpenOptions::new().read(true).write(true).create(true).open(&log_path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            if bytes.is_empty() {
                Self::write_at(&mut file, 0, &file_header(&LOG_MAGIC))?;
                state.log_len = FILE_HEADER_LEN as u64;
            } else {
                let scan = scan_file(&bytes, &LOG_MAGIC, false);
                if !scan.header_ok {
                    // The whole file is unreadable: reset it. One
                    // corruption event, zero admitted records.
                    file.set_len(0)?;
                    Self::write_at(&mut file, 0, &file_header(&LOG_MAGIC))?;
                    state.log_len = FILE_HEADER_LEN as u64;
                    tier.discarded.fetch_add(1, Ordering::Relaxed);
                } else {
                    for (key, loc) in scan.locs {
                        state.index.entry(key).or_default().push(loc);
                    }
                    tier.recovered.store(scan.records, Ordering::Relaxed);
                    if scan.corrupt {
                        // Truncate the torn tail so future appends extend a
                        // valid prefix.
                        file.set_len(scan.valid_end)?;
                        tier.discarded.fetch_add(1, Ordering::Relaxed);
                    }
                    state.log_len = scan.valid_end;
                }
            }
            state.log = Some(file);
        }
        drop(state);
        Ok(tier)
    }

    /// Takes the single-writer lock on `dir`: creates `writer.lock` with
    /// `O_EXCL` semantics (`create_new`) and writes this process's pid
    /// into it. If the file already exists, the holder's pid is read
    /// back: a live holder — including this very process, when another
    /// in-process tier owns the dir — is a hard error
    /// (`ErrorKind::AddrInUse`, naming the pid), while a stale lock (the
    /// holder is dead, or the file is unreadable garbage) is removed and
    /// the acquisition retried exactly once (two writers racing for a
    /// stale lock must not both win, and `create_new` arbitrates the
    /// re-creation).
    fn acquire_writer_lock(dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(LOCK_FILE);
        for attempt in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    // Best-effort: an unwritable pid only degrades the
                    // liveness check, not the mutual exclusion.
                    let _ = write!(file, "{}", std::process::id());
                    let _ = file.flush();
                    return Ok(path);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder =
                        fs::read_to_string(&path).ok().and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid_alive(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!(
                                    "cache dir is locked by live writer pid {pid} \
                                     ({})",
                                    path.display()
                                ),
                            ));
                        }
                        _ if attempt == 0 => {
                            // Stale (dead pid, our own pid, or unreadable):
                            // reclaim and retry through `create_new`.
                            fs::remove_file(&path).ok();
                        }
                        _ => {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!("could not reclaim stale cache lock ({})", path.display()),
                            ));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("second acquisition attempt returns on every branch")
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> PersistStats {
        PersistStats {
            loaded: self.loaded.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            appended: self.appended.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }

    fn write_at(file: &mut File, off: u64, bytes: &[u8]) -> io::Result<()> {
        file.seek(SeekFrom::Start(off))?;
        file.write_all(bytes)?;
        file.flush()
    }

    fn read_body(state: &mut TierState, loc: Loc) -> io::Result<Vec<u8>> {
        let file = if loc.snap { state.snap.as_mut() } else { state.log.as_mut() };
        let file = file.ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))?;
        file.seek(SeekFrom::Start(loc.off + FRAME_HEADER_LEN as u64))?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Probes the disk index for `key`, confirming any candidate exactly
    /// like the memory tier does: context `same` equality plus
    /// `find_isomorphism` against the decoded representative.
    pub(crate) fn lookup(&self, key: u64, ctx: &ChaseContext, q: &CqQuery) -> Option<DiskHit> {
        let mut state = lock_recovering(&self.state);
        let locs: Vec<Loc> = state.index.get(&key)?.clone();
        for loc in locs {
            let body = match Self::read_body(&mut state, loc) {
                Ok(b) => b,
                Err(_) => {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            // Startup validated this record; if the file was altered
            // underneath us since, decoding fails and the probe is a miss,
            // never a panic.
            let Ok(record) = decode_record(&body) else { continue };
            if !record.ctx.same(ctx) {
                continue;
            }
            let Some(map) = find_isomorphism(q, &record.representative) else { continue };
            let sigma = Self::memoized_sigma(&mut state.sigma_memo, &record);
            let outcome = match record.outcome {
                Ok(chase) => Ok(Arc::new(StoredChase {
                    query: chase.query,
                    failed: chase.failed,
                    steps: chase.steps,
                    renaming: chase.renaming,
                    sigma_regularized: sigma,
                })),
                Err(err) => Err(err),
            };
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(DiskHit { representative: record.representative, outcome, map });
        }
        None
    }

    fn memoized_sigma(
        memo: &mut HashMap<String, Arc<DependencySet>>,
        record: &PersistRecord,
    ) -> Arc<DependencySet> {
        let text = record.ctx.sigma_text().to_string();
        if memo.len() >= SIGMA_MEMO_CAP && !memo.contains_key(&text) {
            memo.clear();
        }
        Arc::clone(memo.entry(text).or_insert_with(|| Arc::clone(&record.sigma)))
    }

    /// Appends a record to the log (no-op when read-only or broken),
    /// snapshotting when the cadence is due. Write errors are terminal for
    /// the tier: the first failure marks it broken and is counted, so a
    /// full disk degrades the cache to memory-only instead of wedging it.
    pub(crate) fn append(&self, key: u64, record: &PersistRecord) {
        if self.read_only {
            return;
        }
        let mut state = lock_recovering(&self.state);
        if state.broken || state.log.is_none() {
            return;
        }
        let body = encode_record(record);
        let frame = frame_record(&body);
        state.appends_seen += 1;
        if let Some(fault) = state.fault {
            if state.appends_seen == fault.at_append {
                let keep = fault.keep_bytes.min(frame.len());
                let off = state.log_len;
                if keep > 0 {
                    let log = state.log.as_mut().expect("checked above");
                    let _ = Self::write_at(log, off, &frame[..keep]);
                }
                state.broken = true;
                return;
            }
        }
        let off = state.log_len;
        let log = state.log.as_mut().expect("checked above");
        match Self::write_at(log, off, &frame) {
            Ok(()) => {
                state.index.entry(key).or_default().push(Loc {
                    snap: false,
                    off,
                    len: body.len() as u32,
                });
                state.log_len += frame.len() as u64;
                state.appends_since_snapshot += 1;
                self.appended.fetch_add(1, Ordering::Relaxed);
                if self.snapshot_every > 0 && state.appends_since_snapshot >= self.snapshot_every {
                    match self.compact(&mut state) {
                        Ok(()) => {
                            self.snapshots.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            self.io_errors.fetch_add(1, Ordering::Relaxed);
                            state.broken = true;
                        }
                    }
                }
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                state.broken = true;
            }
        }
    }

    /// Compacts every indexed record into a fresh snapshot (written to a
    /// temp file, atomically renamed over the old one), then truncates the
    /// log to its header. A crash between rename and truncate leaves
    /// records duplicated across the two files — harmless: recovery
    /// indexes both copies and the confirm path dedups on first match.
    fn compact(&self, state: &mut TierState) -> io::Result<()> {
        let tmp_path = self.snapshot_path.with_extension("eqc.tmp");
        let mut entries: Vec<(u64, Loc)> = state
            .index
            .iter()
            .flat_map(|(key, locs)| locs.iter().map(move |loc| (*key, *loc)))
            .collect();
        // Deterministic snapshot bytes: order by key, then provenance.
        entries.sort_by_key(|(key, loc)| (*key, loc.snap, loc.off));
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&file_header(&SNAPSHOT_MAGIC))?;
        let mut new_index: HashMap<u64, Vec<Loc>> = HashMap::new();
        let mut off = FILE_HEADER_LEN as u64;
        for (key, loc) in entries {
            let body = Self::read_body(state, loc)?;
            let frame = frame_record(&body);
            tmp.write_all(&frame)?;
            new_index.entry(key).or_default().push(Loc { snap: true, off, len: loc.len });
            off += frame.len() as u64;
        }
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, &self.snapshot_path)?;
        state.snap = Some(File::open(&self.snapshot_path)?);
        state.index = new_index;
        let log = state.log.as_mut().expect("writable tier has a log");
        log.set_len(FILE_HEADER_LEN as u64)?;
        state.log_len = FILE_HEADER_LEN as u64;
        state.appends_since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_chase::ChaseConfig;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;
    use eqsql_relalg::Schema;

    fn sample_record(err: bool) -> PersistRecord {
        let sigma = Arc::new(parse_dependencies("p(X,Y) -> s(X,Z).").unwrap());
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        let ctx = ChaseContext::new(Semantics::Bag, &sigma, &schema, &ChaseConfig::default());
        let representative = parse_query("q(X) :- p(X,Y)").unwrap();
        let outcome = if err {
            Err(ChaseError::BudgetExhausted { steps: 17 })
        } else {
            Ok(PersistedChase {
                query: parse_query("q(X) :- p(X,Y), s(X,Z_1)").unwrap(),
                failed: false,
                steps: 1,
                renaming: Subst::from_pairs([(Var::new("Y"), Term::var("Y"))]),
            })
        };
        PersistRecord { ctx, sigma, representative, outcome }
    }

    #[test]
    fn round_trip_preserves_key_material_and_outcome() {
        for err in [false, true] {
            let record = sample_record(err);
            let body = encode_record(&record);
            let decoded = decode_record(&body).unwrap();
            assert!(decoded.ctx.same(&record.ctx));
            assert_eq!(decoded.ctx.fingerprint(), record.ctx.fingerprint());
            assert_eq!(decoded.representative, record.representative);
            assert_eq!(record_key(&decoded), record_key(&record));
            match (&decoded.outcome, &record.outcome) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.query, b.query);
                    assert_eq!(a.failed, b.failed);
                    assert_eq!(a.steps, b.steps);
                    assert_eq!(a.renaming.sorted_pairs(), b.renaming.sorted_pairs());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("outcome shape changed in round trip"),
            }
            // Encoding is byte-deterministic.
            assert_eq!(body, encode_record(&decoded));
        }
    }

    #[test]
    fn every_constant_shape_round_trips() {
        let sigma = Arc::new(DependencySet::new());
        let schema = Schema::all_bags(&[("k", 4)]);
        let ctx = ChaseContext::new(Semantics::Set, &sigma, &schema, &ChaseConfig::default());
        let q = CqQuery::new(
            "q",
            vec![Term::var("X")],
            vec![Atom::new(
                "k",
                vec![
                    Term::var("X"),
                    Term::Const(Value::Int(-3)),
                    Term::Const(Value::Real(R64::new(2.5))),
                    Term::Const(Value::Labeled(u64::MAX)),
                ],
            )],
        );
        let record = PersistRecord {
            ctx,
            sigma,
            representative: q.clone(),
            outcome: Ok(PersistedChase {
                query: q,
                failed: true,
                steps: 0,
                renaming: Subst::new(),
            }),
        };
        let decoded = decode_record(&encode_record(&record)).unwrap();
        assert_eq!(decoded.representative, record.representative);
    }

    #[test]
    fn truncation_and_bitflips_never_decode_to_a_different_record() {
        let record = sample_record(false);
        let body = encode_record(&record);
        for cut in 0..body.len() {
            // A truncated body must fail, not mis-decode.
            assert!(decode_record(&body[..cut]).is_err(), "cut at {cut} decoded");
        }
        // Bit flips either fail to decode or decode to *some* record —
        // framing checksums catch them before decode in the real pipeline.
        for i in 0..body.len() {
            let mut flipped = body.clone();
            flipped[i] ^= 1;
            let _ = decode_record(&flipped);
        }
    }

    #[test]
    fn scan_stops_at_first_invalid_record() {
        let r = sample_record(false);
        let body = encode_record(&r);
        let mut bytes = file_header(&LOG_MAGIC);
        bytes.extend_from_slice(&frame_record(&body));
        bytes.extend_from_slice(&frame_record(&body));
        let full = scan_file(&bytes, &LOG_MAGIC, false);
        assert_eq!((full.records, full.corrupt), (2, false));
        assert_eq!(full.valid_end, bytes.len() as u64);
        // Corrupt the second record's checksum: only the first survives.
        let second = FILE_HEADER_LEN + FRAME_HEADER_LEN + body.len();
        let mut corrupted = bytes.clone();
        corrupted[second + 5] ^= 0xFF;
        let scan = scan_file(&corrupted, &LOG_MAGIC, false);
        assert_eq!((scan.records, scan.corrupt), (1, true));
        assert_eq!(scan.valid_end as usize, second);
        // Wrong magic: nothing admitted.
        let scan = scan_file(&bytes, &SNAPSHOT_MAGIC, true);
        assert!(!scan.header_ok && scan.corrupt && scan.records == 0);
    }

    #[test]
    fn transient_errors_are_rejected_by_the_wire_gate() {
        assert!(ChaseError::Cancelled { steps: 1 }.wire().is_none());
        assert!(ChaseError::DeadlineExceeded { steps: 1 }.wire().is_none());
        assert_eq!(ChaseError::from_wire(1, 9), Some(ChaseError::BudgetExhausted { steps: 9 }));
        assert_eq!(ChaseError::from_wire(7, 9), None);
    }
}
