//! # eqsql-service — the serving layer: one typed [`Solver`] over the
//! whole decision family, batched, cached, evidence-carrying
//!
//! The decision procedures of Chirkova & Genesereth (PODS 2009) —
//! Σ-equivalence under set/bag/bag-set semantics (Theorems 2.2/6.1/6.2),
//! set containment, Σ-minimality (Definition 3.1), the C&B reformulation
//! family, bag containment, dependency implication, the instance chase —
//! all reduce to *sound chases to termination* followed by cheap
//! dependency-free tests. This crate is their single public entry point
//! and the layer that removes redundant chase work:
//!
//! * [`solver`] — the façade. A [`SolverBuilder`] captures default
//!   semantics, chase budgets, engine knobs
//!   ([`eqsql_chase::EngineOpts`]: delta seeding, parallel probes),
//!   cache sizing and worker threads; [`Solver::decide`] answers any
//!   [`Request`] with a typed [`Verdict`] whose [`Answer`] carries
//!   machine-checkable evidence; [`Solver::decide_all`] dispatches a
//!   batch across a worker pool ([`Solver::decide_all_with`] adds
//!   deadlines, cancellation, admission control and retry —
//!   [`BatchOptions`]); [`Solver::stats`] is one coherent counter
//!   snapshot. Failures surface through the unified [`Error`] taxonomy
//!   of [`error`] — parse, budget, egd-failure, unsupported-semantics,
//!   deadline, cancellation, shed, internal — regardless of which crate
//!   they began in.
//!
//!   ```
//!   use eqsql_cq::parse_query;
//!   use eqsql_deps::parse_dependencies;
//!   use eqsql_relalg::{Schema, Semantics};
//!   use eqsql_service::{Answer, Request, RequestOpts, Solver};
//!
//!   let sigma = parse_dependencies(
//!       "p(X,Y) -> s(X,Z). s(X,Y) & s(X,Z) -> Y = Z.",
//!   ).unwrap();
//!   let mut schema = Schema::all_bags(&[("p", 2), ("s", 2)]);
//!   schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
//!
//!   let solver = Solver::builder(sigma, schema)
//!       .default_semantics(Semantics::Set)
//!       .threads(2)
//!       .build();
//!   let req = Request::Equivalent {
//!       q1: parse_query("q(X) :- p(X,Y)").unwrap(),
//!       q2: parse_query("q(X) :- p(X,Y), s(X,Z)").unwrap(),
//!       opts: RequestOpts::default(),
//!   };
//!   let verdict = solver.decide(&req).unwrap();
//!   assert!(matches!(verdict.answer, Answer::Equivalent { .. }));
//!   // The verdict's certificate replays against the inputs:
//!   verdict.verify(&req, solver.sigma(), solver.schema()).unwrap();
//!   ```
//!
//! * [`evidence`] — the certificate types verdicts carry (witnessing
//!   homomorphisms per containment direction, isomorphism bijections,
//!   separating databases, minimality witnesses) and their `verify`
//!   replays, used by the randomized suite to prove evidence is real
//!   rather than decorative;
//! * [`canon`] — renaming-invariant fingerprints of `(query, Σ,
//!   semantics, set-valuedness flags, budgets, engine mode)`, the cache
//!   key material;
//! * [`cache`] — the sharded `(Q, Σ)` chase-result cache: fingerprint
//!   buckets confirmed by exact isomorphism, α-equivalent probes replayed
//!   through the witnessing bijection, terminal errors cached alongside
//!   terminal results (see the cache-key soundness notes in [`cache`]),
//!   with an optional disk tier ([`cache::persist`]) that survives
//!   restarts;
//! * [`batch`] — [`BatchSession`], the legacy pairwise-equivalence batch
//!   API, now a thin veneer over a counterexample-free [`Solver`];
//! * [`request`] — the newline-delimited request-file format of the
//!   `eqsql-serve` binary, covering the full verb family (`pair`/
//!   `equivalent`, `contains`, `minimal`, `cnb`, `implies`) with
//!   per-request semantics and budget overrides. The same verb grammar is
//!   the wire format of the `eqsql_net` TCP server (one request per line,
//!   via [`request::parse_request_line`]); see the "Wire protocol"
//!   section of the `eqsql_net` crate docs for framing, response lines
//!   and control verbs.
//!
//! ## Cache-key soundness
//!
//! A cache hit must be indistinguishable from a fresh chase. The sound
//! chase commutes with α-renaming, so one terminal per α-class suffices,
//! replayed through the class bijection; fingerprints are necessary but
//! never sufficient — every probe is confirmed by exact isomorphism (and
//! exact context equality) before an entry is trusted. Delta-seeded
//! engines produce terminals that are only Σ-equivalent to the reference
//! engine's, so the engine mode is part of the context key. See
//! [`cache`] and [`canon`] for the full argument and the poisoning-guard
//! tests.
//!
//! ## Persistence format & recovery guarantees
//!
//! With [`CacheConfig::persist`] set (or [`SolverBuilder::cache_dir`], or
//! `eqsql-serve --cache-dir`), terminal chase results survive restarts in
//! an append-only record log plus a periodically compacted snapshot:
//!
//! * **Record layout.** Both files open with an 8-byte magic and a
//!   little-endian format version; each record is `body_len (u32) ·
//!   FNV-1a-64 checksum · body`. A body stores the full entry *by
//!   structure*: the context key material (semantics, budgets, engine
//!   mode, sorted set-valued relations, the regularized Σ as tgd/egd
//!   trees), the representative query, and the outcome — a terminal chase
//!   (terminal query, failure flag, steps, renaming) or a cacheable
//!   terminal error by its stable wire code. Fingerprints are recomputed
//!   on load, never trusted from disk; symbols are re-interned by name.
//! * **Snapshot cadence.** After [`cache::persist::PersistConfig::snapshot_every`]
//!   appends, every live record is compacted into a fresh snapshot
//!   (written to a temp file, atomically renamed) and the log is reset to
//!   its header. A crash between the two steps at worst duplicates
//!   records across the files, which the confirm path dedups.
//! * **Recovery.** Startup loads the snapshot, replays the log tail, and
//!   **truncates at the first invalid record** instead of failing —
//!   validation is length bounds, checksum, and a full structural decode.
//!   Each corruption event is counted in
//!   [`cache::persist::PersistStats::discarded`] (surfaced through
//!   [`Solver::stats`]). Every admitted record still re-enters through
//!   the live hit path — exact context equality plus isomorphism
//!   confirmation — so recovery can never admit an entry a fresh solver
//!   would decide differently.
//! * **What is (not) memoized across restarts.** Terminal results and the
//!   *deterministic* budget errors (`BudgetExhausted`, `QueryTooLarge`)
//!   are; transient guard aborts (deadline, cancellation) never reach
//!   disk, mirroring [`eqsql_chase::ChaseError::is_cacheable`]. Read-only
//!   mode ([`cache::persist::PersistConfig::read_only`]) serves disk hits
//!   without appending, for replicas over a shared warm store.
//!
//! ## Failure modes & backpressure
//!
//! A hostile workload — adversarial inputs, too many requests, a caller
//! that lost interest — must degrade a [`Solver`] *per request*, never
//! wedge it. The failure taxonomy splits along one line: is the error a
//! **stable fact about the input** or a **transient fact about one run**?
//!
//! * **Budget exhaustion** ([`Error::BudgetExhausted`],
//!   [`Error::QueryTooLarge`], [`Error::PlanTooLarge`]) — deterministic
//!   functions of `(Q, Σ, budget)`. They are **cached**: rediscovering
//!   that a chase diverges is as expensive as the divergence itself.
//!   [`BatchOptions::retry`] ([`RetryPolicy`]) re-runs exhausted requests
//!   with an escalated budget; the larger budget is a different cache
//!   context, so the memoized exhaustion at the smaller budget is neither
//!   consulted nor clobbered.
//! * **Deadline / cancellation** ([`Error::DeadlineExceeded`],
//!   [`Error::Cancelled`]) — properties of wall-clock and caller
//!   interest, observed by a cooperative [`RunGuard`] polled once per
//!   chase step (engine loop, nested assignment-fixing chases, instance
//!   repairs, counterexample search). They are **never cached**
//!   ([`eqsql_chase::ChaseError::is_cacheable`]): an identical retry may
//!   well succeed, and must not be answered "timed out" from memory. Set
//!   per request via [`RequestOpts::deadline_ms`] (`0` = already
//!   expired), per batch via [`BatchOptions::deadline_ms`] /
//!   [`BatchOptions::cancel`] ([`Cancel`] is a shareable token).
//! * **Shedding** ([`Error::Shed`]) — admission control at the batch
//!   boundary. [`AdmissionConfig`] bounds the number of requests a batch
//!   will queue; past capacity, [`ShedPolicy::RejectNew`] turns away
//!   arrivals and [`ShedPolicy::CancelOldest`] shed the oldest waiting
//!   request instead. Shed requests do no work and touch no cache.
//! * **Panics** ([`Error::Internal`]) — a defect in the service, not a
//!   statement about the input. Each batch request runs under
//!   `catch_unwind`; a panicking request becomes an `Internal` verdict
//!   while the rest of the batch completes, and cache shard locks recover
//!   from poisoning so an isolated panic cannot take the cache with it.
//!
//! Every transient outcome is counted in [`SolverStats`] (`shed`,
//! `retries`, `panics`) so operators can see backpressure, and
//! [`Error::is_transient`] lets callers route retryable failures. The
//! fault-injection hook [`RequestOpts::fault`] ([`FaultPlan`]) forces
//! cancellation, deadline expiry or a panic at the Nth guard poll — the
//! deterministic substrate of the robustness test suite.
//!
//! ## Observability: metrics, traces, and reading the numbers
//!
//! Chase cost is intrinsically spiky — Σ decides whether a request costs
//! three steps or its whole budget — so the ops knobs above (deadlines,
//! shedding, retry escalation) can only be tuned against *distributions*,
//! not averages. The in-tree `eqsql_obs` crate supplies the substrate;
//! this crate wires it through every layer:
//!
//! * **Off by default, and free when off.** No timestamp is taken and no
//!   probe armed unless the global [`eqsql_obs::enabled`] gate is on or a
//!   [`SolverBuilder::trace_sink`] is configured; the disabled cost is an
//!   `Option` test per site. Instrumentation is pure accounting either
//!   way — verdicts, chase step counts and cache attribution are
//!   bit-identical with observability off and on, pinned by a randomized
//!   differential suite.
//! * **Per-request traces.** Each batch request carries a span
//!   ([`eqsql_obs::TraceCtx`]) splitting its life into disjoint phases:
//!   `queue` (admission wait), `regularize` (override-context
//!   construction), `chase` (cache misses: engine time), `cache` (probes
//!   answered from memory or disk, attributed separately), `evidence`
//!   (counterexample search, *excluding* its nested chases — no
//!   microsecond is double-billed, so the phase sum is ≤ wall time). The
//!   span ends as one stable `key=value` event line through the
//!   configured sink — including for requests that die (shed, deadline,
//!   cancellation, panic), whose `terminal=` key says how. See
//!   [`eqsql_obs::TraceCtx::render`] for the exact grammar.
//! * **Aggregates.** [`Solver::stats`] adds [`SolverStats::latency`]
//!   (a log-bucketed p50/p90/p99/max summary of observed batch-request
//!   latencies, µs) and [`SolverStats::phase`] (cumulative per-phase
//!   totals). [`CacheStats::shard_entries`] exposes per-shard occupancy,
//!   so fingerprint skew across the sharded cache is visible.
//! * **Reading the numbers.** A high `queue_us` with low `chase_us`
//!   means admission capacity, not chase cost, bounds latency — raise
//!   capacity or threads. `misses` with large `chase_us` and a cold
//!   `disk_hits` column means the persistent tier isn't warming —
//!   check `--cache-dir`. Hits that are mostly `disk_hits` pay
//!   deserialization: a bigger memory capacity would help. `p99 ≫ p50`
//!   with `retries > 0` usually means budget escalation, not noise.
//! * **From the binary.** `eqsql-serve --metrics` dumps solver/cache
//!   metrics at end of run, `--trace FILE` writes one event line per
//!   request, `--progress MS` prints a periodic progress line to stderr.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod cache;
pub mod canon;
pub mod error;
pub mod evidence;
pub mod request;
pub mod solver;

pub use batch::{BatchOutcome, BatchSession, BatchStats, EquivRequest};
// Re-exported so Solver callers can speak the façade's full vocabulary
// (semantics, budgets, engine knobs) without importing substrate crates.
pub use cache::persist::{PersistConfig, PersistFault, PersistStats};
pub use cache::{CacheConfig, CacheOutcome, CacheStats, ChaseCache};
pub use canon::{cache_key, context_fingerprint, query_fingerprint, ChaseContext};
pub use eqsql_chase::{Cancel, ChaseConfig, EngineOpts, Fault, FaultPlan, RunGuard};
pub use eqsql_obs::{HistogramSummary, TraceCtx, TraceSink, VecSink, WriteSink};
pub use eqsql_relalg::Semantics;
pub use error::Error;
pub use evidence::{
    BagContainmentCertificate, CertificateError, ContainmentCertificate, Counterexample,
    EquivalenceCertificate, ImplicationCounterexample,
};
pub use request::{
    parse_request_file, parse_request_line, parse_request_line_bytes, RequestFile,
    RequestParseError, MAX_LINE_BYTES,
};
pub use solver::{
    AdmissionConfig, Answer, BatchOptions, BatchReport, Completion, DecisionStats, PhaseTotals,
    Request, RequestOpts, RetryPolicy, ShedPolicy, Solver, SolverBuilder, SolverStats, Verdict,
};
