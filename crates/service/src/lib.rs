//! # eqsql-service — batched Σ-equivalence with a `(Q, Σ)` chase-result cache
//!
//! The decision procedures of Chirkova & Genesereth (PODS 2009) reduce
//! every Σ-equivalence question to *sound chases to termination* of the two
//! input queries (Theorems 2.2 / 6.1 / 6.2) followed by a cheap
//! dependency-free test on the terminal queries. Workloads that consume an
//! equivalence oracle — rewrite validation, view selection, the C&B
//! backchase — ask such questions in *streams over one fixed Σ*, re-chasing
//! structurally identical (sub)queries over and over. This crate is the
//! serving layer that removes that redundancy:
//!
//! * [`canon`] — a renaming-invariant fingerprint of `(query, Σ, semantics,
//!   set-valuedness flags, budgets)`, with the canonicalizing variable map
//!   (the witnessing bijection onto a cached representative) retained so
//!   terminal results can be replayed for α-equivalent probes;
//! * [`cache`] — a sharded, concurrency-safe map from canonical keys to
//!   terminal chase outcomes (terminal query *or* failure/budget error),
//!   with hit/miss/eviction counters and FIFO capacity eviction;
//! * [`batch`] — [`BatchSession`]: one Σ, many `(Q1, Q2, semantics)`
//!   pairs; Σ-regularization happens once, chases dispatch across a worker
//!   pool, and the caller gets per-pair verdicts plus batch statistics;
//! * the `eqsql-serve` binary — drives a session from a newline-delimited
//!   request file, for smoke tests and load experiments.
//!
//! ## Cache-key soundness
//!
//! A cache hit must be indistinguishable from a fresh chase. Two facts make
//! the key sound:
//!
//! 1. **The sound chase commutes with α-renaming.** The engine's choices
//!    (dependency order, the deterministic homomorphism search, fresh-name
//!    drawing) are functions of query *structure*; renaming the input
//!    variables bijectively renames the whole run. Hence one terminal
//!    result per α-class suffices, replayed through the class bijection
//!    (probe → representative), with chase-introduced variables renamed
//!    apart from the probe and the accumulated egd renaming — the input to
//!    the assignment-fixing test (Definition 4.3) — transported the same
//!    way.
//! 2. **Fingerprints are necessary, isomorphism is the authority.** The
//!    color-refinement fingerprint of [`canon`] is provably equal on
//!    isomorphic queries but may collide for non-isomorphic ones, so every
//!    probe is confirmed by an exact [`eqsql_cq::find_isomorphism`] check
//!    (including positional head correspondence and body-multiset
//!    matching) before an entry is trusted, and non-isomorphic queries
//!    occupy distinct entries within a bucket. A collision therefore costs
//!    a linear bucket scan, never a wrong verdict — the property pinned by
//!    the cache-poisoning guard tests in `tests/tests/service_cache.rs`.
//!
//! Everything else the outcome depends on — Σ (textually), the semantics,
//! the schema's set-valuedness flags, and both chase budgets (a cached
//! `BudgetExhausted` is only valid for the budget it was observed under) —
//! forms the context half of the key ([`canon::ChaseContext`]), which is
//! likewise never trusted on its fingerprint alone: entries store the
//! exact key material and confirm it field-for-field on every probe.
//!
//! ## Batch lifecycle
//!
//! ```text
//! BatchSession::new(Σ, schema, config)      regularize Σ once (memoized)
//!     .with_cache(shared)                   optionally adopt a warm cache
//!     .with_threads(n)                      size the worker pool
//!     .run(&pairs)                          N workers pull pairs from a
//!                                           shared counter; each pair runs
//!                                           sigma_equivalent_via(cache),
//!                                           so both chases of the pair are
//!                                           cache lookups first
//!  -> BatchOutcome { verdicts, stats }      verdicts in request order;
//!                                           stats: verdict counts, cache
//!                                           hit/miss deltas, wall time
//! ```
//!
//! Sessions are cheap and single-Σ; servers keep one [`cache::ChaseCache`]
//! behind an [`std::sync::Arc`] and open a session per request batch. The
//! same cache can be handed to [`eqsql_core::cnb_via`] /
//! [`eqsql_core::sigma_equivalent_via`] directly — the service and the
//! C&B family share chase work through the same handle.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod cache;
pub mod canon;
pub mod request;

pub use batch::{BatchOutcome, BatchSession, BatchStats, EquivRequest};
pub use cache::{CacheConfig, CacheStats, ChaseCache};
pub use canon::{cache_key, context_fingerprint, query_fingerprint, ChaseContext};
pub use request::{parse_request_file, RequestFile, RequestParseError};
